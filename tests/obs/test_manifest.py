"""Unit tests for run manifests (collection, atomic write, validation)."""

import json

import pytest

from repro.obs import (
    CANONICAL_STAGES,
    REQUIRED_KEYS,
    MetricsRegistry,
    RunManifest,
    Tracer,
    manifest_problems,
    validate_manifest,
)


def _traced_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("measurement"):
        with tracer.span("census", census_id=1):
            pass
    with tracer.span("analysis"):
        with tracer.span("detection"):
            pass
        with tracer.span("igreedy"):
            with tracer.span("enumeration"):
                pass
            with tracer.span("geolocation"):
                pass
    with tracer.span("characterization"):
        pass
    return tracer


class TestCollect:
    def test_pipeline_stages_derived_from_trace(self):
        manifest = RunManifest.collect(tracer=_traced_tracer())
        assert manifest.pipeline_stages == list(CANONICAL_STAGES)

    def test_partial_trace_partial_stages(self):
        tracer = Tracer()
        with tracer.span("measurement"):
            pass
        manifest = RunManifest.collect(tracer=tracer)
        assert manifest.pipeline_stages == ["measurement"]

    def test_null_tracer_gives_null_trace(self):
        manifest = RunManifest.collect()
        assert manifest.trace is None
        assert manifest.pipeline_stages == []
        validate_manifest(manifest.to_dict())

    def test_config_dataclass_serialized(self):
        from repro.workflow import StudyConfig

        manifest = RunManifest.collect(config=StudyConfig())
        assert manifest.config["n_vantage_points"] == 308
        assert manifest.config["fault_plan"]["crash_prob"] == 0.0
        json.dumps(manifest.to_dict())  # fully JSON-serializable

    def test_metrics_snapshot_embedded(self):
        registry = MetricsRegistry()
        registry.counter("probes_sent").inc(7)
        manifest = RunManifest.collect(metrics=registry)
        assert manifest.metrics["counters"]["probes_sent"] == 7


class TestWrite:
    def test_atomic_write_and_reload(self, tmp_path):
        target = tmp_path / "nested" / "run.json"
        path = RunManifest.collect(tracer=_traced_tracer()).write(target)
        assert path == target
        doc = json.loads(target.read_text())
        validate_manifest(doc)
        # No temp file left behind.
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_overwrite_is_atomic_replace(self, tmp_path):
        target = tmp_path / "run.json"
        RunManifest.collect().write(target)
        RunManifest.collect(tracer=_traced_tracer()).write(target)
        doc = json.loads(target.read_text())
        assert doc["pipeline_stages"] == list(CANONICAL_STAGES)


class TestValidation:
    def _valid_doc(self):
        return RunManifest.collect(tracer=_traced_tracer()).to_dict()

    def test_valid_doc_passes(self):
        assert manifest_problems(self._valid_doc()) == []

    @pytest.mark.parametrize("key", REQUIRED_KEYS)
    def test_each_required_key_enforced(self, key):
        doc = self._valid_doc()
        del doc[key]
        with pytest.raises(ValueError, match=key):
            validate_manifest(doc)

    def test_non_object_rejected(self):
        assert manifest_problems([1, 2]) == ["manifest is not a JSON object"]

    def test_unknown_stage_rejected(self):
        doc = self._valid_doc()
        doc["pipeline_stages"] = ["measurement", "astrology"]
        with pytest.raises(ValueError, match="astrology"):
            validate_manifest(doc)

    def test_future_schema_rejected(self):
        doc = self._valid_doc()
        doc["schema_version"] = 999
        with pytest.raises(ValueError, match="newer"):
            validate_manifest(doc)

    def test_malformed_span_rejected(self):
        doc = self._valid_doc()
        doc["trace"][0]["children"] = [{"name": "orphan"}]  # missing keys
        with pytest.raises(ValueError, match="children\\[0\\]"):
            validate_manifest(doc)

    def test_metrics_families_enforced(self):
        doc = self._valid_doc()
        doc["metrics"] = {"counters": {}}
        with pytest.raises(ValueError, match="gauges"):
            validate_manifest(doc)


class TestSloSection:
    def _report(self):
        from repro.obs import Budget, SloSpec, evaluate_slo

        return evaluate_slo(
            SloSpec(stage_seconds={"census": Budget(1, 10)}),
            stage_seconds={"census": 0.5},
        )

    def test_absent_by_default(self):
        doc = RunManifest.collect(tracer=_traced_tracer()).to_dict()
        assert "slo" not in doc
        validate_manifest(doc)

    def test_collected_and_validated(self):
        manifest = RunManifest.collect(tracer=_traced_tracer(), slo=self._report())
        doc = manifest.to_dict()
        assert doc["slo"]["kind"] == "slo-report"
        assert doc["slo"]["verdict"] == "pass"
        validate_manifest(doc)
        json.dumps(doc)  # fully serializable

    def test_accepts_plain_dict(self):
        manifest = RunManifest.collect(slo=self._report().to_doc())
        validate_manifest(manifest.to_dict())

    def test_corrupt_slo_rejected(self):
        doc = RunManifest.collect(slo=self._report()).to_dict()
        doc["slo"]["verdict"] = "astrology"
        with pytest.raises(ValueError, match="slo"):
            validate_manifest(doc)

    def test_study_manifest_evaluates_slo(self):
        from repro.obs import Budget, SloSpec
        from repro.workflow import CensusStudy, StudyConfig
        from repro.internet.topology import InternetConfig

        study = CensusStudy(
            StudyConfig(
                internet=InternetConfig(
                    seed=3, n_unicast_slash24=200, tail_deployments=5
                ),
                n_vantage_points=20,
                n_censuses=1,
                trace=True,
                metrics=True,
                slo=SloSpec(
                    stage_seconds={"measurement": Budget(warn=120, breach=600)},
                    probe_failure_rate=Budget(warn=0.1, breach=0.5),
                ),
            )
        )
        study.analysis
        doc = study.manifest.to_dict()
        validate_manifest(doc)
        names = [o["name"] for o in doc["slo"]["objectives"]]
        assert "stage_seconds:measurement" in names
        assert doc["slo"]["verdict"] in ("pass", "warn", "breach")
