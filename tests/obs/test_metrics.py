"""Unit tests for the metrics layer (counters, gauges, histograms)."""

import pytest

from repro.obs import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    current_metrics,
    use_metrics,
)


class TestCounter:
    def test_counts_up(self):
        registry = MetricsRegistry()
        registry.counter("probes_sent").inc()
        registry.counter("probes_sent").inc(41)
        assert registry.counter("probes_sent").value == 42

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("vps_quarantined").set(3)
        registry.gauge("vps_quarantined").set(1)
        assert registry.gauge("vps_quarantined").value == 1

    def test_unset_is_none(self):
        assert MetricsRegistry().gauge("g").value is None


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(buckets=(1, 5, 10))
        for v in (0.5, 1, 3, 7, 100):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5
        assert h.max == 100
        assert h.mean == pytest.approx(111.5 / 5)

    def test_nan_is_skipped(self):
        h = Histogram(buckets=(1,))
        h.observe(float("nan"))
        assert h.count == 0

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(5, 1))

    def test_snapshot_shape(self):
        h = Histogram(buckets=(1, 2))
        h.observe(1.5)
        snap = h.snapshot()
        assert snap["bounds"] == [1.0, 2.0]
        assert snap["bucket_counts"] == [0, 1, 0]
        assert snap["count"] == 1


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_sorted_plain_dict(self):
        registry = MetricsRegistry()
        registry.counter("zulu").inc(1)
        registry.counter("alpha").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(3)
        snap = registry.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["alpha", "zulu"]
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0


class TestNullRegistry:
    def test_everything_is_noop(self):
        registry = NullMetricsRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2)
        assert len(registry) == 0
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_instruments_are_shared(self):
        registry = NullMetricsRegistry()
        assert registry.counter("a") is registry.histogram("b")


class TestCurrentMetrics:
    def test_default_is_null(self):
        assert current_metrics() is NULL_METRICS

    def test_use_metrics_restores(self):
        registry = MetricsRegistry()
        before = current_metrics()
        with use_metrics(registry):
            assert current_metrics() is registry
            current_metrics().counter("seen").inc()
        assert current_metrics() is before
        assert registry.counter("seen").value == 1
