"""Unit tests for the metrics layer (counters, gauges, histograms)."""

import pytest

from repro.obs import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    current_metrics,
    use_metrics,
)


class TestCounter:
    def test_counts_up(self):
        registry = MetricsRegistry()
        registry.counter("probes_sent").inc()
        registry.counter("probes_sent").inc(41)
        assert registry.counter("probes_sent").value == 42

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("vps_quarantined").set(3)
        registry.gauge("vps_quarantined").set(1)
        assert registry.gauge("vps_quarantined").value == 1

    def test_unset_is_none(self):
        assert MetricsRegistry().gauge("g").value is None


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(buckets=(1, 5, 10))
        for v in (0.5, 1, 3, 7, 100):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5
        assert h.max == 100
        assert h.mean == pytest.approx(111.5 / 5)

    def test_nan_is_skipped(self):
        h = Histogram(buckets=(1,))
        h.observe(float("nan"))
        assert h.count == 0

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(5, 1))

    def test_snapshot_shape(self):
        h = Histogram(buckets=(1, 2))
        h.observe(1.5)
        snap = h.snapshot()
        assert snap["bounds"] == [1.0, 2.0]
        assert snap["bucket_counts"] == [0, 1, 0]
        assert snap["count"] == 1


class TestPercentiles:
    def test_interpolated_quantiles(self):
        h = Histogram(buckets=(10, 20, 30, 40, 50, 60, 70, 80, 90, 100))
        for v in range(1, 101):
            h.observe(v)
        # Uniform 1..100: bucket interpolation lands within one bucket
        # width of the exact quantile.
        assert h.percentile(0.50) == pytest.approx(50, abs=10)
        assert h.percentile(0.90) == pytest.approx(90, abs=10)
        assert h.percentile(0.99) == pytest.approx(99, abs=10)

    def test_monotone_in_q(self):
        h = Histogram(buckets=(1, 5, 10, 50))
        for v in (0.1, 2, 3, 7, 20, 90, 200):
            h.observe(v)
        qs = [h.percentile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)

    def test_degenerate_distribution_is_exact(self):
        h = Histogram(buckets=(1, 10))
        for _ in range(5):
            h.observe(3.0)
        assert h.percentile(0.5) == 3.0
        assert h.percentile(0.99) == 3.0

    def test_overflow_rank_reports_max(self):
        h = Histogram(buckets=(1,))
        h.observe(500)
        assert h.percentile(0.99) == 500

    def test_empty_is_none_and_bad_q_raises(self):
        h = Histogram(buckets=(1,))
        assert h.percentile(0.5) is None
        h.observe(1)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_snapshot_carries_percentiles(self):
        h = Histogram(buckets=(1, 2))
        h.observe(1.5)
        snap = h.snapshot()
        assert snap["p50"] == 1.5
        assert snap["p99"] == 1.5


class TestMerge:
    def test_counter_and_gauge_merge(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1)
        registry.merge({"counters": {"c": 4, "new": 2}, "gauges": {"g": 9}})
        assert registry.counter("c").value == 7
        assert registry.counter("new").value == 2
        assert registry.gauge("g").value == 9

    def test_gauge_none_does_not_clobber(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5)
        registry.merge({"gauges": {"g": None}})
        assert registry.gauge("g").value == 5

    def test_histogram_merge_equals_serial(self):
        serial = Histogram(buckets=(1, 5, 10))
        a = Histogram(buckets=(1, 5, 10))
        b = Histogram(buckets=(1, 5, 10))
        for v in (0.5, 2, 7):
            serial.observe(v)
            a.observe(v)
        for v in (3, 100):
            serial.observe(v)
            b.observe(v)
        a.merge(b.snapshot())
        assert a.snapshot() == serial.snapshot()

    def test_merge_is_order_free(self):
        snaps = []
        for chunk in ((1, 2), (7, 50), (0.5,)):
            h = Histogram(buckets=(1, 5, 10))
            for v in chunk:
                h.observe(v)
            snaps.append(h.snapshot())
        fwd = Histogram(buckets=(1, 5, 10))
        rev = Histogram(buckets=(1, 5, 10))
        for snap in snaps:
            fwd.merge(snap)
        for snap in reversed(snaps):
            rev.merge(snap)
        assert fwd.snapshot() == rev.snapshot()

    def test_bounds_mismatch_raises(self):
        h = Histogram(buckets=(1, 5))
        other = Histogram(buckets=(1, 10))
        with pytest.raises(ValueError):
            h.merge(other.snapshot())

    def test_registry_merge_creates_instruments(self):
        worker = MetricsRegistry()
        worker.counter("exec_unit_scans").inc(4)
        worker.histogram("h", buckets=(1, 2)).observe(1.5)
        parent = MetricsRegistry()
        parent.merge(worker.snapshot())
        assert parent.snapshot() == worker.snapshot()

    def test_null_registry_merge_is_noop(self):
        NULL_METRICS.merge({"counters": {"c": 1}})
        assert NULL_METRICS.snapshot()["counters"] == {}


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_sorted_plain_dict(self):
        registry = MetricsRegistry()
        registry.counter("zulu").inc(1)
        registry.counter("alpha").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(3)
        snap = registry.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["alpha", "zulu"]
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0


class TestNullRegistry:
    def test_everything_is_noop(self):
        registry = NullMetricsRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2)
        assert len(registry) == 0
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_instruments_are_shared(self):
        registry = NullMetricsRegistry()
        assert registry.counter("a") is registry.histogram("b")


class TestCurrentMetrics:
    def test_default_is_null(self):
        assert current_metrics() is NULL_METRICS

    def test_use_metrics_restores(self):
        registry = MetricsRegistry()
        before = current_metrics()
        with use_metrics(registry):
            assert current_metrics() is registry
            current_metrics().counter("seen").inc()
        assert current_metrics() is before
        assert registry.counter("seen").value == 1
