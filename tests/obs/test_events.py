"""Unit tests for the structured-event log (JSONL, bounded, crash-safe)."""

import json

import pytest

from repro.obs import (
    NULL_EVENTS,
    EventLog,
    NullEventLog,
    current_events,
    parse_events,
    read_events,
    use_events,
)
from repro.obs.events import EVENT_KEYS, event_problems


def _fixed_clock():
    t = [100.0]

    def clock():
        t[0] += 0.5
        return t[0]

    return clock


class TestEmit:
    def test_records_in_order_with_seq(self):
        log = EventLog(clock=_fixed_clock())
        log.emit("stage", "stage_start", stage="census")
        log.emit("quarantine", "vp_quarantined", vp="pl-3")
        lines = log.to_lines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["kind"] == "stage"
        assert second["attrs"] == {"vp": "pl-3"}
        assert second["ts"] > first["ts"]

    def test_lines_are_canonical_jsonl(self):
        log = EventLog(clock=_fixed_clock())
        log.emit("service", "epoch_start", epoch=3)
        (line,) = log.to_lines()
        assert line.endswith("\n")
        event = json.loads(line)
        assert sorted(event) == sorted(EVENT_KEYS)
        # Canonical form: sorted keys, no whitespace.
        assert line == json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"

    def test_attrs_coerced_to_json_types(self):
        import numpy as np

        log = EventLog(clock=_fixed_clock())
        log.emit("x", "y", n=np.int64(4), xs=(1, 2), obj=object())
        event = json.loads(log.to_lines()[0])
        assert event["attrs"]["n"] == 4
        assert event["attrs"]["xs"] == [1, 2]
        assert isinstance(event["attrs"]["obj"], str)


class TestBoundedBuffer:
    def test_overflow_drops_and_counts(self):
        log = EventLog(capacity=2, clock=_fixed_clock())
        for i in range(5):
            log.emit("k", "n", i=i)
        assert len(log) == 2
        assert log.dropped == 3
        assert log.snapshot()["dropped"] == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestFlush:
    def test_flush_appends_and_is_incremental(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path, clock=_fixed_clock())
        log.emit("a", "one")
        assert log.flush() == 1
        log.emit("a", "two")
        assert log.flush() == 1  # only the pending event
        assert log.flush() == 0
        events, problems = read_events(path)
        assert problems == []
        assert [e["name"] for e in events] == ["one", "two"]

    def test_flush_without_path_is_noop(self):
        log = EventLog(clock=_fixed_clock())
        log.emit("a", "b")
        assert log.flush() == 0


class TestParse:
    def _payload(self, n=3):
        log = EventLog(clock=_fixed_clock())
        for i in range(n):
            log.emit("k", f"e{i}")
        return "".join(log.to_lines())

    def test_roundtrip(self):
        events, problems = parse_events(self._payload())
        assert problems == []
        assert [e["seq"] for e in events] == [1, 2, 3]

    def test_torn_final_line_strict_vs_lenient(self):
        payload = self._payload() + '{"seq":4,"ts":1,"kind"'  # crash mid-append
        events, problems = parse_events(payload, strict=True)
        assert len(events) == 3 and problems
        events, problems = parse_events(payload, strict=False)
        assert len(events) == 3 and problems == []

    def test_torn_middle_line_is_a_problem_even_lenient(self):
        lines = self._payload().splitlines(keepends=True)
        payload = lines[0] + '{"garbage"\n' + lines[2]
        _, problems = parse_events(payload, strict=False)
        assert problems

    def test_schema_violations_reported(self):
        payload = '{"seq":"x","ts":1,"kind":"k","name":"n","attrs":{}}\n'
        events, problems = parse_events(payload)
        assert events == [] and "seq" in problems[0]

    def test_event_problems_on_non_dict(self):
        assert event_problems([1]) == ["event is not an object"]


class TestNullAndCurrent:
    def test_default_is_null(self):
        assert current_events() is NULL_EVENTS
        assert not NULL_EVENTS.enabled

    def test_null_is_inert(self):
        log = NullEventLog()
        log.emit("k", "n", x=1)
        assert len(log) == 0 and log.to_lines() == [] and log.flush() == 0

    def test_use_events_restores(self):
        log = EventLog(clock=_fixed_clock())
        before = current_events()
        with use_events(log):
            assert current_events() is log
            current_events().emit("k", "seen")
        assert current_events() is before
        assert len(log) == 1
