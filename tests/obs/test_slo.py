"""Unit tests for declarative SLO budgets and per-epoch reports."""

import pytest

from repro.obs import (
    Budget,
    MetricsRegistry,
    SloSpec,
    Tracer,
    default_service_slo,
    evaluate_slo,
    slo_report_problems,
    stage_seconds_from_trace,
    validate_slo_report,
)


class TestBudget:
    def test_verdict_ladder(self):
        budget = Budget(warn=1.0, breach=5.0)
        assert budget.verdict(0.5) == "pass"
        assert budget.verdict(1.0) == "pass"  # inclusive upper bound
        assert budget.verdict(3.0) == "warn"
        assert budget.verdict(5.0) == "warn"
        assert budget.verdict(5.1) == "breach"

    def test_no_data_passes(self):
        assert Budget(warn=1, breach=2).verdict(None) == "pass"

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(warn=5, breach=1)
        with pytest.raises(ValueError):
            Budget(warn=-1, breach=1)


class TestStageSeconds:
    def test_sums_over_forest(self):
        tracer = Tracer()
        with tracer.span("epoch"):
            with tracer.span("census"):
                pass
            with tracer.span("census"):
                pass
        totals = stage_seconds_from_trace(tracer)
        assert set(totals) == {"epoch", "census"}
        assert totals["census"] >= 0.0

    def test_none_and_dicts(self):
        assert stage_seconds_from_trace(None) == {}
        roots = [
            {
                "name": "a",
                "inclusive_s": 2.0,
                "children": [{"name": "b", "inclusive_s": 0.5, "children": []}],
            }
        ]
        assert stage_seconds_from_trace(roots) == {"a": 2.0, "b": 0.5}


class TestEvaluate:
    def _spec(self) -> SloSpec:
        return SloSpec(
            stage_seconds={"census": Budget(1.0, 10.0)},
            probe_failure_rate=Budget(0.1, 0.5),
            quarantine_fraction=Budget(0.25, 0.5),
            degraded_target_fraction=Budget(0.2, 0.5),
        )

    def test_all_pass_on_good_epoch(self):
        registry = MetricsRegistry()
        registry.counter("vps_ok").inc(20)
        report = evaluate_slo(
            self._spec(),
            stage_seconds={"census": 0.5},
            metrics_snapshot=registry.snapshot(),
            observations={"n_vps": 20, "degraded_target_fraction": 0.0},
        )
        assert report.verdict == "pass"
        assert {o.name for o in report.objectives} == {
            "stage_seconds:census",
            "probe_failure_rate",
            "quarantine_fraction",
            "degraded_target_fraction",
        }

    def test_overall_is_worst_objective(self):
        registry = MetricsRegistry()
        registry.counter("vps_ok").inc(1)
        registry.counter("vps_failed").inc(9)  # 90% failure: breach
        report = evaluate_slo(
            self._spec(),
            stage_seconds={"census": 2.0},  # warn
            metrics_snapshot=registry.snapshot(),
        )
        by_name = {o.name: o.verdict for o in report.objectives}
        assert by_name["stage_seconds:census"] == "warn"
        assert by_name["probe_failure_rate"] == "breach"
        assert report.verdict == "breach"

    def test_quarantine_fraction_uses_n_vps(self):
        registry = MetricsRegistry()
        registry.gauge("vps_quarantined").set(10)
        report = evaluate_slo(
            self._spec(), metrics_snapshot=registry.snapshot(), observations={"n_vps": 20}
        )
        (obj,) = [o for o in report.objectives if o.name == "quarantine_fraction"]
        assert obj.value == pytest.approx(0.5)
        assert obj.verdict == "warn"

    def test_observation_override_wins(self):
        report = evaluate_slo(
            self._spec(),
            stage_seconds={"census": 0.1},
            observations={"stage_seconds:census": 99.0},
        )
        (obj,) = [o for o in report.objectives if o.name == "stage_seconds:census"]
        assert obj.verdict == "breach"

    def test_missing_data_passes(self):
        report = evaluate_slo(self._spec())
        assert report.verdict == "pass"
        assert all(o.value is None for o in report.objectives)


class TestReportSchema:
    def test_roundtrip_validates(self):
        report = evaluate_slo(default_service_slo(), stage_seconds={"census": 1.0})
        doc = report.to_doc()
        assert slo_report_problems(doc) == []
        validate_slo_report(doc)

    def test_problems_detected(self):
        doc = evaluate_slo(default_service_slo()).to_doc()
        doc["verdict"] = "breach"  # inconsistent with all-pass objectives
        assert any("worst" in p for p in slo_report_problems(doc))
        assert slo_report_problems("nope") != []
        bad = {"kind": "slo-report", "verdict": "pass", "objectives": [{"name": ""}]}
        assert slo_report_problems(bad) != []
        with pytest.raises(ValueError):
            validate_slo_report(bad)

    def test_default_spec_shape(self):
        spec = default_service_slo()
        assert set(spec.stage_seconds) == {"census", "analysis"}
        assert spec.probe_failure_rate is not None
