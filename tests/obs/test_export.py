"""Unit tests for the Prometheus and Chrome-trace exporters."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace_problems,
    prometheus_problems,
    to_chrome_trace,
    to_prometheus,
)


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("probes_sent").inc(42)
    registry.gauge("vps_quarantined").set(3)
    h = registry.histogram("scan_hours", buckets=(1, 5, 10))
    for v in (0.5, 2, 7, 100):
        h.observe(v)
    return registry


def _tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("service_epoch", epoch=2):
        with tracer.span("census"):
            with tracer.span("vp_scan"):
                pass
        with tracer.span("analysis"):
            pass
    return tracer


class TestPrometheus:
    def test_output_validates(self):
        text = to_prometheus(_registry().snapshot())
        assert prometheus_problems(text) == []

    def test_families_and_conventions(self):
        text = to_prometheus(_registry().snapshot())
        assert "# TYPE repro_probes_sent_total counter" in text
        assert "repro_probes_sent_total 42" in text
        assert "# TYPE repro_vps_quarantined gauge" in text
        assert "# TYPE repro_scan_hours histogram" in text
        assert 'repro_scan_hours_bucket{le="+Inf"} 4' in text
        assert "repro_scan_hours_count 4" in text

    def test_buckets_are_cumulative(self):
        text = to_prometheus(_registry().snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_scan_hours_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_empty_snapshot_is_empty_text(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == ""
        assert prometheus_problems("") == []

    def test_weird_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("stage seconds:vp-scan").inc()
        text = to_prometheus(registry.snapshot())
        assert prometheus_problems(text) == []

    def test_validator_catches_breakage(self):
        assert prometheus_problems("not a metric line at all!") != []
        assert prometheus_problems("m_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\n")
        # Bucket series without +Inf is flagged.
        assert any(
            "+Inf" in p for p in prometheus_problems('m_bucket{le="1"} 5\n')
        )


class TestChromeTrace:
    def test_output_validates_and_nests(self):
        doc = to_chrome_trace(_tracer())
        assert chrome_trace_problems(doc) == []
        assert chrome_trace_problems(json.dumps(doc)) == []

    def test_structure(self):
        doc = to_chrome_trace(_tracer(), process_name="census")
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "census"
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert names == ["service_epoch", "census", "vp_scan", "analysis"]
        epoch_span = events[1]
        assert epoch_span["args"]["epoch"] == 2

    def test_accepts_span_dicts(self):
        dicts = _tracer().to_dicts()
        doc = to_chrome_trace(dicts)
        assert chrome_trace_problems(doc) == []
        assert sum(e["ph"] == "X" for e in doc["traceEvents"]) == 4

    def test_children_fit_inside_parent(self):
        doc = to_chrome_trace(_tracer())
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        parent = spans["service_epoch"]
        for child in ("census", "analysis"):
            assert spans[child]["ts"] >= parent["ts"] - 1e-6
            assert (
                spans[child]["ts"] + spans[child]["dur"]
                <= parent["ts"] + parent["dur"] + 1e-6
            )

    def test_validator_catches_breakage(self):
        assert chrome_trace_problems("{broken json") != []
        assert chrome_trace_problems({"nope": []}) != []
        overlapping = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
                {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1},
            ]
        }
        assert any("overlap" in p for p in chrome_trace_problems(overlapping))
        negative = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1}
            ]
        }
        assert any("negative" in p for p in chrome_trace_problems(negative))
