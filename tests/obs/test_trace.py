"""Unit tests for the tracing layer (spans, null tracer, rendering)."""

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Stopwatch,
    Tracer,
    current_tracer,
    iter_span_names,
    render_trace,
    set_tracer,
    tree_shape,
    use_tracer,
)


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.roots] == ["a"]
        assert [s.name for s in tracer.roots[0].children] == ["b", "c"]
        assert tracer.n_spans == 3

    def test_inclusive_and_exclusive_durations(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        # Clock ticks: outer@1, inner@2, inner-end@3, outer-end@4.
        assert inner.inclusive_s == pytest.approx(1.0)
        assert outer.inclusive_s == pytest.approx(3.0)
        assert outer.exclusive_s == pytest.approx(2.0)

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", census_id=3) as span:
            span.set("status", "ok")
        assert tracer.roots[0].attrs == {"census_id": 3, "status": "ok"}

    def test_exception_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.roots[0].finished
        # Stack unwound: the next span is a sibling, not a child.
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["doomed", "after"]

    def test_to_dicts_serialization(self):
        tracer = Tracer()
        with tracer.span("root", k="v"):
            with tracer.span("leaf"):
                pass
        (doc,) = tracer.to_dicts()
        assert doc["name"] == "root"
        assert doc["attrs"] == {"k": "v"}
        assert doc["inclusive_s"] >= doc["children"][0]["inclusive_s"]


class TestNullTracer:
    def test_span_is_noop(self):
        tracer = NullTracer()
        with tracer.span("whatever", attr=1) as span:
            span.set("k", "v")
        assert tracer.roots == ()
        assert tracer.n_spans == 0
        assert tracer.to_dicts() == []

    def test_null_span_is_shared(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")


class TestCurrentTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_restores(self):
        tracer = Tracer()
        before = current_tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is before

    def test_use_tracer_restores_on_error(self):
        tracer = Tracer()
        before = current_tracer()
        with pytest.raises(ValueError):
            with use_tracer(tracer):
                raise ValueError
        assert current_tracer() is before

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            set_tracer(previous)


class TestRendering:
    def _forest(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("census", census_id=1):
            for name in ("vp-a", "vp-b", "vp-c"):
                with tracer.span("vp_scan", vp=name):
                    pass
        return tracer

    def test_render_aggregates_repeated_siblings(self):
        out = render_trace(self._forest())
        assert "census" in out
        assert "vp_scan ×3" in out
        assert "vp-a" not in out  # aggregated lines drop per-span attrs

    def test_render_single_span_shows_attrs(self):
        out = render_trace(self._forest())
        assert "census_id=1" in out

    def test_render_empty(self):
        assert render_trace(Tracer()) == "(no spans recorded)"
        assert render_trace(NULL_TRACER) == "(no spans recorded)"

    def test_tree_shape(self):
        a, b = self._forest(), self._forest()
        assert tree_shape(a) == tree_shape(b)
        assert tree_shape(a) == (
            ("census", (("vp_scan", ()), ("vp_scan", ()), ("vp_scan", ()))),
        )

    def test_iter_span_names_depth_first(self):
        assert list(iter_span_names(self._forest())) == [
            "census", "vp_scan", "vp_scan", "vp_scan",
        ]


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            pass
        assert sw.elapsed_s >= 0.0

    def test_unstarted_is_zero(self):
        assert Stopwatch().elapsed_s == 0.0
