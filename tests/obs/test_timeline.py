"""Unit tests for the longitudinal timeline and regression sentinel."""

import pytest

from repro.obs import Timeline, detect_regressions, render_timeline
from repro.obs.timeline import DESCRIPTIVE_SERIES, Regression


def _series(values, name="m"):
    return {name: [(i, float(v)) for i, v in enumerate(values)]}


class TestDetect:
    def test_flat_series_is_quiet(self):
        assert detect_regressions(_series([1.0] * 10)) == []

    def test_spike_is_flagged(self):
        regs = detect_regressions(_series([1.0, 1.01, 0.99, 1.0, 100.0]))
        assert len(regs) == 1
        reg = regs[0]
        assert reg.metric == "m" and reg.epoch == 4
        assert reg.score > 4.0
        assert "epoch 4" in reg.describe()

    def test_needs_min_history(self):
        # A spike with only two prior points is not judged.
        assert detect_regressions(_series([1.0, 1.0, 100.0])) == []
        assert detect_regressions(_series([1.0, 1.0, 1.0, 100.0])) != []

    def test_decreases_never_flagged(self):
        assert detect_regressions(_series([100.0, 101.0, 99.0, 100.0, 0.001])) == []

    def test_small_jitter_below_floor_is_quiet(self):
        # MAD is 0 on a constant history; the relative floor must absorb
        # a 2% wiggle.
        assert detect_regressions(_series([1.0, 1.0, 1.0, 1.0, 1.02])) == []

    def test_wall_clock_series_get_larger_floor(self):
        # A 2x jump on deterministic series is a regression...
        assert detect_regressions(_series([1, 1, 1, 1, 2.0], name="churn")) != []
        # ...but the same jump on a stage-seconds series is tolerated
        # (noisy CI machines).
        assert (
            detect_regressions(_series([1, 1, 1, 1, 2.0], name="stage_seconds:census"))
            == []
        )
        # An order-of-magnitude wall-clock jump still fires.
        assert (
            detect_regressions(_series([1, 1, 1, 1, 20.0], name="stage_seconds:census"))
            != []
        )

    def test_descriptive_series_excluded_by_default(self):
        for name in DESCRIPTIVE_SERIES:
            assert detect_regressions(_series([1, 1, 1, 1, 100.0], name=name)) == []
        # ...unless explicitly included.
        assert (
            detect_regressions(
                _series([1, 1, 1, 1, 100.0], name="n_anycast"), include=["n_anycast"]
            )
            != []
        )

    def test_window_bounds_history(self):
        # Early huge values roll out of an 8-point window: the detector
        # judges against recent history only.
        values = [1000.0] * 3 + [1.0] * 9 + [5.0]
        regs = detect_regressions(_series(values))
        assert any(r.epoch == len(values) - 1 for r in regs)

    def test_outlier_history_does_not_inflate_baseline(self):
        # One historical spike must not mask a new one (median, not mean).
        values = [1.0, 1.0, 50.0, 1.0, 1.0, 1.0, 60.0]
        regs = detect_regressions(_series(values))
        assert any(r.epoch == 6 for r in regs)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            detect_regressions(_series([1.0]), k=0)
        with pytest.raises(ValueError):
            detect_regressions(_series([1.0]), min_history=0)

    def test_accepts_timeline_object(self):
        timeline = Timeline(
            epochs=[0, 1, 2, 3, 4],
            series=_series([1.0, 1.0, 1.0, 1.0, 10.0]),
            verdicts={},
        )
        assert detect_regressions(timeline) != []


class TestRender:
    def test_render_lines(self):
        timeline = Timeline(
            epochs=[0, 1, 2, 3, 4],
            series=_series([1.0, 1.0, 1.0, 1.0, 10.0]),
            verdicts={0: "pass", 4: "warn"},
        )
        regs = detect_regressions(timeline)
        lines = render_timeline(timeline, regs)
        assert lines[0] == "epochs: 5"
        assert any("[REGRESSION]" in line for line in lines)
        assert any("slo verdicts" in line for line in lines)
        assert any(line.strip().startswith("!") for line in lines)

    def test_render_quiet_timeline(self):
        timeline = Timeline(epochs=[0], series=_series([1.0]), verdicts={})
        lines = render_timeline(timeline, [])
        assert not any("[REGRESSION]" in line for line in lines)


class TestRegressionDataclass:
    def test_describe(self):
        reg = Regression(
            metric="x", epoch=3, value=10.0, median=1.0, scale=0.1, score=90.0
        )
        assert "x" in reg.describe() and "epoch 3" in reg.describe()
