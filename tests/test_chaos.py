"""End-to-end chaos tests: poisoned pipelines must degrade, not die.

The resilience contract has two halves, both exercised here:

* **neutrality** — with the resilience layer on and clean inputs, every
  scientific output is byte-identical to the bare baseline;
* **graceful degradation** — under every poison mode of the chaos
  harness the study completes without an unhandled exception, the
  quarantine log is non-empty and reason-coded, the degradation report
  admits the damage, and the manifest validates.
"""

import numpy as np
import pytest

from repro.internet.topology import InternetConfig
from repro.measurement.faults import FaultPlan, PoisonKind, PoisonPlan
from repro.obs import manifest_problems
from repro.resilience import ResiliencePolicy, StageFailed
from repro.workflow import CensusStudy, StudyConfig


def _study(resilience=None, poison=None, fault_plan=None, seed=3):
    return CensusStudy(
        StudyConfig(
            internet=InternetConfig(
                seed=seed, n_unicast_slash24=400, tail_deployments=15
            ),
            n_vantage_points=40,
            n_censuses=2,
            fault_plan=fault_plan or FaultPlan(),
            resilience=resilience,
            poison=poison,
        )
    )


def _fingerprint(study):
    """Everything scientific, byte-exact."""
    analysis = study.analysis
    matrix = study.matrix
    return (
        matrix.rtt_ms.tobytes(),
        matrix.sample_count.tobytes(),
        sorted(analysis.anycast_prefixes),
        {p: r.city_names for p, r in analysis.results.items()},
        {p: r.replica_count for p, r in analysis.results.items()},
        [(r.label, r.ip24, r.replicas) for r in study.glance_table()],
    )


@pytest.fixture(scope="module")
def baseline():
    study = _study()
    study.characterization
    return study


class TestNeutrality:
    def test_resilience_on_clean_data_is_byte_identical(self, baseline):
        guarded = _study(resilience=ResiliencePolicy())
        assert _fingerprint(guarded) == _fingerprint(baseline)

    def test_clean_run_quarantines_nothing(self):
        guarded = _study(resilience=ResiliencePolicy())
        guarded.characterization
        assert guarded.quarantine.total == 0
        report = guarded.degradation_report
        assert not report.degraded
        assert all(o.status == "ok" for o in report.stages.values())

    def test_clean_run_confidence_is_all_full(self):
        guarded = _study(resilience=ResiliencePolicy())
        verdicts = set(guarded.analysis.confidence.values())
        assert verdicts == {"full"}

    def test_resilience_off_has_no_supervisor(self, baseline):
        assert baseline.supervisor is None
        assert baseline.degradation_report is None
        assert baseline.quarantine.total == 0


class TestChaosMatrix:
    """Each poison mode: complete, quarantine, degrade, valid manifest."""

    @pytest.mark.parametrize("kind", list(PoisonKind))
    def test_poison_mode_degrades_not_crashes(self, kind):
        study = _study(
            resilience=ResiliencePolicy(), poison=PoisonPlan.single(kind, 0.25)
        )
        study.characterization  # full pipeline, no unhandled exception
        study.hitlist
        assert study.quarantine.total > 0
        report = study.degradation_report
        assert report.degraded
        assert report.quarantined_total == study.quarantine.total
        problems = manifest_problems(study.manifest.to_dict())
        assert problems == []

    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9])
    def test_sample_loss_sweep(self, fraction, baseline):
        study = _study(
            resilience=ResiliencePolicy(),
            poison=PoisonPlan.single(PoisonKind.DROP_SAMPLES, fraction),
        )
        study.characterization
        assert study.quarantine.by_reason() == {
            "lost_sample": study.quarantine.total
        }
        assert study.degradation_report.degraded
        # Heavier loss can only shrink the detection set, never grow it.
        assert study.analysis.n_anycast <= baseline.analysis.n_anycast

    def test_quarantine_reasons_match_poison_mode(self):
        reasons = {
            PoisonKind.NAN_RTT: "nan_rtt",
            PoisonKind.SUPERLUMINAL_RTT: "superluminal_rtt",
            PoisonKind.CORRUPT_VP_COORDS: "impossible_vp_coords",
            PoisonKind.DROP_SAMPLES: "lost_sample",
        }
        for kind, reason in reasons.items():
            study = _study(
                resilience=ResiliencePolicy(), poison=PoisonPlan.single(kind, 0.3)
            )
            study.matrix
            assert reason in study.quarantine.by_reason(), kind

    def test_poisoning_is_deterministic(self):
        plan = PoisonPlan.single(PoisonKind.NAN_RTT, 0.3, seed=7)
        one = _study(resilience=ResiliencePolicy(), poison=plan)
        two = _study(resilience=ResiliencePolicy(), poison=plan)
        assert _fingerprint(one) == _fingerprint(two)
        assert one.quarantine.to_dicts() == two.quarantine.to_dicts()


class TestFullyPoisonedStage:
    def test_all_vp_coords_corrupt_degrades_to_insufficient(self):
        study = _study(
            resilience=ResiliencePolicy(),
            poison=PoisonPlan.single(PoisonKind.CORRUPT_VP_COORDS, 1.0),
        )
        study.characterization  # renders empty tables, does not raise
        assert study.matrix.n_vps == 0
        assert study.analysis.n_anycast == 0
        verdicts = set(study.analysis.confidence.values())
        assert verdicts == {"insufficient"}
        report = study.degradation_report
        assert report.degraded
        assert report.confidence["insufficient"] == study.matrix.n_targets
        for row in study.glance_table():
            assert row.ip24 == 0

    def test_all_rtts_nan_yields_empty_but_valid_study(self):
        study = _study(
            resilience=ResiliencePolicy(),
            poison=PoisonPlan.single(PoisonKind.NAN_RTT, 1.0),
        )
        study.characterization
        assert study.matrix.n_targets == 0
        assert study.analysis.n_anycast == 0
        assert study.degradation_report.degraded
        assert manifest_problems(study.manifest.to_dict()) == []


class TestStrictPolicy:
    def test_strict_fails_fast_on_poisoned_hitlist(self):
        study = _study(
            resilience=ResiliencePolicy.strict(),
            poison=PoisonPlan.single(PoisonKind.MALFORMED_HITLIST, 0.25),
        )
        with pytest.raises(StageFailed) as info:
            study.hitlist
        assert info.value.stage == "hitlist"

    def test_strict_fails_fast_on_poisoned_records(self):
        study = _study(
            resilience=ResiliencePolicy.strict(),
            poison=PoisonPlan.single(PoisonKind.NAN_RTT, 0.25),
        )
        with pytest.raises(StageFailed) as info:
            study.matrix
        assert info.value.stage == "combine"

    def test_strict_on_clean_data_is_byte_identical(self, baseline):
        strict = _study(resilience=ResiliencePolicy.strict())
        assert _fingerprint(strict) == _fingerprint(baseline)


class TestChaosWithNodeFaults:
    """Node faults (PR 1) and data poisoning compose under supervision."""

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(crash_prob=0.3, seed=11),
            FaultPlan(hang_prob=0.3, seed=11),
            FaultPlan(corrupt_prob=0.3, seed=11),
            FaultPlan(flap_prob=0.3, seed=11),
        ],
        ids=["crash", "hang", "corrupt", "flap"],
    )
    def test_fault_modes_complete_under_supervision(self, plan):
        study = _study(resilience=ResiliencePolicy(), fault_plan=plan)
        study.characterization
        report = study.degradation_report
        assert report is not None
        assert manifest_problems(study.manifest.to_dict()) == []

    def test_faults_plus_poison_still_degrade_gracefully(self):
        study = _study(
            resilience=ResiliencePolicy(),
            fault_plan=FaultPlan(crash_prob=0.3, corrupt_prob=0.2, seed=11),
            poison=PoisonPlan.single(PoisonKind.NAN_RTT, 0.3),
        )
        study.characterization
        assert study.quarantine.total > 0
        assert study.degradation_report.degraded


class TestManifestIntegration:
    def test_manifest_carries_quarantine_and_degradation(self):
        study = _study(
            resilience=ResiliencePolicy(),
            poison=PoisonPlan.single(PoisonKind.NAN_RTT, 0.3),
        )
        study.characterization
        doc = study.manifest.to_dict()
        assert manifest_problems(doc) == []
        assert any(b["reason"] == "nan_rtt" for b in doc["quarantine"])
        assert doc["degradation"]["degraded"] is True
        assert doc["degradation"]["quarantined_total"] == study.quarantine.total
        assert doc["degradation"]["stages"]["combine"]["status"] == "degraded"

    def test_resilience_off_manifest_omits_sections(self, baseline):
        doc = baseline.manifest.to_dict()
        assert "quarantine" not in doc
        assert "degradation" not in doc
        assert manifest_problems(doc) == []

    def test_written_manifest_round_trips(self, tmp_path):
        import json

        study = _study(
            resilience=ResiliencePolicy(),
            poison=PoisonPlan.single(PoisonKind.DROP_SAMPLES, 0.5),
        )
        study.characterization
        path = study.manifest.write(tmp_path / "chaos.json")
        doc = json.loads(path.read_text())
        assert manifest_problems(doc) == []
        assert doc["degradation"]["degraded"] is True

    def test_confidence_tally_sums_to_target_count(self):
        study = _study(
            resilience=ResiliencePolicy(),
            poison=PoisonPlan.single(PoisonKind.DROP_SAMPLES, 0.5),
        )
        study.characterization
        tally = study.degradation_report.confidence
        assert sum(tally.values()) == study.matrix.n_targets
        assert tally.get("degraded", 0) + tally.get("insufficient", 0) > 0
