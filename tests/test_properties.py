"""Cross-module invariants and failure injection.

These tests exercise whole-pipeline properties that no single module owns:
detection soundness under arbitrary noise, conservativeness of enumeration
under fuzzed deployments, and graceful behaviour under degenerate inputs
(empty universes, dead platforms, all-degraded censuses).
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census.analysis import analyze_matrix
from repro.census.combine import combine_censuses, matrix_from_census
from repro.core.igreedy import IGreedyConfig, igreedy
from repro.core.samples import LatencySample
from repro.geo.cities import default_city_db
from repro.geo.coords import GeoPoint
from repro.geo.disks import FIBER_SPEED_KM_PER_MS
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform
from repro.measurement.recordio import CensusRecords


class TestDetectionSoundnessFuzz:
    """No false positives, whatever the world looks like."""

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_fuzzed_worlds_never_false_positive(self, seed, city_db):
        internet = SyntheticInternet(
            InternetConfig(seed=seed, n_unicast_slash24=250, tail_deployments=10),
            city_db=city_db,
        )
        platform = planetlab_platform(count=40, seed=seed, city_db=city_db)
        campaign = CensusCampaign(internet, platform, seed=seed)
        census = campaign.run_census(availability=1.0)
        analysis = analyze_matrix(matrix_from_census(census), city_db=city_db)
        truly = {int(p) for p, a in zip(internet.prefixes, internet.is_anycast) if a}
        assert set(analysis.anycast_prefixes) <= truly

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=1.0, max_value=2.0),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_enumeration_never_exceeds_sites(self, n_sites, stretch, seed):
        """Property: strict iGreedy counts <= true site count, for any
        deployment geometry and noise level."""
        db = default_city_db()
        rng = np.random.default_rng(seed)
        cities = list(db.cities)
        sites = [cities[i] for i in rng.choice(len(cities), n_sites, replace=False)]
        vps = [cities[i] for i in rng.choice(len(cities), 25, replace=False)]
        samples = []
        for vp in vps:
            nearest = min(sites, key=lambda s: vp.location.distance_km(s.location))
            distance = vp.location.distance_km(nearest.location)
            rtt = 2.0 * distance * stretch / FIBER_SPEED_KM_PER_MS
            rtt += float(rng.exponential(3.0))
            samples.append(LatencySample(f"{vp.name},{vp.country}", vp.location, rtt))
        result = igreedy(samples, city_db=db)
        assert result.replica_count <= n_sites

    def test_sample_order_does_not_change_verdict(self, city_db):
        db = city_db
        sites = [db.get("New York"), db.get("Tokyo"), db.get("Frankfurt")]
        vps = [db.get(n) for n in ("Paris", "Chicago", "Seoul", "Sydney", "Madrid")]
        samples = []
        for vp in vps:
            nearest = min(sites, key=lambda s: vp.location.distance_km(s.location))
            rtt = 2.0 * vp.location.distance_km(nearest.location) * 1.2 / FIBER_SPEED_KM_PER_MS + 1
            samples.append(LatencySample(vp.name, vp.location, rtt))
        forward = igreedy(samples, city_db=db)
        backward = igreedy(list(reversed(samples)), city_db=db)
        assert forward.is_anycast == backward.is_anycast
        assert forward.city_names == backward.city_names


class TestRecordIoFuzz:
    @given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_binary_roundtrip_any_content(self, n, seed):
        rng = np.random.default_rng(seed)
        flags = rng.choice(np.array([0, -13, -10, -9, 1], dtype=np.int8), size=n)
        rtt = np.where(flags == 0, rng.uniform(0.01, 4000.0, n), np.nan).astype(np.float32)
        records = CensusRecords(
            census_id=int(rng.integers(0, 2**16)),
            vp_index=rng.integers(0, 2**16, n).astype(np.uint16),
            prefix=rng.integers(0, 2**24, n).astype(np.uint32),
            timestamp_ms=np.sort(rng.uniform(0, 1e9, n)),
            rtt_ms=rtt,
            flag=flags,
        )
        buf = io.BytesIO()
        records.write_binary(buf)
        buf.seek(0)
        back = CensusRecords.read_binary(buf)
        assert np.array_equal(back.vp_index, records.vp_index)
        assert np.array_equal(back.prefix, records.prefix)
        assert np.array_equal(back.flag, records.flag)
        mask = flags == 0
        assert np.allclose(back.rtt_ms[mask], records.rtt_ms[mask], atol=0.006)


class TestCombinationProperties:
    def test_combination_idempotent(self, tiny_census):
        once = combine_censuses([tiny_census])
        twice = combine_censuses([tiny_census, tiny_census])
        both_nan = np.isnan(once.rtt_ms) & np.isnan(twice.rtt_ms)
        assert (both_nan | np.isclose(once.rtt_ms, twice.rtt_ms)).all()

    def test_combination_order_invariant(self, tiny_campaign):
        c1 = tiny_campaign.run_census(availability=0.9)
        c2 = tiny_campaign.run_census(availability=0.9)
        ab = combine_censuses([c1, c2])
        ba = combine_censuses([c2, c1])
        assert ab.n_targets == ba.n_targets
        # Same cells, same minima (column order may differ).
        cols = [ba.vp_names.index(n) for n in ab.vp_names]
        a, b = ab.rtt_ms, ba.rtt_ms[:, cols]
        rows = np.searchsorted(ba.prefixes, ab.prefixes)
        b = ba.rtt_ms[rows][:, cols]
        both_nan = np.isnan(a) & np.isnan(b)
        assert (both_nan | np.isclose(a, b)).all()


class TestDegenerateInputs:
    def test_empty_unicast_world(self, city_db):
        from repro.internet.catalog import TOP100_ENTRIES

        internet = SyntheticInternet(
            InternetConfig(seed=1, n_unicast_slash24=0, tail_deployments=0),
            catalog=[TOP100_ENTRIES[0]],
            city_db=city_db,
        )
        assert internet.n_targets == internet.n_anycast_slash24 == 328

    def test_single_vp_cannot_detect(self, city_db):
        internet = SyntheticInternet(
            InternetConfig(seed=2, n_unicast_slash24=50, tail_deployments=2),
            city_db=city_db,
        )
        platform = planetlab_platform(count=1, seed=3, city_db=city_db)
        campaign = CensusCampaign(internet, platform, seed=4)
        census = campaign.run_census(availability=1.0)
        analysis = analyze_matrix(matrix_from_census(census), city_db=city_db)
        assert analysis.n_anycast == 0  # one disk can never violate

    def test_all_degraded_census_still_sound(self, city_db):
        internet = SyntheticInternet(
            InternetConfig(seed=5, n_unicast_slash24=100, tail_deployments=5),
            city_db=city_db,
        )
        platform = planetlab_platform(count=30, seed=6, city_db=city_db)
        campaign = CensusCampaign(internet, platform, seed=7, degraded_fraction=1.0)
        census = campaign.run_census(availability=1.0)
        analysis = analyze_matrix(matrix_from_census(census), city_db=city_db)
        truly = {int(p) for p, a in zip(internet.prefixes, internet.is_anycast) if a}
        # Soundness holds even when every node is degraded (RTT inflation
        # only shrinks recall, never creates violations).
        assert set(analysis.anycast_prefixes) <= truly

    def test_igreedy_identical_samples(self, city_db):
        paris = city_db.get("Paris")
        samples = [LatencySample("a", paris.location, 5.0)] * 4
        result = igreedy(samples, city_db=city_db)
        assert not result.is_anycast

    def test_igreedy_zero_rtt(self, city_db):
        paris, tokyo = city_db.get("Paris"), city_db.get("Tokyo")
        samples = [
            LatencySample("a", paris.location, 0.0),
            LatencySample("b", tokyo.location, 0.0),
        ]
        result = igreedy(samples, city_db=city_db)
        assert result.is_anycast
        assert result.replica_count == 2
