"""The parallel engine's hard invariant: bytes never depend on workers.

Property-style coverage of the determinism contract: a census executed
on the supervised pool — any worker count, shuffled dispatch order,
VP-level faults active, workers killed or wedged mid-shard — produces
output byte-identical to the classic serial loop.  Target-sharded mode
(``n_target_shards > 1``) is its own deterministic byte stream, checked
against the in-process reference executor the same way.
"""

import io

import numpy as np
import pytest

from repro.exec import ExecutionPolicy
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign, CensusInterrupted
from repro.measurement.faults import FaultPlan, RetryPolicy, WorkerFaultPlan
from repro.measurement.platform import planetlab_platform


@pytest.fixture(scope="module")
def internet():
    return SyntheticInternet(
        InternetConfig(seed=7, n_unicast_slash24=300, tail_deployments=10)
    )


@pytest.fixture(scope="module")
def platform():
    return planetlab_platform(count=14, seed=11)


def fresh_campaign(internet, platform, executor=None, fault_plan=None, retry=None):
    campaign = CensusCampaign(
        internet,
        platform,
        seed=99,
        fault_plan=fault_plan,
        retry=retry,
        executor=executor,
    )
    campaign.run_precensus()
    return campaign


def census_bytes(census):
    sink = io.BytesIO()
    census.records.write_binary(sink)
    return sink.getvalue()


def assert_same_census(a, b):
    assert census_bytes(a) == census_bytes(b)
    assert a.records.checksum() == b.records.checksum()
    assert np.array_equal(a.vp_duration_hours, b.vp_duration_hours, equal_nan=True)
    assert np.array_equal(a.vp_drop_rate, b.vp_drop_rate, equal_nan=True)
    assert sorted(a.greylist.prefixes) == sorted(b.greylist.prefixes)
    assert a.health.n_vps_ok == b.health.n_vps_ok
    assert a.health.failed_vps == b.health.failed_vps
    assert a.health.faults_seen == b.health.faults_seen


@pytest.fixture(scope="module")
def serial_census(internet, platform):
    return fresh_campaign(internet, platform).run_census(availability=0.85)


class TestPoolMatchesSerial:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_any_worker_count_is_byte_identical(
        self, internet, platform, serial_census, workers
    ):
        # submit_seed shuffles dispatch order: determinism must not lean
        # on the canonical submission sequence.
        policy = ExecutionPolicy(workers=workers, submit_seed=1000 + workers)
        census = fresh_campaign(internet, platform, executor=policy).run_census(
            availability=0.85
        )
        assert_same_census(census, serial_census)
        assert census.health.execution["workers"] == workers

    def test_in_process_engine_is_byte_identical(
        self, internet, platform, serial_census
    ):
        policy = ExecutionPolicy(workers=0)
        census = fresh_campaign(internet, platform, executor=policy).run_census(
            availability=0.85
        )
        assert_same_census(census, serial_census)
        assert census.health.execution["in_process"]

    def test_shuffled_orders_agree_with_each_other(self, internet, platform):
        seen = set()
        for submit_seed in (None, 5, 77):
            policy = ExecutionPolicy(workers=3, submit_seed=submit_seed)
            census = fresh_campaign(internet, platform, executor=policy).run_census(
                availability=0.85
            )
            seen.add(census.records.checksum())
        assert len(seen) == 1


class TestPoolMatchesSerialUnderVpFaults:
    """The VP-level fault policy (retry, salvage, flap) must not notice
    which engine ran the scans underneath it."""

    FAULTS = FaultPlan.uniform(0.25, seed=17, flap_prob=0.15)

    def test_fault_supervision_is_engine_invariant(self, internet, platform):
        retry = RetryPolicy(timeout_hours=48.0, jitter=0.5)
        serial = fresh_campaign(
            internet, platform, fault_plan=self.FAULTS, retry=retry
        ).run_census(availability=0.85)
        assert serial.health.n_faults > 0, "fault plan injected nothing"
        pooled = fresh_campaign(
            internet,
            platform,
            fault_plan=self.FAULTS,
            retry=retry,
            executor=ExecutionPolicy(workers=3, submit_seed=9),
        ).run_census(availability=0.85)
        assert_same_census(pooled, serial)
        assert pooled.health.retries == serial.health.retries
        assert pooled.health.backoff_hours == pytest.approx(
            serial.health.backoff_hours
        )


class TestFaultyWorkersKeepBytesIdentical:
    def test_killed_worker_mid_census(self, internet, platform, serial_census):
        policy = ExecutionPolicy(
            workers=2,
            worker_faults=WorkerFaultPlan(dead_worker_ids=(0,)),
            liveness_timeout_s=2.0,
            poll_interval_s=0.02,
        )
        census = fresh_campaign(internet, platform, executor=policy).run_census(
            availability=0.85
        )
        assert census.health.execution["workers_lost"] == 1
        assert census.health.execution["reassignments"] >= 1
        assert_same_census(census, serial_census)

    def test_wedged_worker_mid_census(self, internet, platform, serial_census):
        policy = ExecutionPolicy(
            workers=2,
            worker_faults=WorkerFaultPlan(wedged_worker_ids=(0,), wedge_seconds=30.0),
            liveness_timeout_s=0.3,
            poll_interval_s=0.02,
        )
        census = fresh_campaign(internet, platform, executor=policy).run_census(
            availability=0.85
        )
        assert census.health.execution["workers_wedged"] == 1
        assert_same_census(census, serial_census)

    def test_probabilistic_worker_chaos(self, internet, platform, serial_census):
        policy = ExecutionPolicy(
            workers=3,
            worker_faults=WorkerFaultPlan(dead_prob=0.15, slow_prob=0.1, seed=3,
                                          slow_seconds=0.05),
            liveness_timeout_s=2.0,
            poll_interval_s=0.02,
        )
        census = fresh_campaign(internet, platform, executor=policy).run_census(
            availability=0.85
        )
        assert_same_census(census, serial_census)


class TestShardedMode:
    """Target sharding is a *different* deterministic stream: shards use
    their own keyed RNG, so the reference is the in-process engine run
    of the same plan, not the unsharded serial loop."""

    def test_pool_matches_in_process_reference(self, internet, platform):
        reference = fresh_campaign(
            internet, platform, executor=ExecutionPolicy(workers=0, n_target_shards=3)
        ).run_census(availability=0.85)
        for workers in (2, 4):
            census = fresh_campaign(
                internet,
                platform,
                executor=ExecutionPolicy(
                    workers=workers, n_target_shards=3, submit_seed=workers
                ),
            ).run_census(availability=0.85)
            assert_same_census(census, reference)

    def test_sharded_stream_differs_from_unsharded(
        self, internet, platform, serial_census
    ):
        sharded = fresh_campaign(
            internet, platform, executor=ExecutionPolicy(workers=0, n_target_shards=3)
        ).run_census(availability=0.85)
        # Different keyed jitter stream: reply draws differ, so both the
        # bytes and (slightly) the reply count diverge from unsharded.
        assert sharded.records.checksum() != serial_census.records.checksum()
        assert len(sharded.records) == pytest.approx(
            len(serial_census.records), rel=0.05
        )


class TestCheckpointResumeUnderPool:
    def test_interrupt_and_resume_is_bit_for_bit(
        self, internet, platform, serial_census, tmp_path
    ):
        journal_path = str(tmp_path / "census-001.journal")
        policy = ExecutionPolicy(workers=2, poll_interval_s=0.02)
        interrupted = fresh_campaign(internet, platform, executor=policy)
        with pytest.raises(CensusInterrupted) as exc:
            interrupted.run_census(
                availability=0.85, checkpoint=journal_path, abort_after_vps=3
            )
        assert exc.value.completed_vps == 3

        resumer = fresh_campaign(internet, platform, executor=policy)
        resumed = resumer.run_census(availability=0.85, checkpoint=journal_path)
        assert resumed.health.n_vps_resumed == 3
        assert_same_census(resumed, serial_census)

    def test_pool_journal_resumable_by_serial_loop(
        self, internet, platform, serial_census, tmp_path
    ):
        """A checkpoint written by the pool is a plain census journal:
        the serial path resumes it and produces the same bytes."""
        journal_path = str(tmp_path / "census-001.journal")
        policy = ExecutionPolicy(workers=2, poll_interval_s=0.02)
        with pytest.raises(CensusInterrupted):
            fresh_campaign(internet, platform, executor=policy).run_census(
                availability=0.85, checkpoint=journal_path, abort_after_vps=2
            )
        resumed = fresh_campaign(internet, platform).run_census(
            availability=0.85, checkpoint=journal_path
        )
        assert resumed.health.n_vps_resumed == 2
        assert_same_census(resumed, serial_census)


class TestSerialDrain:
    """Satellite: SIGINT during the serial census drains cleanly —
    journal stays valid and resume reproduces the uninterrupted bytes.
    The flag is driven synthetically (a countdown) so the test is
    deterministic; real signal wiring is covered in tests/exec."""

    class CountdownFlag:
        def __init__(self, polls):
            self.polls = polls
            self.signum = 2

        def __bool__(self):
            self.polls -= 1
            return self.polls < 0

    def test_drain_leaves_resumable_checkpoint(
        self, internet, platform, serial_census, tmp_path, monkeypatch
    ):
        import contextlib

        import repro.exec.signals as signals

        # The countdown fires only for the first census; the resume run
        # (still under the monkeypatch) gets an inert flag.
        flags = [self.CountdownFlag(polls=4)]

        @contextlib.contextmanager
        def fake_shutdown(*args, **kwargs):
            yield flags.pop(0) if flags else signals.ShutdownFlag()

        monkeypatch.setattr(signals, "graceful_shutdown", fake_shutdown)
        journal_path = str(tmp_path / "census-001.journal")
        campaign = fresh_campaign(internet, platform)
        with pytest.raises(CensusInterrupted) as exc:
            campaign.run_census(availability=0.85, checkpoint=journal_path)
        assert exc.value.completed_vps == 4

        resumed = fresh_campaign(internet, platform).run_census(
            availability=0.85, checkpoint=journal_path
        )
        assert resumed.health.n_vps_resumed == 4
        assert_same_census(resumed, serial_census)


class TestBackoffJitter:
    """Satellite: deterministic keyed backoff jitter."""

    def test_default_jitter_matches_classic_schedule(self):
        plain = RetryPolicy()
        assert plain.backoff_hours(2) == plain.backoff_hours(2, u=0.9)

    def test_jitter_scales_bounded(self):
        policy = RetryPolicy(jitter=0.5)
        base = policy.backoff_hours(3, u=0.0)
        top = policy.backoff_hours(3, u=1.0)
        assert top == pytest.approx(base * 1.5)

    def test_jittered_campaign_is_reproducible(self, internet, platform):
        faults = FaultPlan.uniform(0.3, seed=5)
        retry = RetryPolicy(timeout_hours=48.0, jitter=0.4)
        runs = [
            fresh_campaign(
                internet, platform, fault_plan=faults, retry=retry
            ).run_census(availability=0.85)
            for _ in range(2)
        ]
        assert runs[0].health.backoff_hours == runs[1].health.backoff_hours
        assert census_bytes(runs[0]) == census_bytes(runs[1])

    def test_jitter_changes_backoff_but_not_bytes(self, internet, platform):
        faults = FaultPlan.uniform(0.3, seed=5)
        plain = fresh_campaign(
            internet, platform, fault_plan=faults,
            retry=RetryPolicy(timeout_hours=48.0),
        ).run_census(availability=0.85)
        jittered = fresh_campaign(
            internet, platform, fault_plan=faults,
            retry=RetryPolicy(timeout_hours=48.0, jitter=0.4),
        ).run_census(availability=0.85)
        assert census_bytes(jittered) == census_bytes(plain)
        if plain.health.retries:
            assert jittered.health.backoff_hours > plain.health.backoff_hours
