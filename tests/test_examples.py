"""Smoke tests for the example scripts.

Each example must at least import cleanly (guarding against API drift);
the fastest one runs end to end.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_thirteen_examples_present(self):
        assert len(ALL_EXAMPLES) == 13
        assert "quickstart.py" in ALL_EXAMPLES
        assert "atlas_scale_census.py" in ALL_EXAMPLES
        assert "trace_study.py" in ALL_EXAMPLES
        assert "daily_census.py" in ALL_EXAMPLES
        assert "epoch_timeline.py" in ALL_EXAMPLES
        assert "vp_churn_service.py" in ALL_EXAMPLES
        assert "hijack_timeline.py" in ALL_EXAMPLES

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_cleanly(self, name):
        module = load_example(name)
        assert hasattr(module, "main")

    def test_detect_single_target_runs(self, capsys):
        module = load_example("detect_single_target.py")
        module.main()
        out = capsys.readouterr().out
        assert "anycast?  False" in out
        assert "anycast?        True" in out
        assert "replicas found: 3" in out
