"""Fast path ≡ reference path — the hard invariant of the analysis engine.

The array-native engine (:mod:`repro.census.fastpath`) must produce an
:class:`AnalysisResult` equivalent object-for-object to the reference
per-sample pipeline for *every* configuration and *any* worker count:
same prefixes, same detection verdicts and witnesses, same replica cities
in the same order, same confidences, same iteration counts.

The property suite drives both engines over randomly generated small
internets (random VP geometry, NaN holes, duplicated RTT values to
provoke tie-breaks) across the full configuration grid:
strict/iterative enumeration × population_exponent ∈ {0, 1} × max_rtt
on/off/aggressive.  Degenerate inputs (no samples, single samples,
everything filtered) and the parallel merge (workers ∈ {0, 1, 2, 4})
are covered by explicit cases.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.census.analysis import analyze_matrix  # noqa: E402
from repro.census.combine import RttMatrix  # noqa: E402
from repro.census.fastpath import analyze_matrix_fast  # noqa: E402
from repro.core.igreedy import IGreedyConfig  # noqa: E402
from repro.geo.cities import default_city_db  # noqa: E402
from repro.geo.coords import GeoPoint  # noqa: E402


def reference_config(**kwargs) -> IGreedyConfig:
    return IGreedyConfig(engine="reference", **kwargs)


def fast_config(**kwargs) -> IGreedyConfig:
    return IGreedyConfig(engine="fast", **kwargs)


def assert_equivalent(ref, fast) -> None:
    """Object-for-object equality of two AnalysisResults."""
    assert np.array_equal(ref.prefixes, fast.prefixes)
    assert np.array_equal(ref.anycast_mask, fast.anycast_mask)
    # Same targets in the same (canonical) order.
    assert list(ref.results.keys()) == list(fast.results.keys())
    for prefix, a in ref.results.items():
        b = fast.results[prefix]
        assert a.detection == b.detection, prefix
        assert a.iterations == b.iterations, prefix
        assert len(a.replicas) == len(b.replicas), (
            prefix,
            a.city_names,
            b.city_names,
        )
        for ra, rb in zip(a.replicas, b.replicas):
            # Frozen dataclasses: city, witnessing disk, and the exact
            # confidence float must all agree.
            assert ra == rb, prefix


# -- random-matrix generation ------------------------------------------


@st.composite
def rtt_matrices(draw):
    """A small random RttMatrix: 2-8 VPs, 1-12 targets, NaN holes, ties."""
    n_vps = draw(st.integers(min_value=2, max_value=8))
    n_targets = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)

    lats = rng.uniform(-70.0, 70.0, size=n_vps)
    lons = rng.uniform(-179.0, 179.0, size=n_vps)
    locations = [GeoPoint(float(a), float(b)) for a, b in zip(lats, lons)]
    # Shuffled zero-padded names so lexicographic order differs from
    # column order — exercises the name tie-break in sample sorting.
    names = [f"vp-{i:03d}" for i in rng.permutation(n_vps)]

    # Quantized RTTs produce frequent exact duplicates across VPs, the
    # adversarial case for (rtt, name) ordering and MIS tie-breaks.
    rtt = rng.choice([2.0, 5.0, 10.0, 20.0, 60.0, 150.0, 350.0], size=(n_targets, n_vps))
    holes = rng.random((n_targets, n_vps)) < draw(
        st.floats(min_value=0.0, max_value=0.6)
    )
    rtt = np.where(holes, np.nan, rtt).astype(np.float32)

    prefixes = np.sort(
        rng.choice(2**24, size=n_targets, replace=False).astype(np.uint32)
    )
    return RttMatrix(
        prefixes=prefixes,
        vp_names=names,
        vp_locations=locations,
        rtt_ms=rtt,
        sample_count=(~np.isnan(rtt)).astype(np.uint8),
    )


CONFIG_GRID = [
    dict(strict_enumeration=True, population_exponent=1.0, max_rtt_ms=300.0),
    dict(strict_enumeration=True, population_exponent=0.0, max_rtt_ms=None),
    dict(strict_enumeration=True, population_exponent=1.0, max_rtt_ms=8.0),
    dict(strict_enumeration=False, population_exponent=1.0, max_rtt_ms=300.0),
    dict(strict_enumeration=False, population_exponent=0.0, max_rtt_ms=300.0),
    dict(strict_enumeration=False, population_exponent=1.0, max_rtt_ms=None),
]


class TestPropertyEquivalence:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(matrix=rtt_matrices(), config_index=st.integers(0, len(CONFIG_GRID) - 1))
    def test_fast_equals_reference(self, matrix, config_index):
        kwargs = CONFIG_GRID[config_index]
        db = default_city_db()
        ref = analyze_matrix(matrix, city_db=db, config=reference_config(**kwargs))
        fast = analyze_matrix(matrix, city_db=db, config=fast_config(**kwargs))
        assert_equivalent(ref, fast)

    @settings(max_examples=15, deadline=None)
    @given(matrix=rtt_matrices())
    def test_min_samples_guard_matches(self, matrix):
        db = default_city_db()
        for min_samples in (1, 3, 5):
            ref = analyze_matrix(
                matrix, city_db=db, config=reference_config(), min_samples=min_samples
            )
            fast = analyze_matrix(
                matrix, city_db=db, config=fast_config(), min_samples=min_samples
            )
            assert_equivalent(ref, fast)


# -- degenerate inputs -------------------------------------------------


def _matrix(rtt_rows, n_vps=4, seed=3):
    rng = np.random.default_rng(seed)
    lats = rng.uniform(-60.0, 60.0, size=n_vps)
    lons = rng.uniform(-170.0, 170.0, size=n_vps)
    rtt = np.asarray(rtt_rows, dtype=np.float32)
    return RttMatrix(
        prefixes=np.arange(1, rtt.shape[0] + 1, dtype=np.uint32),
        vp_names=[f"vp-{i}" for i in range(n_vps)],
        vp_locations=[GeoPoint(float(a), float(b)) for a, b in zip(lats, lons)],
        rtt_ms=rtt,
        sample_count=(~np.isnan(rtt)).astype(np.uint8),
    )


class TestDegenerateInputs:
    def test_all_nan_rows(self):
        matrix = _matrix(np.full((3, 4), np.nan))
        db = default_city_db()
        ref = analyze_matrix(matrix, city_db=db, config=reference_config())
        fast = analyze_matrix(matrix, city_db=db, config=fast_config())
        assert_equivalent(ref, fast)
        assert not fast.anycast_mask.any()
        assert fast.results == {}

    def test_below_min_samples(self):
        rtt = np.full((2, 4), np.nan)
        rtt[0, 0] = 3.0
        rtt[1, 0] = 3.0
        rtt[1, 1] = 4.0
        matrix = _matrix(rtt)
        db = default_city_db()
        ref = analyze_matrix(matrix, city_db=db, config=reference_config())
        fast = analyze_matrix(matrix, city_db=db, config=fast_config())
        assert_equivalent(ref, fast)
        assert not fast.anycast_mask.any()

    def test_max_rtt_filters_everything(self):
        # Every RTT exceeds max_rtt: the filter would leave < 2 disks, so
        # both engines must fall back to the unfiltered set.
        rtt = np.full((2, 4), 200.0, dtype=np.float32)
        rtt[:, 0] = 2.0  # tiny disks far from the rest force detection
        matrix = _matrix(rtt, seed=11)
        db = default_city_db()
        cfg = dict(max_rtt_ms=1.0)
        ref = analyze_matrix(matrix, city_db=db, config=reference_config(**cfg))
        fast = analyze_matrix(matrix, city_db=db, config=fast_config(**cfg))
        assert_equivalent(ref, fast)
        for result in fast.results.values():
            assert result.replicas  # fallback actually enumerated

    def test_iterative_tiny_iteration_budget(self):
        rng = np.random.default_rng(5)
        rtt = rng.choice([3.0, 8.0, 30.0], size=(6, 6)).astype(np.float32)
        matrix = _matrix(rtt, n_vps=6, seed=5)
        db = default_city_db()
        cfg = dict(strict_enumeration=False, max_iterations=1)
        ref = analyze_matrix(matrix, city_db=db, config=reference_config(**cfg))
        fast = analyze_matrix(matrix, city_db=db, config=fast_config(**cfg))
        assert_equivalent(ref, fast)


# -- parallel merge determinism ----------------------------------------


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def dense_matrix(self):
        rng = np.random.default_rng(17)
        n_targets, n_vps = 40, 10
        lats = rng.uniform(-60.0, 60.0, size=n_vps)
        lons = rng.uniform(-170.0, 170.0, size=n_vps)
        rtt = rng.choice(
            [2.0, 5.0, 12.0, 40.0, 90.0, 220.0], size=(n_targets, n_vps)
        )
        rtt = np.where(rng.random(rtt.shape) < 0.2, np.nan, rtt).astype(np.float32)
        return RttMatrix(
            prefixes=np.arange(100, 100 + n_targets, dtype=np.uint32),
            vp_names=[f"vp-{i:02d}" for i in rng.permutation(n_vps)],
            vp_locations=[GeoPoint(float(a), float(b)) for a, b in zip(lats, lons)],
            rtt_ms=rtt,
            sample_count=(~np.isnan(rtt)).astype(np.uint8),
        )

    @pytest.mark.parametrize("strict", [True, False])
    def test_workers_identical_output(self, dense_matrix, strict):
        db = default_city_db()
        cfg = fast_config(strict_enumeration=strict)
        serial = analyze_matrix_fast(dense_matrix, city_db=db, config=cfg, workers=0)
        assert serial.results, "fixture must contain detected targets"
        for workers in (1, 2, 4):
            parallel = analyze_matrix_fast(
                dense_matrix, city_db=db, config=cfg, workers=workers
            )
            assert_equivalent(serial, parallel)

    def test_workers_match_reference(self, dense_matrix):
        db = default_city_db()
        ref = analyze_matrix(dense_matrix, city_db=db, config=reference_config())
        parallel = analyze_matrix(
            dense_matrix, city_db=db, config=fast_config(), workers=3
        )
        assert_equivalent(ref, parallel)


# -- engine selection --------------------------------------------------


class TestEngineKnob:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            IGreedyConfig(engine="warp")

    def test_env_var_overrides_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_ENGINE", "reference")
        assert IGreedyConfig(engine="fast").resolved_engine() == "reference"
        monkeypatch.setenv("REPRO_ANALYSIS_ENGINE", "fast")
        assert IGreedyConfig(engine="reference").resolved_engine() == "fast"
        monkeypatch.delenv("REPRO_ANALYSIS_ENGINE")
        assert IGreedyConfig().resolved_engine() == "fast"

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_ENGINE", "warp")
        with pytest.raises(ValueError):
            IGreedyConfig().resolved_engine()
