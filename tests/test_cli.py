"""Tests for the repro-anycast command-line interface."""

import pytest

from repro.cli import (
    EXIT_ABORTED,
    EXIT_OK,
    EXIT_UNEXPECTED,
    build_parser,
    main,
)

SCALE = ["--unicast", "300", "--tail", "10", "--vps", "40", "--censuses", "1"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["glance"])
        assert args.seed == 2015
        assert args.vps == 150

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_fault_defaults_are_off(self):
        args = build_parser().parse_args(["health"])
        assert args.fault_rate == 0.0
        assert args.flap_prob == 0.0
        assert args.quorum == 1
        assert args.scan_timeout is None
        assert args.checkpoint_dir is None

    def test_manifest_defaults_to_none(self):
        args = build_parser().parse_args(["glance"])
        assert args.manifest is None

    def test_trace_and_stats_subcommands_parse(self):
        assert build_parser().parse_args(["trace"]).command == "trace"
        assert build_parser().parse_args(["stats"]).command == "stats"

    def test_resilience_defaults_are_off(self):
        args = build_parser().parse_args(["glance"])
        assert args.resilience_policy == "off"
        assert args.poison is None
        assert args.poison_fraction == 0.25
        assert args.poison_seed == 0

    def test_resilience_policy_choices(self):
        for choice in ("off", "on", "strict"):
            args = build_parser().parse_args(
                ["--resilience-policy", choice, "glance"]
            )
            assert args.resilience_policy == choice
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--resilience-policy", "maybe", "glance"])

    def test_poison_mode_choices(self):
        args = build_parser().parse_args(["--poison", "nan_rtt", "glance"])
        assert args.poison == "nan_rtt"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--poison", "gamma_rays", "glance"])


class TestCommands:
    def test_glance(self, capsys):
        assert main(SCALE + ["glance"]) == 0
        out = capsys.readouterr().out
        assert "All" in out
        assert "IP/24" in out

    def test_top(self, capsys):
        assert main(SCALE + ["top", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "replicas" in out
        # 5 rows + header + separator
        assert len(out.strip().splitlines()) == 7

    def test_funnel(self, capsys):
        assert main(SCALE + ["funnel"]) == 0
        out = capsys.readouterr().out
        assert "census 1:" in out
        assert "anycast /24s detected" in out

    def test_portscan(self, capsys):
        assert main(SCALE + ["portscan"]) == 0
        out = capsys.readouterr().out
        assert "well-known services" in out

    def test_validate(self, capsys):
        assert main(SCALE + ["validate", "CLOUDFLARENET,US"]) == 0
        out = capsys.readouterr().out
        assert "TPR" in out
        assert "GT/PAI" in out

    def test_map_world(self, capsys):
        assert main(SCALE + ["map"]) == 0
        out = capsys.readouterr().out
        assert "replica density" in out
        assert len(out.splitlines()) > 20

    def test_map_deployment(self, capsys):
        assert main(SCALE + ["map", "--deployment", "MICROSOFT,US"]) == 0
        out = capsys.readouterr().out
        assert "O" in out

    def test_health_clean(self, capsys):
        assert main(SCALE + ["health"]) == 0
        out = capsys.readouterr().out
        assert "VPs clean" in out
        assert "faults seen:        none" in out
        assert "quarantined VPs: 0" in out
        assert "[DEGRADED]" not in out

    def test_health_with_faults(self, capsys):
        assert (
            main(
                SCALE
                + ["--fault-rate", "0.3", "--scan-timeout", "10.0", "health"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "faults seen:" in out
        assert "faults seen:        none" not in out

    def test_trace_renders_span_tree(self, capsys):
        assert main(SCALE + ["trace"]) == 0
        out = capsys.readouterr().out
        assert "measurement" in out
        assert "analysis" in out
        assert "vp_scan" in out
        assert "igreedy" in out
        # Hierarchy: child spans are indented under their parent.
        assert "\n  census" in out or "\n  precensus" in out

    def test_stats_prints_metrics_table(self, capsys):
        assert main(SCALE + ["stats"]) == 0
        out = capsys.readouterr().out
        assert "metric" in out
        assert "probes_sent" in out
        assert "disks_per_target" in out

    def test_manifest_flag_writes_valid_json(self, capsys, tmp_path):
        import json

        from repro.obs import CANONICAL_STAGES, validate_manifest

        path = tmp_path / "run.json"
        assert main(SCALE + ["--manifest", str(path), "glance"]) == 0
        err = capsys.readouterr().err
        assert str(path) in err
        doc = json.loads(path.read_text())
        validate_manifest(doc)
        assert doc["pipeline_stages"] == list(CANONICAL_STAGES)
        assert doc["config"]["n_censuses"] == 1

    def test_without_manifest_flag_nothing_is_traced(self, capsys):
        assert main(SCALE + ["glance"]) == 0
        err = capsys.readouterr().err
        assert "manifest" not in err


class TestResilienceCommands:
    def test_resilience_on_clean_output_is_unchanged(self, capsys):
        assert main(SCALE + ["glance"]) == EXIT_OK
        plain = capsys.readouterr().out
        assert main(SCALE + ["--resilience-policy", "on", "glance"]) == EXIT_OK
        assert capsys.readouterr().out == plain

    def test_health_shows_quarantine_and_degradation(self, capsys):
        code = main(
            SCALE
            + ["--resilience-policy", "on", "--poison", "nan_rtt", "health"]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "quarantine:" in out
        assert "nan_rtt" in out
        assert "degradation: DEGRADED" in out
        assert "combine" in out

    def test_health_clean_resilience_reports_empty_quarantine(self, capsys):
        assert main(SCALE + ["--resilience-policy", "on", "health"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "quarantine: empty" in out
        assert "degradation: clean" in out

    def test_top_gains_confidence_column_only_when_degraded(self, capsys):
        assert main(SCALE + ["--resilience-policy", "on", "top", "--k", "3"]) == EXIT_OK
        assert "confidence" not in capsys.readouterr().out
        code = main(
            SCALE
            + ["--resilience-policy", "on", "--poison", "drop_samples",
               "--poison-fraction", "0.5", "top", "--k", "3"]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "confidence" in out

    def test_poisoned_manifest_records_quarantine(self, capsys, tmp_path):
        import json

        from repro.obs import validate_manifest

        path = tmp_path / "chaos.json"
        code = main(
            SCALE
            + ["--resilience-policy", "on", "--poison", "superluminal_rtt",
               "--manifest", str(path), "glance"]
        )
        assert code == EXIT_OK
        doc = json.loads(path.read_text())
        validate_manifest(doc)
        assert doc["degradation"]["degraded"] is True
        assert any(b["reason"] == "superluminal_rtt" for b in doc["quarantine"])


class TestExitCodes:
    def test_aborted_campaign_exits_3(self, capsys):
        assert main(SCALE + ["--quorum", "500", "glance"]) == EXIT_ABORTED
        assert "aborted" in capsys.readouterr().err

    def test_aborted_under_supervision_also_exits_3(self, capsys):
        code = main(
            SCALE + ["--quorum", "500", "--resilience-policy", "on", "glance"]
        )
        assert code == EXIT_ABORTED
        assert "aborted" in capsys.readouterr().err

    def test_strict_policy_refusing_poison_exits_4(self, capsys):
        code = main(
            SCALE
            + ["--resilience-policy", "strict", "--poison", "nan_rtt", "glance"]
        )
        assert code == EXIT_UNEXPECTED
        assert "StageFailed" in capsys.readouterr().err

    def test_usage_errors_keep_argparse_code_2(self):
        with pytest.raises(SystemExit) as info:
            main(["--poison", "not-a-mode", "glance"])
        assert info.value.code == 2

    def test_abort_with_manifest_still_writes_manifest(self, capsys, tmp_path):
        import json

        from repro.obs import validate_manifest

        path = tmp_path / "aborted.json"
        code = main(
            SCALE + ["--quorum", "500", "--manifest", str(path), "glance"]
        )
        assert code == EXIT_ABORTED
        validate_manifest(json.loads(path.read_text()))


class TestParallelOptions:
    def test_workers_and_deadline_default_off(self):
        args = build_parser().parse_args(["glance"])
        assert args.workers is None
        assert args.deadline is None

    def test_parse_workers_values(self):
        from repro.cli import _parse_workers

        assert _parse_workers(None) is None
        assert _parse_workers("0") == 0
        assert _parse_workers("4") == 4
        assert _parse_workers("auto") >= 1
        with pytest.raises(ValueError):
            _parse_workers("-1")
        with pytest.raises(ValueError):
            _parse_workers("many")

    def test_bad_workers_is_usage_error(self):
        with pytest.raises(SystemExit) as info:
            main(SCALE + ["--workers", "many", "glance"])
        assert info.value.code == 2

    def test_pool_output_matches_serial(self, capsys):
        assert main(SCALE + ["glance"]) == EXIT_OK
        plain = capsys.readouterr().out
        assert main(SCALE + ["--workers", "2", "glance"]) == EXIT_OK
        assert capsys.readouterr().out == plain

    def test_health_reports_pool_supervision(self, capsys):
        assert main(SCALE + ["--workers", "2", "health"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "pool:" in out
        assert "2 worker(s)" in out

    def test_immediate_deadline_aborts_with_3(self, capsys):
        code = main(SCALE + ["--deadline", "0.000001", "glance"])
        assert code == EXIT_ABORTED
        assert "aborted" in capsys.readouterr().err

    def test_interrupt_exits_130_and_writes_manifest(
        self, capsys, tmp_path, monkeypatch
    ):
        import contextlib
        import json

        import repro.exec.signals as signals
        from repro.cli import EXIT_INTERRUPTED
        from repro.obs import validate_manifest

        class CountdownFlag:
            polls = 2
            signum = 2

            def __bool__(self):
                CountdownFlag.polls -= 1
                return CountdownFlag.polls < 0

        @contextlib.contextmanager
        def fake_shutdown(*args, **kwargs):
            yield CountdownFlag()

        monkeypatch.setattr(signals, "graceful_shutdown", fake_shutdown)
        manifest = tmp_path / "drained.json"
        code = main(
            SCALE
            + ["--checkpoint-dir", str(tmp_path), "--manifest", str(manifest),
               "health"]
        )
        assert code == EXIT_INTERRUPTED
        err = capsys.readouterr().err
        assert "interrupted" in err
        validate_manifest(json.loads(manifest.read_text()))
        # The drain left a resumable journal behind.
        assert list(tmp_path.glob("census-*.journal"))


class TestServiceTelemetryCli:
    """`repro service timeline` and `repro obs export` end to end."""

    @pytest.fixture(scope="class")
    def telemetry_archive(self, tmp_path_factory):
        from repro.workflow import small_service

        root = tmp_path_factory.mktemp("cli-telemetry") / "archive"
        service = small_service(root, telemetry=True)
        for epoch in range(4):
            service.run_epoch(epoch)
        return root

    def test_parser_accepts_new_flags(self):
        args = build_parser().parse_args(
            ["service", "timeline", "--archive", "a", "--telemetry",
             "--mad-k", "6"]
        )
        assert args.verb == "timeline" and args.mad_k == 6.0
        args = build_parser().parse_args(
            ["obs", "export", "--archive", "a", "--epoch", "2"]
        )
        assert args.command == "obs" and args.epoch == 2

    def test_timeline_clean_exits_0(self, telemetry_archive, capsys):
        code = main(["service", "timeline", "--archive", str(telemetry_archive)])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert out.startswith("epochs: 4")
        assert "[REGRESSION]" not in out
        assert "slo verdicts" in out

    def test_timeline_seeded_regression_exits_6(self, tmp_path, capsys):
        from repro.cli import EXIT_REGRESSION
        from repro.measurement.faults import FaultPlan
        from repro.workflow import small_service

        root = tmp_path / "archive"
        clean = small_service(root, telemetry=True)
        for epoch in range(4):
            clean.run_epoch(epoch)
        slow = small_service(
            root, telemetry=True, fault_plan=FaultPlan(hang_prob=1.0)
        )
        slow.run_epoch(4)
        code = main(["service", "timeline", "--archive", str(root)])
        out = capsys.readouterr().out
        assert code == EXIT_REGRESSION
        assert "[REGRESSION]" in out
        assert "vp_scan_hours_mean" in out

    def test_obs_export_writes_valid_artifacts(
        self, telemetry_archive, tmp_path, capsys
    ):
        import json

        from repro.obs import chrome_trace_problems, prometheus_problems

        prom = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.json"
        code = main(
            ["obs", "export", "--archive", str(telemetry_archive),
             "--epoch", "1", "--prometheus", str(prom),
             "--chrome-trace", str(trace)]
        )
        assert code == EXIT_OK
        assert prometheus_problems(prom.read_text()) == []
        doc = json.loads(trace.read_text())
        assert chrome_trace_problems(doc) == []
        assert any(
            e.get("name") == "service_epoch" for e in doc["traceEvents"]
        )
        out = capsys.readouterr().out
        assert "metrics.prom" in out and "trace.json" in out

    def test_obs_export_to_stdout_by_default(self, telemetry_archive, capsys):
        code = main(["obs", "export", "--archive", str(telemetry_archive)])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "repro_service_epochs_committed_total 1" in out

    def test_obs_export_without_telemetry_is_usage_error(self, tmp_path, capsys):
        from repro.cli import EXIT_USAGE
        from repro.workflow import small_service

        root = tmp_path / "archive"
        small_service(root).run_epoch(0)
        code = main(["obs", "export", "--archive", str(root)])
        assert code == EXIT_USAGE
        assert "no telemetry sidecar" in capsys.readouterr().err
