"""Tests for the full iGreedy pipeline on controlled deployments."""

import numpy as np
import pytest

from repro.core.igreedy import IGreedyConfig, igreedy
from repro.core.samples import LatencySample
from repro.geo.cities import default_city_db
from repro.geo.coords import GeoPoint
from repro.geo.disks import FIBER_SPEED_KM_PER_MS


@pytest.fixture(scope="module")
def db():
    return default_city_db()


def rtt_to(vp: GeoPoint, server: GeoPoint, stretch=1.25, extra=1.0) -> float:
    return 2.0 * vp.distance_km(server) * stretch / FIBER_SPEED_KM_PER_MS + extra


def synth_deployment_samples(db, replica_names, vp_names, stretch=1.25):
    """Samples for an anycast deployment serving each VP from the nearest replica."""
    replicas = [db.get(n) for n in replica_names]
    samples = []
    for vp_name in vp_names:
        vp = db.get(vp_name)
        nearest = min(replicas, key=lambda r: vp.location.distance_km(r.location))
        samples.append(
            LatencySample(vp_name, vp.location, rtt_to(vp.location, nearest.location, stretch))
        )
    return samples, replicas


WORLD_VPS = [
    "Paris", "London", "Frankfurt", "Madrid", "Stockholm", "Warsaw",
    "New York", "Chicago", "Seattle", "Los Angeles", "Atlanta", "Denver",
    "Tokyo", "Seoul", "Singapore", "Sydney", "Mumbai", "Sao Paulo",
    "Johannesburg", "Moscow", "Toronto", "Mexico City",
]


class TestDetectionPath:
    def test_unicast_no_replicas(self, db):
        samples, _ = synth_deployment_samples(db, ["Frankfurt"], WORLD_VPS)
        result = igreedy(samples, city_db=db)
        assert not result.is_anycast
        assert result.replica_count == 0
        assert result.iterations == 0

    def test_three_continent_deployment(self, db):
        names = ["New York", "Frankfurt", "Tokyo"]
        samples, _ = synth_deployment_samples(db, names, WORLD_VPS)
        result = igreedy(samples, city_db=db)
        assert result.is_anycast
        assert result.replica_count == 3

    def test_enumeration_is_lower_bound(self, db):
        """iGreedy never claims more replicas than the ground truth has."""
        names = ["New York", "Frankfurt", "Tokyo", "Sydney", "Sao Paulo",
                 "Johannesburg", "Mumbai", "Los Angeles"]
        samples, _ = synth_deployment_samples(db, names, WORLD_VPS)
        result = igreedy(samples, city_db=db)
        assert result.is_anycast
        assert 2 <= result.replica_count <= len(names)

    def test_well_separated_replicas_all_found(self, db):
        names = ["New York", "Frankfurt", "Tokyo", "Sydney", "Sao Paulo"]
        samples, _ = synth_deployment_samples(db, names, WORLD_VPS, stretch=1.05)
        result = igreedy(samples, city_db=db)
        assert result.replica_count == 5
        found = {c.name for c in result.cities}
        assert len(found & set(names)) >= 4

    def test_geolocation_hits_replica_cities(self, db):
        names = ["New York", "Frankfurt", "Tokyo"]
        samples, _ = synth_deployment_samples(db, names, WORLD_VPS, stretch=1.05)
        result = igreedy(samples, city_db=db)
        # With low stretch and VPs in the replica cities themselves, the
        # population-MLE should name the exact cities.
        assert {c.name for c in result.cities} == set(names)


class TestIteration:
    def test_iterative_mode_at_least_strict_recall(self, db):
        """The paper's collapse-iteration can only add replicas."""
        names = ["New York", "Chicago", "Frankfurt", "London", "Tokyo", "Seoul"]
        samples, _ = synth_deployment_samples(db, names, WORLD_VPS, stretch=1.4)
        strict = igreedy(samples, city_db=db, config=IGreedyConfig(strict_enumeration=True))
        loose = igreedy(
            samples, city_db=db,
            config=IGreedyConfig(strict_enumeration=False, max_iterations=10),
        )
        assert loose.replica_count >= strict.replica_count

    def test_strict_mode_never_overcounts(self, db):
        """Strict enumeration is a provable lower bound on replica count."""
        import itertools

        all_names = ["New York", "Frankfurt", "Tokyo", "Sydney", "Sao Paulo",
                     "Johannesburg", "Mumbai", "Moscow"]
        for k in (2, 3, 5, 8):
            names = all_names[:k]
            for stretch in (1.05, 1.3, 1.6):
                samples, _ = synth_deployment_samples(db, names, WORLD_VPS, stretch=stretch)
                result = igreedy(samples, city_db=db)
                assert result.replica_count <= k, (names, stretch)

    def test_convergence_within_budget(self, db):
        names = ["New York", "Frankfurt", "Tokyo", "Sydney"]
        samples, _ = synth_deployment_samples(db, names, WORLD_VPS)
        result = igreedy(
            samples, city_db=db,
            config=IGreedyConfig(strict_enumeration=False, max_iterations=10),
        )
        assert result.iterations <= 10

    def test_no_duplicate_cities(self, db):
        names = ["New York", "Frankfurt", "Tokyo", "Sydney", "Sao Paulo"]
        samples, _ = synth_deployment_samples(db, names, WORLD_VPS)
        result = igreedy(samples, city_db=db)
        keys = [c.key for c in result.cities]
        assert len(set(keys)) == len(keys)


class TestConfig:
    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            IGreedyConfig(max_iterations=0)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            IGreedyConfig(speed_km_per_ms=-1.0)

    def test_conservative_speed_reduces_detection(self, db):
        """Radius grows with assumed speed: full c is more conservative."""
        from repro.geo.disks import LIGHT_SPEED_KM_PER_MS

        names = ["Madrid", "Warsaw"]  # moderately separated replicas
        samples, _ = synth_deployment_samples(db, names, WORLD_VPS, stretch=1.02)
        fiber = igreedy(samples, city_db=db)
        light = igreedy(
            samples, city_db=db, config=IGreedyConfig(speed_km_per_ms=LIGHT_SPEED_KM_PER_MS)
        )
        # Fiber-speed disks are tighter, so detection/enumeration can only
        # be at least as good.
        assert fiber.replica_count >= light.replica_count

    def test_city_names_sorted(self, db):
        names = ["New York", "Tokyo"]
        samples, _ = synth_deployment_samples(db, names, WORLD_VPS)
        result = igreedy(samples, city_db=db)
        assert result.city_names == sorted(result.city_names)
