"""Tests for latency samples and disk conversion."""

import pytest

from repro.core.samples import LatencySample, min_rtt_samples, samples_to_disks
from repro.geo.coords import GeoPoint
from repro.geo.disks import FIBER_SPEED_KM_PER_MS, LIGHT_SPEED_KM_PER_MS

VP = GeoPoint(48.86, 2.35)


class TestLatencySample:
    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            LatencySample("vp", VP, -1.0)

    def test_to_disk(self):
        sample = LatencySample("vp", VP, 10.0)
        disk = sample.to_disk()
        assert disk.center == VP
        assert disk.radius_km == pytest.approx(5.0 * FIBER_SPEED_KM_PER_MS)

    def test_to_disk_speed_override(self):
        sample = LatencySample("vp", VP, 10.0)
        assert sample.to_disk(LIGHT_SPEED_KM_PER_MS).radius_km > sample.to_disk().radius_km


class TestMinRtt:
    def test_keeps_minimum_per_vp(self):
        samples = [
            LatencySample("a", VP, 30.0),
            LatencySample("a", VP, 10.0),
            LatencySample("a", VP, 20.0),
            LatencySample("b", VP, 5.0),
        ]
        out = min_rtt_samples(samples)
        assert len(out) == 2
        by_name = {s.vp_name: s.rtt_ms for s in out}
        assert by_name == {"a": 10.0, "b": 5.0}

    def test_sorted_by_rtt(self):
        samples = [LatencySample(f"vp{i}", VP, float(10 - i)) for i in range(5)]
        out = min_rtt_samples(samples)
        rtts = [s.rtt_ms for s in out]
        assert rtts == sorted(rtts)

    def test_empty(self):
        assert min_rtt_samples([]) == []


class TestSamplesToDisks:
    def test_count(self):
        samples = [LatencySample(f"v{i}", VP, float(i + 1)) for i in range(4)]
        assert len(samples_to_disks(samples)) == 4

    def test_max_rtt_filter(self):
        samples = [LatencySample("a", VP, 10.0), LatencySample("b", VP, 500.0)]
        disks = samples_to_disks(samples, max_rtt_ms=300.0)
        assert len(disks) == 1

    def test_no_filter_by_default(self):
        samples = [LatencySample("a", VP, 10.0), LatencySample("b", VP, 5000.0)]
        assert len(samples_to_disks(samples)) == 2
