"""Tests for the MIS solvers: greedy 5-approximation vs exact."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumeration import (
    exact_mis,
    greedy_approximation_ratio,
    greedy_mis,
    is_independent_set,
)
from repro.geo.coords import GeoPoint
from repro.geo.disks import Disk, overlap_matrix


def random_disks(n, seed, max_radius=2000.0):
    rng = np.random.default_rng(seed)
    return [
        Disk(
            GeoPoint(float(rng.uniform(-70, 70)), float(rng.uniform(-180, 180))),
            float(rng.uniform(0, max_radius)),
        )
        for _ in range(n)
    ]


class TestGreedy:
    def test_empty(self):
        assert greedy_mis([]) == []

    def test_single(self):
        assert greedy_mis([Disk(GeoPoint(0, 0), 1.0)]) == [0]

    def test_all_overlapping_selects_one(self):
        disks = [Disk(GeoPoint(0, i * 0.01), 1000.0) for i in range(5)]
        assert len(greedy_mis(disks)) == 1

    def test_all_disjoint_selects_all(self):
        disks = [Disk(GeoPoint(0, lon), 100.0) for lon in (-150, -75, 0, 75, 150)]
        assert len(greedy_mis(disks)) == 5

    def test_smallest_radius_first(self):
        # One big disk overlapping two small disjoint disks: the greedy must
        # keep the two small ones (selecting the big one first would lose one).
        small1 = Disk(GeoPoint(0, 0), 10.0)
        small2 = Disk(GeoPoint(0, 40), 10.0)
        big = Disk(GeoPoint(0, 20), 3000.0)
        selected = greedy_mis([big, small1, small2])
        assert sorted(selected) == [1, 2]

    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_output_is_independent(self, seed, n):
        disks = random_disks(n, seed)
        selected = greedy_mis(disks)
        assert is_independent_set(disks, selected)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_output_is_maximal(self, seed):
        """No unselected disk can be added without a conflict."""
        disks = random_disks(20, seed)
        selected = set(greedy_mis(disks))
        for i, disk in enumerate(disks):
            if i in selected:
                continue
            assert any(disk.overlaps(disks[j]) for j in selected)

    def test_precomputed_overlap_matrix(self):
        disks = random_disks(15, 3)
        m = overlap_matrix(disks)
        assert greedy_mis(disks) == greedy_mis(disks, overlaps=m)

    def test_matrix_shape_checked(self):
        disks = random_disks(5, 3)
        with pytest.raises(ValueError):
            greedy_mis(disks, overlaps=np.ones((2, 2), dtype=bool))


class TestExact:
    def test_empty(self):
        assert exact_mis([]) == []

    def test_guard(self):
        with pytest.raises(ValueError):
            exact_mis(random_disks(50, 0))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_exact_at_least_greedy(self, seed):
        disks = random_disks(14, seed)
        assert len(exact_mis(disks)) >= len(greedy_mis(disks))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_exact_output_independent(self, seed):
        disks = random_disks(12, seed)
        assert is_independent_set(disks, exact_mis(disks))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_five_approximation_bound(self, seed):
        """The theoretical guarantee: |exact| <= 5 |greedy|."""
        disks = random_disks(16, seed)
        assert len(exact_mis(disks)) <= 5 * max(len(greedy_mis(disks)), 1)

    def test_greedy_usually_optimal_in_practice(self):
        """The paper's observation: greedy is near-optimal in practice."""
        optimal = 0
        trials = 30
        for seed in range(trials):
            if greedy_approximation_ratio(random_disks(12, seed)) == 1.0:
                optimal += 1
        assert optimal / trials >= 0.7
