"""Tests for speed-of-light-violation detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detection import detect, detection_mask, radius_matrix
from repro.core.samples import LatencySample
from repro.geo.coords import GeoPoint, pairwise_distances_km
from repro.geo.disks import FIBER_SPEED_KM_PER_MS

PARIS = GeoPoint(48.86, 2.35)
NYC = GeoPoint(40.71, -74.01)
TOKYO = GeoPoint(35.68, 139.65)
SYDNEY = GeoPoint(-33.87, 151.21)

VPS = [PARIS, NYC, TOKYO, SYDNEY]


def rtt_for(vp: GeoPoint, server: GeoPoint, stretch: float = 1.3) -> float:
    """A physically-consistent RTT from vp to a server and back."""
    return 2.0 * vp.distance_km(server) * stretch / FIBER_SPEED_KM_PER_MS + 1.0


class TestDetect:
    def test_unicast_never_detected(self):
        """Samples consistent with one physical server must not trigger."""
        server = GeoPoint(50.11, 8.68)  # Frankfurt
        samples = [
            LatencySample(f"vp{i}", vp, rtt_for(vp, server)) for i, vp in enumerate(VPS)
        ]
        assert not detect(samples).is_anycast

    def test_two_replica_anycast_detected(self):
        # Replicas in Paris and Tokyo: each VP reaches the close one with a
        # small RTT, so the Paris and Tokyo disks cannot intersect.
        samples = [
            LatencySample("p", PARIS, 2.0),
            LatencySample("t", TOKYO, 2.0),
        ]
        result = detect(samples)
        assert result.is_anycast
        assert result.witness is not None

    def test_single_sample_undetectable(self):
        assert not detect([LatencySample("p", PARIS, 1.0)]).is_anycast

    def test_empty(self):
        result = detect([])
        assert not result.is_anycast
        assert result.sample_count == 0

    def test_min_rtt_dedup_applied(self):
        # A large stale RTT from Paris would mask the violation; the fresh
        # minimum restores it.
        samples = [
            LatencySample("p", PARIS, 200.0),
            LatencySample("p", PARIS, 2.0),
            LatencySample("t", TOKYO, 2.0),
        ]
        assert detect(samples).is_anycast

    def test_conservative_with_huge_rtts(self):
        # Two replicas but congested paths: disks cover everything, no
        # violation, no detection — conservative by design.
        samples = [
            LatencySample("p", PARIS, 400.0),
            LatencySample("t", TOKYO, 400.0),
        ]
        assert not detect(samples).is_anycast

    @given(st.floats(min_value=1.0, max_value=2.0), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30)
    def test_no_false_positive_property(self, stretch, seed):
        """For any physical server and inflation, unicast stays unicast."""
        rng = np.random.default_rng(seed)
        server = GeoPoint(float(rng.uniform(-60, 60)), float(rng.uniform(-180, 180)))
        samples = [
            LatencySample(
                f"vp{i}", vp, rtt_for(vp, server, stretch) + float(rng.exponential(5.0))
            )
            for i, vp in enumerate(VPS)
        ]
        assert not detect(samples).is_anycast


class TestDetectionMask:
    def make_matrix(self, rows):
        lats = [p.lat for p in VPS]
        lons = [p.lon for p in VPS]
        vp_dist = pairwise_distances_km(lats, lons, lats, lons)
        return vp_dist, radius_matrix(np.array(rows, dtype=np.float64))

    def test_matches_object_level(self):
        server = GeoPoint(50.11, 8.68)
        unicast_row = [rtt_for(vp, server) for vp in VPS]
        anycast_row = [2.0, 2.0, 2.0, 2.0]  # impossible for one server
        vp_dist, radii = self.make_matrix([unicast_row, anycast_row])
        mask = detection_mask(vp_dist, radii)
        assert mask.tolist() == [False, True]

    def test_nan_never_witnesses(self):
        row = [2.0, np.nan, np.nan, np.nan]
        vp_dist, radii = self.make_matrix([row])
        assert not detection_mask(vp_dist, radii)[0]

    def test_chunking_equivalence(self):
        rng = np.random.default_rng(0)
        rows = rng.uniform(1.0, 100.0, size=(40, 4))
        vp_dist, radii = self.make_matrix(rows.tolist())
        a = detection_mask(vp_dist, radii, chunk=3)
        b = detection_mask(vp_dist, radii, chunk=1000)
        assert np.array_equal(a, b)

    def test_shape_mismatch_rejected(self):
        vp_dist, radii = self.make_matrix([[1.0, 1.0, 1.0, 1.0]])
        with pytest.raises(ValueError):
            detection_mask(vp_dist[:2, :2], radii)

    def test_radius_matrix_conversion(self):
        radii = radius_matrix(np.array([[10.0]]))
        assert radii[0, 0] == pytest.approx(5.0 * FIBER_SPEED_KM_PER_MS)
