"""Tests for population-biased replica geolocation."""

import pytest

from repro.core.geolocation import (
    classify_disk,
    classify_nearest,
    geolocation_error_km,
    match_replicas_to_truth,
)
from repro.geo.cities import default_city_db
from repro.geo.coords import GeoPoint
from repro.geo.disks import Disk


@pytest.fixture(scope="module")
def db():
    return default_city_db()


class TestClassifyDisk:
    def test_picks_largest_city(self, db):
        # Disk around western Europe: Paris (largest nearby) must win over
        # Brussels/Amsterdam.
        disk = Disk(db.get("Brussels").location, 300.0)
        replica = classify_disk(disk, db)
        assert replica is not None
        assert replica.city.name == "Paris"

    def test_ashburn_misclassified_as_philadelphia(self, db):
        """The paper's documented failure: population bias wins."""
        disk = Disk(db.get("Ashburn", "US").location, 260.0)
        replica = classify_disk(disk, db)
        assert replica.city.name == "Philadelphia"

    def test_uniform_prior_picks_nearest(self, db):
        """population_exponent=0 removes the bias: Ashburn is recovered."""
        disk = Disk(db.get("Ashburn", "US").location, 260.0)
        replica = classify_disk(disk, db, population_exponent=0.0)
        assert replica.city.name == "Ashburn"

    def test_empty_disk_returns_none(self, db):
        assert classify_disk(Disk(GeoPoint(-48.0, -120.0), 5.0), db) is None

    def test_confidence_in_unit_interval(self, db):
        disk = Disk(db.get("Paris").location, 500.0)
        replica = classify_disk(disk, db)
        assert 0.0 < replica.confidence <= 1.0

    def test_single_candidate_full_confidence(self, db):
        disk = Disk(db.get("Reykjavik").location, 50.0)
        replica = classify_disk(disk, db)
        assert replica.city.name == "Reykjavik"
        assert replica.confidence == pytest.approx(1.0)

    def test_negative_exponent_rejected(self, db):
        with pytest.raises(ValueError):
            classify_disk(Disk(GeoPoint(0, 0), 100.0), db, population_exponent=-1.0)

    def test_stronger_bias_monotone(self, db):
        """Raising the exponent can only favour bigger cities."""
        disk = Disk(db.get("Ashburn", "US").location, 260.0)
        weak = classify_disk(disk, db, population_exponent=0.5)
        strong = classify_disk(disk, db, population_exponent=2.0)
        assert strong.city.population >= weak.city.population


class TestClassifyNearest:
    def test_nearest_fallback(self, db):
        disk = Disk(GeoPoint(-47.0, -122.0), 5.0)  # empty South Pacific disk
        replica = classify_nearest(disk, db)
        assert replica.confidence == 0.0
        assert replica.city is db.nearest(disk.center)


class TestErrorMetrics:
    def test_error_zero_for_same_city(self, db):
        c = db.get("Paris")
        assert geolocation_error_km(c, c) == 0.0

    def test_known_error(self, db):
        # Ashburn <-> Philadelphia is ~250-300 km (the paper quotes 260 km).
        err = geolocation_error_km(db.get("Ashburn", "US"), db.get("Philadelphia"))
        assert 200 <= err <= 320

    def test_match_all_correct(self, db):
        cities = [db.get("Paris"), db.get("Tokyo")]
        out = match_replicas_to_truth(cities, cities)
        assert out["true_positives"] == 2
        assert out["precision"] == 1.0
        assert out["recall"] == 1.0
        assert out["errors_km"] == []

    def test_match_partial(self, db):
        predicted = [db.get("Paris"), db.get("Reston", "US")]
        truth = [db.get("Paris"), db.get("Ashburn", "US")]
        out = match_replicas_to_truth(predicted, truth)
        assert out["true_positives"] == 1
        assert out["precision"] == 0.5
        assert len(out["errors_km"]) == 1
        assert out["errors_km"][0] < 50  # Reston is near Ashburn

    def test_tpr_is_deprecated_alias_of_precision(self, db):
        # The quantity divides by the predicted count — precision.  The
        # historical "tpr" key must keep returning the same value.
        predicted = [db.get("Paris"), db.get("Tokyo"), db.get("Reston", "US")]
        truth = [db.get("Paris"), db.get("Tokyo")]
        out = match_replicas_to_truth(predicted, truth)
        assert out["precision"] == out["tpr"] == pytest.approx(2 / 3)

    def test_match_empty_truth(self, db):
        out = match_replicas_to_truth([db.get("Paris")], [])
        assert out["recall"] == 1.0
        assert out["true_positives"] == 0

    def test_match_empty_prediction(self, db):
        out = match_replicas_to_truth([], [db.get("Paris")])
        assert out["tpr"] == 0.0
        assert out["recall"] == 0.0
