"""End-to-end observability guarantees: neutrality and determinism.

The tentpole contract: with tracing and metrics on, pipeline *outputs*
are byte-identical to a run with them off, and the recorded span tree /
metric snapshot are themselves deterministic across identical runs.
"""

import pytest

from repro.internet.topology import InternetConfig
from repro.obs import CANONICAL_STAGES, iter_span_names, tree_shape, validate_manifest
from repro.workflow import CensusStudy, StudyConfig


def _config(trace: bool) -> StudyConfig:
    return StudyConfig(
        internet=InternetConfig(seed=3, n_unicast_slash24=400, tail_deployments=15),
        n_vantage_points=40,
        n_censuses=2,
        trace=trace,
        metrics=trace,
        events=trace,
    )


def _run(trace: bool) -> CensusStudy:
    study = CensusStudy(_config(trace))
    study.characterization  # force the full pipeline
    return study


def _result_fingerprint(study: CensusStudy):
    """Everything scientific: detections, enumerations, geolocations,
    and the raw census records."""
    analysis = study.analysis
    return (
        sorted(analysis.anycast_prefixes),
        {p: r.city_names for p, r in analysis.results.items()},
        {p: r.replica_count for p, r in analysis.results.items()},
        [c.records.checksum() for c in study.censuses],
    )


@pytest.fixture(scope="module")
def plain_study():
    return _run(trace=False)


@pytest.fixture(scope="module")
def traced_study():
    return _run(trace=True)


class TestNeutrality:
    def test_outputs_identical_with_and_without_observability(
        self, plain_study, traced_study
    ):
        assert _result_fingerprint(plain_study) == _result_fingerprint(traced_study)

    def test_plain_study_records_nothing(self, plain_study):
        assert plain_study.tracer.n_spans == 0
        assert plain_study.metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert plain_study.events.snapshot()["n_events"] == 0

    def test_observability_does_not_leak_between_studies(
        self, plain_study, traced_study
    ):
        # The traced study's instruments saw only its own pipeline: two
        # censuses at 40 VPs means well under 200 VP scans.
        counters = traced_study.metrics.snapshot()["counters"]
        n_scans = counters["vps_ok"] + counters.get("vps_failed", 0)
        assert n_scans <= 3 * 40  # precensus + 2 censuses


class TestDeterminism:
    def test_span_tree_shape_stable_across_runs(self, traced_study):
        again = _run(trace=True)
        assert tree_shape(traced_study.tracer) == tree_shape(again.tracer)
        assert _result_fingerprint(traced_study) == _result_fingerprint(again)

    def test_metrics_snapshot_identical_across_runs(self, traced_study):
        again = _run(trace=True)
        assert traced_study.metrics.snapshot() == again.metrics.snapshot()


class TestCoverage:
    def test_trace_covers_every_pipeline_stage(self, traced_study):
        seen = set(iter_span_names(traced_study.tracer))
        assert set(CANONICAL_STAGES) <= seen

    def test_expected_metrics_present(self, traced_study):
        snap = traced_study.metrics.snapshot()
        assert snap["counters"]["probes_sent"] > 0
        assert snap["counters"]["censuses_completed"] == 2
        assert snap["counters"]["targets_classified_anycast"] > 0
        assert snap["histograms"]["disks_per_target"]["count"] > 0
        assert snap["histograms"]["mis_size"]["count"] > 0
        assert snap["histograms"]["igreedy_iterations"]["count"] > 0
        assert snap["gauges"]["rtt_matrix_cells"] > 0

    def test_event_log_brackets_every_stage(self, traced_study):
        from repro.obs import parse_events

        events, problems = parse_events(
            "".join(traced_study.events.to_lines()), strict=True
        )
        assert problems == []
        started = [e["attrs"]["stage"] for e in events if e["name"] == "stage_start"]
        ended = [e["attrs"]["stage"] for e in events if e["name"] == "stage_end"]
        assert sorted(started) == sorted(ended)  # every stage closed
        assert {"measurement", "analysis", "characterization"} <= set(started)

    def test_manifest_roundtrip(self, traced_study, tmp_path):
        import json

        path = traced_study.write_manifest(tmp_path / "run.json")
        doc = json.loads(path.read_text())
        validate_manifest(doc)
        assert doc["pipeline_stages"] == list(CANONICAL_STAGES)
        assert len(doc["health"]) == 2
        assert doc["config"]["n_censuses"] == 2


class TestLazyHealthReports:
    def test_health_reports_do_not_force_a_run(self):
        study = CensusStudy(_config(trace=False))
        assert study.health_reports == []
        assert study._censuses is None  # nothing was materialized

    def test_health_reports_after_materialization(self, plain_study):
        assert len(plain_study.health_reports) == 2
