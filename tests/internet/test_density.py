"""Tests for per-/24 host density (paper Sec. 4.2 sparse/dense examples)."""

import pytest

from repro.internet.deployments import alive_hosts


def deployment(internet, name):
    for dep in internet.deployments:
        if dep.entry.name == name:
            return dep
    raise KeyError(name)


class TestDensity:
    def test_google_is_sparse(self, tiny_internet):
        """Google: a single alive address per /24 (the 8.8.8.8 pattern)."""
        google = deployment(tiny_internet, "GOOGLE,US")
        for prefix in google.prefixes[:5]:
            assert len(alive_hosts(google, prefix)) == 1

    def test_cloudflare_is_dense(self, tiny_internet):
        """CloudFlare: well over 99% of addresses alive."""
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        hosts = alive_hosts(cf, cf.prefixes[0])
        assert len(hosts) / 254 > 0.99

    def test_host_octets_valid(self, tiny_internet):
        dep = deployment(tiny_internet, "EDGECAST,US")
        hosts = alive_hosts(dep, dep.prefixes[0])
        assert all(1 <= h <= 254 for h in hosts)
        assert hosts == sorted(set(hosts))

    def test_deterministic(self, tiny_internet):
        dep = deployment(tiny_internet, "EDGECAST,US")
        a = alive_hosts(dep, dep.prefixes[0])
        b = alive_hosts(dep, dep.prefixes[0])
        assert a == b

    def test_varies_per_prefix(self, tiny_internet):
        dep = deployment(tiny_internet, "EDGECAST,US")
        assert alive_hosts(dep, dep.prefixes[0]) != alive_hosts(dep, dep.prefixes[1])

    def test_unannounced_prefix_rejected(self, tiny_internet):
        dep = deployment(tiny_internet, "EDGECAST,US")
        with pytest.raises(ValueError):
            alive_hosts(dep, 123)

    def test_density_validation(self):
        from repro.internet.catalog import CatalogEntry
        from repro.net.asn import BusinessCategory

        with pytest.raises(ValueError):
            CatalogEntry(1, 1, "X", "US", BusinessCategory.DNS,
                         n_slash24=1, n_sites=1, ip_density=0.0)
        with pytest.raises(ValueError):
            CatalogEntry(1, 1, "X", "US", BusinessCategory.DNS,
                         n_slash24=1, n_sites=1, ip_density=1.5)

    def test_any_alive_host_equivalent_for_detection(self, tiny_internet):
        """The paper's spot check: every alive IP of an anycast /24 yields
        the same detection verdict, because routing operates on the /24."""
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        prefix = cf.prefixes[0]
        # Our substrate models routing at /24 granularity by construction:
        # the serving replica is a function of (client, prefix) only.
        from repro.geo.coords import GeoPoint

        client = GeoPoint(48.86, 2.35)
        assert cf.serving_replica(client) is cf.serving_replica(client)
