"""Tests for the synthetic-Internet builder."""

import numpy as np
import pytest

from repro.internet.topology import (
    RESP_ADMIN_FILTERED,
    RESP_REPLY,
    RESP_SILENT,
    InternetConfig,
    SyntheticInternet,
    responsiveness_outcome,
)
from repro.net.addresses import is_reserved, slash24_base_address
from repro.net.icmp import IcmpOutcome


@pytest.fixture(scope="module")
def net() -> SyntheticInternet:
    return SyntheticInternet(
        InternetConfig(seed=3, n_unicast_slash24=2000, tail_deployments=30)
    )


class TestConfig:
    def test_defaults_valid(self):
        InternetConfig()

    def test_negative_unicast_rejected(self):
        with pytest.raises(ValueError):
            InternetConfig(n_unicast_slash24=-1)

    def test_reply_fraction_bounds(self):
        with pytest.raises(ValueError):
            InternetConfig(reply_fraction=1.2)

    def test_error_fraction_incompatible(self):
        with pytest.raises(ValueError):
            InternetConfig(reply_fraction=0.99, error_fraction=0.05)

    def test_error_split_must_sum_to_one(self):
        with pytest.raises(ValueError):
            InternetConfig(error_split=(0.5, 0.3, 0.1))


class TestConstruction:
    def test_target_count(self, net):
        anycast = sum(len(d.prefixes) for d in net.deployments)
        assert net.n_targets == anycast + 2000
        assert net.n_anycast_slash24 == anycast

    def test_deployment_count(self, net):
        assert net.anycast_ases == 130  # top-100 + 30 tail

    def test_prefixes_unique(self, net):
        assert len(np.unique(net.prefixes)) == net.n_targets

    def test_no_reserved_prefixes(self, net):
        bases = [slash24_base_address(int(p)) for p in net.prefixes[:500]]
        assert not any(is_reserved(b) for b in bases)

    def test_deterministic_in_seed(self):
        cfg = InternetConfig(seed=9, n_unicast_slash24=100, tail_deployments=5)
        a = SyntheticInternet(cfg)
        b = SyntheticInternet(cfg)
        assert np.array_equal(a.prefixes, b.prefixes)
        assert np.array_equal(a.responsiveness, b.responsiveness)
        assert [r.city.key for d in a.deployments for r in d.replicas] == [
            r.city.key for d in b.deployments for r in d.replicas
        ]

    def test_different_seed_differs(self):
        a = SyntheticInternet(InternetConfig(seed=1, n_unicast_slash24=300, tail_deployments=5))
        b = SyntheticInternet(InternetConfig(seed=2, n_unicast_slash24=300, tail_deployments=5))
        assert not np.array_equal(a.responsiveness, b.responsiveness)

    def test_site_counts_match_catalog(self, net):
        for dep in net.deployments:
            assert len(dep.replicas) == dep.entry.n_sites
            assert len(dep.prefixes) == dep.entry.n_slash24

    def test_replica_cities_distinct_per_deployment(self, net):
        for dep in net.deployments[:20]:
            keys = [r.city.key for r in dep.replicas]
            assert len(set(keys)) == len(keys)

    def test_replicas_near_their_city(self, net):
        cfg = net.config
        for dep in net.deployments[:10]:
            for rep in dep.replicas:
                assert rep.location.distance_km(rep.city.location) <= cfg.site_scatter_km + 1e-6


class TestResponsiveness:
    def test_anycast_targets_always_reply(self, net):
        assert (net.responsiveness[net.is_anycast] == RESP_REPLY).all()

    def test_unicast_reply_fraction_close_to_config(self, net):
        uni = net.responsiveness[~net.is_anycast]
        frac = (uni == RESP_REPLY).mean()
        assert abs(frac - net.config.reply_fraction) < 0.05

    def test_error_fraction_close_to_config(self, net):
        uni = net.responsiveness[~net.is_anycast]
        errors = np.isin(uni, [2, 3, 4]).mean()
        assert abs(errors - net.config.error_fraction) < 0.02

    def test_admin_filtered_dominates_errors(self, net):
        uni = net.responsiveness[~net.is_anycast]
        errs = uni[np.isin(uni, [2, 3, 4])]
        if len(errs) >= 20:
            assert (errs == RESP_ADMIN_FILTERED).mean() > 0.9

    def test_outcome_decoding(self):
        assert responsiveness_outcome(RESP_REPLY) is IcmpOutcome.ECHO_REPLY
        assert responsiveness_outcome(RESP_SILENT) is IcmpOutcome.SILENT
        with pytest.raises(ValueError):
            responsiveness_outcome(77)


class TestQueries:
    def test_target_index_roundtrip(self, net):
        for pos in (0, 5, net.n_targets - 1):
            prefix = int(net.prefixes[pos])
            assert net.target_index(prefix) == pos

    def test_target_index_unknown(self, net):
        with pytest.raises(KeyError):
            net.target_index(1)  # 0.0.1.0/24 is never allocated

    def test_deployment_of_anycast(self, net):
        dep = net.deployments[0]
        assert net.deployment_of(dep.prefixes[0]) is dep

    def test_deployment_of_unicast(self, net):
        assert net.deployment_of(net.unicast_hosts[0].prefix) is None

    def test_true_site_cities(self, net):
        dep = net.deployments[0]
        cities = net.true_site_cities(dep.prefixes[0])
        assert len(cities) == dep.entry.n_sites

    def test_true_site_cities_unicast_rejected(self, net):
        with pytest.raises(ValueError):
            net.true_site_cities(net.unicast_hosts[0].prefix)

    def test_outcome_for(self, net):
        dep = net.deployments[0]
        assert net.outcome_for(dep.prefixes[0]) is IcmpOutcome.ECHO_REPLY

    def test_registry_ownership(self, net):
        dep = net.deployments[3]
        owner = net.registry.owner_of(dep.prefixes[0])
        assert owner is not None
        assert owner.asn == dep.entry.asn
