"""Tests for hitlist generation and pruning."""

import pytest

from repro.internet.hitlist import Hitlist, HitlistEntry, generate_hitlist
from repro.internet.topology import RESP_REPLY, RESP_SILENT
from repro.net.addresses import slash24_of


class TestEntry:
    def test_never_alive_threshold(self):
        assert HitlistEntry(1, 256, -2).never_alive
        assert HitlistEntry(1, 256, -5).never_alive
        assert not HitlistEntry(1, 256, -1).never_alive
        assert not HitlistEntry(1, 256, 10).never_alive


class TestHitlist:
    def test_duplicate_prefix_rejected(self):
        e = HitlistEntry(1, 256, 1)
        with pytest.raises(ValueError):
            Hitlist([e, e])

    def test_pruned_removes_never_alive(self):
        entries = [HitlistEntry(1, 256, 5), HitlistEntry(2, 512, -3)]
        pruned = Hitlist(entries).pruned()
        assert len(pruned) == 1
        assert pruned[0].prefix == 1

    def test_without_prefixes(self):
        entries = [HitlistEntry(i, i * 256, 5) for i in range(5)]
        filtered = Hitlist(entries).without_prefixes([1, 3])
        assert [e.prefix for e in filtered] == [0, 2, 4]

    def test_coverage(self):
        entries = [HitlistEntry(i, i * 256 + 1, 5) for i in range(10)]
        hl = Hitlist(entries)
        assert hl.coverage_of(range(10)) == 1.0
        assert hl.coverage_of(range(20)) == 0.5

    def test_coverage_empty_routed_rejected(self):
        with pytest.raises(ValueError):
            Hitlist([HitlistEntry(1, 256, 1)]).coverage_of([])


class TestGeneration:
    def test_one_entry_per_target(self, tiny_internet):
        hl = generate_hitlist(tiny_internet)
        assert len(hl) == tiny_internet.n_targets

    def test_full_coverage_of_routed_space(self, tiny_internet):
        hl = generate_hitlist(tiny_internet)
        routed = [int(p) for p in tiny_internet.prefixes]
        assert hl.coverage_of(routed) == 1.0

    def test_representative_inside_its_slash24(self, tiny_internet):
        hl = generate_hitlist(tiny_internet)
        for e in list(hl)[:200]:
            assert slash24_of(e.address) == e.prefix
            assert 1 <= (e.address & 0xFF) <= 254

    def test_responsive_targets_get_positive_scores(self, tiny_internet):
        hl = generate_hitlist(tiny_internet)
        for e in hl:
            pos = tiny_internet.target_index(e.prefix)
            if tiny_internet.responsiveness[pos] == RESP_REPLY:
                assert e.score > 0

    def test_most_silent_targets_marked_never_alive(self, tiny_internet):
        hl = generate_hitlist(tiny_internet, stale_score_fraction=0.02)
        silent = stale = 0
        for e in hl:
            pos = tiny_internet.target_index(e.prefix)
            if tiny_internet.responsiveness[pos] == RESP_SILENT:
                silent += 1
                if not e.never_alive:
                    stale += 1
        assert silent > 0
        assert stale / silent < 0.1

    def test_stale_fraction_bounds(self, tiny_internet):
        with pytest.raises(ValueError):
            generate_hitlist(tiny_internet, stale_score_fraction=1.5)

    def test_deterministic(self, tiny_internet):
        a = generate_hitlist(tiny_internet, seed=4)
        b = generate_hitlist(tiny_internet, seed=4)
        assert [e.address for e in a] == [e.address for e in b]

    def test_pruning_shrinks_census_target_list(self, tiny_internet):
        hl = generate_hitlist(tiny_internet)
        assert len(hl.pruned()) < len(hl)
