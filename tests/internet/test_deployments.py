"""Tests for deployments and BGP catchments."""

import numpy as np
import pytest

from repro.geo.cities import default_city_db
from repro.geo.coords import GeoPoint
from repro.internet.catalog import TOP100_ENTRIES
from repro.internet.deployments import (
    AnycastDeployment,
    Replica,
    choose_replica_cities,
)


def make_deployment(n_sites=4, policy_sigma=0.0, seed=5) -> AnycastDeployment:
    db = default_city_db()
    cities = [db.get("New York"), db.get("London"), db.get("Tokyo"), db.get("Sydney"),
              db.get("Sao Paulo"), db.get("Johannesburg")][:n_sites]
    entry = TOP100_ENTRIES[0]
    replicas = [Replica(city=c, location=c.location) for c in cities]
    return AnycastDeployment(
        entry=entry,
        replicas=replicas,
        prefixes=list(range(100, 100 + entry.n_slash24)),
        policy_sigma=policy_sigma,
        catchment_seed=seed,
    )


class TestConstruction:
    def test_requires_replicas(self):
        dep = make_deployment()
        with pytest.raises(ValueError):
            AnycastDeployment(entry=dep.entry, replicas=[], prefixes=[1])

    def test_requires_prefixes(self):
        dep = make_deployment()
        with pytest.raises(ValueError):
            AnycastDeployment(entry=dep.entry, replicas=dep.replicas, prefixes=[])

    def test_alexa_prefixes_must_be_announced(self):
        dep = make_deployment()
        with pytest.raises(ValueError):
            AnycastDeployment(
                entry=dep.entry, replicas=dep.replicas, prefixes=[1], alexa_prefixes=[2]
            )

    def test_properties(self):
        dep = make_deployment(n_sites=3)
        assert dep.site_count == 3
        assert len(dep.site_cities) == 3
        assert dep.autonomous_system.asn == dep.entry.asn


class TestCatchment:
    def test_geographic_routing_when_sigma_zero(self):
        dep = make_deployment(policy_sigma=0.0)
        # A client in Paris must hit London, one in Osaka must hit Tokyo.
        idx = dep.catchment([48.86, 34.69], [2.35, 135.50])
        assert dep.replicas[idx[0]].city.name == "London"
        assert dep.replicas[idx[1]].city.name == "Tokyo"

    def test_deterministic(self):
        dep = make_deployment(policy_sigma=0.4)
        lats, lons = [10.0, 20.0, -30.0], [0.0, 100.0, -60.0]
        a = dep.catchment(lats, lons)
        b = dep.catchment(lats, lons)
        assert np.array_equal(a, b)

    def test_policy_noise_changes_some_mappings(self):
        geo = make_deployment(policy_sigma=0.0)
        noisy = make_deployment(policy_sigma=1.0, seed=12)
        rng = np.random.default_rng(0)
        lats = rng.uniform(-60, 60, 300)
        lons = rng.uniform(-180, 180, 300)
        a = geo.catchment(lats, lons)
        b = noisy.catchment(lats, lons)
        diff = (a != b).mean()
        assert 0.05 < diff < 0.9  # detours exist but geography still rules

    def test_serving_replica_single_client(self):
        dep = make_deployment(policy_sigma=0.0)
        replica = dep.serving_replica(GeoPoint(40.7, -74.0))
        assert replica.city.name == "New York"

    def test_client_on_site_served_locally(self):
        dep = make_deployment(policy_sigma=0.0)
        tokyo = dep.replicas[2]
        assert dep.serving_replica(tokyo.location) is tokyo


class TestChooseReplicaCities:
    def test_count_and_distinct(self):
        db = default_city_db()
        rng = np.random.default_rng(0)
        entry = TOP100_ENTRIES[0]
        cities = choose_replica_cities(entry, list(db.cities), rng)
        assert len(cities) == entry.n_sites
        assert len({c.key for c in cities}) == entry.n_sites

    def test_too_few_cities_rejected(self):
        db = default_city_db()
        rng = np.random.default_rng(0)
        entry = TOP100_ENTRIES[0]
        with pytest.raises(ValueError):
            choose_replica_cities(entry, list(db.cities)[:3], rng)
