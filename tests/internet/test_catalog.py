"""Tests for the deployment catalog — the paper-encoded facts must hold."""

import pytest

from repro.internet.catalog import (
    TOP100_ENTRIES,
    CatalogEntry,
    catalog_total_slash24,
    full_catalog,
    tail_entries,
)
from repro.net.asn import BusinessCategory


def entry(name: str) -> CatalogEntry:
    for e in TOP100_ENTRIES:
        if e.name == name:
            return e
    raise KeyError(name)


class TestStructure:
    def test_exactly_100_entries(self):
        assert len(TOP100_ENTRIES) == 100

    def test_ranks_are_1_to_100(self):
        assert [e.rank for e in TOP100_ENTRIES] == list(range(1, 101))

    def test_asns_unique(self):
        asns = [e.asn for e in TOP100_ENTRIES]
        assert len(set(asns)) == 100

    def test_names_unique(self):
        names = [e.name for e in TOP100_ENTRIES]
        assert len(set(names)) == 100

    def test_all_have_sites_and_prefixes(self):
        for e in TOP100_ENTRIES:
            assert e.n_sites >= 5, e.name  # top-100 cut is >= 5 replicas
            assert e.n_slash24 >= 1

    def test_software_names_resolve(self):
        from repro.net.services import SOFTWARE_CATALOG

        for e in TOP100_ENTRIES:
            for name in e.software:
                assert name in SOFTWARE_CATALOG, (e.name, name)

    def test_validation_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            CatalogEntry(1, 1, "X", "US", BusinessCategory.DNS, n_slash24=0, n_sites=1)
        with pytest.raises(ValueError):
            CatalogEntry(1, 1, "X", "US", BusinessCategory.DNS, n_slash24=1, n_sites=0)
        with pytest.raises(ValueError):
            CatalogEntry(1, 1, "X", "US", BusinessCategory.DNS, n_slash24=1,
                         n_sites=1, alexa_ip24=2)


class TestPaperFacts:
    def test_cloudflare_footprint(self):
        cf = entry("CLOUDFLARENET,US")
        assert cf.n_slash24 == 328  # paper Sec. 4.2
        assert cf.alexa_sites == 188  # paper Sec. 4.1
        assert cf.http_location_header == "CF-RAY"

    def test_google_footprint(self):
        g = entry("GOOGLE,US")
        assert g.n_slash24 == 102
        assert len(g.ports) == 9  # "Google with 9 open TCP ports"
        assert g.alexa_sites == 11

    def test_edgecast_footprint(self):
        ec = entry("EDGECAST,US")
        assert ec.n_slash24 == 37
        assert len(ec.ports) == 5
        assert ec.http_location_header == "Server"

    def test_prolexic_footprint(self):
        assert entry("PROLEXIC,US").n_slash24 == 21
        assert entry("PROLEXIC,US").alexa_sites == 10

    def test_cloudflare_edgecast_port_overlap(self):
        # Paper: in common only ports 53, 80 and 443, out of 22 total.
        cf, ec = set(entry("CLOUDFLARENET,US").ports), set(entry("EDGECAST,US").ports)
        assert cf & ec == {53, 80, 443}
        assert len(cf | ec) == 22
        assert len(cf) == 4 * len(ec)  # "CloudFlare using 4x more ports"

    def test_ovh_port_count(self):
        ovh = entry("OVH,FR")
        assert ovh.total_ports == 10_148  # paper Fig. 15

    def test_incapsula_port_count(self):
        assert entry("INCAPSULA,US").total_ports == 313

    def test_caida_members(self):
        # Paper Fig. 10: 8 ASes in the CAIDA top-100 own 19 anycast /24s.
        members = [e for e in TOP100_ENTRIES if e.caida_rank is not None and e.caida_rank <= 100]
        assert len(members) == 8
        assert sum(e.n_slash24 for e in members) == 19

    def test_alexa_members(self):
        # Paper Fig. 10: 242 /24s of 15 ASes host Alexa-100k websites.
        members = [e for e in TOP100_ENTRIES if e.alexa_sites > 0]
        assert len(members) == 15
        assert sum(e.alexa_ip24 for e in members) == 242

    def test_nsd_users(self):
        # Paper Sec. 4.3: Apple, K-root, L-root run NLnet Labs NSD.
        nsd = {e.name for e in TOP100_ENTRIES if "NLnet Labs NSD" in e.software}
        assert nsd == {"APPLE-ENGINEERING,US", "K-ROOT-SERVER,EU", "L-ROOT,US"}

    def test_ten_ases_with_ten_slash24(self):
        # Paper Fig. 13: about 10 ASes employ at least 10 subnets.
        big = [e for e in TOP100_ENTRIES if e.n_slash24 >= 10]
        assert 8 <= len(big) <= 14

    def test_dns_roughly_one_third(self):
        # Paper Fig. 11: DNS is about one third of anycast ASes.
        dns = sum(1 for e in TOP100_ENTRIES if e.category is BusinessCategory.DNS)
        assert 25 <= dns <= 45

    def test_total_footprint_near_paper(self):
        # Paper: 897 /24s across the top-100 ASes.
        total = catalog_total_slash24(TOP100_ENTRIES)
        assert 800 <= total <= 1000


class TestTail:
    def test_deterministic(self):
        assert tail_entries(50, seed=3) == tail_entries(50, seed=3)

    def test_seed_changes_output(self):
        assert tail_entries(50, seed=3) != tail_entries(50, seed=4)

    def test_count(self):
        assert len(tail_entries(123)) == 123

    def test_zero(self):
        assert tail_entries(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            tail_entries(-1)

    def test_tail_sites_below_cut(self):
        for e in tail_entries(200):
            assert 2 <= e.n_sites <= 4  # below the >= 5 replica cut

    def test_tail_asns_dont_collide_with_top100(self):
        top = {e.asn for e in TOP100_ENTRIES}
        tail = {e.asn for e in tail_entries(300)}
        assert not top & tail

    def test_full_catalog_totals(self):
        cat = full_catalog()
        assert len(cat) == 360
        # Paper: ~1,696 anycast /24s in ~346 ASes overall.
        assert 1400 <= catalog_total_slash24(cat) <= 1900
