"""Graceful-shutdown flag semantics (satellite of the drain fix)."""

import os
import signal
import threading

import pytest

from repro.exec.signals import ShutdownFlag, graceful_shutdown


class TestShutdownFlag:
    def test_starts_clear(self):
        flag = ShutdownFlag()
        assert not flag
        assert flag.signum == 0


class TestGracefulShutdown:
    def test_first_signal_sets_flag_instead_of_raising(self):
        with graceful_shutdown() as flag:
            os.kill(os.getpid(), signal.SIGINT)
            # Delivery happens at a bytecode boundary; this statement is one.
            assert bool(flag)
            assert flag.signum == signal.SIGINT

    def test_second_signal_raises(self):
        with graceful_shutdown() as flag:
            # raise_signal delivers synchronously, keeping the raise
            # deterministically inside the pytest.raises block.
            signal.raise_signal(signal.SIGINT)
            assert bool(flag)
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)

    def test_sigterm_also_drains(self):
        with graceful_shutdown() as flag:
            os.kill(os.getpid(), signal.SIGTERM)
            assert bool(flag)
            assert flag.signum == signal.SIGTERM

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGINT)
        with graceful_shutdown():
            assert signal.getsignal(signal.SIGINT) is not before
        assert signal.getsignal(signal.SIGINT) is before

    def test_non_main_thread_yields_unwired_flag(self):
        seen = {}

        def body():
            with graceful_shutdown() as flag:
                seen["flag"] = flag

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert isinstance(seen["flag"], ShutdownFlag)
        assert not seen["flag"]
