"""Unit tests for the process-free supervision machinery."""

import pytest

from repro.exec.errors import ReassignmentBudgetExceeded
from repro.exec.supervisor import (
    CircuitBreaker,
    ExecutionPolicy,
    ExecutionReport,
    ReassignmentLedger,
)
from repro.measurement.faults import (
    WorkerFaultInjector,
    WorkerFaultKind,
    WorkerFaultPlan,
)


class TestExecutionPolicy:
    def test_defaults_are_sane(self):
        policy = ExecutionPolicy()
        assert policy.workers == 2
        assert policy.n_target_shards == 1
        assert policy.deadline_s is None
        assert policy.worker_faults is None

    def test_default_budgets_scale_with_workers(self):
        policy = ExecutionPolicy(workers=4)
        assert policy.total_reassignment_budget == 4 * 4 + 8
        assert policy.respawn_budget == 2 * 4 + 2

    def test_explicit_budgets_win(self):
        policy = ExecutionPolicy(max_total_reassignments=5, max_respawns=1)
        assert policy.total_reassignment_budget == 5
        assert policy.respawn_budget == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"n_target_shards": 0},
            {"deadline_s": 0.0},
            {"liveness_timeout_s": 0.0},
            {"poll_interval_s": 0.0},
            {"prefetch": 0},
            {"max_reassignments_per_unit": -1},
            {"breaker_threshold": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)


class TestCircuitBreaker:
    def test_trips_exactly_once_at_threshold(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.record_failure("vp") is False
        assert breaker.record_failure("vp") is False
        assert breaker.record_failure("vp") is True
        assert breaker.record_failure("vp") is False  # already open
        assert breaker.is_open("vp")
        assert breaker.failures("vp") == 4

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("a")
        assert breaker.is_open("a")
        assert not breaker.is_open("b")
        assert breaker.open_keys == ["a"]

    def test_open_keys_sorted(self):
        breaker = CircuitBreaker(threshold=1)
        for key in ("z", "a", "m"):
            breaker.record_failure(key)
        assert breaker.open_keys == ["a", "m", "z"]


class TestReassignmentLedger:
    def test_per_unit_budget_enforced(self):
        ledger = ReassignmentLedger(per_unit_budget=2, total_budget=100)
        ledger.charge(7)
        ledger.charge(7)
        with pytest.raises(ReassignmentBudgetExceeded) as exc:
            ledger.charge(7)
        assert exc.value.unit_id == 7
        assert ledger.attempts(7) == 2

    def test_total_budget_enforced(self):
        ledger = ReassignmentLedger(per_unit_budget=10, total_budget=3)
        for unit_id in range(3):
            ledger.charge(unit_id)
        with pytest.raises(ReassignmentBudgetExceeded) as exc:
            ledger.charge(3)
        assert exc.value.unit_id is None
        assert ledger.total == 3


class TestExecutionReport:
    def test_to_dict_is_json_shaped(self):
        import json

        report = ExecutionReport(workers=2, n_units=8, n_shards=2)
        report.units_completed = 8
        report.breaker_open_vps = ["vp-1"]
        dumped = json.loads(json.dumps(report.finish().to_dict()))
        assert dumped["workers"] == 2
        assert dumped["units_completed"] == 8
        assert dumped["breaker_open_vps"] == ["vp-1"]
        assert dumped["wall_s"] >= 0.0


class TestWorkerFaultPlan:
    def test_disabled_by_default(self):
        assert not WorkerFaultPlan().enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerFaultPlan(dead_prob=1.5)
        with pytest.raises(ValueError):
            WorkerFaultPlan(dead_prob=0.7, wedged_prob=0.7)

    def test_explicit_ids_fire_on_first_task_only(self):
        plan = WorkerFaultPlan(dead_worker_ids=(1,), wedged_worker_ids=(2,))
        injector = WorkerFaultInjector(plan)
        assert injector.fault_for(1, 1) is WorkerFaultKind.DEAD_WORKER
        assert injector.fault_for(2, 1) is WorkerFaultKind.WEDGED_WORKER
        assert injector.fault_for(1, 2) is None
        assert injector.fault_for(0, 1) is None

    def test_probabilistic_draws_are_keyed(self):
        plan = WorkerFaultPlan(dead_prob=0.5, seed=42)
        a = WorkerFaultInjector(plan)
        b = WorkerFaultInjector(plan)
        draws = [(w, t) for w in range(4) for t in range(1, 6)]
        assert [a.fault_for(w, t) for w, t in draws] == [
            b.fault_for(w, t) for w, t in draws
        ]
        assert any(a.fault_for(w, t) is not None for w, t in draws)

    def test_uniform_splits_rate(self):
        plan = WorkerFaultPlan.uniform(0.3, seed=1)
        assert plan.enabled
        assert plan.dead_prob + plan.wedged_prob + plan.slow_prob == pytest.approx(0.3)
