"""Engine mechanics: dispatch, liveness, breakers, deadline, drain.

These tests drive :class:`ShardedExecutor` with a fake unit context (no
campaign, no numpy scans) so each supervision behaviour is observable in
isolation and in well under a second of injected fault time.  The
byte-determinism contract against the real campaign lives in
``tests/test_parallel_determinism.py``.
"""

import time

import pytest

from repro.exec.engine import ShardedExecutor
from repro.exec.errors import ReassignmentBudgetExceeded, WorkerLost
from repro.exec.plan import build_plan
from repro.exec.supervisor import (
    BREAKER_FAULT,
    DEADLINE_FAULT,
    ExecutionPolicy,
)
from repro.measurement.faults import WorkerFaultPlan

VPS = [(f"node-{i}", i, i, False) for i in range(4)]


class FakeContext:
    """Stand-in for UnitContext: units compute a tagged string result."""

    def __init__(self, units, fail_vps=(), delay_s=0.0, worker_faults=None):
        self.units = units
        self.fail_vps = set(fail_vps)
        self.delay_s = delay_s
        self.worker_faults = worker_faults

    def execute(self, unit_id):
        unit = self.units[unit_id]
        if self.delay_s:
            time.sleep(self.delay_s)
        if unit.vp_name in self.fail_vps:
            raise ValueError(f"poisoned input for {unit.vp_name}")
        return f"result:{unit.vp_name}:{unit.shard_index}"


def run_engine(policy, fail_vps=(), delay_s=0.0, vps=VPS, **run_kwargs):
    plan = build_plan(vps, n_shards=policy.n_target_shards)
    context = FakeContext(
        plan.units,
        fail_vps=fail_vps,
        delay_s=delay_s,
        worker_faults=policy.worker_faults,
    )
    return ShardedExecutor(policy).run(context, plan, **run_kwargs)


class TestInProcessEngine:
    def test_completes_every_vp(self):
        outcome = run_engine(ExecutionPolicy(workers=0))
        assert sorted(outcome.results) == [f"node-{i}" for i in range(4)]
        assert outcome.results["node-2"] == "result:node-2:0"
        assert outcome.failed == {}
        assert outcome.report.in_process
        assert outcome.report.units_completed == 4

    def test_breaker_trips_failing_vp_only(self):
        outcome = run_engine(
            ExecutionPolicy(workers=0, breaker_threshold=2), fail_vps=["node-1"]
        )
        assert outcome.failed == {"node-1": BREAKER_FAULT}
        assert "node-1" not in outcome.results
        assert len(outcome.results) == 3
        assert outcome.report.breaker_open_vps == ["node-1"]

    def test_deadline_fails_unfinished_vps(self):
        outcome = run_engine(
            ExecutionPolicy(workers=0, deadline_s=0.05), delay_s=0.04
        )
        assert outcome.report.deadline_hit
        assert outcome.failed
        assert all(tag == DEADLINE_FAULT for tag in outcome.failed.values())
        assert set(outcome.results) | set(outcome.failed) == {
            f"node-{i}" for i in range(4)
        }

    def test_should_stop_drains(self):
        calls = []

        def stop():
            calls.append(1)
            return len(calls) > 2

        outcome = run_engine(ExecutionPolicy(workers=0), should_stop=stop)
        assert outcome.report.interrupted
        assert len(outcome.results) < 4

    def test_vp_callback_false_stops(self):
        outcome = run_engine(
            ExecutionPolicy(workers=0), on_vp_complete=lambda name, result: False
        )
        assert outcome.report.interrupted
        assert len(outcome.results) == 1


class TestPoolEngine:
    POLICY = dict(liveness_timeout_s=2.0, poll_interval_s=0.02)

    def test_completes_every_vp(self):
        outcome = run_engine(ExecutionPolicy(workers=2, **self.POLICY))
        assert sorted(outcome.results) == [f"node-{i}" for i in range(4)]
        assert not outcome.report.in_process
        assert outcome.report.workers == 2
        assert outcome.report.heartbeats > 0

    def test_sharded_plan_merges_only_full_vps(self):
        # n_shards > 1 requires a real mergeable result; with the fake
        # context we only check the unit bookkeeping, not the merge.
        outcome = run_engine(
            ExecutionPolicy(workers=0, n_target_shards=1),
            vps=[("solo", 0, 0, False)],
        )
        assert outcome.results == {"solo": "result:solo:0"}

    def test_scan_errors_trip_breaker_not_ledger(self):
        outcome = run_engine(
            ExecutionPolicy(workers=2, breaker_threshold=2, **self.POLICY),
            fail_vps=["node-3"],
        )
        assert outcome.failed == {"node-3": BREAKER_FAULT}
        assert len(outcome.results) == 3
        assert outcome.report.reassignments == 0
        assert outcome.report.workers_lost == 0

    def test_dead_worker_is_reassigned_and_respawned(self):
        faults = WorkerFaultPlan(dead_worker_ids=(0,))
        outcome = run_engine(
            ExecutionPolicy(workers=2, worker_faults=faults, **self.POLICY)
        )
        assert sorted(outcome.results) == [f"node-{i}" for i in range(4)]
        assert outcome.report.workers_lost == 1
        assert outcome.report.workers_respawned >= 1
        assert outcome.report.reassignments >= 1

    def test_wedged_worker_is_detected_and_replaced(self):
        faults = WorkerFaultPlan(wedged_worker_ids=(0,), wedge_seconds=30.0)
        outcome = run_engine(
            ExecutionPolicy(
                workers=2,
                worker_faults=faults,
                liveness_timeout_s=0.25,
                poll_interval_s=0.02,
            )
        )
        assert sorted(outcome.results) == [f"node-{i}" for i in range(4)]
        assert outcome.report.workers_wedged == 1
        assert outcome.report.reassignments >= 1

    def test_slow_worker_is_waited_out_not_killed(self):
        faults = WorkerFaultPlan(slow_worker_ids=(0,), slow_seconds=0.6)
        outcome = run_engine(
            ExecutionPolicy(
                workers=2,
                worker_faults=faults,
                liveness_timeout_s=0.25,
                poll_interval_s=0.02,
            )
        )
        assert sorted(outcome.results) == [f"node-{i}" for i in range(4)]
        assert outcome.report.workers_wedged == 0
        assert outcome.report.workers_lost == 0

    def test_relentless_deaths_exhaust_budgets(self):
        faults = WorkerFaultPlan(dead_prob=1.0)
        with pytest.raises((ReassignmentBudgetExceeded, WorkerLost)):
            run_engine(
                ExecutionPolicy(
                    workers=2,
                    worker_faults=faults,
                    max_reassignments_per_unit=2,
                    max_respawns=3,
                    **self.POLICY,
                )
            )

    def test_deadline_in_pool_mode(self):
        outcome = run_engine(
            ExecutionPolicy(workers=2, deadline_s=0.1, **self.POLICY),
            delay_s=0.2,
        )
        assert outcome.report.deadline_hit
        assert all(tag == DEADLINE_FAULT for tag in outcome.failed.values())

    def test_empty_plan_is_a_noop(self):
        outcome = run_engine(ExecutionPolicy(workers=2, **self.POLICY), vps=[])
        assert outcome.results == {}
        assert outcome.failed == {}
        assert outcome.report.n_units == 0
