"""Worker metric shipping: merged totals must equal serial totals.

Forked workers install a fresh registry after fork and ship its snapshot
back on shutdown; the parent merges them.  Because every observation is
an integer or a deterministic simulated quantity, the merged parent
registry must equal what an in-process (serial) run of the same work
records — the satellite contract of the telemetry PR.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.census.combine import RttMatrix
from repro.census.fastpath import analyze_matrix_fast
from repro.core.igreedy import IGreedyConfig
from repro.exec import ExecutionPolicy
from repro.geo.cities import default_city_db
from repro.geo.coords import GeoPoint
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.faults import WorkerFaultPlan
from repro.measurement.platform import planetlab_platform
from repro.obs import MetricsRegistry, use_metrics


@pytest.fixture(scope="module")
def internet():
    return SyntheticInternet(
        InternetConfig(seed=7, n_unicast_slash24=250, tail_deployments=8)
    )


@pytest.fixture(scope="module")
def platform():
    return planetlab_platform(count=10, seed=11)


def _census_metrics(internet, platform, workers, worker_faults=None):
    policy = ExecutionPolicy(workers=workers)
    if worker_faults is not None:
        policy = ExecutionPolicy(
            workers=workers,
            worker_faults=worker_faults,
            liveness_timeout_s=2.0,
            poll_interval_s=0.02,
        )
    registry = MetricsRegistry()
    with use_metrics(registry):
        campaign = CensusCampaign(
            internet, platform, seed=99, executor=policy
        )
        campaign.run_precensus()
        census = campaign.run_census(availability=0.85)
    return registry.snapshot(), census


def _dense_matrix():
    rng = np.random.default_rng(17)
    n_targets, n_vps = 40, 10
    lats = rng.uniform(-60.0, 60.0, size=n_vps)
    lons = rng.uniform(-170.0, 170.0, size=n_vps)
    rtt = rng.choice([2.0, 5.0, 12.0, 40.0, 90.0, 220.0], size=(n_targets, n_vps))
    rtt = np.where(rng.random(rtt.shape) < 0.2, np.nan, rtt).astype(np.float32)
    return RttMatrix(
        prefixes=np.arange(100, 100 + n_targets, dtype=np.uint32),
        vp_names=[f"vp-{i:02d}" for i in range(n_vps)],
        vp_locations=[GeoPoint(float(a), float(b)) for a, b in zip(lats, lons)],
        rtt_ms=rtt,
        sample_count=(~np.isnan(rtt)).astype(np.uint8),
    )


class TestExecPoolMetrics:
    def test_forked_workers_equal_in_process(self, internet, platform):
        serial, census_serial = _census_metrics(internet, platform, workers=0)
        pooled, census_pooled = _census_metrics(internet, platform, workers=3)
        # Same bytes (the old invariant)...
        assert census_serial.records.checksum() == census_pooled.records.checksum()
        # ...and now the same unit-level metric totals: the in-worker
        # counters came home via shipped snapshots.
        for name in ("exec_unit_scans", "exec_unit_probes"):
            assert serial["counters"][name] > 0
            assert pooled["counters"][name] == serial["counters"][name], name
        # Parent-side campaign metrics agree too (simulated, deterministic).
        assert pooled["counters"]["vps_ok"] == serial["counters"]["vps_ok"]
        assert (
            pooled["histograms"]["vp_scan_duration_hours"]
            == serial["histograms"]["vp_scan_duration_hours"]
        )

    def test_worker_counts_independent_of_pool_size(self, internet, platform):
        base, _ = _census_metrics(internet, platform, workers=2)
        for workers in (1, 4):
            snap, _ = _census_metrics(internet, platform, workers=workers)
            assert (
                snap["counters"]["exec_unit_scans"]
                == base["counters"]["exec_unit_scans"]
            )

    def test_dead_worker_does_not_hang_the_drain(self, internet, platform):
        # A killed worker never ships its snapshot; the drain must prune
        # it instead of blocking, and the census bytes stay identical.
        serial, census_serial = _census_metrics(internet, platform, workers=0)
        faulty, census_faulty = _census_metrics(
            internet,
            platform,
            workers=3,
            worker_faults=WorkerFaultPlan(dead_worker_ids=(0,)),
        )
        assert census_serial.records.checksum() == census_faulty.records.checksum()
        # Units completed by the dead worker were reassigned; the scans
        # that made it into the census are at least the serial count.
        assert (
            faulty["counters"]["exec_unit_scans"]
            >= serial["counters"]["exec_unit_scans"] - 1
        )


class TestFastpathMetrics:
    def _analyze_metrics(self, matrix, workers):
        registry = MetricsRegistry()
        with use_metrics(registry):
            result = analyze_matrix_fast(
                matrix,
                city_db=default_city_db(),
                config=IGreedyConfig(engine="fast"),
                workers=workers,
            )
        snap = registry.snapshot()
        # Chunk accounting exists only in pool mode; drop it so the
        # science-metric comparison is exact.
        snap["counters"] = {
            k: v
            for k, v in snap["counters"].items()
            if not k.startswith("analysis_chunks")
        }
        return snap, result

    def test_pool_metrics_equal_serial(self):
        matrix = _dense_matrix()
        serial, result_serial = self._analyze_metrics(matrix, workers=0)
        assert result_serial.results, "fixture must contain detected targets"
        assert serial["histograms"]["igreedy_iterations"]["count"] > 0
        for workers in (1, 3):
            pooled, result_pooled = self._analyze_metrics(matrix, workers=workers)
            assert list(result_pooled.results) == list(result_serial.results)
            assert pooled == serial, f"workers={workers} metrics diverge from serial"
