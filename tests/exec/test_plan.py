"""Unit tests for deterministic work partitioning and canonical merge."""

import numpy as np
import pytest

from repro.exec.plan import (
    ShardPlan,
    WorkUnit,
    build_plan,
    merge_vp_shards,
    shard_target_mask,
)

VPS = [
    ("node-a", 3, 0, False),
    ("node-b", 7, 1, True),
    ("node-c", 1, 2, False),
]


class TestBuildPlan:
    def test_unsharded_plan_is_one_unit_per_vp(self):
        plan = build_plan(VPS, n_shards=1)
        assert len(plan) == 3
        assert plan.n_shards == 1
        assert [u.vp_name for u in plan.units] == ["node-a", "node-b", "node-c"]
        assert all(u.shard_index == 0 and u.n_shards == 1 for u in plan.units)

    def test_unit_ids_are_canonical_positions(self):
        plan = build_plan(VPS, n_shards=4)
        assert [u.unit_id for u in plan.units] == list(range(12))

    def test_order_is_vp_major_shard_minor(self):
        plan = build_plan(VPS, n_shards=2)
        assert [(u.vp_name, u.shard_index) for u in plan.units] == [
            ("node-a", 0),
            ("node-a", 1),
            ("node-b", 0),
            ("node-b", 1),
            ("node-c", 0),
            ("node-c", 1),
        ]

    def test_units_carry_vp_identity(self):
        plan = build_plan(VPS, n_shards=2)
        unit = plan.units_of("node-b")[1]
        assert unit.platform_index == 7
        assert unit.census_vp_index == 1
        assert unit.degraded is True
        assert unit.shard_index == 1

    def test_same_input_same_plan(self):
        assert build_plan(VPS, n_shards=3) == build_plan(VPS, n_shards=3)

    def test_vp_names_preserve_census_order(self):
        assert build_plan(VPS, n_shards=2).vp_names == ["node-a", "node-b", "node-c"]

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            build_plan(VPS, n_shards=0)


class TestShardTargetMask:
    def test_masks_partition_the_target_space(self):
        n, shards = 103, 4
        masks = [shard_target_mask(n, i, shards) for i in range(shards)]
        total = np.zeros(n, dtype=int)
        for mask in masks:
            total += mask.astype(int)
        assert (total == 1).all()

    def test_masks_are_balanced_within_one(self):
        sizes = [int(shard_target_mask(103, i, 4).sum()) for i in range(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_covers_everything(self):
        assert shard_target_mask(50, 0, 1).all()

    def test_rejects_out_of_range_shard(self):
        with pytest.raises(ValueError):
            shard_target_mask(10, 3, 3)


class TestMergeVpShards:
    def _scan_shard(self, campaign, shard_index, n_shards):
        return campaign._scan_vp(
            0,
            census_id=1,
            probe_mask=None,
            shard_index=shard_index,
            n_shards=n_shards,
        )

    def test_single_shard_passes_through(self):
        sentinel = object()
        assert merge_vp_shards({0: sentinel}) is sentinel

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_vp_shards({})

    def test_merge_is_completion_order_independent(self, tiny_campaign):
        shards = {i: self._scan_shard(tiny_campaign, i, 3) for i in range(3)}
        forward = merge_vp_shards(dict(sorted(shards.items())))
        backward = merge_vp_shards(dict(sorted(shards.items(), reverse=True)))
        assert forward.records.checksum() == backward.records.checksum()
        assert forward.duration_hours == backward.duration_hours
        assert forward.drop_rate == backward.drop_rate

    def test_merged_summary_recombines_exactly(self, tiny_campaign):
        shards = {i: self._scan_shard(tiny_campaign, i, 3) for i in range(3)}
        merged = merge_vp_shards(shards)
        assert len(merged.records) == sum(len(s.records) for s in shards.values())
        assert merged.probes_sent == sum(s.probes_sent for s in shards.values())
        assert merged.duration_hours == pytest.approx(
            sum(s.duration_hours for s in shards.values())
        )
        expected = sum(s.replies_expected for s in shards.values())
        dropped = sum(s.replies_dropped for s in shards.values())
        assert merged.drop_rate == pytest.approx(dropped / max(expected, 1))
