"""Gao-Rexford propagation: preference, stability, leaks, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bgp import (
    CLASS_CUSTOMER,
    Announcement,
    BgpConfig,
    build_as_graph,
    propagate,
)
from repro.bgp.propagation import CLASS_NONE, SCOPE_CUSTOMER_CONE
from repro.geo.cities import default_city_db


@pytest.fixture(scope="module")
def graph():
    return build_as_graph(
        BgpConfig(n_ases=256, n_tier1=6), seed=2015,
        city_db=default_city_db(),
    )


@pytest.fixture(scope="module")
def origin(graph):
    return int(graph.stub_indices()[0])


def test_single_origin_reaches_everyone(graph, origin):
    out = propagate(graph, [Announcement(origin_as=origin, site=0)])
    assert out.reachable.all()
    assert (out.site == 0).all()
    assert (out.route_class < CLASS_NONE).all()
    # The origin holds its own route at zero length, customer class.
    assert out.path_len[origin] == 0
    assert out.route_class[origin] == CLASS_CUSTOMER
    assert not out.via_leak.any()


def test_determinism(graph, origin):
    anns = [
        Announcement(origin_as=origin, site=0),
        Announcement(origin_as=int(graph.stub_indices()[-1]), site=1),
    ]
    a, b = propagate(graph, anns), propagate(graph, anns)
    for field in ("site", "path_len", "route_class", "announcement"):
        assert np.array_equal(getattr(a, field), getattr(b, field))


def test_prepend_monotonically_sheds_catchment(graph, origin):
    rival = int(graph.stub_indices()[-1])
    captured = []
    for prepend in (0, 2, 4, 8):
        out = propagate(graph, [
            Announcement(origin_as=origin, site=0, prepend=prepend),
            Announcement(origin_as=rival, site=1),
        ])
        captured.append(int(out.captured_by(0).sum()))
    assert captured == sorted(captured, reverse=True)
    assert captured[0] > captured[-1]


def test_append_stability(graph, origin):
    """Injecting an attacker never reshuffles the un-captured part."""
    base = propagate(graph, [Announcement(origin_as=origin, site=0)])
    attacker = int(graph.infrastructure_indices()[0])
    out = propagate(graph, [
        Announcement(origin_as=origin, site=0),
        Announcement(origin_as=attacker, site=1),
    ])
    keep = out.captured_by(0)
    assert np.array_equal(out.site[keep], base.site[keep])
    assert np.array_equal(out.path_len[keep], base.path_len[keep])
    # The attacker captured someone (it holds its own route at least).
    assert out.captured_by(1).any()


def test_customer_cone_scope_limits_export(graph):
    """A cone-scoped announcement stays inside the customer cone."""
    transit = next(
        int(a) for a in graph.infrastructure_indices()
        if len(graph.customers_of(int(a)))
    )
    cone = propagate(graph, [
        Announcement(origin_as=transit, site=0, scope=SCOPE_CUSTOMER_CONE)
    ])
    full = propagate(graph, [Announcement(origin_as=transit, site=0)])
    assert int(cone.reachable.sum()) < int(full.reachable.sum())
    assert cone.reachable[transit]


def test_leak_widens_a_cone_announcement(graph):
    transit = next(
        int(a) for a in graph.infrastructure_indices()
        if len(graph.customers_of(int(a)))
    )
    held = propagate(graph, [
        Announcement(origin_as=transit, site=0, scope=SCOPE_CUSTOMER_CONE)
    ])
    leaked = propagate(graph, [
        Announcement(
            origin_as=transit, site=0, scope=SCOPE_CUSTOMER_CONE, leak=True
        )
    ])
    assert int(leaked.reachable.sum()) > int(held.reachable.sum())
    # Newly reached ASes learned the route through the leak.
    fresh = leaked.reachable & ~held.reachable
    assert leaked.via_leak[fresh].all()


def test_origin_out_of_range_rejected(graph):
    with pytest.raises(ValueError):
        propagate(graph, [Announcement(origin_as=graph.n_ases, site=0)])


def test_bad_scope_rejected():
    with pytest.raises(ValueError):
        Announcement(origin_as=0, site=0, scope="everywhere")
