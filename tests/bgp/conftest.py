"""Fixtures for the BGP routing plane and routing-chaos suites.

Everything here is keyed and session-cached: one small BGP-routed
internet (16 VPs so propagation and analysis run in milliseconds), one
baseline census matrix, and a cloner so chaos tests can perturb private
byte-identical copies.  The longitudinal service redraws nothing between
epochs in keyed mode; cloning the baseline matrix reproduces that regime
for direct-API tests (re-running the campaign would redraw per-cell
noise and drown the injected signal in background churn).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.census.analysis import analyze_matrix
from repro.census.combine import RttMatrix, matrix_from_census
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform


@pytest.fixture(scope="session")
def bgp_internet() -> SyntheticInternet:
    """A small internet routed by the real BGP plane."""
    return SyntheticInternet(
        InternetConfig(
            seed=11,
            n_unicast_slash24=120,
            tail_deployments=6,
            routing="bgp",
        )
    )


@pytest.fixture(scope="session")
def bgp_platform(bgp_internet):
    return planetlab_platform(
        count=16, seed=41, city_db=bgp_internet.city_db
    )


@pytest.fixture(scope="session")
def bgp_matrix(bgp_internet, bgp_platform) -> RttMatrix:
    """The keyed baseline census matrix over the BGP internet."""
    campaign = CensusCampaign(
        bgp_internet, bgp_platform, seed=500, noise="keyed"
    )
    return matrix_from_census(campaign.run_census(availability=1.0))


@pytest.fixture(scope="session")
def bgp_baseline(bgp_internet, bgp_matrix):
    return analyze_matrix(bgp_matrix, city_db=bgp_internet.city_db)


@pytest.fixture()
def clone_matrix():
    """Deep-copy an RttMatrix so a test can perturb it privately."""

    def clone(m: RttMatrix) -> RttMatrix:
        return RttMatrix(
            prefixes=m.prefixes.copy(),
            vp_names=list(m.vp_names),
            vp_locations=list(m.vp_locations),
            rtt_ms=m.rtt_ms.copy(),
            sample_count=m.sample_count.copy(),
        )

    return clone
