"""Routing-chaos injection: inertness, determinism, per-kind semantics,
and the capture edge cases (zero capture, full capture, co-located
attacker)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bgp import (
    RouteEvent,
    RouteEventInjector,
    RouteEventKind,
    RouteEventPlan,
)

UNICAST_VICTIM = 1572864  # a unicast /24 homed near Kinshasa
ANYCAST_VICTIM = 65536    # a wide catalog deployment (45 sites)
# No vantage point of the 16-VP roster prefers an origin homed here.
NOWHERE_CITY = "Ulaanbaatar"


def plan_for(kind, seed=1, **kw):
    return RouteEventPlan.single(
        RouteEvent(kind=kind, epoch=1, **kw), seed=seed
    )


def rows_equal(a, b):
    return (
        list(a.prefixes) == list(b.prefixes)
        and np.array_equal(a.rtt_ms, b.rtt_ms, equal_nan=True)
    )


def test_empty_plan_is_inert(bgp_internet, bgp_matrix, clone_matrix):
    plan = RouteEventPlan()
    assert not plan.enabled
    m = clone_matrix(bgp_matrix)
    out, records = RouteEventInjector(plan, bgp_internet).perturb(m, epoch=1)
    assert out is m
    assert records == []


def test_inactive_epoch_is_inert(bgp_internet, bgp_matrix, clone_matrix):
    plan = plan_for(RouteEventKind.MOAS_HIJACK, victim_prefix=UNICAST_VICTIM)
    m = clone_matrix(bgp_matrix)
    out, records = RouteEventInjector(plan, bgp_internet).perturb(m, epoch=5)
    assert out is m
    assert records == []
    assert rows_equal(out, bgp_matrix)


def test_injection_is_deterministic(bgp_internet, bgp_matrix, clone_matrix):
    plan = plan_for(RouteEventKind.MOAS_HIJACK, victim_prefix=UNICAST_VICTIM)
    outs = []
    for _ in range(2):
        inj = RouteEventInjector(plan, bgp_internet)
        out, records = inj.perturb(clone_matrix(bgp_matrix), epoch=1)
        outs.append((out, records))
    assert rows_equal(outs[0][0], outs[1][0])
    assert outs[0][1] == outs[1][1]


def test_moas_touches_only_the_victim_row(bgp_internet, bgp_matrix, clone_matrix):
    plan = plan_for(RouteEventKind.MOAS_HIJACK, victim_prefix=UNICAST_VICTIM)
    out, records = RouteEventInjector(plan, bgp_internet).perturb(
        clone_matrix(bgp_matrix), epoch=1
    )
    rec = records[0]
    assert rec["applied"]
    assert rec["prefix"] == UNICAST_VICTIM
    assert 0 < rec["captured_vps"] <= bgp_matrix.n_vps
    row = bgp_matrix.row_of(UNICAST_VICTIM)
    same = np.isclose(out.rtt_ms, bgp_matrix.rtt_ms, equal_nan=True)
    assert same[np.arange(len(same)) != row].all()
    assert not same[row].all()


def test_zero_capture_attacker_applies_nothing(
    bgp_internet, bgp_matrix, clone_matrix
):
    plan = plan_for(
        RouteEventKind.MOAS_HIJACK,
        victim_prefix=UNICAST_VICTIM,
        attacker_city=NOWHERE_CITY,
    )
    out, records = RouteEventInjector(plan, bgp_internet).perturb(
        clone_matrix(bgp_matrix), epoch=1
    )
    rec = records[0]
    assert rec["applied"] is False
    assert rec["captured_vps"] == 0
    assert "captured no vantage points" in rec["reason"]
    assert rows_equal(out, bgp_matrix)


def test_subprefix_captures_every_vantage_point(
    bgp_internet, bgp_matrix, clone_matrix
):
    """A more-specific route wins everywhere it propagates — full roster."""
    plan = plan_for(
        RouteEventKind.SUBPREFIX_HIJACK,
        victim_prefix=ANYCAST_VICTIM,
        attacker_city=NOWHERE_CITY,
    )
    out, records = RouteEventInjector(plan, bgp_internet).perturb(
        clone_matrix(bgp_matrix), epoch=1
    )
    rec = records[0]
    assert rec["applied"]
    assert rec["vp_fraction"] == 1.0
    assert rec["captured_vps"] == bgp_matrix.n_vps
    row = bgp_matrix.row_of(ANYCAST_VICTIM)
    assert not np.isclose(
        out.rtt_ms[row], bgp_matrix.rtt_ms[row], equal_nan=True
    ).all()


def test_explicit_attacker_city_is_honored(
    bgp_internet, bgp_matrix, clone_matrix
):
    """A co-located attacker is accepted verbatim, not re-drawn."""
    plan = plan_for(
        RouteEventKind.MOAS_HIJACK,
        victim_prefix=UNICAST_VICTIM,
        attacker_city="Kinshasa",
    )
    _, records = RouteEventInjector(plan, bgp_internet).perturb(
        clone_matrix(bgp_matrix), epoch=1
    )
    assert records[0]["attacker_city"] == "Kinshasa"
    assert records[0]["applied"]


def test_flap_blanks_a_subset(bgp_internet, bgp_matrix, clone_matrix):
    plan = plan_for(
        RouteEventKind.FLAP, victim_prefix=UNICAST_VICTIM, flap_loss=0.5
    )
    out, records = RouteEventInjector(plan, bgp_internet).perturb(
        clone_matrix(bgp_matrix), epoch=1
    )
    rec = records[0]
    assert rec["applied"]
    row = out.row_of(UNICAST_VICTIM)
    lost = np.isnan(out.rtt_ms[row]) & ~np.isnan(
        bgp_matrix.rtt_ms[bgp_matrix.row_of(UNICAST_VICTIM)]
    )
    assert int(lost.sum()) == rec["lost_vps"] > 0
    assert (out.sample_count[row, lost] == 0).all()


def test_withdrawal_removes_the_row(bgp_internet, bgp_matrix, clone_matrix):
    plan = plan_for(RouteEventKind.WITHDRAWAL, victim_prefix=UNICAST_VICTIM)
    out, records = RouteEventInjector(plan, bgp_internet).perturb(
        clone_matrix(bgp_matrix), epoch=1
    )
    assert records[0]["applied"]
    assert UNICAST_VICTIM not in set(int(p) for p in out.prefixes)
    assert out.rtt_ms.shape[0] == bgp_matrix.rtt_ms.shape[0] - 1


def test_engineering_refuses_unicast_victims(
    bgp_internet, bgp_matrix, clone_matrix
):
    plan = plan_for(
        RouteEventKind.PREPEND, victim_prefix=UNICAST_VICTIM, prepend=4
    )
    out, records = RouteEventInjector(plan, bgp_internet).perturb(
        clone_matrix(bgp_matrix), epoch=1
    )
    rec = records[0]
    assert rec["applied"] is False
    assert "unicast" in rec["reason"]
    assert rows_equal(out, bgp_matrix)


def test_keyed_victim_and_attacker_draws(bgp_internet, bgp_matrix, clone_matrix):
    """Unpinned events resolve victims/attackers from the plan seed."""
    recs = {}
    for seed in (1, 3):
        plan = RouteEventPlan.single(
            RouteEvent(kind=RouteEventKind.MOAS_HIJACK, epoch=1), seed=seed
        )
        _, records = RouteEventInjector(plan, bgp_internet).perturb(
            clone_matrix(bgp_matrix), epoch=1
        )
        recs[seed] = records[0]
    assert recs[1]["applied"] and recs[3]["applied"]
    assert (
        recs[1]["prefix"],
        recs[1]["attacker_city"],
    ) != (
        recs[3]["prefix"],
        recs[3]["attacker_city"],
    )


def test_duration_covers_multiple_epochs(bgp_internet, bgp_matrix, clone_matrix):
    plan = RouteEventPlan.single(
        RouteEvent(
            kind=RouteEventKind.MOAS_HIJACK,
            epoch=1,
            duration=2,
            victim_prefix=UNICAST_VICTIM,
        ),
        seed=1,
    )
    inj = RouteEventInjector(plan, bgp_internet)
    for epoch, active in ((0, False), (1, True), (2, True), (3, False)):
        m = clone_matrix(bgp_matrix)
        out, records = inj.perturb(m, epoch=epoch)
        assert bool(records) is active
