"""Paper-headline invariance: the BGP routing plane changes *catchments*,
not the census's aggregate story.

The paper's characterization (how many prefixes are anycast, how many
replicas they expose, which deployments are the big ones) must not
depend on whether catchments come from the geographic heuristic or from
Gao-Rexford propagation — and ``routing="geo"`` must stay byte-identical
to builds that predate the BGP plane."""

from __future__ import annotations

import numpy as np
import pytest

from repro.census.analysis import analyze_matrix
from repro.census.combine import matrix_from_census
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform


def _census(routing: str):
    internet = SyntheticInternet(
        InternetConfig(
            seed=7,
            n_unicast_slash24=600,
            tail_deployments=20,
            routing=routing,
        )
    )
    platform = planetlab_platform(count=60, seed=11, city_db=internet.city_db)
    campaign = CensusCampaign(internet, platform, seed=99, noise="keyed")
    matrix = matrix_from_census(campaign.run_census(availability=1.0))
    analysis = analyze_matrix(matrix, city_db=internet.city_db)
    return internet, matrix, analysis


@pytest.fixture(scope="module")
def pair():
    geo = _census("geo")
    bgp = _census("bgp")
    return {"geo": geo, "bgp": bgp}


def replica_counts(analysis):
    return {
        p: r.replica_count for p, r in analysis.results.items() if r.is_anycast
    }


def test_same_targets_probed(pair):
    (_, mg, _), (_, mb, _) = pair["geo"], pair["bgp"]
    assert list(mg.prefixes) == list(mb.prefixes)


def test_anycast_count_invariant(pair):
    ng = pair["geo"][2].n_anycast
    nb = pair["bgp"][2].n_anycast
    assert abs(ng - nb) / ng <= 0.05


def test_anycast_set_invariant(pair):
    sg = set(replica_counts(pair["geo"][2]))
    sb = set(replica_counts(pair["bgp"][2]))
    jaccard = len(sg & sb) / len(sg | sb)
    assert jaccard >= 0.90


def test_replica_cdf_invariant(pair):
    cg = list(replica_counts(pair["geo"][2]).values())
    cb = list(replica_counts(pair["bgp"][2]).values())
    for q in (25, 50, 75, 90, 99):
        assert abs(np.percentile(cg, q) - np.percentile(cb, q)) <= 3.0


def test_replica_rank_ordering_invariant(pair):
    """Detected replica counts rank prefixes the same way in both modes."""
    cg = replica_counts(pair["geo"][2])
    cb = replica_counts(pair["bgp"][2])
    common = sorted(set(cg) & set(cb))
    x = np.array([cg[p] for p in common], dtype=float)
    y = np.array([cb[p] for p in common], dtype=float)
    rx = np.argsort(np.argsort(x))
    ry = np.argsort(np.argsort(y))
    rho = float(np.corrcoef(rx, ry)[0, 1])
    assert rho >= 0.6


def test_true_largest_deployments_rank_high_in_both_modes(pair):
    """The top true deployments surface above the median in either plane."""
    for routing in ("geo", "bgp"):
        internet, _, analysis = pair[routing]
        counts = replica_counts(analysis)
        median = float(np.median(list(counts.values())))
        top = sorted(internet.deployments, key=lambda d: -d.site_count)[:10]
        ranked_high = 0
        for dep in top:
            observed = [
                counts[int(p)] for p in dep.prefixes if int(p) in counts
            ]
            if observed and max(observed) >= median:
                ranked_high += 1
        assert ranked_high >= 6, routing


def test_geo_mode_is_byte_stable_after_bgp_ran(pair):
    """Building the BGP plane must not perturb a geo-mode census."""
    _, mg, _ = pair["geo"]
    _, mg2, _ = _census("geo")
    assert list(mg.prefixes) == list(mg2.prefixes)
    assert np.array_equal(mg.rtt_ms, mg2.rtt_ms, equal_nan=True)
    assert np.array_equal(mg.sample_count, mg2.sample_count)
