"""End-to-end chaos matrix: every above-floor injected incident is
flagged with the right typed verdict, and every benign or below-floor
event raises zero alarms.

The perturbed census is a byte-identical clone of the keyed baseline —
the longitudinal-service regime, where nothing but the injected event
moves between epochs.  The injected events and their expected verdicts
were validated against this exact world (seed=11 internet, 16 VPs,
campaign seed=500)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bgp import (
    RouteEvent,
    RouteEventInjector,
    RouteEventKind,
    RouteEventPlan,
)
from repro.census.analysis import analyze_matrix
from repro.census.hijack import RoutingVerdict, classify_routing_changes

UNICAST_VICTIM = 1572864
ANYCAST_VICTIM = 65536


@pytest.fixture()
def run_chaos(bgp_internet, bgp_matrix, bgp_baseline, clone_matrix):
    """Inject one event into a clone of the baseline and classify."""

    def run(event: RouteEvent, seed: int = 1):
        plan = RouteEventPlan.single(event, seed=seed)
        perturbed, records = RouteEventInjector(plan, bgp_internet).perturb(
            clone_matrix(bgp_matrix), epoch=event.epoch
        )
        current = analyze_matrix(perturbed, city_db=bgp_internet.city_db)
        verdicts = classify_routing_changes(
            bgp_baseline,
            current,
            baseline_matrix=bgp_matrix,
            current_matrix=perturbed,
        )
        return records, verdicts

    return run


def alarms(verdicts):
    return [v for v in verdicts if v.is_alarm]


def on_prefix(verdicts, prefix):
    return [v for v in verdicts if v.prefix == prefix]


def test_clean_diff_raises_no_alarms(
    bgp_internet, bgp_matrix, bgp_baseline, clone_matrix
):
    current = analyze_matrix(
        clone_matrix(bgp_matrix), city_db=bgp_internet.city_db
    )
    verdicts = classify_routing_changes(
        bgp_baseline,
        current,
        baseline_matrix=bgp_matrix,
        current_matrix=clone_matrix(bgp_matrix),
    )
    assert alarms(verdicts) == []


@pytest.mark.parametrize("seed", [1, 3, 4])
def test_moas_hijack_is_flagged(run_chaos, seed):
    records, verdicts = run_chaos(
        RouteEvent(
            kind=RouteEventKind.MOAS_HIJACK,
            epoch=1,
            victim_prefix=UNICAST_VICTIM,
        ),
        seed=seed,
    )
    assert records[0]["applied"]
    hit = on_prefix(verdicts, UNICAST_VICTIM)
    assert [v.verdict for v in hit] == [RoutingVerdict.HIJACK]
    assert hit[0].confidence >= 0.7
    # No collateral alarms on untouched prefixes.
    assert all(v.prefix == UNICAST_VICTIM for v in alarms(verdicts))


def test_subprefix_capture_is_flagged(run_chaos):
    records, verdicts = run_chaos(
        RouteEvent(
            kind=RouteEventKind.SUBPREFIX_HIJACK,
            epoch=1,
            victim_prefix=ANYCAST_VICTIM,
            attacker_city="Ulaanbaatar",
        )
    )
    assert records[0]["vp_fraction"] == 1.0
    hit = on_prefix(verdicts, ANYCAST_VICTIM)
    assert [v.verdict for v in hit] == [RoutingVerdict.HIJACK]
    assert "subprefix-capture" in hit[0].detail
    assert all(v.prefix == ANYCAST_VICTIM for v in alarms(verdicts))


def test_route_leak_is_flagged_as_leak(run_chaos):
    records, verdicts = run_chaos(
        RouteEvent(
            kind=RouteEventKind.ROUTE_LEAK,
            epoch=1,
            victim_prefix=UNICAST_VICTIM,
        ),
        seed=1,
    )
    assert records[0]["applied"]
    hit = on_prefix(verdicts, UNICAST_VICTIM)
    assert [v.verdict for v in hit] == [RoutingVerdict.LEAK]
    assert all(v.prefix == UNICAST_VICTIM for v in alarms(verdicts))


def test_single_vp_leak_stays_below_the_floor(run_chaos):
    """One detoured vantage point is indistinguishable from a spike."""
    records, verdicts = run_chaos(
        RouteEvent(
            kind=RouteEventKind.ROUTE_LEAK,
            epoch=1,
            victim_prefix=UNICAST_VICTIM,
        ),
        seed=6,
    )
    assert records[0]["applied"]
    assert records[0]["captured_vps"] == 1
    assert alarms(verdicts) == []


def test_co_located_attacker_raises_no_alarm(run_chaos):
    """An attacker in the victim's own city moves no geography."""
    records, verdicts = run_chaos(
        RouteEvent(
            kind=RouteEventKind.MOAS_HIJACK,
            epoch=1,
            victim_prefix=UNICAST_VICTIM,
            attacker_city="Kinshasa",
        )
    )
    assert records[0]["applied"]
    assert alarms(verdicts) == []


def test_zero_capture_attacker_raises_no_alarm(run_chaos):
    records, verdicts = run_chaos(
        RouteEvent(
            kind=RouteEventKind.MOAS_HIJACK,
            epoch=1,
            victim_prefix=UNICAST_VICTIM,
            attacker_city="Ulaanbaatar",
        )
    )
    assert records[0]["applied"] is False
    assert alarms(verdicts) == []


@pytest.mark.parametrize(
    "kind,kw",
    [
        (RouteEventKind.FLAP, {"victim_prefix": UNICAST_VICTIM}),
        (RouteEventKind.WITHDRAWAL, {"victim_prefix": UNICAST_VICTIM}),
        (RouteEventKind.PREPEND, {"victim_prefix": ANYCAST_VICTIM, "prepend": 4}),
    ],
)
def test_benign_events_raise_no_alarms(run_chaos, kind, kw):
    records, verdicts = run_chaos(RouteEvent(kind=kind, epoch=1, **kw))
    assert alarms(verdicts) == []
