"""Structure and determinism of the synthetic AS-relationship graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bgp import BgpConfig, build_as_graph
from repro.bgp.graph import TIER_STUB, TIER_T1, TIER_TRANSIT
from repro.geo.cities import default_city_db

CFG = BgpConfig(n_ases=256, n_tier1=6)


@pytest.fixture(scope="module")
def graph():
    return build_as_graph(CFG, seed=2015, city_db=default_city_db())


def test_same_seed_same_graph(graph):
    again = build_as_graph(CFG, seed=2015, city_db=default_city_db())
    assert np.array_equal(graph.tier, again.tier)
    assert graph.provider_edges == again.provider_edges
    assert graph.peer_edges == again.peer_edges
    assert np.array_equal(graph.lats, again.lats)


def test_different_seed_different_graph(graph):
    other = build_as_graph(CFG, seed=2016, city_db=default_city_db())
    assert graph.provider_edges != other.provider_edges


def test_tier_counts(graph):
    assert graph.n_ases == CFG.n_ases
    assert int((graph.tier == TIER_T1).sum()) == CFG.n_tier1
    assert int((graph.tier == TIER_TRANSIT).sum()) > 0
    # The stub fringe dominates, as in the real AS-relationship table.
    assert int((graph.tier == TIER_STUB).sum()) > CFG.n_ases // 2


def test_tier1_full_clique(graph):
    t1 = np.nonzero(graph.tier == TIER_T1)[0]
    for a in t1:
        peers = set(int(p) for p in graph.peers_of(int(a)))
        assert set(int(b) for b in t1 if b != a) <= peers
        # Tier-1s buy transit from nobody.
        assert len(graph.providers_of(int(a))) == 0


def test_everyone_below_tier1_has_a_provider(graph):
    for a in range(graph.n_ases):
        if graph.tier[a] != TIER_T1:
            assert len(graph.providers_of(a)) >= 1


def test_stubs_sell_no_transit(graph):
    for a in np.nonzero(graph.tier == TIER_STUB)[0]:
        assert len(graph.customers_of(int(a))) == 0


def test_index_partitions(graph):
    stubs = set(int(a) for a in graph.stub_indices())
    infra = set(int(a) for a in graph.infrastructure_indices())
    assert stubs.isdisjoint(infra)
    assert len(stubs) + len(infra) == graph.n_ases
    for a in graph.multihomed_stubs():
        assert int(a) in stubs
        assert len(graph.providers_of(int(a))) >= 2


def test_provider_edges_exposed_from_both_ends(graph):
    c, p = graph.provider_edges[0]
    assert p in set(int(x) for x in graph.providers_of(c))
    assert c in set(int(x) for x in graph.customers_of(p))


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_ases": 4},
        {"n_tier1": 1},
        {"n_tier1": 200, "n_ases": 256},
        {"transit_fraction": 0.0},
        {"transit_fraction": 1.0},
        {"mean_providers": 0.5},
        {"mean_providers": 4.0},
        {"peer_degree": -1.0},
        {"provider_candidates": 0},
    ],
)
def test_config_validation(kwargs):
    base = {"n_ases": 256, "n_tier1": 6}
    base.update(kwargs)
    with pytest.raises(ValueError):
        BgpConfig(**base)


def test_with_seed_round_trip():
    assert BgpConfig().with_seed(7).seed == 7
