"""Binding the AS graph to the synthetic internet: attachment,
catchments, route caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bgp import Announcement, BgpRoutingPlane
from repro.bgp.graph import TIER_STUB


@pytest.fixture(scope="module")
def plane(bgp_internet) -> BgpRoutingPlane:
    return bgp_internet.bgp_plane


@pytest.fixture(scope="module")
def deployment(bgp_internet):
    return bgp_internet.deployments[0]


def test_clients_attach_to_nearest_stub(plane):
    lats, lons = [48.9, -33.9, 35.7], [2.3, 151.2, 139.7]
    attach = plane.attach_clients(lats, lons)
    assert (plane.graph.tier[attach] == TIER_STUB).all()
    again = plane.attach_clients(lats, lons)
    assert np.array_equal(attach, again)
    with pytest.raises(ValueError):
        attach[0] = 0  # cached attachment arrays are read-only


def test_sites_attach_to_infrastructure(plane, deployment):
    origins = plane.site_attachments(deployment)
    assert len(origins) == deployment.site_count
    assert (plane.graph.tier[origins] != TIER_STUB).all()


def test_catchment_covers_every_client(plane, deployment):
    lats = np.linspace(-50, 60, 40)
    lons = np.linspace(-120, 150, 40)
    sites = plane.catchment(deployment, lats, lons)
    assert sites.shape == (40,)
    assert ((0 <= sites) & (sites < deployment.site_count)).all()
    # A multi-site deployment splits its catchment.
    if deployment.site_count > 1:
        assert len(set(int(s) for s in sites)) > 1


def test_pristine_routes_are_cached(plane, deployment):
    a = plane.deployment_routes(deployment)
    b = plane.deployment_routes(deployment)
    assert a is b
    assert len(a.announcements) == deployment.site_count


def test_engineered_routes_bypass_the_cache(plane, deployment):
    pristine = plane.deployment_routes(deployment)
    engineered = plane.deployment_routes(deployment, prepend={0: 4})
    assert engineered is not pristine
    assert engineered.announcements[0].prepend == 4
    # And the pristine cache entry is untouched.
    assert plane.deployment_routes(deployment) is pristine


def test_withdrawal_drops_the_site(plane, deployment):
    if deployment.site_count < 2:
        pytest.skip("needs a multi-site deployment")
    routes = plane.deployment_routes(deployment, withdrawn={0})
    assert all(a.site != 0 for a in routes.announcements)
    lats = np.linspace(-50, 60, 25)
    lons = np.linspace(-120, 150, 25)
    sites = plane.catchment(deployment, lats, lons, routes=routes)
    assert 0 not in set(int(s) for s in sites)


def test_extra_announcement_captures_without_reshuffling(plane, deployment):
    base = plane.deployment_routes(deployment)
    origins = set(int(a) for a in plane.site_attachments(deployment))
    attacker = next(
        int(a) for a in plane.graph.infrastructure_indices()
        if int(a) not in origins
    )
    hijack = Announcement(origin_as=attacker, site=deployment.site_count)
    out = plane.deployment_routes(deployment, extra=[hijack])
    captured = out.outcome.captured_by(len(out.announcements) - 1)
    assert captured.any()
    keep = ~captured
    assert np.array_equal(out.outcome.site[keep], base.outcome.site[keep])


def test_internet_exposes_the_plane(bgp_internet):
    assert bgp_internet.bgp_plane is not None
    assert bgp_internet.bgp_plane.graph.n_ases > 0
