"""Tests for the fastping-like per-VP scan simulation."""

import numpy as np
import pytest

from repro.internet.topology import RESP_REPLY
from repro.measurement.lfsr import lfsr_permutation
from repro.measurement.platform import VantagePoint
from repro.measurement.prober import (
    FULL_RATE_PPS,
    SAFE_RATE_PPS,
    base_rtt_row,
    simulate_vp_scan,
    vp_path_seed,
)
from repro.net.icmp import RateLimitPolicy


@pytest.fixture(scope="module")
def scan_setup(tiny_internet, tiny_platform):
    vp = tiny_platform.vantage_points[0]
    coords = np.stack([tiny_internet.lats, tiny_internet.lons])
    base = base_rtt_row(tiny_internet, vp, coords[0], coords[1])
    order = np.array(lfsr_permutation(tiny_internet.n_targets, seed=1))
    return vp, base, order


def run_scan(internet, vp, base, order, rate=SAFE_RATE_PPS, seed=0, probe_mask=None,
             reply_loss_prob=0.0, degraded=False):
    return simulate_vp_scan(
        internet=internet,
        vp=vp,
        vp_index=0,
        census_id=1,
        base_rtts=base,
        order=order,
        rate_pps=rate,
        rng=np.random.default_rng(seed),
        probe_mask=probe_mask,
        reply_loss_prob=reply_loss_prob,
        degraded=degraded,
    )


class TestBaseRtt:
    def test_deterministic_across_calls(self, tiny_internet, tiny_platform):
        vp = tiny_platform.vantage_points[0]
        coords = np.stack([tiny_internet.lats, tiny_internet.lons])
        a = base_rtt_row(tiny_internet, vp, coords[0], coords[1])
        b = base_rtt_row(tiny_internet, vp, coords[0], coords[1])
        assert np.array_equal(a, b)

    def test_different_vps_differ(self, tiny_internet, tiny_platform):
        coords = np.stack([tiny_internet.lats, tiny_internet.lons])
        a = base_rtt_row(tiny_internet, tiny_platform.vantage_points[0], coords[0], coords[1])
        b = base_rtt_row(tiny_internet, tiny_platform.vantage_points[1], coords[0], coords[1])
        assert not np.array_equal(a, b)

    def test_path_seed_stable(self):
        assert vp_path_seed(1, "node-a") == vp_path_seed(1, "node-a")
        assert vp_path_seed(1, "node-a") != vp_path_seed(1, "node-b")
        assert vp_path_seed(1, "node-a") != vp_path_seed(2, "node-a")


class TestScan:
    def test_responsive_targets_reply(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        result = run_scan(tiny_internet, vp, base, order)
        replies = result.records.replies()
        responsive = int((tiny_internet.responsiveness == RESP_REPLY).sum())
        # Unlimited VP, safe rate, no loss: every responsive target answers.
        assert len(replies) == responsive

    def test_transient_loss_removes_some_replies(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        result = run_scan(tiny_internet, vp, base, order, reply_loss_prob=0.1)
        replies = result.records.replies()
        responsive = int((tiny_internet.responsiveness == RESP_REPLY).sum())
        assert 0.8 * responsive < len(replies) < responsive
        # Loss is not policing: the drop-rate metric stays clean.
        assert result.drop_rate == 0.0

    def test_degraded_vp_loses_half_and_inflates_rtts(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        healthy = run_scan(tiny_internet, vp, base, order)
        degraded = run_scan(tiny_internet, vp, base, order, degraded=True)
        assert len(degraded.records.replies()) < 0.65 * len(healthy.records.replies())
        assert (
            degraded.records.replies().rtt_ms.mean()
            > healthy.records.replies().rtt_ms.mean() + 20.0
        )

    def test_silent_hosts_produce_no_records(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        result = run_scan(tiny_internet, vp, base, order)
        recorded = set(int(p) for p in result.records.prefix)
        silent = {
            int(tiny_internet.prefixes[i])
            for i in range(tiny_internet.n_targets)
            if tiny_internet.responsiveness[i] == 1  # RESP_SILENT
        }
        assert not recorded & silent

    def test_rtts_respect_baseline(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        result = run_scan(tiny_internet, vp, base, order)
        replies = result.records.replies()
        positions = np.array([tiny_internet.target_index(int(p)) for p in replies.prefix])
        assert (replies.rtt_ms >= base[positions].astype(np.float32) - 0.01).all()

    def test_no_drops_at_safe_rate(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        assert run_scan(tiny_internet, vp, base, order, rate=SAFE_RATE_PPS).drop_rate == 0.0

    def test_drops_at_full_rate_when_limited(self, tiny_internet, tiny_platform, scan_setup):
        _, base, order = scan_setup
        limited = VantagePoint(
            name="limited-vp",
            city=tiny_platform.vantage_points[0].city,
            location=tiny_platform.vantage_points[0].location,
            rate_limit=RateLimitPolicy(safe_rate_pps=1500.0, severity=1.0),
        )
        result = run_scan(tiny_internet, limited, base, order, rate=FULL_RATE_PPS)
        assert result.drop_rate > 0.5  # keep ~ 1500/10000

    def test_probe_mask_skips_targets(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        mask = np.ones(tiny_internet.n_targets, dtype=bool)
        skipped_prefix = int(tiny_internet.prefixes[0])
        mask[0] = False
        result = run_scan(tiny_internet, vp, base, order, probe_mask=mask)
        assert skipped_prefix not in set(int(p) for p in result.records.prefix)
        assert result.probes_sent == tiny_internet.n_targets - 1

    def test_duration_scales_with_load_and_rate(self, tiny_internet, tiny_platform, scan_setup):
        _, base, order = scan_setup
        city = tiny_platform.vantage_points[0].city
        fast = VantagePoint("fast", city, city.location, host_load=1.0)
        slow = VantagePoint("slow", city, city.location, host_load=3.0)
        d_fast = run_scan(tiny_internet, fast, base, order).duration_hours
        d_slow = run_scan(tiny_internet, slow, base, order).duration_hours
        assert d_slow == pytest.approx(3.0 * d_fast)
        d_fast_rate = run_scan(tiny_internet, fast, base, order, rate=2 * SAFE_RATE_PPS).duration_hours
        assert d_fast_rate == pytest.approx(d_fast / 2)

    def test_timestamps_follow_order(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        result = run_scan(tiny_internet, vp, base, order)
        # First target in the probing order has the smallest timestamp.
        records = result.records
        first_target_prefix = int(tiny_internet.prefixes[order[0]])
        t = records.timestamp_ms[records.prefix == first_target_prefix]
        if len(t):
            assert t[0] == pytest.approx(0.0)

    def test_invalid_rate_rejected(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        with pytest.raises(ValueError):
            run_scan(tiny_internet, vp, base, order, rate=0.0)

    def test_array_size_checked(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        with pytest.raises(ValueError):
            run_scan(tiny_internet, vp, base[:-1], order)

    def test_fully_masked_scan_yields_empty_records(self, tiny_internet, scan_setup):
        """A probe_mask excluding everything produces a well-typed empty batch."""
        vp, base, order = scan_setup
        mask = np.zeros(tiny_internet.n_targets, dtype=bool)
        result = run_scan(tiny_internet, vp, base, order, probe_mask=mask)
        records = result.records
        assert len(records) == 0
        assert result.probes_sent == 0
        assert result.duration_hours == 0.0
        assert records.census_id == 1
        assert records.vp_index.dtype == np.uint16
        assert records.prefix.dtype == np.uint32
        assert records.timestamp_ms.dtype == np.float64
        assert records.rtt_ms.dtype == np.float32
        assert records.flag.dtype == np.int8
        # The empty batch behaves like any other: selectable, hashable,
        # serializable.
        assert len(records.replies()) == 0
        assert len(records.greylistable()) == 0
        assert records.checksum() == records.replies().checksum()

    def test_greylist_errors_recorded(self, tiny_internet, scan_setup):
        vp, base, order = scan_setup
        result = run_scan(tiny_internet, vp, base, order)
        grey = result.records.greylistable()
        # The tiny internet has error hosts; most emit their error.
        assert len(grey) > 0
        assert set(np.unique(grey.flag)) <= {-13, -10, -9}
