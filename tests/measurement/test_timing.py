"""Tests for probe pacing and the latency model's statistical shape."""

import numpy as np
import pytest

from repro.measurement.lfsr import lfsr_permutation
from repro.measurement.prober import SAFE_RATE_PPS, base_rtt_row, simulate_vp_scan
from repro.net.latency import DEFAULT_MODEL, LatencyModel


class TestProbePacing:
    @pytest.fixture(scope="class")
    def scan(self, tiny_internet, tiny_platform):
        vp = tiny_platform.vantage_points[0]
        coords = np.stack([tiny_internet.lats, tiny_internet.lons])
        base = base_rtt_row(tiny_internet, vp, coords[0], coords[1])
        order = np.array(lfsr_permutation(tiny_internet.n_targets, seed=2))
        result = simulate_vp_scan(
            internet=tiny_internet, vp=vp, vp_index=0, census_id=1,
            base_rtts=base, order=order, rate_pps=SAFE_RATE_PPS,
            rng=np.random.default_rng(0), reply_loss_prob=0.0,
        )
        return result, order, tiny_internet

    def test_send_interval_matches_rate(self, scan):
        result, order, internet = scan
        records = result.records
        timestamps = np.sort(records.timestamp_ms)
        # All send times are multiples of the inter-probe gap (1 ms @ 1kpps).
        gap_ms = 1000.0 / SAFE_RATE_PPS
        remainders = np.mod(timestamps, gap_ms)
        assert np.allclose(np.minimum(remainders, gap_ms - remainders), 0.0, atol=1e-6)

    def test_send_times_span_full_scan(self, scan):
        result, order, internet = scan
        duration_ms = internet.n_targets / SAFE_RATE_PPS * 1000.0
        assert result.records.timestamp_ms.max() < duration_ms
        assert result.records.timestamp_ms.min() >= 0.0

    def test_order_respected(self, scan):
        result, order, internet = scan
        # The k-th probed target has send time k * gap.
        records = result.records
        gap_ms = 1000.0 / SAFE_RATE_PPS
        rank = {int(internet.prefixes[t]): i for i, t in enumerate(order)}
        for i in range(0, len(records), max(len(records) // 50, 1)):
            prefix = int(records.prefix[i])
            expected = rank[prefix] * gap_ms
            assert records.timestamp_ms[i] == pytest.approx(expected)


class TestLatencyDistributions:
    def test_spike_fraction_matches_config(self):
        model = LatencyModel(spike_prob=0.3, spike_ms_scale=50.0, jitter_ms_scale=0.5)
        rng = np.random.default_rng(1)
        base = np.full(50_000, 10.0)
        probes = model.probe_rtt_ms(base, rng)
        # Spiked probes exceed base + ~5x jitter scale with high probability.
        spiked = (probes > 10.0 + 5 * 0.5).mean()
        assert abs(spiked - 0.3) < 0.05

    def test_no_spikes_when_disabled(self):
        model = LatencyModel(spike_prob=0.0)
        rng = np.random.default_rng(1)
        base = np.full(10_000, 10.0)
        probes = model.probe_rtt_ms(base, rng)
        # Pure exponential jitter: tail beyond 10x the scale is negligible.
        assert (probes > 10.0 + 10 * model.jitter_ms_scale).mean() < 0.001

    def test_stretch_within_declared_bounds(self):
        rng = np.random.default_rng(2)
        distances = np.full(20_000, 5000.0)
        base = DEFAULT_MODEL.path_rtt_ms(distances, rng)
        floor = DEFAULT_MODEL.propagation_rtt_ms(distances)
        implied_stretch = (base - 0.0) / floor  # last mile inflates slightly
        assert implied_stretch.min() >= DEFAULT_MODEL.stretch_min - 1e-9
        # Mode near the configured mode: the distribution peaks around 1.3.
        hist, edges = np.histogram(implied_stretch, bins=40, range=(1.0, 2.5))
        mode = edges[np.argmax(hist)]
        assert abs(mode - DEFAULT_MODEL.stretch_mode) < 0.2

    def test_min_of_many_probes_approaches_base(self):
        """The census-combination premise: min RTT over repeats converges
        to the path baseline."""
        rng = np.random.default_rng(3)
        base = np.full(2000, 40.0)
        minimum = np.full(2000, np.inf)
        for _ in range(8):
            minimum = np.minimum(minimum, DEFAULT_MODEL.probe_rtt_ms(base, rng))
        single = DEFAULT_MODEL.probe_rtt_ms(base, np.random.default_rng(4))
        assert minimum.mean() < single.mean()
        assert (minimum - 40.0).mean() < 1.0
