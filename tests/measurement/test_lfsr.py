"""Tests for the Galois LFSR target randomization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement.lfsr import GaloisLFSR, lfsr_permutation, width_for


class TestGaloisLFSR:
    @pytest.mark.parametrize("width", [2, 3, 4, 8, 12, 16])
    def test_full_period(self, width):
        """A maximal LFSR must visit every nonzero state exactly once."""
        lfsr = GaloisLFSR(width, seed=1)
        states = list(lfsr.cycle())
        assert len(states) == (1 << width) - 1
        assert len(set(states)) == len(states)
        assert 0 not in states

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            GaloisLFSR(1)
        with pytest.raises(ValueError):
            GaloisLFSR(33)

    def test_invalid_seed(self):
        with pytest.raises(ValueError):
            GaloisLFSR(4, seed=0)
        with pytest.raises(ValueError):
            GaloisLFSR(4, seed=16)

    def test_step_never_reaches_zero(self):
        lfsr = GaloisLFSR(6, seed=33)
        for _ in range(200):
            assert lfsr.step() != 0

    def test_deterministic(self):
        a = [GaloisLFSR(8, seed=5).step() for _ in range(1)]
        b = [GaloisLFSR(8, seed=5).step() for _ in range(1)]
        assert a == b


class TestWidthFor:
    def test_exact_boundaries(self):
        assert width_for(3) == 2
        assert width_for(4) == 3
        assert width_for(7) == 3
        assert width_for(8) == 4

    def test_one(self):
        assert width_for(1) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            width_for(0)


class TestPermutation:
    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=1000))
    @settings(max_examples=40)
    def test_is_permutation(self, n, seed):
        perm = lfsr_permutation(n, seed=seed)
        assert sorted(perm) == list(range(n))

    def test_empty(self):
        assert lfsr_permutation(0) == []

    def test_single(self):
        assert lfsr_permutation(1) == [0]

    def test_deterministic_in_seed(self):
        assert lfsr_permutation(100, seed=3) == lfsr_permutation(100, seed=3)

    def test_seed_varies_order(self):
        assert lfsr_permutation(100, seed=3) != lfsr_permutation(100, seed=4)

    def test_not_identity(self):
        # Randomized probing order must actually shuffle.
        perm = lfsr_permutation(1000, seed=1)
        fixed = sum(1 for i, v in enumerate(perm) if i == v)
        assert fixed < 50

    def test_large_n(self):
        perm = lfsr_permutation(70_000, seed=1)
        assert len(perm) == 70_000
        assert len(set(perm)) == 70_000
