"""Unit tests for the campaign's noise modes.

``stream`` (the historical default) draws probe noise from one shared
RNG stream, so any change to the probing schedule reshuffles every
measurement.  ``keyed`` derives each probe's noise from (campaign seed,
census, VP, target prefix) alone — the property the longitudinal
service's incremental recompute stands on: a target whose deployment
did not change yields a byte-identical RTT row even when the rest of
the internet churned around it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.census.combine import matrix_from_census
from repro.census.longitudinal import EvolutionConfig, evolve_catalog
from repro.internet.catalog import full_catalog
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform

CONFIG = InternetConfig(seed=2015, n_unicast_slash24=120, tail_deployments=0)


@pytest.fixture(scope="module")
def catalog():
    return full_catalog(tail_count=0, seed=2015)[:12]


@pytest.fixture(scope="module")
def platform():
    return planetlab_platform(count=20, seed=41)


def run_census(catalog, platform, noise):
    internet = SyntheticInternet(CONFIG, catalog=list(catalog))
    campaign = CensusCampaign(internet, platform, seed=500, noise=noise)
    campaign.run_precensus()
    return campaign.run_census(availability=1.0)


class TestNoiseModes:
    def test_unknown_mode_rejected(self, catalog, platform):
        internet = SyntheticInternet(CONFIG, catalog=list(catalog))
        with pytest.raises(ValueError, match="noise"):
            CensusCampaign(internet, platform, noise="loud")

    def test_default_is_stream_and_unchanged(self, catalog, platform):
        implicit = run_census(catalog, platform, noise="stream")
        internet = SyntheticInternet(CONFIG, catalog=list(catalog))
        campaign = CensusCampaign(internet, platform, seed=500)
        campaign.run_precensus()
        default = campaign.run_census(availability=1.0)
        assert default.records.checksum() == implicit.records.checksum()

    @pytest.mark.parametrize("noise", ["stream", "keyed"])
    def test_each_mode_is_deterministic(self, catalog, platform, noise):
        a = run_census(catalog, platform, noise)
        b = run_census(catalog, platform, noise)
        assert a.records.checksum() == b.records.checksum()

    def test_modes_differ_from_each_other(self, catalog, platform):
        stream = run_census(catalog, platform, "stream")
        keyed = run_census(catalog, platform, "keyed")
        assert stream.records.checksum() != keyed.records.checksum()


class TestKeyedCrossEpochStability:
    """The property incremental recompute is built on."""

    GENTLE = EvolutionConfig(
        growth_prob=0.02, max_new_sites=1, shrink_prob=0.01, new_adopters=1
    )

    def rows_by_prefix(self, census):
        matrix = matrix_from_census(census)
        raw = np.ascontiguousarray(matrix.rtt_ms, dtype="<f4")
        return {
            int(prefix): raw[i].tobytes() for i, prefix in enumerate(matrix.prefixes)
        }

    def test_unchanged_targets_keep_identical_rows(self, catalog, platform):
        evolved = evolve_catalog(catalog, seed=123, config=self.GENTLE)
        assert len(evolved) >= len(catalog)
        unchanged_asns = {
            before.asn
            for before, after in zip(catalog, evolved)
            if before == after
        }
        changed_asns = {e.asn for e in evolved} - unchanged_asns

        internet_before = SyntheticInternet(CONFIG, catalog=list(catalog))
        internet_after = SyntheticInternet(CONFIG, catalog=list(evolved))
        rows_before = self.rows_by_prefix(run_census(catalog, platform, "keyed"))
        rows_after = self.rows_by_prefix(run_census(evolved, platform, "keyed"))

        def owner_asn(internet, prefix):
            owner = internet.registry.owner_of(prefix)
            return None if owner is None else owner.asn

        stable = moved = 0
        for prefix in set(rows_before) & set(rows_after):
            asn_before = owner_asn(internet_before, prefix)
            asn_after = owner_asn(internet_after, prefix)
            if asn_before != asn_after or asn_before in changed_asns:
                continue  # ownership moved or the deployment itself changed
            # Unicast space and unchanged deployments: rows must be
            # byte-identical despite the evolved world around them.
            assert rows_before[prefix] == rows_after[prefix], prefix
            stable += 1
        for prefix in set(rows_after) - set(rows_before):
            moved += 1
        assert stable > 50, "expected a large byte-stable majority"

    def test_stream_noise_lacks_the_property(self, catalog, platform):
        evolved = evolve_catalog(catalog, seed=123, config=self.GENTLE)
        rows_before = self.rows_by_prefix(run_census(catalog, platform, "stream"))
        rows_after = self.rows_by_prefix(run_census(evolved, platform, "stream"))
        common = set(rows_before) & set(rows_after)
        identical = sum(
            1 for p in common if rows_before[p] == rows_after[p]
        )
        # With one shared stream, churn anywhere reshuffles everyone.
        assert identical < len(common) // 10
