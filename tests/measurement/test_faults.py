"""Tests for the fault-injection and resilience layer."""

import io

import numpy as np
import pytest

from repro.measurement.campaign import (
    CensusAborted,
    CensusCampaign,
    CensusInterrupted,
)
from repro.measurement.faults import (
    DistortionKind,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
    VpDistortionPlan,
    VpDistorter,
    VpHealthTracker,
)
from repro.measurement.recordio import CensusJournal


def records_bytes(census):
    sink = io.BytesIO()
    census.records.write_binary(sink)
    return sink.getvalue()


def assert_same_census(a, b):
    """Bit-for-bit equality of everything analysis consumes."""
    assert records_bytes(a) == records_bytes(b)
    assert np.array_equal(a.records.timestamp_ms, b.records.timestamp_ms)
    assert np.array_equal(a.records.rtt_ms, b.records.rtt_ms, equal_nan=True)
    assert np.array_equal(a.vp_duration_hours, b.vp_duration_hours, equal_nan=True)
    assert np.array_equal(a.vp_drop_rate, b.vp_drop_rate, equal_nan=True)
    assert sorted(a.greylist.prefixes) == sorted(b.greylist.prefixes)
    assert [vp.name for vp in a.platform.vantage_points] == [
        vp.name for vp in b.platform.vantage_points
    ]


@pytest.fixture()
def faulted_plan():
    return FaultPlan.uniform(0.2, seed=5, flap_prob=0.05)


@pytest.fixture()
def retry(tiny_internet):
    nominal = tiny_internet.n_targets / 1000.0 / 3600.0
    return RetryPolicy(max_attempts=3, timeout_hours=nominal * 20.0)


def make_campaign(internet, platform, seed=99, **kwargs):
    campaign = CensusCampaign(internet, platform, seed=seed, **kwargs)
    campaign.run_precensus()
    return campaign


class TestFaultPlan:
    def test_default_plan_disabled(self):
        assert not FaultPlan().enabled

    def test_uniform_splits_rate(self):
        plan = FaultPlan.uniform(0.3, seed=1)
        assert plan.crash_prob == pytest.approx(0.1)
        assert plan.hang_prob == pytest.approx(0.1)
        assert plan.corrupt_prob == pytest.approx(0.1)
        assert plan.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_prob": -0.1},
            {"hang_prob": 1.5},
            {"crash_prob": 0.5, "hang_prob": 0.4, "corrupt_prob": 0.2},
            {"seed": -1},
            {"hang_factor": 0.5},
            {"corrupt_fraction": 0.0},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_with_seed(self):
        plan = FaultPlan.uniform(0.2).with_seed(7)
        assert plan.seed == 7
        assert plan.crash_prob == pytest.approx(0.2 / 3.0)


class TestFaultInjector:
    def test_draws_are_keyed_not_streamed(self):
        a = FaultInjector(FaultPlan.uniform(0.5, seed=3))
        b = FaultInjector(FaultPlan.uniform(0.5, seed=3))
        # Evaluate in different orders: answers must agree pointwise.
        keys = [(c, v, t) for c in (1, 2) for v in range(10) for t in range(3)]
        forward = {k: a.fault_for(*k) for k in keys}
        backward = {k: b.fault_for(*k) for k in reversed(keys)}
        assert forward == backward

    def test_seed_changes_draws(self):
        a = FaultInjector(FaultPlan.uniform(0.5, seed=3))
        b = FaultInjector(FaultPlan.uniform(0.5, seed=4))
        keys = [(1, v, 0) for v in range(200)]
        assert [a.fault_for(*k) for k in keys] != [b.fault_for(*k) for k in keys]

    def test_flap_rate_roughly_matches(self):
        inj = FaultInjector(FaultPlan(flap_prob=0.25, seed=9))
        flapped = sum(inj.flaps(1, i) for i in range(1000))
        assert 180 < flapped < 320

    def test_corrupt_changes_checksum(self, tiny_census):
        inj = FaultInjector(FaultPlan(corrupt_prob=1.0, seed=2))
        batch = tiny_census.records.select(tiny_census.records.vp_index == 0)
        assert len(batch) > 0
        corrupted = inj.corrupt(batch, 1, 0, 0)
        assert corrupted.checksum() != batch.checksum()
        assert len(corrupted) == len(batch)
        # The original batch is untouched (corruption works on a copy).
        assert batch.checksum() == tiny_census.records.select(
            tiny_census.records.vp_index == 0
        ).checksum()

    def test_corrupt_empty_batch_is_noop(self):
        from repro.measurement.recordio import CensusRecords

        inj = FaultInjector(FaultPlan(corrupt_prob=1.0, seed=2))
        empty = CensusRecords.empty(1)
        assert inj.corrupt(empty, 1, 0, 0).checksum() == empty.checksum()


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base_hours=0.5, backoff_factor=2.0)
        assert policy.backoff_hours(1) == pytest.approx(0.5)
        assert policy.backoff_hours(2) == pytest.approx(1.0)
        assert policy.backoff_hours(3) == pytest.approx(2.0)

    def test_no_timeout_never_times_out(self):
        assert not RetryPolicy().times_out(1e9)

    def test_timeout(self):
        policy = RetryPolicy(timeout_hours=2.0)
        assert policy.times_out(2.5)
        assert not policy.times_out(1.5)

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_attempts": 0}, {"timeout_hours": 0.0}, {"backoff_factor": 0.5}],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestVpHealthTracker:
    def test_quarantine_after_consecutive_failures(self):
        tracker = VpHealthTracker(quarantine_threshold=2)
        tracker.record("vp-a", ok=False)
        assert tracker.quarantined_names() == set()
        tracker.record("vp-a", ok=False)
        assert tracker.quarantined_names() == {"vp-a"}

    def test_success_resets_streak(self):
        tracker = VpHealthTracker(quarantine_threshold=2)
        tracker.record("vp-a", ok=False)
        tracker.record("vp-a", ok=True)
        tracker.record("vp-a", ok=False)
        assert tracker.quarantined_names() == set()
        assert tracker.health_of("vp-a").failures == 2

    def test_release(self):
        tracker = VpHealthTracker(quarantine_threshold=1)
        tracker.record("vp-a", ok=False)
        assert "vp-a" in tracker.quarantined_names()
        tracker.release("vp-a")
        assert tracker.quarantined_names() == set()


class TestFaultFreeEquivalence:
    def test_disabled_plan_output_identical(self, tiny_internet, tiny_platform):
        """A default FaultPlan must not perturb campaign output at all."""
        plain = make_campaign(tiny_internet, tiny_platform)
        supervised = make_campaign(
            tiny_internet,
            tiny_platform,
            fault_plan=FaultPlan(),
            retry=RetryPolicy(max_attempts=5, timeout_hours=100.0),
            min_vp_quorum=1,
        )
        assert_same_census(
            plain.run_census(availability=0.85),
            supervised.run_census(availability=0.85),
        )

    def test_clean_health_report(self, tiny_census):
        report = tiny_census.health
        assert report is not None
        assert not report.degraded
        assert report.n_vps_ok == report.n_vps_planned
        assert report.faults_seen == {}
        assert report.retries == 0


class TestFaultedCensus:
    def test_degraded_census_completes_with_report(
        self, tiny_internet, tiny_platform, faulted_plan, retry
    ):
        """Acceptance: 20% crash+hang+corrupt still yields a census."""
        campaign = make_campaign(
            tiny_internet,
            tiny_platform,
            fault_plan=faulted_plan,
            retry=retry,
            min_vp_quorum=5,
        )
        censuses = [campaign.run_census(availability=0.85) for _ in range(3)]
        reports = [c.health for c in censuses]
        assert sum(r.n_faults for r in reports) > 0
        assert any(r.degraded for r in reports)
        # Data still flows: every census kept a quorum of usable VPs.
        for census, report in zip(censuses, reports):
            assert len(census.records) > 0
            assert report.n_vps_ok + report.n_vps_salvaged >= 5

    def test_salvaged_records_are_prefix_of_scan(self, tiny_internet, tiny_platform):
        """A crashed scan salvages exactly the probes sent before the crash."""
        crashing = make_campaign(
            tiny_internet,
            tiny_platform,
            fault_plan=FaultPlan(crash_prob=1.0, seed=3),
            retry=RetryPolicy(max_attempts=2),
            min_vp_quorum=1,
        )
        clean = make_campaign(tiny_internet, tiny_platform)
        crashed_census = crashing.run_census(availability=1.0)
        clean_census = clean.run_census(availability=1.0)
        report = crashed_census.health
        assert report.n_vps_salvaged == report.n_vps_planned
        assert 0 < report.records_salvaged < len(clean_census.records)
        assert len(crashed_census.records) == report.records_salvaged
        # Salvaged records are a subset of the clean census's records.
        crashed_keys = set(
            zip(
                crashed_census.records.vp_index.tolist(),
                crashed_census.records.prefix.tolist(),
                crashed_census.records.timestamp_ms.tolist(),
            )
        )
        clean_keys = set(
            zip(
                clean_census.records.vp_index.tolist(),
                clean_census.records.prefix.tolist(),
                clean_census.records.timestamp_ms.tolist(),
            )
        )
        assert crashed_keys <= clean_keys

    def test_corrupt_batches_dropped_and_accounted(self, tiny_internet, tiny_platform):
        campaign = make_campaign(
            tiny_internet,
            tiny_platform,
            fault_plan=FaultPlan(corrupt_prob=1.0, seed=3),
            retry=RetryPolicy(max_attempts=1),
            min_vp_quorum=1,
        )
        with pytest.raises(CensusAborted) as exc:
            campaign.run_census(availability=1.0)
        report = exc.value.report
        assert report.batches_dropped_corrupt == report.n_vps_planned
        assert report.records_dropped_corrupt > 0
        assert report.n_vps_failed == report.n_vps_planned

    def test_hang_without_timeout_is_a_straggler(self, tiny_internet, tiny_platform):
        hang_plan = FaultPlan(hang_prob=1.0, seed=3, hang_factor=50.0)
        hanging = make_campaign(
            tiny_internet,
            tiny_platform,
            fault_plan=hang_plan,
            retry=RetryPolicy(max_attempts=1, timeout_hours=None),
        )
        clean = make_campaign(tiny_internet, tiny_platform)
        hung = hanging.run_census(availability=1.0)
        reference = clean.run_census(availability=1.0)
        # Same records, wildly inflated durations: Fig. 8's far tail.
        assert records_bytes(hung) == records_bytes(reference)
        assert np.all(hung.vp_duration_hours >= 50.0 * reference.vp_duration_hours * 0.999)

    def test_hang_with_timeout_fails_the_attempt(self, tiny_internet, tiny_platform):
        nominal = tiny_internet.n_targets / 1000.0 / 3600.0
        campaign = make_campaign(
            tiny_internet,
            tiny_platform,
            fault_plan=FaultPlan(hang_prob=1.0, seed=3),
            retry=RetryPolicy(max_attempts=1, timeout_hours=nominal * 20.0),
            min_vp_quorum=1,
        )
        with pytest.raises(CensusAborted) as exc:
            campaign.run_census(availability=1.0)
        assert exc.value.report.faults_seen[FaultKind.HANG.value] > 0

    def test_retry_recovers_from_transient_faults(self, tiny_internet, tiny_platform):
        """With enough attempts, a 50% fault rate still yields clean scans."""
        nominal = tiny_internet.n_targets / 1000.0 / 3600.0
        campaign = make_campaign(
            tiny_internet,
            tiny_platform,
            fault_plan=FaultPlan.uniform(0.5, seed=11),
            retry=RetryPolicy(max_attempts=6, timeout_hours=nominal * 20.0),
            min_vp_quorum=1,
        )
        census = campaign.run_census(availability=1.0)
        report = census.health
        assert report.retries > 0
        assert report.backoff_hours > 0.0
        assert report.n_vps_ok > report.n_vps_planned * 0.8


class TestQuorumAndQuarantine:
    def test_quorum_abort_is_typed(self, tiny_internet, tiny_platform):
        campaign = make_campaign(
            tiny_internet,
            tiny_platform,
            fault_plan=FaultPlan(flap_prob=1.0, seed=1),
            min_vp_quorum=5,
        )
        with pytest.raises(CensusAborted) as exc:
            campaign.run_census(availability=0.85)
        assert exc.value.usable_vps == 0
        assert exc.value.quorum == 5
        assert exc.value.report.n_vps_failed == exc.value.report.n_vps_planned

    def test_quorum_validation(self, tiny_internet, tiny_platform):
        with pytest.raises(ValueError):
            CensusCampaign(tiny_internet, tiny_platform, min_vp_quorum=0)

    def test_repeated_failures_quarantine_vps(self, tiny_internet, tiny_platform):
        campaign = make_campaign(
            tiny_internet,
            tiny_platform,
            fault_plan=FaultPlan(flap_prob=0.5, seed=21),
            min_vp_quorum=1,
            quarantine_threshold=1,
        )
        first = campaign.run_census(availability=1.0)
        assert first.health.n_vps_failed > 0
        quarantined = campaign.health.quarantined_names()
        assert quarantined == set(first.health.failed_vps)
        second = campaign.run_census(availability=1.0)
        assert second.health.quarantined_vps  # some VPs sat this one out
        planned_names = {vp.name for vp in second.platform.vantage_points}
        assert not planned_names & set(second.health.quarantined_vps)


class TestCheckpointResume:
    def test_interrupt_requires_nonnegative(self, tiny_internet, tiny_platform):
        campaign = make_campaign(tiny_internet, tiny_platform)
        with pytest.raises(ValueError):
            campaign.run_census(abort_after_vps=-1)

    def test_resume_is_bit_for_bit(
        self, tiny_internet, tiny_platform, faulted_plan, retry, tmp_path
    ):
        """Kill after k VPs, resume in a fresh campaign, get identical data."""
        journal_path = tmp_path / "census-001.journal"
        kwargs = dict(fault_plan=faulted_plan, retry=retry, min_vp_quorum=1)

        reference = make_campaign(tiny_internet, tiny_platform, seed=321, **kwargs)
        uninterrupted = reference.run_census(availability=0.85)

        interrupted = make_campaign(tiny_internet, tiny_platform, seed=321, **kwargs)
        with pytest.raises(CensusInterrupted) as exc:
            interrupted.run_census(
                availability=0.85, checkpoint=str(journal_path), abort_after_vps=7
            )
        assert exc.value.completed_vps == 7

        # "New process": a fresh campaign object under the same seed.
        resumer = make_campaign(tiny_internet, tiny_platform, seed=321, **kwargs)
        resumed = resumer.run_census(availability=0.85, checkpoint=str(journal_path))
        assert resumed.health.n_vps_resumed == 7
        assert_same_census(uninterrupted, resumed)

    def test_completed_journal_replays_without_scanning(
        self, tiny_internet, tiny_platform, tmp_path
    ):
        journal_path = tmp_path / "census-001.journal"
        first = make_campaign(tiny_internet, tiny_platform, seed=11)
        completed = first.run_census(availability=0.85, checkpoint=str(journal_path))

        replayer = make_campaign(tiny_internet, tiny_platform, seed=11)
        # Replaying may not scan at all: interrupt before the first fresh scan.
        replayed = replayer.run_census(
            availability=0.85, checkpoint=str(journal_path), abort_after_vps=0
        )
        assert replayed.health.n_vps_resumed == replayed.health.n_vps_planned
        assert_same_census(completed, replayed)

    def test_mismatched_journal_rejected(self, tiny_internet, tiny_platform, tmp_path):
        journal_path = tmp_path / "census.journal"
        first = make_campaign(tiny_internet, tiny_platform, seed=11)
        first.run_census(availability=0.85, checkpoint=str(journal_path))

        other_seed = make_campaign(tiny_internet, tiny_platform, seed=12)
        with pytest.raises(ValueError, match="does not match"):
            other_seed.run_census(availability=0.85, checkpoint=str(journal_path))

    def test_torn_journal_tail_recovers_prefix(
        self, tiny_internet, tiny_platform, tmp_path
    ):
        journal_path = tmp_path / "census.journal"
        campaign = make_campaign(tiny_internet, tiny_platform, seed=11)
        with pytest.raises(CensusInterrupted):
            campaign.run_census(
                availability=0.85, checkpoint=str(journal_path), abort_after_vps=5
            )
        intact = CensusJournal(journal_path)
        assert len(intact) == 5

        # Chop a few bytes off the end: the torn entry is discarded, the
        # rest of the journal (and the meta entry) survive.
        data = journal_path.read_bytes()
        journal_path.write_bytes(data[:-3])
        torn = CensusJournal(journal_path)
        assert torn.meta is not None
        assert len(torn) == 4

    def test_run_with_checkpoint_dir(self, tiny_internet, tiny_platform, tmp_path):
        campaign = CensusCampaign(tiny_internet, tiny_platform, seed=13)
        censuses = campaign.run(
            n_censuses=2, availability=0.85, checkpoint_dir=str(tmp_path)
        )
        assert len(censuses) == 2
        journals = sorted(p.name for p in tmp_path.glob("*.journal"))
        assert journals == ["census-001.journal", "census-002.journal"]

        # A second identical campaign replays both censuses from journals.
        replay = CensusCampaign(tiny_internet, tiny_platform, seed=13)
        replayed = replay.run(
            n_censuses=2, availability=0.85, checkpoint_dir=str(tmp_path)
        )
        for original, again in zip(censuses, replayed):
            assert again.health.n_vps_resumed == again.health.n_vps_planned
            assert_same_census(original, again)


class TestVpDistortion:
    """The keyed VP-distortion model: validation, determinism, effects."""

    def test_default_plan_disabled(self):
        plan = VpDistortionPlan()
        assert not plan.enabled
        assert VpDistorter(plan).distorted_names(["vp-a", "vp-b"]) == {}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fraction": -0.1},
            {"fraction": 1.5},
            {"seed": -1},
            {"kinds": ()},
            {"skew_ms": (500.0, 200.0)},
            {"skew_ms": (0.0, 200.0)},
            {"geo_error_km": (-1.0, 100.0)},
            {"stuck_ms": (40.0, 3.0)},
            {"bufferbloat_ms": 0.0},
        ],
    )
    def test_plan_validation(self, kwargs):
        with pytest.raises(ValueError):
            VpDistortionPlan(**kwargs)

    def test_string_kinds_normalize_to_enum(self):
        plan = VpDistortionPlan(fraction=0.1, kinds=("geo_error",))
        assert plan.kinds == (DistortionKind.GEO_ERROR,)
        with pytest.raises(ValueError):
            VpDistortionPlan(fraction=0.1, kinds=("not_a_kind",))

    def test_single_constructor(self):
        plan = VpDistortionPlan.single("stuck_rtt", fraction=0.2, seed=7)
        assert plan.kinds == (DistortionKind.STUCK_RTT,)
        assert plan.fraction == 0.2
        assert plan.seed == 7
        assert plan.enabled

    def test_assignment_is_keyed_on_name_not_order(self):
        """A VP's affliction is a pure function of (seed, name): the
        same names give the same verdicts whatever the roster order or
        composition."""
        distorter = VpDistorter(VpDistortionPlan(fraction=0.4, seed=5))
        names = [f"vp-{i:02d}" for i in range(40)]
        forward = distorter.distorted_names(names)
        assert forward  # 40 draws at 40%: somebody is hit
        assert distorter.distorted_names(list(reversed(names))) == forward
        subset = names[::3]
        expected = {n: k for n, k in forward.items() if n in subset}
        assert distorter.distorted_names(subset) == expected

    def test_different_seed_different_set(self):
        names = [f"vp-{i:02d}" for i in range(40)]
        a = VpDistorter(VpDistortionPlan(fraction=0.4, seed=5)).distorted_names(names)
        b = VpDistorter(VpDistortionPlan(fraction=0.4, seed=6)).distorted_names(names)
        assert a != b

    def test_disabled_plan_is_byte_neutral(self, tiny_internet, tiny_platform):
        """distortion=VpDistortionPlan() (fraction 0) must leave the
        campaign bit-for-bit identical to one without the layer."""
        bare = make_campaign(tiny_internet, tiny_platform).run_census()
        gated = make_campaign(
            tiny_internet, tiny_platform, distortion=VpDistortionPlan()
        ).run_census()
        assert_same_census(bare, gated)
        assert gated.health.distorted_vps == {}

    def test_distorted_census_reports_afflicted_vps(
        self, tiny_internet, tiny_platform
    ):
        plan = VpDistortionPlan(fraction=0.2, seed=99)
        census = make_campaign(
            tiny_internet, tiny_platform, distortion=plan
        ).run_census(availability=1.0)
        expected = VpDistorter(plan).distorted_names(
            [vp.name for vp in tiny_platform.vantage_points]
        )
        assert census.health.distorted_vps == {
            name: kind.value for name, kind in expected.items()
        }
        assert any(
            "distorted (chaos):" in line for line in census.health.summary_lines()
        )

    def test_stuck_vp_reports_one_constant_rtt(self, tiny_internet, tiny_platform):
        plan = VpDistortionPlan.single("stuck_rtt", fraction=0.2, seed=3)
        census = make_campaign(
            tiny_internet, tiny_platform, distortion=plan
        ).run_census()
        names = [vp.name for vp in census.platform.vantage_points]
        stuck = set(census.health.distorted_vps)
        assert stuck
        records = census.records
        for name in stuck:
            col = records.rtt_ms[
                (records.vp_index == names.index(name)) & (records.flag == 0)
            ]
            assert len(np.unique(col)) == 1
            lo, hi = plan.stuck_ms
            assert lo <= float(col[0]) <= hi

    def test_clock_skew_is_a_constant_offset(self, tiny_internet, tiny_platform):
        plan = VpDistortionPlan.single("clock_skew", fraction=0.2, seed=3)
        clean = make_campaign(tiny_internet, tiny_platform).run_census()
        skewed = make_campaign(
            tiny_internet, tiny_platform, distortion=plan
        ).run_census()
        names = [vp.name for vp in clean.platform.vantage_points]
        afflicted = set(skewed.health.distorted_vps)
        assert afflicted
        for name in afflicted:
            idx = names.index(name)
            mask = (clean.records.vp_index == idx) & (clean.records.flag == 0)
            offsets = skewed.records.rtt_ms[mask] - clean.records.rtt_ms[mask]
            lo, hi = plan.skew_ms
            assert np.allclose(offsets, offsets[0], atol=1e-3)
            assert lo <= abs(float(offsets[0])) <= hi
        # Honest columns are untouched.
        honest = ~np.isin(
            clean.records.vp_index, [names.index(n) for n in afflicted]
        )
        assert np.array_equal(
            skewed.records.rtt_ms[honest], clean.records.rtt_ms[honest],
            equal_nan=True,
        )

    def test_geo_error_moves_reported_location_only(
        self, tiny_internet, tiny_platform
    ):
        """A mis-geolocated VP lies about *where* it is, never about
        what it measured."""
        plan = VpDistortionPlan.single("geo_error", fraction=0.2, seed=3)
        clean = make_campaign(tiny_internet, tiny_platform).run_census(
            availability=1.0
        )
        lying = make_campaign(
            tiny_internet, tiny_platform, distortion=plan
        ).run_census(availability=1.0)
        assert records_bytes(clean) == records_bytes(lying)  # data untouched
        distorter = VpDistorter(plan)
        afflicted = set(lying.health.distorted_vps)
        assert afflicted
        for true_vp, claimed_vp in zip(
            tiny_platform.vantage_points, lying.platform.vantage_points
        ):
            assert true_vp.name == claimed_vp.name
            displaced = true_vp.location.distance_km(claimed_vp.location)
            if true_vp.name in afflicted:
                lo, hi = plan.geo_error_km
                assert lo * 0.99 <= displaced <= hi * 1.01
                assert distorter.distort_location(
                    true_vp.name, true_vp.location
                ) == claimed_vp.location
            else:
                assert displaced == 0.0

    def test_distortion_is_stable_across_runs(self, tiny_internet, tiny_platform):
        plan = VpDistortionPlan(fraction=0.25, seed=42)
        first = make_campaign(
            tiny_internet, tiny_platform, distortion=plan
        ).run_census()
        again = make_campaign(
            tiny_internet, tiny_platform, distortion=plan
        ).run_census()
        assert_same_census(first, again)
        assert first.health.distorted_vps == again.health.distorted_vps
