"""Tests for the nmap-like portscan simulation."""

import pytest

from repro.measurement.portscan import (
    FILTER_PROB,
    PortscanReport,
    nmap_is_ssl,
    nmap_service_name,
    run_portscan,
    scan_deployment,
    _deployment_open_ports,
)


def deployment(internet, name):
    for dep in internet.deployments:
        if dep.entry.name == name:
            return dep
    raise KeyError(name)


@pytest.fixture(scope="module")
def report(tiny_internet) -> PortscanReport:
    return run_portscan(tiny_internet, seed=77)


class TestPseudoRegistry:
    def test_exact_registry_takes_precedence(self):
        assert nmap_service_name(53) == "domain"
        assert nmap_service_name(443) == "https"

    def test_pseudo_density_near_nmap(self):
        named = sum(1 for p in range(10_000, 30_000) if nmap_service_name(p))
        assert 0.03 < named / 20_000 < 0.07

    def test_deterministic(self):
        assert nmap_service_name(23456) == nmap_service_name(23456)

    def test_ssl_flags(self):
        assert nmap_is_ssl(443)
        assert not nmap_is_ssl(80)

    def test_pseudo_ssl_fraction(self):
        named = [p for p in range(1024, 65535) if nmap_service_name(p, )]
        pseudo = [p for p in named if nmap_service_name(p).startswith("svc-")]
        ssl = sum(1 for p in pseudo if nmap_is_ssl(p))
        assert 0.25 < ssl / len(pseudo) < 0.5


class TestDeploymentPorts:
    def test_profile_ports_included(self, tiny_internet):
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        ports = _deployment_open_ports(cf)
        assert set(cf.entry.ports) <= set(ports)

    def test_seedbox_tail_size(self, tiny_internet):
        ovh = deployment(tiny_internet, "OVH,FR")
        ports = _deployment_open_ports(ovh)
        assert len(ports) == ovh.entry.total_ports == 10_148

    def test_seedbox_deterministic(self, tiny_internet):
        ovh = deployment(tiny_internet, "OVH,FR")
        assert _deployment_open_ports(ovh) == _deployment_open_ports(ovh)


class TestScanDeployment:
    def test_one_scan_per_prefix(self, tiny_internet):
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        scans = scan_deployment(cf, seed=1)
        assert len(scans) == len(cf.prefixes)

    def test_filtering_is_conservative(self, tiny_internet):
        """Observed ports are a subset of true ports, slightly undercounted."""
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        true_ports = set(_deployment_open_ports(cf))
        scans = scan_deployment(cf, seed=1)
        total_possible = len(true_ports) * len(scans)
        observed = sum(len(s.observations) for s in scans)
        for s in scans:
            assert set(s.open_ports) <= true_ports
        assert observed < total_possible  # some filtering happened
        assert observed > total_possible * (1 - 3 * FILTER_PROB)

    def test_software_from_profile(self, tiny_internet):
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        for scan in scan_deployment(cf, seed=1):
            for obs in scan.observations:
                if obs.software is not None:
                    assert obs.software in cf.entry.software

    def test_fingerprinting_partial(self, tiny_internet):
        """Some services stay tcpwrapped, as with real nmap."""
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        obs = [o for s in scan_deployment(cf, seed=1) for o in s.observations]
        wrapped = sum(1 for o in obs if o.is_tcpwrapped)
        assert 0 < wrapped < len(obs)


class TestReport:
    def test_scans_cover_top100_prefixes(self, report, tiny_internet):
        top = [d for d in tiny_internet.deployments if d.entry.rank <= 100]
        assert report.n_hosts == sum(len(d.prefixes) for d in top)

    def test_most_ases_respond(self, report):
        # Paper: 81 of the top-100 ASes have at least one open TCP port.
        assert 70 <= report.n_ases <= 100

    def test_total_ports_dominated_by_ovh(self, report):
        per_as = report.open_ports_per_as()
        assert max(per_as.values()) > 9000
        assert report.total_open_ports > 10_000

    def test_well_known_service_count_near_paper(self, report):
        # Paper: ~457 well-known services, ~185 over SSL.
        well_known = report.well_known_services()
        ssl = report.ssl_services()
        assert 300 <= len(well_known) <= 700
        assert 100 <= len(ssl) <= 300
        assert ssl <= well_known

    def test_top_ports_by_as(self, report):
        top = report.top_ports_by_as(k=10)
        assert len(top) == 10
        ports = [p for p, _ in top]
        # DNS, HTTP, HTTPS must lead the per-AS ranking.
        assert 53 in ports[:3]
        assert 80 in ports[:3]
        assert 443 in ports[:3]
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)

    def test_class_imbalance_in_per_prefix_ranking(self, report):
        """CloudFlare's 328 /24s push its management ports into the per-/24
        top-10 — the paper's class-imbalance warning (Fig. 14)."""
        per_prefix = dict(report.top_ports_by_prefix(k=10))
        cloudflare_only = {2052, 2053, 2082, 2083, 2086, 2087, 2095, 2096}
        assert len(cloudflare_only & set(per_prefix)) >= 2
        # ... while the head of the per-AS ranking stays generic (the odd
        # seedbox port can reach the sparse tail with 2-3 ASes).
        per_as_head = [p for p, _ in report.top_ports_by_as(k=5)]
        assert not (cloudflare_only & set(per_as_head))
        assert {53, 80, 443} <= set(per_as_head)

    def test_software_seen_subset_of_catalog(self, report):
        from repro.net.services import SOFTWARE_CATALOG

        seen = report.software_seen()
        assert seen <= set(SOFTWARE_CATALOG)
        assert len(seen) >= 15

    def test_software_by_as_counts(self, report):
        by_as = report.software_by_as()
        # ISC BIND is the dominant DNS daemon across DNS ASes.
        dns_counts = {
            name: len(ases) for name, ases in by_as.items()
            if name in ("ISC BIND", "NLnet Labs NSD")
        }
        assert dns_counts.get("ISC BIND", 0) > dns_counts.get("NLnet Labs NSD", 0)
