"""Tests for census archival round-trips."""

import numpy as np
import pytest

from repro.measurement.archive import load_census, save_census


class TestArchive:
    def test_roundtrip(self, tiny_census, tmp_path):
        save_census(tiny_census, tmp_path / "census1")
        back = load_census(tmp_path / "census1")

        assert back.census_id == tiny_census.census_id
        assert back.rate_pps == tiny_census.rate_pps
        assert [vp.name for vp in back.platform.vantage_points] == [
            vp.name for vp in tiny_census.platform.vantage_points
        ]
        assert np.allclose(back.vp_duration_hours, tiny_census.vp_duration_hours)
        assert np.allclose(back.vp_drop_rate, tiny_census.vp_drop_rate)
        assert len(back.records) == len(tiny_census.records)
        assert np.array_equal(back.records.prefix, tiny_census.records.prefix)
        assert np.array_equal(back.records.flag, tiny_census.records.flag)
        assert back.greylist.prefixes == tiny_census.greylist.prefixes

    def test_vp_details_survive(self, tiny_census, tmp_path):
        save_census(tiny_census, tmp_path / "c")
        back = load_census(tmp_path / "c")
        for a, b in zip(tiny_census.platform.vantage_points, back.platform.vantage_points):
            assert a.city.key == b.city.key
            assert a.location.distance_km(b.location) < 0.001
            assert a.host_load == pytest.approx(b.host_load)
            assert a.rate_limit.keep_probability(5000.0) == pytest.approx(
                b.rate_limit.keep_probability(5000.0)
            )

    def test_missing_archive(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_census(tmp_path / "nope")

    def test_analysis_identical_after_reload(self, tiny_census, tmp_path, city_db):
        """Measurement and analysis can run as separate processes."""
        from repro.census.analysis import analyze_matrix
        from repro.census.combine import matrix_from_census

        save_census(tiny_census, tmp_path / "c")
        back = load_census(tmp_path / "c")
        a = analyze_matrix(matrix_from_census(tiny_census), city_db=city_db)
        b = analyze_matrix(matrix_from_census(back), city_db=city_db)
        assert set(a.anycast_prefixes) == set(b.anycast_prefixes)
        # Replica counts agree despite the RTT quantization of the archive.
        diffs = [
            abs(a.results[p].replica_count - b.results[p].replica_count)
            for p in a.anycast_prefixes
        ]
        assert np.mean(diffs) < 0.2

    def test_overwrite_same_directory(self, tiny_census, tmp_path):
        save_census(tiny_census, tmp_path / "c")
        save_census(tiny_census, tmp_path / "c")
        assert load_census(tmp_path / "c").census_id == tiny_census.census_id
