"""Tests for census orchestration."""

import numpy as np
import pytest

from repro.measurement.campaign import CensusCampaign
from repro.net.icmp import IcmpOutcome


class TestEffectiveCoords:
    def test_unicast_targets_keep_host_location(self, tiny_campaign, tiny_internet):
        coords = tiny_campaign.effective_coords(0)
        host = tiny_internet.unicast_hosts[0]
        pos = tiny_internet.target_index(host.prefix)
        assert coords[0, pos] == pytest.approx(host.location.lat)
        assert coords[1, pos] == pytest.approx(host.location.lon)

    def test_anycast_targets_resolve_to_a_site(self, tiny_campaign, tiny_internet):
        coords = tiny_campaign.effective_coords(0)
        dep = tiny_internet.deployments[0]
        pos = tiny_internet.target_index(dep.prefixes[0])
        site_coords = {(r.location.lat, r.location.lon) for r in dep.replicas}
        assert (coords[0, pos], coords[1, pos]) in site_coords

    def test_different_vps_may_see_different_sites(self, tiny_campaign, tiny_internet):
        dep_idx = 0
        dep = tiny_internet.deployments[dep_idx]
        pos = tiny_internet.target_index(dep.prefixes[0])
        seen = set()
        for vp_idx in range(len(tiny_campaign.platform)):
            coords = tiny_campaign.effective_coords(vp_idx)
            seen.add((round(float(coords[0, pos]), 6), round(float(coords[1, pos]), 6)))
        assert len(seen) > 1  # a 45-site deployment serves VPs from many sites

    def test_coords_cached(self, tiny_campaign):
        a = tiny_campaign.effective_coords(0)
        b = tiny_campaign.effective_coords(0)
        assert a is b


class TestPrecensus:
    def test_builds_blacklist(self, tiny_internet, tiny_platform):
        campaign = CensusCampaign(tiny_internet, tiny_platform, seed=1)
        added = campaign.run_precensus()
        assert added == len(campaign.blacklist)
        assert added > 0

    def test_blacklisted_prefixes_are_error_hosts(self, tiny_internet, tiny_platform):
        campaign = CensusCampaign(tiny_internet, tiny_platform, seed=1)
        campaign.run_precensus()
        for prefix in campaign.blacklist.prefixes:
            assert tiny_internet.outcome_for(prefix).triggers_greylist


class TestCensus:
    def test_census_structure(self, tiny_census, tiny_platform):
        assert tiny_census.census_id == 1
        assert tiny_census.n_vps == len(tiny_platform)  # availability=1.0
        assert len(tiny_census.vp_duration_hours) == tiny_census.n_vps
        assert len(tiny_census.records) > 0

    def test_census_ids_increment(self, tiny_internet, tiny_platform):
        campaign = CensusCampaign(tiny_internet, tiny_platform, seed=2)
        c1 = campaign.run_census()
        c2 = campaign.run_census()
        assert (c1.census_id, c2.census_id) == (1, 2)

    def test_availability_subsets_platform(self, tiny_internet, tiny_platform):
        campaign = CensusCampaign(tiny_internet, tiny_platform, seed=3)
        census = campaign.run_census(availability=0.5)
        assert census.n_vps < len(tiny_platform)

    @pytest.mark.parametrize("availability", [0.0, -0.5, 1.5])
    def test_invalid_availability_rejected(self, tiny_internet, tiny_platform,
                                           availability):
        campaign = CensusCampaign(tiny_internet, tiny_platform, seed=3)
        with pytest.raises(ValueError, match="availability"):
            campaign.run_census(availability=availability)
        # The failed call must not have consumed a census id.
        assert campaign.run_census().census_id == 1

    def test_blacklist_grows_across_censuses(self, tiny_internet, tiny_platform):
        campaign = CensusCampaign(tiny_internet, tiny_platform, seed=4)
        campaign.run_census()
        size1 = len(campaign.blacklist)
        campaign.run_census()
        assert len(campaign.blacklist) >= size1

    def test_blacklisted_targets_not_probed_again(self, tiny_internet, tiny_platform):
        campaign = CensusCampaign(tiny_internet, tiny_platform, seed=5)
        c1 = campaign.run_census()
        black = set(campaign.blacklist.prefixes)
        assert black  # some errors were greylisted and merged
        c2 = campaign.run_census()
        probed_again = {int(p) for p in c2.records.prefix}
        assert not black & probed_again

    def test_greylist_composition_dominated_by_code13(self, tiny_census):
        comp = tiny_census.greylist.composition()
        if comp:
            assert comp.get(IcmpOutcome.ADMIN_FILTERED, 0.0) > 0.7

    def test_run_performs_precensus_and_n_censuses(self, tiny_internet, tiny_platform):
        campaign = CensusCampaign(tiny_internet, tiny_platform, seed=6)
        censuses = campaign.run(n_censuses=2)
        assert len(censuses) == 2
        assert len(campaign.blacklist) > 0

    def test_catchments_stable_across_censuses(self, tiny_internet, tiny_platform):
        """BGP routing is stable: the same VP sees the same replica."""
        campaign = CensusCampaign(tiny_internet, tiny_platform, seed=7)
        dep = tiny_internet.deployments[1]
        prefix = dep.prefixes[0]
        c1 = campaign.run_census(availability=1.0)
        c2 = campaign.run_census(availability=1.0)

        def min_rtts(census):
            replies = census.records.replies()
            mask = replies.prefix == prefix
            out = {}
            for vp_idx, rtt in zip(replies.vp_index[mask], replies.rtt_ms[mask]):
                name = census.platform.vantage_points[int(vp_idx)].name
                out[name] = min(out.get(name, np.inf), float(rtt))
            return out

        r1, r2 = min_rtts(c1), min_rtts(c2)
        common = set(r1) & set(r2)
        assert common
        # Same path baseline; per-probe jitter includes heavy spikes and
        # per-census VP degradation, so check that the *typical clean pair*
        # agrees: the lower quartile of deviations is small.
        diffs = sorted(abs(r1[name] - r2[name]) for name in common)
        assert diffs[len(diffs) // 4] < 10.0

    def test_reply_ratio(self, tiny_census, tiny_internet):
        ratio = tiny_census.reply_ratio(tiny_internet.n_targets)
        assert 0.2 < ratio < 0.9
