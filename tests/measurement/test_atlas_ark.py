"""Tests for the platform-suitability models (RIPE Atlas, Archipelago)."""

import numpy as np
import pytest

from repro.measurement.ark import ARK_TEAMS, ark_round
from repro.measurement.atlas import AtlasBudget, campaign_cost, census_feasible


class TestAtlasBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            AtlasBudget(credits_per_ping=0)
        with pytest.raises(ValueError):
            AtlasBudget(max_targets_per_measurement=0)

    def test_cost_arithmetic(self):
        cost = campaign_cost(n_targets=1000, n_probes=10)
        assert cost.total_pings == 10_000
        assert cost.total_credits == 10_000
        assert cost.days_at_daily_cap == pytest.approx(0.01)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            campaign_cost(0, 10)
        with pytest.raises(ValueError):
            campaign_cost(10, 0)

    def test_full_census_infeasible(self):
        """The paper's argument: 6.6M targets x 100s of probes cannot fit
        a census-like deadline on Atlas credits."""
        assert not census_feasible(
            n_targets=6_600_000, n_probes=300, deadline_days=7.0
        )

    def test_detected_prefix_followup_feasible(self):
        """...but refining the O(10^3) detected prefixes fits easily."""
        assert census_feasible(n_targets=1_700, n_probes=300, deadline_days=1.0)

    def test_measurement_count_explodes(self):
        cost = campaign_cost(n_targets=6_600_000, n_probes=300)
        assert cost.measurements_needed >= 6_600  # thousands of definitions

    def test_deadline_positive(self):
        with pytest.raises(ValueError):
            census_feasible(10, 10, deadline_days=0.0)


class TestArkDataset:
    @pytest.fixture(scope="class")
    def dataset(self, tiny_internet, tiny_platform):
        return ark_round(tiny_internet, tiny_platform, seed=5)

    def test_team_partition(self, dataset, tiny_platform):
        assert len(dataset.team_of_vp) == len(tiny_platform)
        assert set(np.unique(dataset.team_of_vp)) <= set(range(ARK_TEAMS))

    def test_hit_rate_low(self, dataset, tiny_internet):
        """Random in-prefix IPs respond rarely: ~6% of responsive space."""
        from repro.internet.topology import RESP_REPLY

        responsive = int((tiny_internet.responsiveness == RESP_REPLY).sum())
        hits = len(set(dataset.records.prefix.tolist()))
        assert hits < 0.15 * responsive

    def test_at_most_one_monitor_per_target_per_round(self, dataset):
        assert dataset.monitors_per_target <= ARK_TEAMS
        # One round: each /24 probed by a single monitor.
        prefixes = dataset.records.prefix
        assert len(prefixes) == len(set(prefixes.tolist()))

    def test_detection_collapses_on_ark_data(self, dataset, tiny_internet, tiny_platform, city_db):
        """The paper's conclusion: the Ark dataset cannot support an
        anycast census — with <= 1 monitor per /24 per round there are
        never two disks to compare."""
        from repro.census.analysis import analyze_matrix
        from repro.census.combine import RttMatrix

        # Build a matrix directly from the Ark records.
        prefixes = np.unique(dataset.records.prefix)
        names = [vp.name for vp in tiny_platform.vantage_points]
        locations = [vp.location for vp in tiny_platform.vantage_points]
        rtt = np.full((len(prefixes), len(names)), np.nan, dtype=np.float32)
        rows = np.searchsorted(prefixes, dataset.records.prefix)
        rtt[rows, dataset.records.vp_index] = dataset.records.rtt_ms
        matrix = RttMatrix(
            prefixes=prefixes,
            vp_names=names,
            vp_locations=locations,
            rtt_ms=rtt,
            sample_count=(~np.isnan(rtt)).astype(np.uint8),
        )
        analysis = analyze_matrix(matrix, city_db=city_db)
        assert analysis.n_anycast == 0

    def test_invalid_hit_rate(self, tiny_internet, tiny_platform):
        with pytest.raises(ValueError):
            ark_round(tiny_internet, tiny_platform, hit_rate=0.0)
