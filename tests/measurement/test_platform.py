"""Tests for measurement platforms and vantage points."""

import numpy as np
import pytest

from repro.geo.cities import default_city_db
from repro.measurement.platform import (
    Platform,
    VantagePoint,
    planetlab_platform,
    ripe_platform,
)
from repro.net.icmp import NO_RATE_LIMIT


class TestVantagePoint:
    def test_host_load_floor(self, city_db):
        city = city_db.get("Paris")
        with pytest.raises(ValueError):
            VantagePoint("x", city, city.location, host_load=0.5)


class TestPlatform:
    def test_duplicate_names_rejected(self, city_db):
        city = city_db.get("Paris")
        vp = VantagePoint("a", city, city.location)
        with pytest.raises(ValueError):
            Platform("p", [vp, vp])

    def test_len_iter_coords(self, tiny_platform):
        assert len(tiny_platform) == 60
        assert len(list(tiny_platform)) == 60
        assert tiny_platform.lats.shape == (60,)
        assert tiny_platform.lons.shape == (60,)

    def test_subset(self, tiny_platform):
        sub = tiny_platform.subset([0, 2, 4])
        assert len(sub) == 3
        assert sub.vantage_points[1] is tiny_platform.vantage_points[2]

    def test_sample_available_fraction(self, tiny_platform):
        rng = np.random.default_rng(0)
        sub = tiny_platform.sample_available(rng, availability=0.85)
        assert 0 < len(sub) <= len(tiny_platform)
        assert abs(len(sub) / len(tiny_platform) - 0.85) < 0.2

    def test_sample_available_never_empty(self, tiny_platform):
        rng = np.random.default_rng(0)
        sub = tiny_platform.sample_available(rng, availability=0.01)
        assert len(sub) >= 1

    def test_sample_availability_bounds(self, tiny_platform):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            tiny_platform.sample_available(rng, availability=0.0)


class TestPlanetLab:
    def test_count(self):
        assert len(planetlab_platform(count=50, seed=1)) == 50

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            planetlab_platform(count=0)

    def test_deterministic(self):
        a = planetlab_platform(count=30, seed=5)
        b = planetlab_platform(count=30, seed=5)
        assert [vp.name for vp in a] == [vp.name for vp in b]
        assert np.array_equal(a.lats, b.lats)

    def test_us_eu_skew(self):
        plat = planetlab_platform(count=400, seed=2)
        western = sum(
            1 for vp in plat
            if vp.city.country in {"US", "CA", "DE", "FR", "GB", "IT", "ES", "NL",
                                   "BE", "CH", "SE", "PL", "CZ", "AT", "PT", "IE"}
        )
        assert western / len(plat) > 0.6

    def test_some_nodes_rate_limited(self):
        plat = planetlab_platform(count=300, seed=2, limited_fraction=0.3)
        limited = sum(1 for vp in plat if vp.rate_limit is not NO_RATE_LIMIT)
        assert 0.15 * 300 < limited < 0.5 * 300

    def test_no_limits_when_fraction_zero(self):
        plat = planetlab_platform(count=50, seed=2, limited_fraction=0.0)
        assert all(vp.rate_limit is NO_RATE_LIMIT for vp in plat)

    def test_host_load_heavy_tail(self):
        plat = planetlab_platform(count=400, seed=2)
        loads = np.array([vp.host_load for vp in plat])
        assert (loads >= 1.0).all()
        assert (loads < 1.1).mean() > 0.25  # fast cohort exists
        assert loads.max() > 1.5            # and a slow tail


class TestRipe:
    def test_larger_and_broader(self):
        ripe = ripe_platform(count=600, seed=3)
        pl = planetlab_platform(count=300, seed=3)
        assert len(ripe) > len(pl)
        ripe_countries = {vp.city.country for vp in ripe}
        pl_countries = {vp.city.country for vp in pl}
        assert len(ripe_countries) > len(pl_countries)

    def test_no_rate_limits(self):
        ripe = ripe_platform(count=100, seed=3)
        assert all(vp.rate_limit is NO_RATE_LIMIT for vp in ripe)

    def test_eu_heavy(self):
        ripe = ripe_platform(count=500, seed=3)
        eu = sum(
            1 for vp in ripe
            if vp.city.country in {"DE", "FR", "GB", "NL", "IT", "ES", "SE", "CH",
                                   "BE", "AT", "PL", "CZ", "FI", "NO", "DK"}
        )
        assert eu / len(ripe) > 0.4
