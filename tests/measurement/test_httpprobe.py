"""Tests for the HTTP ground-truth probe."""

import pytest

from repro.measurement.httpprobe import (
    HttpResponse,
    SiteCodeBook,
    http_probe,
    measure_http_ground_truth,
    publicly_advertised_cities,
    replica_city_from_headers,
)


def deployment(internet, name):
    for dep in internet.deployments:
        if dep.entry.name == name:
            return dep
    raise KeyError(name)


@pytest.fixture(scope="module")
def codebook(city_db) -> SiteCodeBook:
    return SiteCodeBook(city_db)


class TestCodeBook:
    def test_bijection(self, codebook, city_db):
        codes = {codebook.code(c) for c in city_db}
        assert len(codes) == len(city_db)
        for city in city_db:
            assert codebook.city(codebook.code(city)) == city

    def test_code_shape(self, codebook, city_db):
        for city in list(city_db)[:50]:
            code = codebook.code(city)
            assert len(code) == 3
            assert code.isupper() or any(ch.isdigit() for ch in code)

    def test_unknown_code(self, codebook):
        with pytest.raises(KeyError):
            codebook.city("???")

    def test_unknown_city(self, codebook, city_db):
        from repro.geo.cities import City
        from repro.geo.coords import GeoPoint

        with pytest.raises(KeyError):
            codebook.code(City("Atlantis", "XX", GeoPoint(0, 0), 1))


class TestProbe:
    def test_cloudflare_reveals_city(self, tiny_internet, tiny_platform, codebook):
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        vp = tiny_platform.vantage_points[0]
        response = http_probe(cf, vp, codebook)
        assert response.status == 200
        assert "CF-RAY" in response.headers
        city = replica_city_from_headers(response, codebook)
        assert city in set(cf.site_cities)

    def test_edgecast_reveals_city(self, tiny_internet, tiny_platform, codebook):
        ec = deployment(tiny_internet, "EDGECAST,US")
        vp = tiny_platform.vantage_points[3]
        response = http_probe(ec, vp, codebook)
        assert "Server" in response.headers
        assert response.headers["Server"].startswith("ECS (")
        city = replica_city_from_headers(response, codebook)
        assert city in set(ec.site_cities)

    def test_plain_deployment_reveals_nothing(self, tiny_internet, tiny_platform, codebook):
        goog = deployment(tiny_internet, "GOOGLE,US")
        vp = tiny_platform.vantage_points[0]
        response = http_probe(goog, vp, codebook)
        assert replica_city_from_headers(response, codebook) is None

    def test_probe_matches_catchment(self, tiny_internet, tiny_platform, codebook):
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        vp = tiny_platform.vantage_points[7]
        response = http_probe(cf, vp, codebook)
        city = replica_city_from_headers(response, codebook)
        assert city == cf.serving_replica(vp.location).city

    def test_malformed_cf_ray_rejected(self, codebook):
        bad = HttpResponse(200, {"CF-RAY": "zzz"})
        with pytest.raises(ValueError):
            replica_city_from_headers(bad, codebook)

    def test_ordinary_server_header_ignored(self, codebook):
        response = HttpResponse(200, {"Server": "nginx/1.9.2"})
        assert replica_city_from_headers(response, codebook) is None


class TestGroundTruth:
    def test_gt_subset_of_pai(self, tiny_internet, tiny_platform, codebook):
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        gt = measure_http_ground_truth(cf, tiny_platform, codebook)
        pai = publicly_advertised_cities(cf)
        assert gt <= pai
        assert len(gt) > 1

    def test_gt_empty_without_header(self, tiny_internet, tiny_platform, codebook):
        goog = deployment(tiny_internet, "GOOGLE,US")
        assert measure_http_ground_truth(goog, tiny_platform, codebook) == set()

    def test_more_vps_see_more(self, tiny_internet, tiny_platform, codebook):
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        few = tiny_platform.subset(range(5))
        gt_few = measure_http_ground_truth(cf, few, codebook)
        gt_all = measure_http_ground_truth(cf, tiny_platform, codebook)
        assert gt_few <= gt_all
