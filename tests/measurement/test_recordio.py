"""Tests for census record formats (binary vs textual)."""

import io

import numpy as np
import pytest

from repro.measurement.recordio import (
    FLAG_OTHER_ERROR,
    FLAG_REPLY,
    CensusRecords,
    concatenate,
    flag_for,
    outcome_for,
)
from repro.net.icmp import IcmpOutcome


def make_records(n=100, census_id=1, seed=0) -> CensusRecords:
    rng = np.random.default_rng(seed)
    flags = rng.choice([FLAG_REPLY, FLAG_REPLY, FLAG_REPLY, -13, -10, -9, 1], size=n).astype(np.int8)
    rtt = np.where(flags == FLAG_REPLY, rng.uniform(0.5, 300.0, n), np.nan).astype(np.float32)
    return CensusRecords(
        census_id=census_id,
        vp_index=rng.integers(0, 50, n).astype(np.uint16),
        prefix=rng.integers(70000, 90000, n).astype(np.uint32),
        timestamp_ms=np.sort(rng.uniform(0, 1e7, n)),
        rtt_ms=rtt,
        flag=flags,
    )


class TestFlags:
    def test_reply_flag(self):
        assert flag_for(IcmpOutcome.ECHO_REPLY) == FLAG_REPLY

    @pytest.mark.parametrize(
        "outcome,flag",
        [
            (IcmpOutcome.ADMIN_FILTERED, -13),
            (IcmpOutcome.HOST_PROHIBITED, -10),
            (IcmpOutcome.NET_PROHIBITED, -9),
            (IcmpOutcome.UNREACHABLE, FLAG_OTHER_ERROR),
        ],
    )
    def test_error_flags_roundtrip(self, outcome, flag):
        assert flag_for(outcome) == flag
        assert outcome_for(flag) is outcome

    def test_silent_has_no_record(self):
        with pytest.raises(ValueError):
            flag_for(IcmpOutcome.SILENT)

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError):
            outcome_for(7)


class TestColumns:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CensusRecords(
                1,
                np.zeros(3, np.uint16),
                np.zeros(2, np.uint32),
                np.zeros(3),
                np.zeros(3, np.float32),
                np.zeros(3, np.int8),
            )

    def test_replies_filter(self):
        records = make_records(500)
        replies = records.replies()
        assert (replies.flag == FLAG_REPLY).all()
        assert not np.isnan(replies.rtt_ms).any()

    def test_greylistable_filter(self):
        records = make_records(500)
        grey = records.greylistable()
        assert (grey.flag < 0).all()

    def test_select_preserves_census_id(self):
        records = make_records(10, census_id=7)
        assert records.select(records.flag == FLAG_REPLY).census_id == 7


class TestBinaryFormat:
    def test_roundtrip(self):
        records = make_records(300)
        buf = io.BytesIO()
        written = records.write_binary(buf)
        assert written == buf.tell() == records.binary_size_bytes()
        buf.seek(0)
        back = CensusRecords.read_binary(buf)
        assert back.census_id == records.census_id
        assert np.array_equal(back.vp_index, records.vp_index)
        assert np.array_equal(back.prefix, records.prefix)
        assert np.array_equal(back.flag, records.flag)
        # RTTs quantized to 0.01 ms.
        mask = records.flag == FLAG_REPLY
        assert np.allclose(back.rtt_ms[mask], records.rtt_ms[mask], atol=0.006)
        assert np.isnan(back.rtt_ms[~mask]).all()

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            CensusRecords.read_binary(io.BytesIO(b"NOPE" + b"\0" * 20))

    def test_truncation_detected(self):
        records = make_records(50)
        buf = io.BytesIO()
        records.write_binary(buf)
        truncated = io.BytesIO(buf.getvalue()[:-10])
        with pytest.raises(ValueError):
            CensusRecords.read_binary(truncated)

    def test_empty_roundtrip(self):
        records = make_records(0)
        buf = io.BytesIO()
        records.write_binary(buf)
        buf.seek(0)
        assert len(CensusRecords.read_binary(buf)) == 0


class TestCsvFormat:
    def test_roundtrip(self):
        records = make_records(120)
        buf = io.StringIO()
        records.write_csv(buf)
        buf.seek(0)
        back = CensusRecords.read_csv(buf)
        assert np.array_equal(back.prefix, records.prefix)
        assert np.array_equal(back.flag, records.flag)
        mask = records.flag == FLAG_REPLY
        assert np.allclose(back.rtt_ms[mask], records.rtt_ms[mask], rtol=1e-5)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            CensusRecords.read_csv(io.StringIO("1,2,3\n"))

    def test_comments_skipped(self):
        records = make_records(5)
        buf = io.StringIO()
        records.write_csv(buf)
        buf.seek(0)
        assert len(CensusRecords.read_csv(buf)) == 5


class TestSizes:
    def test_binary_much_smaller_than_csv(self):
        """The Tab. 1 effect: binary is a fraction of the textual size."""
        records = make_records(2000)
        assert records.binary_size_bytes() * 2 < records.csv_size_bytes()

    def test_csv_size_matches_actual_write(self):
        records = make_records(50)
        buf = io.StringIO()
        records.write_csv(buf)
        assert len(buf.getvalue()) == records.csv_size_bytes()


class TestConcatenate:
    def test_concatenate(self):
        a, b = make_records(10, seed=1), make_records(20, seed=2)
        merged = concatenate((a, b))
        assert len(merged) == 30

    def test_mixed_census_ids_rejected(self):
        a = make_records(5, census_id=1)
        b = make_records(5, census_id=2)
        with pytest.raises(ValueError):
            concatenate((a, b))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate(())


class TestChecksum:
    def test_stable_across_calls(self):
        records = make_records(50)
        assert records.checksum() == records.checksum()

    def test_sensitive_to_any_column(self):
        base = make_records(50)
        reference = base.checksum()
        outside = {  # a value outside each column's generated range
            "vp_index": 60000,
            "prefix": 5,
            "timestamp_ms": -777.0,
            "rtt_ms": -777.0,
            "flag": 77,
        }
        for column, value in outside.items():
            mutated = make_records(50)
            getattr(mutated, column)[7] = value
            assert mutated.checksum() != reference, column

    def test_sensitive_to_census_id(self):
        assert make_records(10, census_id=1).checksum() != make_records(
            10, census_id=2
        ).checksum()

    def test_empty_records_well_typed(self):
        empty = CensusRecords.empty(3)
        assert len(empty) == 0
        assert empty.census_id == 3
        assert isinstance(empty.checksum(), int)


class TestValidatedConcatenate:
    def test_valid_checksums_pass(self):
        a, b = make_records(10, seed=1), make_records(20, seed=2)
        merged = concatenate((a, b), checksums=(a.checksum(), b.checksum()))
        assert len(merged) == 30

    def test_corrupt_batch_raises(self):
        from repro.measurement.recordio import CorruptBatchError

        a, b = make_records(10, seed=1), make_records(20, seed=2)
        good = b.checksum()
        b.prefix[0] ^= 0xFF  # bit rot after checksumming
        with pytest.raises(CorruptBatchError) as exc:
            concatenate((a, b), checksums=(a.checksum(), good))
        assert exc.value.indices == (1,)

    def test_corrupt_batch_dropped(self):
        a, b = make_records(10, seed=1), make_records(20, seed=2)
        good = b.checksum()
        b.prefix[0] ^= 0xFF
        merged = concatenate(
            (a, b), checksums=(a.checksum(), good), on_corrupt="drop"
        )
        assert len(merged) == 10

    def test_checksum_count_must_match(self):
        a = make_records(10, seed=1)
        with pytest.raises(ValueError):
            concatenate((a,), checksums=())

    def test_unknown_mode_rejected(self):
        a = make_records(10, seed=1)
        with pytest.raises(ValueError):
            concatenate((a,), checksums=(a.checksum(),), on_corrupt="ignore")


class TestRawFormat:
    def test_roundtrip_is_exact(self):
        records = make_records(200, census_id=4, seed=9)
        sink = io.BytesIO()
        records.write_raw(sink)
        sink.seek(0)
        loaded = CensusRecords.read_raw(sink)
        assert loaded.census_id == 4
        # Bit-for-bit, including full-precision floats and NaN patterns —
        # unlike write_binary, which quantizes.
        assert loaded.checksum() == records.checksum()
        assert np.array_equal(loaded.timestamp_ms, records.timestamp_ms)
        assert np.array_equal(loaded.rtt_ms, records.rtt_ms, equal_nan=True)

    def test_truncated_blob_rejected(self):
        records = make_records(50)
        sink = io.BytesIO()
        records.write_raw(sink)
        truncated = io.BytesIO(sink.getvalue()[:-10])
        with pytest.raises(ValueError):
            CensusRecords.read_raw(truncated)

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError):
            CensusRecords.read_raw(io.BytesIO(b"NOPE" + b"\0" * 20))


class TestStreamingRaw:
    """iter_raw_batches ≡ read_raw_checksummed, in O(batch) memory."""

    @staticmethod
    def _sealed(records) -> io.BytesIO:
        from repro.measurement.recordio import write_raw_checksummed

        sink = io.BytesIO()
        write_raw_checksummed(records, sink)
        sink.seek(0)
        return sink

    def test_batches_reassemble_exactly(self):
        from repro.measurement.recordio import iter_raw_batches

        records = make_records(500, census_id=3, seed=4)
        batches = list(iter_raw_batches(self._sealed(records), batch_records=64))
        assert len(batches) == (500 + 63) // 64
        merged = concatenate(tuple(batches))
        assert merged.checksum() == records.checksum()
        assert np.array_equal(merged.timestamp_ms, records.timestamp_ms)
        assert np.array_equal(merged.rtt_ms, records.rtt_ms, equal_nan=True)

    def test_empty_payload_yields_one_empty_batch(self):
        from repro.measurement.recordio import iter_raw_batches

        records = CensusRecords.empty(7)
        batches = list(iter_raw_batches(self._sealed(records)))
        assert len(batches) == 1
        assert len(batches[0]) == 0
        assert batches[0].census_id == 7

    def test_corruption_detected_before_any_batch(self):
        from repro.measurement.recordio import CorruptPayloadError, iter_raw_batches

        records = make_records(200, seed=5)
        blob = bytearray(self._sealed(records).getvalue())
        blob[40] ^= 0xFF  # flip a payload byte under the seal
        with pytest.raises(CorruptPayloadError):
            list(iter_raw_batches(io.BytesIO(bytes(blob))))

    def test_truncation_detected(self):
        from repro.measurement.recordio import CorruptPayloadError, iter_raw_batches

        records = make_records(200, seed=6)
        blob = self._sealed(records).getvalue()[:-30]
        with pytest.raises(CorruptPayloadError):
            list(iter_raw_batches(io.BytesIO(blob)))

    def test_matches_one_shot_reader(self):
        from repro.measurement.recordio import (
            iter_raw_batches,
            read_raw_checksummed,
        )

        records = make_records(300, seed=7)
        one_shot = read_raw_checksummed(self._sealed(records))
        streamed = concatenate(
            tuple(iter_raw_batches(self._sealed(records), batch_records=50))
        )
        assert streamed.checksum() == one_shot.checksum()


class TestFlapCheckpointResume:
    """Fault-injection flap mode interacting with journal resume.

    A flapped VP contributes *no* records at all for that census.  The
    journal must reproduce exactly that absence on resume: a census
    interrupted while flaps are active and resumed in a fresh process
    has to be bit-for-bit identical to an uninterrupted run — flapped
    VPs must not be re-rolled, double-recorded, or resurrected.
    """

    @staticmethod
    def _campaign(internet, platform, seed=321):
        from repro.measurement.campaign import CensusCampaign
        from repro.measurement.faults import FaultPlan

        campaign = CensusCampaign(
            internet,
            platform,
            seed=seed,
            fault_plan=FaultPlan(flap_prob=0.4, seed=17),
            min_vp_quorum=1,
        )
        campaign.run_precensus()
        return campaign

    @staticmethod
    def _records_bytes(census):
        sink = io.BytesIO()
        census.records.write_binary(sink)
        return sink.getvalue()

    def test_resume_mid_flap_is_bit_for_bit(
        self, tiny_internet, tiny_platform, tmp_path
    ):
        from repro.measurement.campaign import CensusInterrupted

        reference = self._campaign(tiny_internet, tiny_platform)
        uninterrupted = reference.run_census(availability=0.85)
        # The fault plan must actually flap VPs or this exercises nothing.
        assert uninterrupted.health.faults_seen.get("flap", 0) > 0
        flapped = uninterrupted.health.failed_vps
        assert flapped, "flap plan injected no flaps; adjust seed"

        journal_path = tmp_path / "census-001.journal"
        interrupted = self._campaign(tiny_internet, tiny_platform)
        with pytest.raises(CensusInterrupted) as exc:
            interrupted.run_census(
                availability=0.85,
                checkpoint=str(journal_path),
                abort_after_vps=7,
            )
        assert exc.value.completed_vps == 7

        # "New process": a fresh campaign under the same seeds replays
        # the journal prefix and scans only the remaining VPs.
        resumer = self._campaign(tiny_internet, tiny_platform)
        resumed = resumer.run_census(
            availability=0.85, checkpoint=str(journal_path)
        )
        assert resumed.health.n_vps_resumed == 7
        assert self._records_bytes(resumed) == self._records_bytes(uninterrupted)
        assert np.array_equal(
            resumed.records.rtt_ms, uninterrupted.records.rtt_ms, equal_nan=True
        )
        assert sorted(resumed.greylist.prefixes) == sorted(
            uninterrupted.greylist.prefixes
        )
        # The flap pattern itself is part of the reproduced state.
        assert resumed.health.failed_vps == flapped
        assert resumed.health.faults_seen.get("flap", 0) == (
            uninterrupted.health.faults_seen.get("flap", 0)
        )
