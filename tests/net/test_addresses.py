"""Tests for IPv4 /24 arithmetic and prefix handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addresses import (
    Prefix,
    TOTAL_SLASH24,
    format_ipv4,
    format_slash24,
    host_in_slash24,
    is_reserved,
    parse_ipv4,
    parse_slash24,
    slash24_base_address,
    slash24_of,
    split_to_slash24,
)

addr_st = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestParseFormat:
    def test_parse_known(self):
        assert parse_ipv4("192.0.2.1") == 0xC0000201

    def test_format_known(self):
        assert format_ipv4(0xC0000201) == "192.0.2.1"

    def test_parse_extremes(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"])
    def test_parse_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_ipv4(bad)

    def test_format_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(-1)
        with pytest.raises(ValueError):
            format_ipv4(1 << 32)

    @given(addr_st)
    @settings(max_examples=80)
    def test_roundtrip(self, addr):
        assert parse_ipv4(format_ipv4(addr)) == addr


class TestSlash24:
    def test_slash24_of(self):
        assert slash24_of(parse_ipv4("10.1.2.3")) == parse_ipv4("10.1.2.0") >> 8

    def test_base_address(self):
        idx = slash24_of(parse_ipv4("10.1.2.3"))
        assert format_ipv4(slash24_base_address(idx)) == "10.1.2.0"

    def test_host_in_slash24(self):
        idx = slash24_of(parse_ipv4("10.1.2.0"))
        assert format_ipv4(host_in_slash24(idx, 77)) == "10.1.2.77"

    def test_host_octet_bounds(self):
        with pytest.raises(ValueError):
            host_in_slash24(0, 256)
        with pytest.raises(ValueError):
            host_in_slash24(0, -1)

    def test_format_parse_slash24(self):
        idx = slash24_of(parse_ipv4("198.41.0.4"))
        text = format_slash24(idx)
        assert text == "198.41.0.0/24"
        assert parse_slash24(text) == idx

    def test_parse_slash24_rejects_other_lengths(self):
        with pytest.raises(ValueError):
            parse_slash24("10.0.0.0/8")

    def test_index_bounds(self):
        with pytest.raises(ValueError):
            slash24_base_address(TOTAL_SLASH24)

    @given(addr_st)
    @settings(max_examples=50)
    def test_slash24_roundtrip(self, addr):
        idx = slash24_of(addr)
        base = slash24_base_address(idx)
        assert base <= addr < base + 256


class TestPrefix:
    def test_parse(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.length == 8
        assert p.size == 1 << 24

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(parse_ipv4("10.0.0.1"), 8)

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)

    def test_contains(self):
        p = Prefix.parse("192.168.0.0/16")
        assert p.contains(parse_ipv4("192.168.3.4"))
        assert not p.contains(parse_ipv4("192.169.0.0"))

    def test_slash24s_of_slash22(self):
        p = Prefix.parse("10.0.0.0/22")
        indices = list(p.slash24s())
        assert len(indices) == 4
        assert indices == sorted(indices)

    def test_slash24s_of_longer_prefix(self):
        p = Prefix.parse("10.0.0.128/25")
        assert list(p.slash24s()) == [slash24_of(parse_ipv4("10.0.0.0"))]

    def test_str(self):
        assert str(Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_parse_requires_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0")


class TestReserved:
    @pytest.mark.parametrize(
        "addr",
        ["10.1.2.3", "127.0.0.1", "192.168.1.1", "224.0.0.5", "169.254.0.1", "0.1.2.3"],
    )
    def test_reserved(self, addr):
        assert is_reserved(parse_ipv4(addr))

    @pytest.mark.parametrize("addr", ["8.8.8.8", "1.1.1.1", "198.41.0.4", "93.184.216.34"])
    def test_public(self, addr):
        assert not is_reserved(parse_ipv4(addr))


class TestSplit:
    def test_split_deduplicates_and_sorts(self):
        prefixes = [Prefix.parse("10.0.0.0/23"), Prefix.parse("10.0.1.0/24")]
        out = split_to_slash24(prefixes)
        assert out == sorted(set(out))
        assert len(out) == 2

    def test_split_counts(self):
        prefixes = [Prefix.parse("10.0.0.0/20")]
        assert len(split_to_slash24(prefixes)) == 16

    def test_split_empty(self):
        assert split_to_slash24([]) == []
