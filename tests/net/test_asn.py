"""Tests for the AS registry."""

import pytest

from repro.net.asn import ASRegistry, AutonomousSystem, BusinessCategory


def make_as(asn=13335, name="CLOUDFLARENET,US", category=BusinessCategory.CDN):
    return AutonomousSystem(asn=asn, name=name, country="US", category=category)


class TestAutonomousSystem:
    def test_valid(self):
        asys = make_as()
        assert asys.asn == 13335

    def test_positive_asn_required(self):
        with pytest.raises(ValueError):
            AutonomousSystem(0, "X", "US")

    def test_name_required(self):
        with pytest.raises(ValueError):
            AutonomousSystem(1, "", "US")

    def test_whois_label_capped_at_12(self):
        asys = AutonomousSystem(1, "AVERYLONGWHOISNAME,US", "US")
        assert asys.whois_label == "AVERYLONGWHO"
        assert len(asys.whois_label) == 12

    def test_default_category_unknown(self):
        assert AutonomousSystem(1, "X", "US").category is BusinessCategory.UNKNOWN


class TestCoarseCategories:
    @pytest.mark.parametrize(
        "category,coarse",
        [
            (BusinessCategory.DNS, "DNS"),
            (BusinessCategory.CDN, "CDN"),
            (BusinessCategory.CLOUD, "Cloud"),
            (BusinessCategory.CLOUD_MESSAGING, "Cloud"),
            (BusinessCategory.ISP, "ISP"),
            (BusinessCategory.ISP_TIER1, "ISP"),
            (BusinessCategory.BACKBONE, "ISP"),
            (BusinessCategory.SECURITY, "Security"),
            (BusinessCategory.SOCIAL_NETWORK, "Social"),
            (BusinessCategory.UNKNOWN, "Unknown"),
            (BusinessCategory.BLOGGING, "Other"),
            (BusinessCategory.WEB_PORTAL, "Other"),
            (BusinessCategory.TELECOM_VENDOR, "Other"),
        ],
    )
    def test_mapping(self, category, coarse):
        assert category.coarse == coarse


class TestRegistry:
    def test_add_and_get(self):
        reg = ASRegistry()
        asys = reg.add(make_as())
        assert reg[13335] is asys
        assert 13335 in reg
        assert len(reg) == 1

    def test_add_idempotent(self):
        reg = ASRegistry()
        reg.add(make_as())
        reg.add(make_as())
        assert len(reg) == 1

    def test_conflicting_registration_rejected(self):
        reg = ASRegistry()
        reg.add(make_as())
        with pytest.raises(ValueError):
            reg.add(make_as(name="OTHER,US"))

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            ASRegistry()[1]

    def test_assign_prefix_and_owner(self):
        reg = ASRegistry()
        reg.add(make_as())
        reg.assign_prefix(1000, 13335)
        assert reg.owner_of(1000).asn == 13335
        assert reg.owner_of(1001) is None

    def test_assign_prefix_unknown_as(self):
        reg = ASRegistry()
        with pytest.raises(KeyError):
            reg.assign_prefix(1, 99)

    def test_reassign_prefix_rejected(self):
        reg = ASRegistry()
        reg.add(make_as(asn=1))
        reg.add(make_as(asn=2, name="B,US"))
        reg.assign_prefix(5, 1)
        with pytest.raises(ValueError):
            reg.assign_prefix(5, 2)

    def test_assign_same_owner_idempotent(self):
        reg = ASRegistry()
        reg.add(make_as(asn=1))
        reg.assign_prefix(5, 1)
        reg.assign_prefix(5, 1)
        assert reg.prefixes_of(1) == [5]

    def test_prefixes_of_sorted(self):
        reg = ASRegistry()
        reg.add(make_as(asn=1))
        for p in (9, 3, 7):
            reg.assign_prefix(p, 1)
        assert reg.prefixes_of(1) == [3, 7, 9]

    def test_prefixes_of_unknown(self):
        with pytest.raises(KeyError):
            ASRegistry().prefixes_of(404)

    def test_by_category(self):
        reg = ASRegistry()
        reg.add(make_as(asn=1, category=BusinessCategory.DNS, name="A,US"))
        reg.add(make_as(asn=2, category=BusinessCategory.CDN, name="B,US"))
        reg.add(make_as(asn=3, category=BusinessCategory.DNS, name="C,US"))
        dns = reg.by_category(BusinessCategory.DNS)
        assert [a.asn for a in dns] == [1, 3]

    def test_find_by_name(self):
        reg = ASRegistry()
        reg.add(make_as())
        assert reg.find_by_name("CLOUDFLARENET,US").asn == 13335
        with pytest.raises(KeyError):
            reg.find_by_name("NOPE")

    def test_iteration(self):
        reg = ASRegistry()
        reg.add(make_as(asn=1, name="A,US"))
        reg.add(make_as(asn=2, name="B,US"))
        assert {a.asn for a in reg} == {1, 2}
