"""Tests for the BGP announcement table."""

import numpy as np
import pytest

from repro.net.addresses import Prefix, parse_ipv4, slash24_of
from repro.net.bgp import (
    Announcement,
    AnnouncementTable,
    announce_owned_slash24s,
    table_for_internet,
    _contiguous_runs,
)


class TestContiguousRuns:
    def test_empty(self):
        assert _contiguous_runs([]) == []

    def test_single(self):
        assert _contiguous_runs([5]) == [(5, 1)]

    def test_multiple_runs(self):
        assert _contiguous_runs([1, 2, 3, 7, 8, 10]) == [(1, 3), (7, 2), (10, 1)]


class TestAnnounceOwned:
    def test_full_slash24_mode(self):
        rng = np.random.default_rng(0)
        owned = list(range(1000, 1008))
        out = announce_owned_slash24s(owned, 65000, rng, slash24_prob=1.0)
        assert len(out) == 8
        assert all(a.prefix.length == 24 for a in out)

    def test_aggregation_mode(self):
        rng = np.random.default_rng(0)
        # An aligned run of 8 /24s aggregates into a single /21.
        owned = list(range(1024, 1032))
        out = announce_owned_slash24s(owned, 65000, rng, slash24_prob=0.0)
        assert len(out) == 1
        assert out[0].prefix.length == 21

    def test_unaligned_run_splits(self):
        rng = np.random.default_rng(0)
        # 3 /24s starting at an odd index: cannot form one aggregate.
        owned = [1001, 1002, 1003]
        out = announce_owned_slash24s(owned, 65000, rng, slash24_prob=0.0)
        assert sum(1 << (24 - a.prefix.length) for a in out) == 3
        covered = set()
        for a in out:
            covered.update(a.prefix.slash24s())
        assert covered == set(owned)

    def test_coverage_always_exact(self):
        rng = np.random.default_rng(1)
        owned = sorted(rng.choice(10_000, size=50, replace=False).tolist())
        out = announce_owned_slash24s(owned, 1, rng, slash24_prob=0.3)
        covered = set()
        for a in out:
            covered.update(a.prefix.slash24s())
        assert covered == set(owned)

    def test_prob_validation(self):
        with pytest.raises(ValueError):
            announce_owned_slash24s([1], 1, np.random.default_rng(0), slash24_prob=2.0)


class TestTable:
    def test_lookup_exact(self):
        table = AnnouncementTable(
            [Announcement(Prefix(parse_ipv4("10.1.2.0"), 24), 7)]
        )
        idx = slash24_of(parse_ipv4("10.1.2.0"))
        hit = table.lookup_slash24(idx)
        assert hit is not None and hit.origin_asn == 7

    def test_lookup_aggregate(self):
        table = AnnouncementTable(
            [Announcement(Prefix(parse_ipv4("10.0.0.0"), 16), 9)]
        )
        idx = slash24_of(parse_ipv4("10.0.200.0"))
        hit = table.lookup_slash24(idx)
        assert hit is not None and hit.prefix.length == 16

    def test_longest_prefix_wins(self):
        table = AnnouncementTable(
            [
                Announcement(Prefix(parse_ipv4("10.0.0.0"), 16), 1),
                Announcement(Prefix(parse_ipv4("10.0.5.0"), 24), 2),
            ]
        )
        hit = table.lookup_slash24(slash24_of(parse_ipv4("10.0.5.0")))
        assert hit.origin_asn == 2
        hit = table.lookup_slash24(slash24_of(parse_ipv4("10.0.6.0")))
        assert hit.origin_asn == 1

    def test_lookup_miss(self):
        table = AnnouncementTable(
            [Announcement(Prefix(parse_ipv4("10.0.0.0"), 16), 1)]
        )
        assert table.lookup_slash24(slash24_of(parse_ipv4("11.0.0.0"))) is None

    def test_empty_share_rejected(self):
        with pytest.raises(ValueError):
            AnnouncementTable([]).slash24_share()


class TestInternetTable:
    @pytest.fixture(scope="class")
    def table(self, tiny_internet):
        return table_for_internet(tiny_internet)

    def test_every_target_resolvable(self, table, tiny_internet):
        """The paper's a-posteriori mapping: every census /24 joins back to
        an announced prefix."""
        for pos in range(0, tiny_internet.n_targets, 37):
            hit = table.lookup_slash24(int(tiny_internet.prefixes[pos]))
            assert hit is not None

    def test_anycast_origins_correct(self, table, tiny_internet):
        for dep in tiny_internet.deployments[:20]:
            for prefix in dep.prefixes:
                hit = table.lookup_slash24(prefix)
                assert hit.origin_asn == dep.entry.asn

    def test_anycast_announcements_dominated_by_slash24(self, table, tiny_internet):
        """[35]: 88% of anycast announced prefixes are /24."""
        anycast_asns = {d.entry.asn for d in tiny_internet.deployments}
        anycast = [a for a in table if a.origin_asn in anycast_asns]
        share = sum(1 for a in anycast if a.prefix.length == 24) / len(anycast)
        assert 0.8 <= share <= 0.97

    def test_unicast_aggregates_more(self, table, tiny_internet):
        """Unicast announcements cover more /24s apiece (BGP aggregation);
        anycast space is announced in near-atomic /24 units."""
        anycast_asns = {d.entry.asn for d in tiny_internet.deployments}
        unicast = [a for a in table if a.origin_asn not in anycast_asns]
        anycast = [a for a in table if a.origin_asn in anycast_asns]
        mean_cover = lambda xs: np.mean([1 << (24 - a.prefix.length) for a in xs])
        assert mean_cover(unicast) > 1.5 * mean_cover(anycast)
