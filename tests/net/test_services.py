"""Tests for the TCP service registry and software catalog."""

import pytest

from repro.net.services import (
    SOFTWARE_CATALOG,
    SSL_PORTS,
    WELL_KNOWN_SERVICES,
    Software,
    SoftwareCategory,
    is_ssl,
    is_well_known,
    service_name,
    software,
)


class TestServiceRegistry:
    @pytest.mark.parametrize(
        "port,name",
        [(53, "domain"), (80, "http"), (443, "https"), (22, "ssh"),
         (179, "bgp"), (1935, "rtmp"), (3306, "mysql"), (8080, "http-proxy"),
         (5252, "movaz-ssc"), (25565, "minecraft")],
    )
    def test_known_ports(self, port, name):
        assert service_name(port) == name
        assert is_well_known(port)

    def test_unknown_port(self):
        assert service_name(49152) is None
        assert not is_well_known(49152)

    @pytest.mark.parametrize("port", [0, -1, 65536])
    def test_port_bounds(self, port):
        with pytest.raises(ValueError):
            service_name(port)

    def test_registry_ports_valid(self):
        assert all(0 < p <= 65535 for p in WELL_KNOWN_SERVICES)

    def test_fig14_top_ports_covered(self):
        # Every port named in the paper's Fig. 14 top-10s must be known.
        for port in (53, 80, 443, 179, 22, 8080, 8083, 3306, 1935, 5252,
                     2052, 2053, 2082, 2083, 8443, 2087):
            assert is_well_known(port), port


class TestSsl:
    @pytest.mark.parametrize("port", [443, 993, 995, 8443, 2053, 2083, 2087])
    def test_ssl_ports(self, port):
        assert is_ssl(port)

    @pytest.mark.parametrize("port", [80, 53, 22, 8080])
    def test_plain_ports(self, port):
        assert not is_ssl(port)

    def test_ssl_port_bounds(self):
        with pytest.raises(ValueError):
            is_ssl(0)

    def test_ssl_ports_are_subset_of_valid(self):
        assert all(0 < p <= 65535 for p in SSL_PORTS)


class TestSoftwareCatalog:
    def test_thirty_implementations(self):
        # The paper fingerprints 30 software implementations (Fig. 16).
        assert len(SOFTWARE_CATALOG) == 30

    def test_lookup(self):
        sw = software("ISC BIND")
        assert sw.category is SoftwareCategory.DNS
        assert sw.open_source

    def test_unknown_software(self):
        with pytest.raises(KeyError):
            software("Netscape Enterprise")

    @pytest.mark.parametrize(
        "name,category",
        [
            ("NLnet Labs NSD", SoftwareCategory.DNS),
            ("nginx", SoftwareCategory.WEB),
            ("cloudflare-nginx", SoftwareCategory.WEB),
            ("ECAcc/ECS", SoftwareCategory.WEB),
            ("Gmail imapd", SoftwareCategory.MAIL),
            ("Google gsmtp", SoftwareCategory.MAIL),
            ("OpenSSH", SoftwareCategory.OTHER),
            ("Microsoft SQL", SoftwareCategory.OTHER),
        ],
    )
    def test_categories(self, name, category):
        assert software(name).category is category

    def test_all_categories_present(self):
        cats = {sw.category for sw in SOFTWARE_CATALOG.values()}
        assert cats == set(SoftwareCategory)

    def test_mix_of_open_and_proprietary(self):
        open_count = sum(1 for sw in SOFTWARE_CATALOG.values() if sw.open_source)
        assert 0 < open_count < len(SOFTWARE_CATALOG)
