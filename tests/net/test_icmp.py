"""Tests for ICMP outcome taxonomy and rate-limit policy."""

import pytest

from repro.net.icmp import (
    GREYLIST_COMPOSITION,
    NO_RATE_LIMIT,
    IcmpOutcome,
    RateLimitPolicy,
    outcome_from_code,
)


class TestOutcomes:
    def test_reply_is_reply(self):
        assert IcmpOutcome.ECHO_REPLY.is_reply
        assert not IcmpOutcome.ECHO_REPLY.is_error

    def test_greylist_family(self):
        for outcome in (
            IcmpOutcome.ADMIN_FILTERED,
            IcmpOutcome.HOST_PROHIBITED,
            IcmpOutcome.NET_PROHIBITED,
        ):
            assert outcome.triggers_greylist
            assert outcome.is_error

    def test_non_greylist_error(self):
        assert IcmpOutcome.UNREACHABLE.is_error
        assert not IcmpOutcome.UNREACHABLE.triggers_greylist

    def test_silent_neither(self):
        assert not IcmpOutcome.SILENT.is_error
        assert not IcmpOutcome.SILENT.is_reply
        assert not IcmpOutcome.SILENT.triggers_greylist

    @pytest.mark.parametrize(
        "outcome,code",
        [
            (IcmpOutcome.ADMIN_FILTERED, 13),
            (IcmpOutcome.HOST_PROHIBITED, 10),
            (IcmpOutcome.NET_PROHIBITED, 9),
        ],
    )
    def test_rfc_codes(self, outcome, code):
        assert outcome.icmp_code == code
        assert outcome_from_code(code) is outcome

    def test_reply_has_no_code(self):
        assert IcmpOutcome.ECHO_REPLY.icmp_code == -1

    def test_unmapped_code_rejected(self):
        with pytest.raises(ValueError):
            outcome_from_code(99)

    def test_greylist_composition_sums_to_one(self):
        assert sum(GREYLIST_COMPOSITION.values()) == pytest.approx(1.0)

    def test_admin_filtered_dominates_composition(self):
        # Paper: 98.5% of the greylist is type-3 code-13.
        assert GREYLIST_COMPOSITION[IcmpOutcome.ADMIN_FILTERED] == pytest.approx(0.985)


class TestRateLimit:
    def test_under_safe_rate_no_loss(self):
        policy = RateLimitPolicy(safe_rate_pps=1000.0)
        assert policy.keep_probability(999.0) == 1.0
        assert policy.keep_probability(1000.0) == 1.0

    def test_above_safe_rate_loses(self):
        policy = RateLimitPolicy(safe_rate_pps=1000.0, severity=1.0)
        assert policy.keep_probability(10_000.0) == pytest.approx(0.1)

    def test_keep_probability_monotone_decreasing(self):
        policy = RateLimitPolicy(safe_rate_pps=1000.0, severity=0.7)
        rates = [500, 1000, 2000, 5000, 20000]
        probs = [policy.keep_probability(r) for r in rates]
        assert probs == sorted(probs, reverse=True)

    def test_zero_severity_never_drops(self):
        policy = RateLimitPolicy(safe_rate_pps=10.0, severity=0.0)
        assert policy.keep_probability(1e9) == 1.0

    def test_no_rate_limit_constant(self):
        assert NO_RATE_LIMIT.keep_probability(1e12) == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RateLimitPolicy(safe_rate_pps=0.0)
        with pytest.raises(ValueError):
            RateLimitPolicy(severity=1.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            RateLimitPolicy().keep_probability(-1.0)
