"""Tests for the RTT model: the speed-of-light floor must never be broken."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import CLEAN_MODEL, DEFAULT_MODEL, NOISY_MODEL, LatencyModel


class TestValidation:
    def test_default_valid(self):
        LatencyModel()

    def test_stretch_ordering_enforced(self):
        with pytest.raises(ValueError):
            LatencyModel(stretch_min=1.5, stretch_mode=1.2, stretch_max=2.0)

    def test_stretch_below_one_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(stretch_min=0.9, stretch_mode=1.0, stretch_max=1.1)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(last_mile_ms_mean=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(jitter_ms_scale=-0.1)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(speed_km_per_ms=0.0)


class TestPropagationFloor:
    def test_zero_distance_zero_floor(self):
        assert DEFAULT_MODEL.propagation_rtt_ms(np.array([0.0]))[0] == 0.0

    def test_floor_linear_in_distance(self):
        floor = DEFAULT_MODEL.propagation_rtt_ms(np.array([100.0, 200.0]))
        assert floor[1] == pytest.approx(2 * floor[0])

    def test_known_value(self):
        # 1000 km at ~200 km/ms one way -> ~10 ms RTT.
        rtt = DEFAULT_MODEL.propagation_rtt_ms(np.array([1000.0]))[0]
        assert rtt == pytest.approx(10.0, rel=0.02)

    @given(st.lists(st.floats(min_value=0, max_value=20000), min_size=1, max_size=20),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40)
    def test_path_rtt_never_beats_light(self, distances, seed):
        """The core soundness property: no path is faster than propagation."""
        rng = np.random.default_rng(seed)
        d = np.array(distances)
        base = DEFAULT_MODEL.path_rtt_ms(d, rng)
        floor = DEFAULT_MODEL.propagation_rtt_ms(d)
        assert (base >= floor - 1e-9).all()

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30)
    def test_probe_rtt_never_beats_baseline(self, seed):
        rng = np.random.default_rng(seed)
        base = np.array([5.0, 50.0, 500.0])
        probe = DEFAULT_MODEL.probe_rtt_ms(base, rng)
        assert (probe >= base).all()

    def test_negative_distance_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            DEFAULT_MODEL.path_rtt_ms(np.array([-1.0]), rng)


class TestModelBehaviour:
    def test_matrix_shape_preserved(self):
        rng = np.random.default_rng(0)
        d = np.ones((3, 4)) * 100.0
        assert DEFAULT_MODEL.path_rtt_ms(d, rng).shape == (3, 4)

    def test_clean_model_tighter_than_noisy(self):
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        d = np.full(2000, 1000.0)
        clean = CLEAN_MODEL.path_rtt_ms(d, rng1)
        noisy = NOISY_MODEL.path_rtt_ms(d, rng2)
        assert clean.mean() < noisy.mean()
        assert clean.std() < noisy.std()

    def test_deterministic_given_rng(self):
        d = np.full(100, 500.0)
        a = DEFAULT_MODEL.path_rtt_ms(d, np.random.default_rng(42))
        b = DEFAULT_MODEL.path_rtt_ms(d, np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_stretch_bounded(self):
        rng = np.random.default_rng(0)
        d = np.full(5000, 10000.0)
        base = DEFAULT_MODEL.path_rtt_ms(d, rng)
        floor = DEFAULT_MODEL.propagation_rtt_ms(d)
        # base = floor * stretch + last mile; stretch <= max, last mile small
        # relative to a 10,000 km path.
        assert (base <= floor * DEFAULT_MODEL.stretch_max + 60.0).all()
