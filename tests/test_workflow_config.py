"""Tests for StudyConfig propagation through the workflow facade."""

import pytest

from repro.core.igreedy import IGreedyConfig
from repro.geo.disks import LIGHT_SPEED_KM_PER_MS
from repro.internet.topology import InternetConfig
from repro.workflow import CensusStudy, StudyConfig


def tiny_config(**overrides) -> StudyConfig:
    defaults = dict(
        internet=InternetConfig(seed=3, n_unicast_slash24=200, tail_deployments=10),
        n_vantage_points=30,
        n_censuses=1,
    )
    defaults.update(overrides)
    return StudyConfig(**defaults)


class TestConfigPropagation:
    def test_internet_scale(self):
        study = CensusStudy(tiny_config())
        assert len(study.internet.unicast_hosts) == 200
        assert study.internet.anycast_ases == 110

    def test_platform_size(self):
        study = CensusStudy(tiny_config(n_vantage_points=25))
        assert len(study.platform) == 25

    def test_census_count(self):
        study = CensusStudy(tiny_config(n_censuses=2))
        assert len(study.censuses) == 2

    def test_rate_propagates(self):
        study = CensusStudy(tiny_config(rate_pps=5000.0))
        assert study.censuses[0].rate_pps == 5000.0

    def test_igreedy_config_propagates(self):
        conservative = CensusStudy(
            tiny_config(igreedy=IGreedyConfig(speed_km_per_ms=LIGHT_SPEED_KM_PER_MS))
        )
        default = CensusStudy(tiny_config())
        # Full-c disks are larger: detection can only shrink.
        assert conservative.analysis.n_anycast <= default.analysis.n_anycast

    def test_platform_seed_changes_vps(self):
        a = CensusStudy(tiny_config(platform_seed=1))
        b = CensusStudy(tiny_config(platform_seed=2))
        assert [vp.name for vp in a.platform] != [vp.name for vp in b.platform]

    def test_same_config_same_results(self):
        a = CensusStudy(tiny_config())
        b = CensusStudy(tiny_config())
        assert set(a.analysis.anycast_prefixes) == set(b.analysis.anycast_prefixes)
        assert a.analysis.total_replicas == b.analysis.total_replicas

    def test_availability_bounds_vps(self):
        study = CensusStudy(tiny_config(availability=0.5, n_censuses=1))
        census = study.censuses[0]
        assert census.n_vps <= len(study.platform)

    def test_fault_plan_propagates(self):
        from repro.measurement.faults import FaultPlan

        study = CensusStudy(tiny_config(fault_plan=FaultPlan.uniform(0.3, seed=4)))
        assert study.campaign.fault_plan.crash_prob == pytest.approx(0.1)
        # health_reports is lazy: nothing materialized means no reports ...
        assert study.health_reports == []
        # ... and accessing the censuses surfaces them.
        _ = study.censuses
        reports = study.health_reports
        assert len(reports) == 1
        assert reports[0].n_faults > 0

    def test_default_plan_yields_clean_reports(self):
        study = CensusStudy(tiny_config(n_censuses=2))
        _ = study.censuses
        assert len(study.health_reports) == 2
        assert all(not r.degraded for r in study.health_reports)
        assert all(r.faults_seen == {} for r in study.health_reports)

    def test_quorum_propagates(self):
        from repro.measurement.campaign import CensusAborted
        from repro.measurement.faults import FaultPlan

        study = CensusStudy(
            tiny_config(
                fault_plan=FaultPlan(flap_prob=1.0, seed=1), min_vp_quorum=5
            )
        )
        with pytest.raises(CensusAborted):
            _ = study.censuses

    def test_checkpoint_dir_journals_each_census(self, tmp_path):
        study = CensusStudy(
            tiny_config(n_censuses=2, checkpoint_dir=str(tmp_path))
        )
        _ = study.censuses
        assert sorted(p.name for p in tmp_path.glob("*.journal")) == [
            "census-001.journal",
            "census-002.journal",
        ]


class TestExecutionKnobs:
    """StudyConfig.workers/deadline/execution -> campaign engine policy."""

    def test_default_is_serial(self):
        study = CensusStudy(tiny_config())
        assert study.campaign.executor is None

    def test_workers_builds_pool_policy(self):
        study = CensusStudy(tiny_config(workers=3))
        policy = study.campaign.executor
        assert policy is not None
        assert policy.workers == 3
        assert policy.deadline_s is None

    def test_deadline_alone_runs_engine_in_process(self):
        study = CensusStudy(tiny_config(deadline=120.0))
        policy = study.campaign.executor
        assert policy is not None
        assert policy.workers == 0
        assert policy.deadline_s == 120.0

    def test_explicit_execution_policy_wins(self):
        from repro.exec import ExecutionPolicy

        override = ExecutionPolicy(workers=5, n_target_shards=2)
        study = CensusStudy(tiny_config(workers=1, execution=override))
        assert study.campaign.executor is override

    def test_pooled_study_output_matches_serial(self):
        serial = CensusStudy(tiny_config())
        pooled = CensusStudy(tiny_config(workers=2))
        assert (
            pooled.censuses[0].records.checksum()
            == serial.censuses[0].records.checksum()
        )
        assert pooled.health_reports[0].execution is not None

    def test_manifest_carries_execution_report(self):
        study = CensusStudy(tiny_config(workers=2, metrics=True))
        study.censuses
        doc = study.manifest.to_dict()
        health = doc["health"][0]
        assert health["execution"]["workers"] == 2
        snapshot = study.metrics.snapshot()
        assert snapshot["counters"].get("exec_units_completed", 0) > 0
