"""Tests for geodesic disks and the speed-of-light radius conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import GeoPoint, destination_point
from repro.geo.disks import (
    FIBER_SPEED_KM_PER_MS,
    LIGHT_SPEED_KM_PER_MS,
    Disk,
    any_disjoint_pair,
    disk_from_sample,
    disks_containing,
    min_enclosing_radius_km,
    overlap_matrix,
    rtt_to_radius_km,
    smallest_disk,
)

LONDON = GeoPoint(51.5074, -0.1278)
TOKYO = GeoPoint(35.6762, 139.6503)

lat_st = st.floats(min_value=-89.0, max_value=89.0)
lon_st = st.floats(min_value=-180.0, max_value=180.0)
radius_st = st.floats(min_value=0.0, max_value=6000.0)
disk_st = st.builds(Disk, st.builds(GeoPoint, lat_st, lon_st), radius_st)


class TestDisk:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Disk(LONDON, -1.0)

    def test_contains_center(self):
        assert Disk(LONDON, 0.0).contains(LONDON)

    def test_contains_boundary_point(self):
        d = Disk(LONDON, 500.0)
        edge = destination_point(LONDON, 45.0, 500.0)
        assert d.contains(edge)

    def test_does_not_contain_outside(self):
        assert not Disk(LONDON, 100.0).contains(TOKYO)

    def test_overlap_identical(self):
        d = Disk(LONDON, 10.0)
        assert d.overlaps(d)

    def test_overlap_touching(self):
        a = Disk(LONDON, 100.0)
        far = destination_point(LONDON, 90.0, 200.0)
        b = Disk(far, 100.0)
        assert a.overlaps(b)

    def test_disjoint_when_gap_exceeds_radii(self):
        a = Disk(LONDON, 100.0)
        b = Disk(TOKYO, 100.0)
        assert not a.overlaps(b)

    @given(disk_st, disk_st)
    @settings(max_examples=60)
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(disk_st, disk_st)
    @settings(max_examples=60)
    def test_containment_implies_overlap(self, a, b):
        if a.contains_disk(b):
            assert a.overlaps(b)

    def test_contains_disk(self):
        outer = Disk(LONDON, 1000.0)
        inner = Disk(destination_point(LONDON, 0.0, 100.0), 100.0)
        assert outer.contains_disk(inner)
        assert not inner.contains_disk(outer)

    def test_shrunk_to(self):
        d = Disk(LONDON, 500.0)
        collapsed = d.shrunk_to(TOKYO)
        assert collapsed.radius_km == 0.0
        assert collapsed.center == TOKYO

    def test_covers_earth(self):
        assert Disk(LONDON, 30000.0).covers_earth()
        assert not Disk(LONDON, 5000.0).covers_earth()


class TestRttConversion:
    def test_zero_rtt_zero_radius(self):
        assert rtt_to_radius_km(0.0) == 0.0

    def test_fiber_speed_default(self):
        # 100 ms RTT -> 50 ms one-way -> ~9993 km at 2/3 c.
        assert rtt_to_radius_km(100.0) == pytest.approx(
            50.0 * FIBER_SPEED_KM_PER_MS, rel=1e-12
        )

    def test_light_speed_larger_radius(self):
        assert rtt_to_radius_km(10.0, LIGHT_SPEED_KM_PER_MS) > rtt_to_radius_km(10.0)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            rtt_to_radius_km(-0.1)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ValueError):
            rtt_to_radius_km(1.0, 0.0)

    @given(st.floats(min_value=0, max_value=1000), st.floats(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_radius_monotone_in_rtt(self, r1, r2):
        if r1 <= r2:
            assert rtt_to_radius_km(r1) <= rtt_to_radius_km(r2)

    def test_disk_from_sample(self):
        d = disk_from_sample(LONDON, 20.0)
        assert d.center == LONDON
        assert d.radius_km == pytest.approx(rtt_to_radius_km(20.0))


class TestOverlapMatrix:
    def test_empty(self):
        assert overlap_matrix([]).shape == (0, 0)

    def test_diagonal_true(self):
        disks = [Disk(LONDON, 1.0), Disk(TOKYO, 1.0)]
        m = overlap_matrix(disks)
        assert m[0, 0] and m[1, 1]

    def test_matches_pairwise(self):
        disks = [
            Disk(LONDON, 300.0),
            Disk(destination_point(LONDON, 90.0, 500.0), 300.0),
            Disk(TOKYO, 200.0),
        ]
        m = overlap_matrix(disks)
        for i in range(3):
            for j in range(3):
                assert m[i, j] == disks[i].overlaps(disks[j])

    def test_symmetric(self):
        disks = [Disk(GeoPoint(i * 10.0, i * 10.0), 500.0) for i in range(5)]
        m = overlap_matrix(disks)
        assert (m == m.T).all()


class TestHelpers:
    def test_any_disjoint_pair_found(self):
        disks = [Disk(LONDON, 50.0), Disk(TOKYO, 50.0)]
        pair = any_disjoint_pair(disks)
        assert pair is not None
        i, j = pair
        assert not disks[i].overlaps(disks[j])

    def test_any_disjoint_pair_none_when_all_overlap(self):
        disks = [Disk(LONDON, 20000.0), Disk(TOKYO, 20000.0)]
        assert any_disjoint_pair(disks) is None

    def test_smallest_disk(self):
        disks = [Disk(LONDON, 5.0), Disk(TOKYO, 1.0), Disk(LONDON, 9.0)]
        assert smallest_disk(disks).radius_km == 1.0

    def test_smallest_disk_empty_raises(self):
        with pytest.raises(ValueError):
            smallest_disk([])

    def test_disks_containing(self):
        disks = [Disk(LONDON, 10000.0), Disk(TOKYO, 10.0)]
        assert disks_containing(disks, LONDON) == [0]

    def test_min_enclosing_radius(self):
        points = [destination_point(LONDON, b, 250.0) for b in (0, 90, 180, 270)]
        r = min_enclosing_radius_km(LONDON, points)
        assert r == pytest.approx(250.0, abs=1e-3)

    def test_min_enclosing_radius_empty(self):
        assert min_enclosing_radius_km(LONDON, []) == 0.0
