"""Tests for geodesic coordinate primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import (
    EARTH_RADIUS_KM,
    MAX_SURFACE_DISTANCE_KM,
    GeoPoint,
    centroid,
    destination_point,
    distances_to_point_km,
    great_circle_km,
    initial_bearing_deg,
    midpoint,
    pairwise_distances_km,
)

PARIS = GeoPoint(48.8566, 2.3522)
NEW_YORK = GeoPoint(40.7128, -74.0060)
SYDNEY = GeoPoint(-33.8688, 151.2093)

lat_st = st.floats(min_value=-89.9, max_value=89.9)
lon_st = st.floats(min_value=-180.0, max_value=180.0)
point_st = st.builds(GeoPoint, lat_st, lon_st)


class TestGeoPoint:
    def test_valid_construction(self):
        p = GeoPoint(45.0, -120.0)
        assert p.lat == 45.0
        assert p.lon == -120.0

    def test_latitude_bounds_enforced(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(-90.5, 0.0)

    def test_longitude_bounds_enforced(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)
        with pytest.raises(ValueError):
            GeoPoint(0.0, -180.1)

    def test_poles_and_antimeridian_allowed(self):
        GeoPoint(90.0, 0.0)
        GeoPoint(-90.0, 0.0)
        GeoPoint(0.0, 180.0)
        GeoPoint(0.0, -180.0)

    def test_hashable_and_equal(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert len({GeoPoint(1.0, 2.0), GeoPoint(1.0, 2.0)}) == 1

    def test_as_radians(self):
        lat, lon = GeoPoint(90.0, -180.0).as_radians()
        assert lat == pytest.approx(math.pi / 2)
        assert lon == pytest.approx(-math.pi)


class TestGreatCircle:
    def test_zero_distance_to_self(self):
        assert PARIS.distance_km(PARIS) == pytest.approx(0.0, abs=1e-9)

    def test_known_paris_new_york(self):
        # Reference geodesic distance ~5837 km.
        assert PARIS.distance_km(NEW_YORK) == pytest.approx(5837, rel=0.01)

    def test_known_quarter_meridian(self):
        equator = GeoPoint(0.0, 0.0)
        pole = GeoPoint(90.0, 0.0)
        assert equator.distance_km(pole) == pytest.approx(
            math.pi * EARTH_RADIUS_KM / 2, rel=1e-6
        )

    def test_antipodal_is_max_distance(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        assert a.distance_km(b) == pytest.approx(MAX_SURFACE_DISTANCE_KM, rel=1e-9)

    @given(point_st, point_st)
    @settings(max_examples=60)
    def test_symmetry(self, a, b):
        assert a.distance_km(b) == pytest.approx(b.distance_km(a), abs=1e-6)

    @given(point_st, point_st)
    @settings(max_examples=60)
    def test_bounded_by_half_circumference(self, a, b):
        assert 0.0 <= a.distance_km(b) <= MAX_SURFACE_DISTANCE_KM + 1e-6

    @given(point_st, point_st, point_st)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_km(c) <= a.distance_km(b) + b.distance_km(c) + 1e-6


class TestVectorized:
    def test_matches_scalar(self):
        points = [PARIS, NEW_YORK, SYDNEY]
        lats = [p.lat for p in points]
        lons = [p.lon for p in points]
        matrix = pairwise_distances_km(lats, lons, lats, lons)
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                assert matrix[i, j] == pytest.approx(a.distance_km(b), abs=1e-6)

    def test_shape(self):
        matrix = pairwise_distances_km([0, 1], [0, 1], [0, 1, 2], [0, 1, 2])
        assert matrix.shape == (2, 3)

    def test_distances_to_point(self):
        d = distances_to_point_km([PARIS.lat, SYDNEY.lat], [PARIS.lon, SYDNEY.lon], NEW_YORK)
        assert d[0] == pytest.approx(PARIS.distance_km(NEW_YORK), abs=1e-6)
        assert d[1] == pytest.approx(SYDNEY.distance_km(NEW_YORK), abs=1e-6)

    def test_empty_input(self):
        matrix = pairwise_distances_km([], [], [0.0], [0.0])
        assert matrix.shape == (0, 1)


class TestBearingAndDestination:
    def test_bearing_due_north(self):
        assert initial_bearing_deg(GeoPoint(0, 0), GeoPoint(10, 0)) == pytest.approx(0.0)

    def test_bearing_due_east(self):
        assert initial_bearing_deg(GeoPoint(0, 0), GeoPoint(0, 10)) == pytest.approx(90.0)

    def test_bearing_range(self):
        b = initial_bearing_deg(SYDNEY, PARIS)
        assert 0.0 <= b < 360.0

    def test_destination_zero_distance(self):
        p = destination_point(PARIS, 123.0, 0.0)
        assert p.distance_km(PARIS) == pytest.approx(0.0, abs=1e-6)

    def test_destination_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            destination_point(PARIS, 0.0, -1.0)

    @given(point_st, st.floats(min_value=0, max_value=360),
           st.floats(min_value=0, max_value=5000))
    @settings(max_examples=60)
    def test_destination_distance_roundtrip(self, origin, bearing, distance):
        dest = destination_point(origin, bearing, distance)
        assert origin.distance_km(dest) == pytest.approx(distance, abs=1e-3)

    def test_destination_longitude_normalized(self):
        # Travelling east across the antimeridian stays in [-180, 180].
        p = destination_point(GeoPoint(0.0, 179.5), 90.0, 200.0)
        assert -180.0 <= p.lon <= 180.0


class TestMidpointCentroid:
    def test_midpoint_equidistant(self):
        m = midpoint(PARIS, NEW_YORK)
        assert m.distance_km(PARIS) == pytest.approx(m.distance_km(NEW_YORK), rel=1e-6)

    def test_midpoint_on_geodesic(self):
        m = midpoint(PARIS, NEW_YORK)
        total = PARIS.distance_km(NEW_YORK)
        assert m.distance_km(PARIS) + m.distance_km(NEW_YORK) == pytest.approx(total, rel=1e-6)

    def test_centroid_of_single_point(self):
        c = centroid([PARIS])
        assert c.distance_km(PARIS) == pytest.approx(0.0, abs=1e-6)

    def test_centroid_symmetric_pair(self):
        c = centroid([GeoPoint(10, 0), GeoPoint(-10, 0)])
        assert c.lat == pytest.approx(0.0, abs=1e-9)
        assert c.lon == pytest.approx(0.0, abs=1e-9)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_centroid_degenerate_raises(self):
        with pytest.raises(ValueError):
            centroid([GeoPoint(0, 0), GeoPoint(0, 180)])
