"""Tests for the embedded city gazetteer."""

import numpy as np
import pytest

from repro.geo.cities import City, CityDB, default_city_db
from repro.geo.coords import GeoPoint
from repro.geo.disks import Disk


@pytest.fixture(scope="module")
def db() -> CityDB:
    return default_city_db()


class TestDatabase:
    def test_nonempty_and_sizeable(self, db):
        # Enough cities for meaningful geolocation world-wide.
        assert len(db) >= 250

    def test_unique_keys(self, db):
        keys = [c.key for c in db]
        assert len(set(keys)) == len(keys)

    def test_get_by_name(self, db):
        city = db.get("Paris")
        assert city.country == "FR"

    def test_get_with_country(self, db):
        assert db.get("Ashburn", "US").population == pytest.approx(48)

    def test_get_unknown_raises(self, db):
        with pytest.raises(KeyError):
            db.get("Atlantis")

    def test_get_unknown_with_country_raises(self, db):
        with pytest.raises(KeyError):
            db.get("Paris", "DE")

    def test_empty_db_rejected(self):
        with pytest.raises(ValueError):
            CityDB(cities=[])

    def test_duplicate_city_rejected(self):
        c = City("X", "XX", GeoPoint(0, 0), 1.0)
        with pytest.raises(ValueError):
            CityDB(cities=[c, c])

    def test_iterable(self, db):
        assert all(isinstance(c, City) for c in db)

    def test_default_db_cached(self):
        assert default_city_db() is default_city_db()


class TestGeometryQueries:
    def test_cities_in_small_disk(self, db):
        paris = db.get("Paris")
        inside = db.cities_in_disk(Disk(paris.location, 50.0))
        assert paris in inside
        assert db.get("Tokyo") not in inside

    def test_cities_in_global_disk(self, db):
        everything = db.cities_in_disk(Disk(GeoPoint(0, 0), 30000.0))
        assert len(everything) == len(db)

    def test_largest_in_disk_prefers_population(self, db):
        # A disk around Ashburn that also contains Philadelphia must pick
        # Philadelphia — the paper's documented misclassification.
        ashburn = db.get("Ashburn", "US")
        disk = Disk(ashburn.location, 300.0)
        best = db.largest_in_disk(disk)
        assert best is not None
        assert best.name == "Philadelphia"

    def test_largest_in_empty_disk_is_none(self, db):
        # Middle of the South Pacific, tiny radius.
        assert db.largest_in_disk(Disk(GeoPoint(-48.0, -120.0), 10.0)) is None

    def test_philadelphia_ashburn_population_ratio(self, db):
        # The paper: Philadelphia is ~33x more populated than Ashburn.
        ratio = db.get("Philadelphia").population / db.get("Ashburn", "US").population
        assert 25 <= ratio <= 40

    def test_nearest(self, db):
        near_paris = GeoPoint(48.9, 2.4)
        assert db.nearest(near_paris).name == "Paris"

    def test_nearest_exact(self, db):
        tokyo = db.get("Tokyo")
        assert db.nearest(tokyo.location) is tokyo


class TestSampling:
    def test_sample_count(self, db, rng):
        assert len(db.sample(rng, 17)) == 17

    def test_sample_zero(self, db, rng):
        assert db.sample(rng, 0) == []

    def test_sample_negative_rejected(self, db, rng):
        with pytest.raises(ValueError):
            db.sample(rng, -1)

    def test_population_weighting_biases_large_cities(self, db):
        rng = np.random.default_rng(0)
        cities = db.sample(rng, 4000, weight_by_population=True)
        mean_pop = np.mean([c.population for c in cities])
        uniform = np.mean([c.population for c in db])
        assert mean_pop > 2 * uniform

    def test_unweighted_sampling(self, db):
        rng = np.random.default_rng(0)
        cities = db.sample(rng, 1000, weight_by_population=False)
        mean_pop = np.mean([c.population for c in cities])
        uniform = np.mean([c.population for c in db])
        assert mean_pop < 2 * uniform
