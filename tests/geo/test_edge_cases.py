"""Geodesy edge cases: antimeridian, poles, and degenerate disks."""

import pytest

from repro.geo.coords import GeoPoint, destination_point, great_circle_km
from repro.geo.disks import Disk, any_disjoint_pair, overlap_matrix


class TestAntimeridian:
    def test_distance_across_dateline_is_short(self):
        """179.9E and 179.9W are ~22 km apart, not ~40,000 km."""
        east = GeoPoint(0.0, 179.9)
        west = GeoPoint(0.0, -179.9)
        assert east.distance_km(west) < 30.0

    def test_disks_overlap_across_dateline(self):
        fiji_side = Disk(GeoPoint(-17.0, 179.0), 300.0)
        samoa_side = Disk(GeoPoint(-17.0, -178.0), 300.0)
        assert fiji_side.overlaps(samoa_side)

    def test_detection_not_fooled_by_dateline(self):
        """Two tight disks straddling the dateline are the same place —
        they must NOT look like a speed-of-light violation."""
        disks = [
            Disk(GeoPoint(0.0, 179.99), 50.0),
            Disk(GeoPoint(0.0, -179.99), 50.0),
        ]
        assert any_disjoint_pair(disks) is None

    def test_destination_eastward_across_dateline(self):
        start = GeoPoint(10.0, 179.5)
        dest = destination_point(start, 90.0, 300.0)
        assert dest.lon < 0  # wrapped into the western hemisphere
        assert start.distance_km(dest) == pytest.approx(300.0, abs=0.5)


class TestPoles:
    def test_all_longitudes_equal_at_pole(self):
        north1 = GeoPoint(90.0, 0.0)
        north2 = GeoPoint(90.0, 135.0)
        assert north1.distance_km(north2) == pytest.approx(0.0, abs=1e-6)

    def test_pole_to_pole(self):
        from repro.geo.coords import MAX_SURFACE_DISTANCE_KM

        assert GeoPoint(90.0, 0.0).distance_km(GeoPoint(-90.0, 0.0)) == pytest.approx(
            MAX_SURFACE_DISTANCE_KM, rel=1e-9
        )

    def test_destination_over_the_pole(self):
        near_pole = GeoPoint(89.0, 0.0)
        dest = destination_point(near_pole, 0.0, 400.0)  # through the pole
        assert dest.lat <= 90.0
        assert near_pole.distance_km(dest) == pytest.approx(400.0, abs=0.5)

    def test_polar_disk_contains_all_longitudes(self):
        polar = Disk(GeoPoint(90.0, 0.0), 1500.0)
        for lon in (-180.0, -90.0, 0.0, 90.0, 180.0):
            assert polar.contains(GeoPoint(80.0, lon))


class TestDegenerateDisks:
    def test_zero_radius_disks_at_same_point_overlap(self):
        p = GeoPoint(10.0, 10.0)
        assert Disk(p, 0.0).overlaps(Disk(p, 0.0))

    def test_zero_radius_disks_apart_disjoint(self):
        a = Disk(GeoPoint(10.0, 10.0), 0.0)
        b = Disk(GeoPoint(10.1, 10.0), 0.0)
        assert not a.overlaps(b)

    def test_earth_covering_disk_overlaps_everything(self):
        whole = Disk(GeoPoint(0.0, 0.0), 25_000.0)
        tiny = Disk(GeoPoint(-89.0, 170.0), 0.0)
        assert whole.overlaps(tiny)
        assert whole.contains_disk(tiny)

    def test_overlap_matrix_mixed_degenerate(self):
        disks = [
            Disk(GeoPoint(0.0, 0.0), 0.0),
            Disk(GeoPoint(0.0, 0.0), 25_000.0),
            Disk(GeoPoint(45.0, 90.0), 0.0),
        ]
        m = overlap_matrix(disks)
        assert m[0, 1] and m[1, 2]
        assert not m[0, 2]
