"""Tests for census-wide analysis: detection, enumeration, the funnel."""

import numpy as np
import pytest

from repro.census.analysis import analyze_matrix, census_funnel
from repro.census.combine import matrix_from_census


@pytest.fixture(scope="module")
def analysis(tiny_census, city_db):
    return analyze_matrix(matrix_from_census(tiny_census), city_db=city_db)


class TestAnalysis:
    def test_no_false_positives(self, analysis, tiny_internet):
        """Every detected /24 must be genuinely anycast — the technique's
        core soundness guarantee."""
        truly_anycast = {
            int(p) for p, a in zip(tiny_internet.prefixes, tiny_internet.is_anycast) if a
        }
        assert set(analysis.anycast_prefixes) <= truly_anycast

    def test_high_recall_on_wide_deployments(self, analysis, tiny_internet):
        """Deployments with many well-spread sites are essentially always
        caught from 60 global VPs."""
        wide = [d for d in tiny_internet.deployments if d.entry.n_sites >= 20]
        detected = set(analysis.anycast_prefixes)
        for dep in wide:
            hits = sum(1 for p in dep.prefixes if p in detected)
            assert hits / len(dep.prefixes) > 0.9, dep.entry.name

    def test_most_anycast_found_overall(self, analysis, tiny_internet):
        assert analysis.n_anycast > 0.7 * tiny_internet.n_anycast_slash24

    def test_results_only_for_detected(self, analysis):
        assert set(analysis.results) == set(analysis.anycast_prefixes)
        for result in analysis.results.values():
            assert result.is_anycast

    def test_replica_counts_bounded_by_truth(self, analysis, tiny_internet):
        """Strict enumeration: never more replicas than the deployment has."""
        for prefix, count in analysis.replica_counts().items():
            dep = tiny_internet.deployment_of(prefix)
            assert 1 <= count <= dep.entry.n_sites

    def test_replica_count_zero_for_unknown(self, analysis):
        assert analysis.replica_count(424242) == 0

    def test_total_replicas_consistent(self, analysis):
        assert analysis.total_replicas == sum(analysis.replica_counts().values())

    def test_min_samples_guard(self, tiny_census, city_db):
        matrix = matrix_from_census(tiny_census)
        strict = analyze_matrix(matrix, city_db=city_db, min_samples=10**6)
        assert strict.n_anycast == 0


class TestFunnel:
    def test_funnel_counts(self, tiny_census, tiny_internet, analysis):
        funnel = census_funnel(tiny_census, tiny_internet, analysis)
        assert funnel.targets == tiny_internet.n_targets
        assert funnel.valid_targets <= funnel.targets
        assert funnel.echo_replies >= funnel.valid_targets
        assert funnel.anycast_found == analysis.n_anycast
        assert 0.0 < funnel.reply_ratio

    def test_funnel_rows_shape(self, tiny_census, tiny_internet):
        funnel = census_funnel(tiny_census, tiny_internet)
        rows = funnel.rows()
        assert len(rows) == 6
        assert all(isinstance(c, int) for _, c in rows)

    def test_reply_ratio_below_one(self, tiny_census, tiny_internet):
        funnel = census_funnel(tiny_census, tiny_internet)
        # Under half of unicast targets reply; anycast is a minority.
        assert funnel.valid_targets / funnel.targets < 0.9
