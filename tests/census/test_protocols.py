"""Tests for the multi-protocol recall model (Fig. 6)."""

import pytest

from repro.census.protocols import ProbeProtocol, protocol_recall_table, response_rate


def deployment(internet, name):
    for dep in internet.deployments:
        if dep.entry.name == name:
            return dep
    raise KeyError(name)


class TestResponseRate:
    def test_icmp_universal(self, tiny_internet):
        for dep in tiny_internet.deployments[:30]:
            assert response_rate(dep, ProbeProtocol.ICMP) > 0.85

    def test_binary_recall_tcp53(self, tiny_internet):
        opendns = deployment(tiny_internet, "OPENDNS,US")
        microsoft = deployment(tiny_internet, "MICROSOFT,US")
        assert response_rate(opendns, ProbeProtocol.TCP_53) > 0.85
        assert response_rate(microsoft, ProbeProtocol.TCP_53) < 0.1

    def test_binary_recall_tcp80(self, tiny_internet):
        cloudflare = deployment(tiny_internet, "CLOUDFLARENET,US")
        lroot = deployment(tiny_internet, "L-ROOT,US")
        assert response_rate(cloudflare, ProbeProtocol.TCP_80) > 0.85
        assert response_rate(lroot, ProbeProtocol.TCP_80) < 0.1

    def test_dns_requires_dns_software(self, tiny_internet):
        """Open port 53 without a DNS daemon must not answer DNS queries."""
        cloudflare = deployment(tiny_internet, "CLOUDFLARENET,US")  # port 53 open, no DNS sw
        opendns = deployment(tiny_internet, "OPENDNS,US")
        assert response_rate(cloudflare, ProbeProtocol.DNS_UDP) < 0.1
        assert response_rate(opendns, ProbeProtocol.DNS_UDP) > 0.85
        assert response_rate(opendns, ProbeProtocol.DNS_TCP) > 0.85

    def test_probes_positive(self, tiny_internet):
        with pytest.raises(ValueError):
            response_rate(tiny_internet.deployments[0], ProbeProtocol.ICMP, probes=0)

    def test_deterministic(self, tiny_internet):
        dep = tiny_internet.deployments[0]
        a = response_rate(dep, ProbeProtocol.ICMP, seed=9)
        b = response_rate(dep, ProbeProtocol.ICMP, seed=9)
        assert a == b


class TestTable:
    def test_full_matrix(self, tiny_internet):
        deps = [
            deployment(tiny_internet, n)
            for n in ("OPENDNS,US", "EDGECAST,US", "CLOUDFLARENET,US", "MICROSOFT,US")
        ]
        table = protocol_recall_table(deps)
        assert set(table) == {d.entry.name for d in deps}
        for rates in table.values():
            assert set(rates) == {p.value for p in ProbeProtocol}
            assert all(0.0 <= v <= 1.0 for v in rates.values())

    def test_icmp_only_reliable_column(self, tiny_internet):
        """ICMP is the only protocol with high recall across all targets."""
        deps = [
            deployment(tiny_internet, n)
            for n in ("OPENDNS,US", "EDGECAST,US", "CLOUDFLARENET,US", "MICROSOFT,US")
        ]
        table = protocol_recall_table(deps)
        for proto in ProbeProtocol:
            min_rate = min(rates[proto.value] for rates in table.values())
            if proto is ProbeProtocol.ICMP:
                assert min_rate > 0.85
            else:
                assert min_rate < 0.5
