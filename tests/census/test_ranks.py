"""Tests for CAIDA/Alexa rank synthesis."""

import pytest

from repro.census.ranks import alexa_anycast_sites, alexa_hosted_prefixes, caida_top_asns


class TestCaida:
    def test_eight_members(self, tiny_internet):
        assert len(caida_top_asns(tiny_internet)) == 8

    def test_known_tier1s_included(self, tiny_internet):
        asns = caida_top_asns(tiny_internet)
        assert 3356 in asns  # Level 3
        assert 174 in asns   # Cogent
        assert 6939 in asns  # Hurricane Electric

    def test_k_cut(self, tiny_internet):
        assert len(caida_top_asns(tiny_internet, k=3)) <= 3
        assert caida_top_asns(tiny_internet, k=3) <= caida_top_asns(tiny_internet)


class TestAlexa:
    def test_fifteen_hosting_ases(self, tiny_internet):
        assert len(alexa_hosted_prefixes(tiny_internet)) == 15

    def test_242_hosting_prefixes(self, tiny_internet):
        total = sum(len(p) for p in alexa_hosted_prefixes(tiny_internet).values())
        assert total == 242

    def test_sites_match_catalog(self, tiny_internet):
        sites = alexa_anycast_sites(tiny_internet)
        per_as = {}
        for site in sites:
            per_as[site.asn] = per_as.get(site.asn, 0) + 1
        assert per_as[13335] == 188  # CloudFlare
        assert per_as[15169] == 11   # Google
        assert per_as[15133] == 10   # EdgeCast

    def test_sites_on_announced_prefixes(self, tiny_internet):
        hosted = alexa_hosted_prefixes(tiny_internet)
        for site in alexa_anycast_sites(tiny_internet):
            assert site.prefix in hosted[site.asn]

    def test_ranks_in_100k(self, tiny_internet):
        for site in alexa_anycast_sites(tiny_internet):
            assert 1 <= site.rank <= 100_000

    def test_sorted_by_rank(self, tiny_internet):
        ranks = [s.rank for s in alexa_anycast_sites(tiny_internet)]
        assert ranks == sorted(ranks)

    def test_domains_unique(self, tiny_internet):
        domains = [s.domain for s in alexa_anycast_sites(tiny_internet)]
        assert len(set(domains)) == len(domains)
