"""Tests for ASCII geographic maps."""

import numpy as np
import pytest

from repro.census.analysis import analyze_matrix
from repro.census.combine import matrix_from_census
from repro.census.geomap import GLYPHS, GeoGrid, deployment_map, replica_density_map
from repro.geo.coords import GeoPoint


class TestGeoGrid:
    def test_dimensions(self):
        grid = GeoGrid(rows=10, cols=20)
        assert grid.counts.shape == (10, 20)
        with pytest.raises(ValueError):
            GeoGrid(rows=0, cols=5)

    def test_cell_of_corners(self):
        grid = GeoGrid(rows=18, cols=36)
        assert grid.cell_of(GeoPoint(90.0, -180.0)) == (0, 0)
        assert grid.cell_of(GeoPoint(-90.0, 180.0)) == (17, 35)
        assert grid.cell_of(GeoPoint(0.0, 0.0)) == (9, 18)

    def test_northern_points_have_smaller_rows(self):
        grid = GeoGrid()
        oslo = grid.cell_of(GeoPoint(59.9, 10.7))
        cape_town = grid.cell_of(GeoPoint(-33.9, 18.4))
        assert oslo[0] < cape_town[0]

    def test_add_and_total(self):
        grid = GeoGrid(rows=4, cols=4)
        grid.add(GeoPoint(0, 0), weight=3)
        grid.add(GeoPoint(50, 50))
        assert grid.total == 4

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            GeoGrid().add(GeoPoint(0, 0), weight=-1)

    def test_render_shape(self):
        grid = GeoGrid(rows=6, cols=30)
        text = grid.render()
        lines = text.splitlines()
        assert len(lines) == 6
        assert all(len(line) == 30 for line in lines)

    def test_empty_grid_renders_blank(self):
        assert set(GeoGrid(rows=3, cols=3).render()) <= {" ", "\n"}

    def test_density_monotone_in_glyphs(self):
        grid = GeoGrid(rows=1, cols=3)
        grid.add(GeoPoint(0, -150), weight=1)
        grid.add(GeoPoint(0, 0), weight=100)
        line = grid.render()
        low = GLYPHS.index(line[grid.cell_of(GeoPoint(0, -150))[1]])
        high = GLYPHS.index(line[grid.cell_of(GeoPoint(0, 0))[1]])
        assert 0 < low <= high == len(GLYPHS) - 1

    def test_markers_override(self):
        grid = GeoGrid(rows=2, cols=2)
        cell = grid.cell_of(GeoPoint(45, -90))
        text = grid.render(markers={cell: "O"})
        assert "O" in text


class TestReplicaDensity:
    def test_density_from_analysis(self, tiny_census, city_db):
        analysis = analyze_matrix(matrix_from_census(tiny_census), city_db=city_db)
        grid = replica_density_map(analysis)
        assert grid.total == analysis.total_replicas
        rendered = grid.render()
        # The anycast world is dense enough that multiple glyph levels show.
        assert len(set(rendered) - {"\n", " "}) >= 2


class TestDeploymentMap:
    def test_markers_for_observed_and_truth(self, tiny_internet):
        dep = tiny_internet.deployments[0]
        observed = dep.site_cities[:5]
        text = deployment_map(observed, truth_cities=dep.site_cities)
        assert "O" in text
        assert "x" in text  # unobserved ground-truth sites

    def test_observed_wins_over_truth_marker(self, tiny_internet):
        dep = tiny_internet.deployments[0]
        text = deployment_map(dep.site_cities, truth_cities=dep.site_cities)
        assert "x" not in text
