"""Unit tests for the array-native analysis engine internals."""

import numpy as np
import pytest

from repro.census.combine import matrix_from_census
from repro.census.fastpath import FastAnalysisEngine, SharedGeometry
from repro.core.geolocation import classify_disk, classify_disks, classify_nearest
from repro.core.igreedy import IGreedyConfig
from repro.geo.cities import default_city_db
from repro.geo.disks import Disk, overlap_matrix


@pytest.fixture(scope="module")
def matrix(tiny_census):
    return matrix_from_census(tiny_census)


@pytest.fixture(scope="module")
def geometry(matrix, city_db):
    return SharedGeometry(matrix, city_db)


class TestVpDistanceCache:
    def test_cached_instance_reused(self, matrix):
        first = matrix.vp_distance_matrix()
        assert matrix.vp_distance_matrix() is first

    def test_cache_read_only(self, matrix):
        with pytest.raises(ValueError):
            matrix.vp_distance_matrix()[0, 0] = 1.0


class TestSharedGeometry:
    def test_overlap_slice_matches_disk_objects(self, matrix, geometry):
        """Slice-plus-radii-outer-sum == overlap_matrix on fresh disks."""
        rng = np.random.default_rng(3)
        vp_indices = np.sort(rng.choice(matrix.n_vps, size=12, replace=False))
        radii = rng.uniform(50.0, 4000.0, size=12)
        disks = [
            Disk(center=matrix.vp_locations[v], radius_km=float(r))
            for v, r in zip(vp_indices, radii)
        ]
        expected = overlap_matrix(disks)
        got = geometry.overlap_submatrix(vp_indices, radii)
        assert np.array_equal(expected, got)

    def test_target_arrays_match_sample_ordering(self, matrix, geometry):
        """(vp_index, rtt) arrays reproduce min_rtt_samples order."""
        from repro.core.samples import LatencySample, min_rtt_samples

        row = int(np.nonzero((~np.isnan(matrix.rtt_ms)).sum(axis=1) >= 3)[0][0])
        prefix = int(matrix.prefixes[row])
        samples = min_rtt_samples(
            [
                LatencySample(vp_name=n, vp_location=loc, rtt_ms=rtt)
                for n, loc, rtt in matrix.samples_for(prefix)
            ]
        )
        vp_indices, rtt = geometry.target_arrays(row)
        assert [matrix.vp_names[j] for j in vp_indices] == [s.vp_name for s in samples]
        assert [float(r) for r in rtt] == [s.rtt_ms for s in samples]

    def test_combined_matrix_blocks(self, matrix, geometry, city_db):
        """The (V+C)^2 matrix agrees with the per-block caches."""
        combined = geometry.combined
        n = matrix.n_vps
        assert combined.shape == (n + len(city_db), n + len(city_db))
        assert np.array_equal(combined[:n, :n], geometry.vp_gap)
        assert np.array_equal(combined[n:, :n], geometry.city_vp)


class TestBatchedClassification:
    def test_matches_per_disk_classifier(self, city_db):
        rng = np.random.default_rng(9)
        disks = [
            Disk(
                center=city_db.cities[i].location,
                radius_km=float(rng.uniform(0.0, 3000.0)),
            )
            for i in rng.choice(len(city_db), size=20, replace=False)
        ]
        for exponent in (1.0, 0.0, 2.0):
            batched = classify_disks(disks, city_db, population_exponent=exponent)
            for disk, got in zip(disks, batched):
                expected = classify_disk(disk, city_db, population_exponent=exponent)
                if expected is None:
                    expected = classify_nearest(disk, city_db)
                assert got == expected

    def test_negative_exponent_rejected(self, city_db):
        with pytest.raises(ValueError):
            city_db.classify_disks([], population_exponent=-1.0)

    def test_center_distances_shape_validated(self, city_db):
        disk = Disk(center=city_db.cities[0].location, radius_km=10.0)
        with pytest.raises(ValueError):
            city_db.classify_disks([disk], center_distances=np.zeros((3, 1)))

    def test_population_array_read_only(self, city_db):
        with pytest.raises(ValueError):
            city_db.population_array()[0] = 1.0


class TestReplicaCache:
    def test_cache_hit_skips_recomputation(self, matrix, city_db):
        engine = FastAnalysisEngine(matrix, city_db=city_db, config=IGreedyConfig())
        first = engine.classify_vp_disks([0, 1], [500.0, 900.0])
        assert len(engine._replica_cache) == 2
        again = engine.classify_vp_disks([0, 1], [500.0, 900.0])
        assert len(engine._replica_cache) == 2
        assert [id(a[0]) for a in first] == [id(b[0]) for b in again]

    def test_cache_entries_carry_city_index(self, matrix, city_db):
        engine = FastAnalysisEngine(matrix, city_db=city_db, config=IGreedyConfig())
        ((replica, city_idx),) = engine.classify_vp_disks([2], [1500.0])
        assert city_db.city_at(city_idx) == replica.city


class TestCityDbAccessors:
    def test_index_of_round_trips(self, city_db):
        for i in (0, 7, len(city_db) - 1):
            assert city_db.index_of(city_db.city_at(i)) == i

    def test_index_of_unknown_city_raises(self, city_db):
        from repro.geo.cities import City
        from repro.geo.coords import GeoPoint

        stranger = City("Atlantis", "XX", GeoPoint(0.0, 0.0), 1.0)
        with pytest.raises(KeyError):
            city_db.index_of(stranger)

    def test_spherical_centroid(self, city_db):
        paris = city_db.index_of(city_db.get("Paris"))
        centroid = city_db.spherical_centroid([paris])
        assert centroid.distance_km(city_db.get("Paris").location) < 1.0
        with pytest.raises(ValueError):
            city_db.spherical_centroid([])
