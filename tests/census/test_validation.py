"""Tests for ground-truth validation (Fig. 7 metrics)."""

import pytest

from repro.census.analysis import analyze_matrix
from repro.census.combine import matrix_from_census
from repro.census.validation import validate_deployment
from repro.measurement.httpprobe import SiteCodeBook


@pytest.fixture(scope="module")
def analysis(tiny_census, city_db):
    return analyze_matrix(matrix_from_census(tiny_census), city_db=city_db)


@pytest.fixture(scope="module")
def codebook(city_db):
    return SiteCodeBook(city_db)


def deployment(internet, name):
    for dep in internet.deployments:
        if dep.entry.name == name:
            return dep
    raise KeyError(name)


class TestValidateCloudflare:
    @pytest.fixture(scope="class")
    def report(self, analysis, tiny_internet, tiny_platform, codebook):
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        return validate_deployment(analysis, cf, tiny_platform, codebook)

    def test_gt_pai_in_unit_interval(self, report):
        assert 0.0 < report.gt_pai <= 1.0

    def test_tpr_reasonable(self, report):
        # Paper: 77% city-level agreement for CloudFlare; we accept a band.
        assert 0.5 <= report.tpr_mean <= 1.0

    def test_median_error_magnitude(self, report):
        # Paper: 434 km median error on misclassifications.
        if report.all_errors_km:
            assert 50 <= report.median_error_km <= 1500

    def test_per_prefix_coverage(self, report, tiny_internet):
        cf = deployment(tiny_internet, "CLOUDFLARENET,US")
        assert len(report.per_prefix) >= 0.9 * len(cf.prefixes)

    def test_per_prefix_tpr_bounds(self, report):
        for p in report.per_prefix:
            assert 0.0 <= p.tpr <= 1.0
            assert p.matched <= len(p.predicted)


class TestValidateEdgecast:
    def test_report_structure(self, analysis, tiny_internet, tiny_platform, codebook):
        ec = deployment(tiny_internet, "EDGECAST,US")
        report = validate_deployment(analysis, ec, tiny_platform, codebook)
        assert report.as_name == "EDGECAST,US"
        assert report.gt_cities <= report.pai_cities
        assert len(report.pai_cities) == ec.entry.n_sites


class TestNoGroundTruth:
    def test_header_less_deployment_has_empty_gt(
        self, analysis, tiny_internet, tiny_platform, codebook
    ):
        isc = deployment(tiny_internet, "ISC-AS,US")
        report = validate_deployment(analysis, isc, tiny_platform, codebook)
        assert report.gt_cities == set()
        assert report.gt_pai == 0.0
        # Without a GT, no misclassification distances can be computed.
        assert report.all_errors_km == []
