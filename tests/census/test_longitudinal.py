"""Tests for longitudinal census support."""

import numpy as np
import pytest

from repro.census.analysis import analyze_matrix
from repro.census.characterize import Characterization
from repro.census.combine import matrix_from_census
from repro.census.longitudinal import (
    EvolutionConfig,
    compare_epochs,
    evolve_catalog,
)
from repro.internet.catalog import full_catalog
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign


@pytest.fixture(scope="module")
def catalog():
    return full_catalog(tail_count=20, seed=7)


@pytest.fixture(scope="module")
def evolved(catalog):
    return evolve_catalog(catalog, seed=3)


class TestEvolveCatalog:
    def test_existing_entries_keep_identity(self, catalog, evolved):
        for old, new in zip(catalog, evolved):
            assert old.asn == new.asn
            assert old.n_slash24 == new.n_slash24
            assert old.ports == new.ports

    def test_new_adopters_appended(self, catalog, evolved):
        assert len(evolved) == len(catalog) + EvolutionConfig().new_adopters
        new = evolved[len(catalog):]
        old_asns = {e.asn for e in catalog}
        assert not old_asns & {e.asn for e in new}

    def test_some_growth_happens(self, catalog, evolved):
        grown = sum(
            1 for old, new in zip(catalog, evolved) if new.n_sites > old.n_sites
        )
        assert 0.15 * len(catalog) < grown < 0.5 * len(catalog)

    def test_sites_never_below_one(self, evolved):
        assert all(e.n_sites >= 1 for e in evolved)

    def test_deterministic(self, catalog):
        assert evolve_catalog(catalog, seed=3) == evolve_catalog(catalog, seed=3)
        assert evolve_catalog(catalog, seed=3) != evolve_catalog(catalog, seed=4)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EvolutionConfig(growth_prob=1.5)
        with pytest.raises(ValueError):
            EvolutionConfig(new_adopters=-1)
        with pytest.raises(ValueError):
            EvolutionConfig(max_new_sites=0)


class TestWorldStability:
    """The properties that make epoch-over-epoch comparison meaningful."""

    @pytest.fixture(scope="class")
    def worlds(self, catalog, evolved):
        cfg = InternetConfig(seed=5, n_unicast_slash24=300, tail_deployments=0)
        return (
            SyntheticInternet(cfg, catalog=catalog),
            SyntheticInternet(cfg, catalog=evolved),
        )

    def test_prefixes_stable_for_existing_entries(self, worlds, catalog):
        t0, t1 = worlds
        for i in range(len(catalog)):
            assert t0.deployments[i].prefixes == t1.deployments[i].prefixes

    def test_unicast_hosts_identical(self, worlds):
        t0, t1 = worlds
        assert [h.prefix for h in t0.unicast_hosts] == [h.prefix for h in t1.unicast_hosts]
        assert [h.location for h in t0.unicast_hosts] == [h.location for h in t1.unicast_hosts]

    def test_unchanged_deployments_identical(self, worlds, catalog, evolved):
        t0, t1 = worlds
        for i, (old, new) in enumerate(zip(catalog, evolved)):
            if old.n_sites != new.n_sites:
                continue
            assert [r.city.key for r in t0.deployments[i].replicas] == [
                r.city.key for r in t1.deployments[i].replicas
            ]
            assert t0.deployments[i].catchment_seed == t1.deployments[i].catchment_seed

    def test_grown_deployments_keep_existing_sites(self, worlds, catalog, evolved):
        t0, t1 = worlds
        checked = 0
        for i, (old, new) in enumerate(zip(catalog, evolved)):
            if new.n_sites <= old.n_sites:
                continue
            before = [r.city.key for r in t0.deployments[i].replicas]
            after = [r.city.key for r in t1.deployments[i].replicas]
            assert after[: len(before)] == before
            checked += 1
        assert checked > 0


class TestCompareEpochs:
    @pytest.fixture(scope="class")
    def epoch_reports(self, catalog, evolved, city_db):
        cfg = InternetConfig(seed=5, n_unicast_slash24=200, tail_deployments=0)
        from repro.measurement.platform import planetlab_platform

        platform = planetlab_platform(count=80, seed=41, city_db=city_db)
        chars = []
        for cat in (catalog, evolved):
            internet = SyntheticInternet(cfg, catalog=cat, city_db=city_db)
            campaign = CensusCampaign(internet, platform, seed=77)
            matrix = matrix_from_census(campaign.run_census(availability=1.0))
            analysis = analyze_matrix(matrix, city_db=city_db)
            chars.append(Characterization(analysis, internet))
        return chars

    def test_report_partitions_ases(self, epoch_reports):
        before, after = epoch_reports
        report = compare_epochs(before, after)
        assert report.n_tracked == len(
            set(before.footprints) | set(after.footprints)
        )

    def test_new_adopters_appear(self, epoch_reports):
        before, after = epoch_reports
        report = compare_epochs(before, after)
        appeared_names = {c.name for c in report.appeared}
        assert any(name.startswith("NEW-ADOPTER") for name in appeared_names)

    def test_growth_observed_by_census(self, epoch_reports, catalog, evolved):
        """ASes whose ground truth grew should dominate the 'grown' list."""
        before, after = epoch_reports
        report = compare_epochs(before, after)
        truly_grown = {
            new.asn for old, new in zip(catalog, evolved) if new.n_sites > old.n_sites
        }
        observed_grown = {c.asn for c in report.grown}
        # Most census-observed growth corresponds to true growth.
        if observed_grown:
            assert len(observed_grown & truly_grown) / len(observed_grown) > 0.6

    def test_no_change_no_motion(self, epoch_reports):
        before, _ = epoch_reports
        report = compare_epochs(before, before)
        assert not report.grown
        assert not report.shrunk
        assert not report.appeared
        assert not report.disappeared


def _fake_characterization(footprints):
    """Duck-typed Characterization: compare_epochs reads only .footprints."""
    from types import SimpleNamespace

    return SimpleNamespace(
        footprints={
            asn: SimpleNamespace(
                mean_replicas=mean,
                n_ip24=ip24,
                autonomous_system=SimpleNamespace(name=name),
            )
            for asn, (name, mean, ip24) in footprints.items()
        }
    )


class TestCompareEpochsClassification:
    def test_min_delta_must_be_non_negative(self):
        empty = _fake_characterization({})
        with pytest.raises(ValueError):
            compare_epochs(empty, empty, min_delta=-0.5)
        with pytest.raises(ValueError):
            compare_epochs(empty, empty, min_ip24_delta=-1)

    def test_ip24_only_growth_is_not_stable(self):
        before = _fake_characterization({64500: ("CDN-A", 10.0, 4)})
        after = _fake_characterization({64500: ("CDN-A", 10.2, 7)})
        report = compare_epochs(before, after)
        assert [c.asn for c in report.footprint_grown] == [64500]
        assert not report.stable
        assert not report.grown
        assert report.n_tracked == 1

    def test_ip24_only_shrink_is_not_stable(self):
        before = _fake_characterization({64500: ("CDN-A", 10.0, 7)})
        after = _fake_characterization({64500: ("CDN-A", 9.8, 4)})
        report = compare_epochs(before, after)
        assert [c.asn for c in report.footprint_shrunk] == [64500]
        assert report.footprint_shrunk[0].ip24_delta == -3
        assert not report.stable

    def test_replica_motion_wins_over_footprint_motion(self):
        before = _fake_characterization({64500: ("CDN-A", 10.0, 4)})
        after = _fake_characterization({64500: ("CDN-A", 13.0, 9)})
        report = compare_epochs(before, after)
        assert [c.asn for c in report.grown] == [64500]
        assert not report.footprint_grown

    def test_truly_stable_stays_stable(self):
        before = _fake_characterization({64500: ("CDN-A", 10.0, 4)})
        report = compare_epochs(before, before)
        assert [c.asn for c in report.stable] == [64500]
        assert not report.footprint_grown
        assert not report.footprint_shrunk


class TestAdopterIdentity:
    """New adopters must never reuse an ASN, even across shrunk epochs."""

    def test_five_epoch_chain_has_unique_asns(self, catalog):
        cat = list(catalog)
        seen = [e.asn for e in cat]
        for epoch in range(5):
            cat = evolve_catalog(cat, seed=100 + epoch)
            new = cat[len(seen):]
            assert len(new) == EvolutionConfig().new_adopters
            for entry in new:
                assert entry.asn not in seen, (
                    f"epoch {epoch} reissued ASN {entry.asn}"
                )
                seen.append(entry.asn)
        assert len(seen) == len(set(seen))

    def test_shrunk_catalog_does_not_reissue_asns(self, catalog):
        """Dropping the newest entries must not recycle their ASNs."""
        evolved = evolve_catalog(catalog, seed=11)
        first_gen = {e.asn for e in evolved[len(catalog):]}
        shrunk = evolved[: len(catalog)]  # the newcomers churn out again
        regrown = evolve_catalog(shrunk, seed=12)
        second_gen = {e.asn for e in regrown[len(shrunk):]}
        assert not first_gen & second_gen

    def test_adopter_identity_is_seed_stable(self, catalog):
        a = evolve_catalog(catalog, seed=11)
        b = evolve_catalog(catalog, seed=11)
        assert [e.asn for e in a] == [e.asn for e in b]
