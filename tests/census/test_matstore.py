"""MatrixStore invariants: every backend is only a *where*, never a *what*.

The hard contract of the Atlas-scale path: matrices built on ``inline``,
``memmap``, and ``shared`` backends are byte-identical, analysis over
them is object-identical for every worker count, and no segment survives
its owner — not even when a worker dies mid-shard.
"""

from __future__ import annotations

import glob
import os
import pickle

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.census import matstore  # noqa: E402
from repro.census.combine import (  # noqa: E402
    RttMatrix,
    matrix_from_record_batches,
    matrix_from_records,
    merge_matrices,
    reply_prefix_union,
)
from repro.census.fastpath import analyze_matrix_fast  # noqa: E402
from repro.census.matstore import (  # noqa: E402
    AUTO_MIN_CELLS,
    MatrixStore,
    StoreToken,
    active_segments,
    allocate_matrix_planes,
    resolve_store,
)
from repro.core.igreedy import IGreedyConfig  # noqa: E402
from repro.exec.pool import fork_available  # noqa: E402
from repro.geo.cities import default_city_db  # noqa: E402
from repro.geo.coords import GeoPoint  # noqa: E402
from repro.measurement.recordio import CensusRecords  # noqa: E402

BACKENDS = ["inline", "memmap", "shared"]


def _shm_files() -> list:
    return glob.glob(f"/dev/shm/{matstore.SEGMENT_PREFIX}-*")


def _records(seed: int, n_vps: int, n_targets: int, n_records: int) -> CensusRecords:
    """Random reply records with heavy (prefix, vp) duplication."""
    rng = np.random.default_rng(seed)
    prefixes = np.sort(rng.choice(2**20, size=n_targets, replace=False)).astype(
        np.uint32
    )
    return CensusRecords(
        census_id=1,
        vp_index=rng.integers(0, n_vps, size=n_records).astype(np.uint16),
        prefix=rng.choice(prefixes, size=n_records).astype(np.uint32),
        timestamp_ms=rng.uniform(0, 1e6, size=n_records).astype(np.float64),
        rtt_ms=rng.choice(
            [2.0, 5.0, 10.0, 20.0, 60.0, 150.0], size=n_records
        ).astype(np.float32),
        flag=np.zeros(n_records, dtype=np.int8),
    )


def _roster(n_vps: int, seed: int = 3):
    rng = np.random.default_rng(seed)
    lats = rng.uniform(-60.0, 60.0, size=n_vps)
    lons = rng.uniform(-170.0, 170.0, size=n_vps)
    names = [f"vp-{i:03d}" for i in range(n_vps)]
    locations = [GeoPoint(float(a), float(b)) for a, b in zip(lats, lons)]
    return names, locations


def _close(matrix: RttMatrix) -> None:
    if matrix.store is not None:
        matrix.store.close()


class TestResolveStore:
    def test_explicit_choices_pass_through(self):
        for choice in ("inline", "memmap", "shared"):
            assert resolve_store(choice, n_cells=1) == choice

    def test_auto_small_is_inline(self):
        assert resolve_store("auto", n_cells=AUTO_MIN_CELLS - 1) == "inline"

    def test_auto_large_is_segment_backed(self):
        assert resolve_store("auto", n_cells=AUTO_MIN_CELLS) in ("shared", "memmap")

    def test_env_var_wins(self, monkeypatch):
        monkeypatch.setenv(matstore.STORE_ENV_VAR, "memmap")
        assert resolve_store("inline", n_cells=1) == "memmap"

    def test_invalid_choice_rejected(self):
        with pytest.raises(ValueError):
            resolve_store("warp")

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(matstore.STORE_ENV_VAR, "warp")
        with pytest.raises(ValueError):
            resolve_store("inline")


class TestLifecycle:
    @pytest.mark.parametrize("backend", ["memmap", "shared"])
    def test_create_close_leaves_nothing(self, backend):
        before = set(_shm_files())
        store = MatrixStore.create((8, 4), backend)
        key = store.key
        assert key in active_segments()
        store.arrays["rtt_ms"][:] = 7.0
        store.close()
        assert store.released
        assert key not in active_segments()
        assert set(_shm_files()) == before
        # Idempotent.
        store.close()

    @pytest.mark.parametrize("backend", ["memmap", "shared"])
    def test_garbage_collection_releases(self, backend):
        before = set(_shm_files())
        store = MatrixStore.create((8, 4), backend)
        key = store.key
        del store
        import gc

        gc.collect()
        assert key not in active_segments()
        assert set(_shm_files()) == before

    @pytest.mark.parametrize("backend", ["memmap", "shared"])
    def test_token_round_trips_and_attach_is_registry_hit(self, backend):
        store = MatrixStore.create((6, 3), backend)
        try:
            token = pickle.loads(pickle.dumps(store.token()))
            assert isinstance(token, StoreToken)
            assert MatrixStore.attach(token) is store
        finally:
            store.close()

    def test_shard_views_are_zero_copy(self):
        store = MatrixStore.create((10, 4), "shared")
        try:
            shard = store.shard(2, 5)
            shard["rtt_ms"][:] = 9.0
            assert (store.arrays["rtt_ms"][2:5] == 9.0).all()
            assert shard["rtt_ms"].base is not None
            with pytest.raises(ValueError):
                store.shard(5, 99)
        finally:
            store.close()

    def test_empty_matrix_falls_back_inline(self):
        rtt, counts, store = allocate_matrix_planes(0, 5, "memmap")
        assert store is None
        assert rtt.shape == (0, 5)
        assert counts.shape == (0, 5)


class TestByteEquivalence:
    """inline ≡ memmap ≡ shared, for the builders and the analysis."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_vps=st.integers(2, 8),
        n_targets=st.integers(1, 16),
        n_records=st.integers(1, 400),
    )
    def test_builders_identical_across_backends(
        self, seed, n_vps, n_targets, n_records
    ):
        records = _records(seed, n_vps, n_targets, n_records)
        names, locations = _roster(n_vps)
        reference = matrix_from_records(records, names, locations, store="inline")
        for backend in ("memmap", "shared"):
            other = matrix_from_records(records, names, locations, store=backend)
            try:
                assert other.store is not None and other.store.backend == backend
                assert np.array_equal(reference.prefixes, other.prefixes)
                assert (
                    reference.rtt_ms.tobytes() == np.asarray(other.rtt_ms).tobytes()
                )
                assert (
                    reference.sample_count.tobytes()
                    == np.asarray(other.sample_count).tobytes()
                )
            finally:
                _close(other)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**32 - 1), batches=st.integers(1, 5))
    def test_streaming_batches_equal_one_shot(self, seed, batches):
        records = _records(seed, n_vps=6, n_targets=12, n_records=300)
        names, locations = _roster(6)
        one_shot = matrix_from_records(records, names, locations, store="inline")
        cuts = np.linspace(0, len(records.prefix), batches + 1).astype(int)
        parts = [
            records.select(
                (np.arange(len(records.prefix)) >= lo)
                & (np.arange(len(records.prefix)) < hi)
            )
            for lo, hi in zip(cuts[:-1], cuts[1:])
        ]
        streamed = matrix_from_record_batches(
            parts,
            names,
            locations,
            prefixes=reply_prefix_union(parts),
            store="memmap",
        )
        try:
            assert np.array_equal(one_shot.prefixes, streamed.prefixes)
            assert one_shot.rtt_ms.tobytes() == np.asarray(streamed.rtt_ms).tobytes()
            assert (
                one_shot.sample_count.tobytes()
                == np.asarray(streamed.sample_count).tobytes()
            )
        finally:
            _close(streamed)

    def test_merge_identical_across_backends(self):
        names_a, locations_a = _roster(5, seed=1)
        names_b, locations_b = _roster(7, seed=2)
        a = matrix_from_records(_records(11, 5, 10, 200), names_a, locations_a)
        b = matrix_from_records(_records(12, 7, 14, 200), names_b, locations_b)
        reference = merge_matrices(a, b, store="inline")
        for backend in ("memmap", "shared"):
            other = merge_matrices(a, b, store=backend)
            try:
                assert (
                    reference.rtt_ms.tobytes() == np.asarray(other.rtt_ms).tobytes()
                )
                assert (
                    reference.sample_count.tobytes()
                    == np.asarray(other.sample_count).tobytes()
                )
            finally:
                _close(other)


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestAnalysisEquivalence:
    """Store-backed analysis ≡ inline, for workers ∈ {0, 1, 4}."""

    @pytest.fixture(scope="class")
    def inputs(self):
        records = _records(seed=21, n_vps=10, n_targets=40, n_records=4000)
        names, locations = _roster(10, seed=21)
        return records, names, locations

    def _assert_equivalent(self, ref, other):
        assert np.array_equal(ref.prefixes, other.prefixes)
        assert np.array_equal(ref.anycast_mask, other.anycast_mask)
        assert list(ref.results.keys()) == list(other.results.keys())
        for prefix, a in ref.results.items():
            b = other.results[prefix]
            assert a.detection == b.detection, prefix
            assert a.iterations == b.iterations, prefix
            assert a.replicas == b.replicas, prefix

    def test_backends_and_workers_identical(self, inputs):
        records, names, locations = inputs
        db = default_city_db()
        config = IGreedyConfig(engine="fast")
        baseline_matrix = matrix_from_records(records, names, locations, store="inline")
        reference = analyze_matrix_fast(
            baseline_matrix, city_db=db, config=config, workers=0
        )
        assert reference.results, "fixture must detect anycast targets"
        for backend in BACKENDS:
            matrix = matrix_from_records(records, names, locations, store=backend)
            try:
                for workers in (0, 1, 4):
                    result = analyze_matrix_fast(
                        matrix, city_db=db, config=config, workers=workers
                    )
                    self._assert_equivalent(reference, result)
            finally:
                _close(matrix)
        assert active_segments() == []


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestCrashCleanup:
    """A worker killed mid-shard (never the owner) cannot orphan a segment."""

    @pytest.mark.parametrize("backend", ["memmap", "shared"])
    def test_killed_child_leaves_no_orphans(self, backend):
        import multiprocessing

        before = set(_shm_files())
        store = MatrixStore.create((64, 8), backend)
        token = store.token()

        def child(tok):
            attached = MatrixStore.attach(tok)
            attached.arrays["rtt_ms"][0, :] = 42.0
            os._exit(113)  # dies holding the mapping, skipping finalizers

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=child, args=(token,))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 113
        # The dead child's write is visible and the segment is intact.
        assert (np.asarray(store.arrays["rtt_ms"][0]) == 42.0).all()
        store.close()
        assert active_segments() == []
        assert set(_shm_files()) == before

    def test_fresh_attach_then_exit_does_not_unlink(self):
        """A *separate* process attach (registry miss) must not destroy
        the segment on its clean exit either — the resource-tracker
        untrack is what keeps non-owners from unlinking."""
        import multiprocessing
        import sys

        store = MatrixStore.create((4, 4), "shared")
        token = store.token()

        def child(tok):
            matstore._LIVE.clear()  # simulate a non-fork process: registry miss
            attached = MatrixStore.attach(tok)
            assert not attached.owner
            attached.close()
            os._exit(0)

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=child, args=(token,))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 0
        # Parent can still read its plane: the child did not unlink it.
        assert store.arrays["rtt_ms"].shape == (4, 4)
        name = store.token().fields[0][2]
        assert os.path.exists(f"/dev/shm/{name}")
        store.close()
        assert not os.path.exists(f"/dev/shm/{name}")
