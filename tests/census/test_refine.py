"""Tests for cross-platform refinement and matrix merging."""

import numpy as np
import pytest

from repro.census.analysis import analyze_matrix
from repro.census.combine import matrix_from_census, merge_matrices
from repro.census.refine import refine_detected
from repro.measurement.platform import ripe_platform


@pytest.fixture(scope="module")
def base_matrix(tiny_census):
    return matrix_from_census(tiny_census)


@pytest.fixture(scope="module")
def base_analysis(base_matrix, city_db):
    return analyze_matrix(base_matrix, city_db=city_db)


@pytest.fixture(scope="module")
def ripe(city_db):
    return ripe_platform(count=250, seed=19, city_db=city_db)


@pytest.fixture(scope="module")
def report(base_analysis, base_matrix, tiny_internet, ripe, city_db):
    return refine_detected(
        base_analysis, base_matrix, tiny_internet, ripe, city_db=city_db
    )


class TestMergeMatrices:
    def test_self_merge_is_identity_on_values(self, base_matrix):
        merged = merge_matrices(base_matrix, base_matrix)
        assert merged.n_targets == base_matrix.n_targets
        assert merged.n_vps == base_matrix.n_vps
        both_nan = np.isnan(merged.rtt_ms) & np.isnan(base_matrix.rtt_ms)
        close = np.isclose(merged.rtt_ms, base_matrix.rtt_ms)
        assert (both_nan | close).all()

    def test_disjoint_platforms_union_vps(self, tiny_census, tiny_internet, ripe):
        from repro.measurement.campaign import CensusCampaign

        campaign = CensusCampaign(tiny_internet, ripe, seed=31)
        ripe_census = campaign.run_census(availability=1.0)
        a = matrix_from_census(tiny_census)
        b = matrix_from_census(ripe_census)
        merged = merge_matrices(a, b)
        assert merged.n_vps == a.n_vps + b.n_vps
        assert set(merged.vp_names) == set(a.vp_names) | set(b.vp_names)

    def test_merge_only_tightens(self, base_matrix, tiny_census, tiny_internet, ripe):
        from repro.measurement.campaign import CensusCampaign

        campaign = CensusCampaign(tiny_internet, ripe, seed=31)
        b = matrix_from_census(campaign.run_census(availability=1.0))
        merged = merge_matrices(base_matrix, b)
        cols = [merged.vp_names.index(n) for n in base_matrix.vp_names]
        for i in range(0, base_matrix.n_targets, 97):
            row = merged.row_of(int(base_matrix.prefixes[i]))
            old = base_matrix.rtt_ms[i]
            new = merged.rtt_ms[row][cols]
            mask = ~np.isnan(old)
            assert (new[mask] <= old[mask] + 1e-6).all()


class TestRefinement:
    def test_covers_all_detected(self, report, base_analysis):
        assert report.n_prefixes == base_analysis.n_anycast

    def test_net_gain_positive(self, report):
        """A RIPE-scale follow-up sees more of the big deployments."""
        assert report.total_gain > 0
        assert len(report.improved) > 0

    def test_after_never_less_anycast(self, report):
        """Extra measurements cannot un-detect a genuine deployment."""
        for refinement in report.refined.values():
            assert refinement.confirmed

    def test_suspicious_accounting(self, report):
        suspicious = [r for r in report.refined.values() if r.was_suspicious]
        confirmed = report.suspicious_confirmed()
        discarded = report.suspicious_discarded()
        assert len(confirmed) + len(discarded) == len(suspicious)

    def test_replica_counts_stay_conservative(self, report, tiny_internet):
        for prefix, refinement in report.refined.items():
            dep = tiny_internet.deployment_of(prefix)
            assert refinement.after.replica_count <= dep.entry.n_sites

    def test_empty_analysis_short_circuits(self, base_matrix, tiny_internet, ripe, city_db):
        from repro.census.analysis import AnalysisResult

        empty = AnalysisResult(
            prefixes=base_matrix.prefixes,
            anycast_mask=np.zeros(base_matrix.n_targets, dtype=bool),
        )
        report = refine_detected(empty, base_matrix, tiny_internet, ripe, city_db=city_db)
        assert report.n_prefixes == 0
        assert report.total_gain == 0
