"""Tests for multi-census combination."""

import numpy as np
import pytest

from repro.census.combine import (
    RttMatrix,
    _fold_min_count,
    combine_censuses,
    matrix_from_census,
    matrix_from_records,
    merge_matrices,
)
from repro.geo.coords import GeoPoint


@pytest.fixture(scope="module")
def two_censuses(tiny_internet, tiny_platform):
    from repro.measurement.campaign import CensusCampaign

    campaign = CensusCampaign(tiny_internet, tiny_platform, seed=123)
    return [campaign.run_census(availability=0.8), campaign.run_census(availability=0.8)]


class TestMatrix:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_censuses([])

    def test_single_census_matrix(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        assert matrix.n_vps == tiny_census.n_vps
        assert matrix.rtt_ms.shape == (matrix.n_targets, matrix.n_vps)
        assert matrix.sample_count.shape == matrix.rtt_ms.shape

    def test_prefixes_sorted_unique(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        assert np.array_equal(matrix.prefixes, np.unique(matrix.prefixes))

    def test_matrix_values_match_records(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        replies = tiny_census.records.replies()
        # Check a handful of cells against a manual group-by-min.
        for i in range(0, len(replies), max(len(replies) // 40, 1)):
            prefix = int(replies.prefix[i])
            vp = int(replies.vp_index[i])
            name = tiny_census.platform.vantage_points[vp].name
            col = matrix.vp_names.index(name)
            row = matrix.row_of(prefix)
            mask = (replies.prefix == prefix) & (replies.vp_index == vp)
            assert matrix.rtt_ms[row, col] == pytest.approx(float(replies.rtt_ms[mask].min()))

    def test_row_of_unknown(self, tiny_census):
        with pytest.raises(KeyError):
            matrix_from_census(tiny_census).row_of(12345678)

    def test_samples_for(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        prefix = int(matrix.prefixes[0])
        samples = matrix.samples_for(prefix)
        assert samples
        for name, loc, rtt in samples:
            assert name in matrix.vp_names
            assert rtt > 0

    def test_vp_distance_matrix_symmetric(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        d = matrix.vp_distance_matrix()
        assert d.shape == (matrix.n_vps, matrix.n_vps)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)


class TestCombination:
    def test_vp_union(self, two_censuses):
        combined = combine_censuses(two_censuses)
        names = set()
        for census in two_censuses:
            names.update(vp.name for vp in census.platform.vantage_points)
        assert set(combined.vp_names) == names

    def test_combination_only_tightens(self, two_censuses):
        """Per-cell combined RTT is <= each individual census value."""
        combined = combine_censuses(two_censuses)
        single = combine_censuses(two_censuses[:1])
        col_map = [combined.vp_names.index(n) for n in single.vp_names]
        for row_s, prefix in enumerate(single.prefixes[:200]):
            row_c = combined.row_of(int(prefix))
            a = single.rtt_ms[row_s]
            b = combined.rtt_ms[row_c][col_map]
            mask = ~np.isnan(a)
            assert (b[mask] <= a[mask] + 1e-6).all()

    def test_sample_counts_accumulate(self, two_censuses):
        combined = combine_censuses(two_censuses)
        assert combined.sample_count.max() == 2

    def test_combination_covers_more_or_equal_targets(self, two_censuses):
        combined = combine_censuses(two_censuses)
        single = combine_censuses(two_censuses[:1])
        assert combined.n_targets >= single.n_targets


# -- exact-bytes regressions vs the scattered-ufunc reference -----------
#
# The production fold is lexsort + minimum.reduceat (see the module
# docstring's micro-benchmark note); these tests pin it byte-for-byte
# against the np.minimum.at / np.add.at formulation it replaced.


def _scattered_reference(shape, rows, cols, values):
    rtt = np.full(shape, np.inf, dtype=np.float32)
    counts = np.zeros(shape, dtype=np.uint8)
    np.minimum.at(rtt, (rows, cols), values)
    np.add.at(counts, (rows, cols), 1)
    return rtt, counts


class TestFoldExactBytes:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("chunk", [7, 1 << 21])
    def test_fold_matches_scattered_ufuncs(self, seed, chunk):
        rng = np.random.default_rng(seed)
        shape = (23, 9)
        n = int(rng.integers(1, 2000))
        rows = rng.integers(0, shape[0], size=n).astype(np.int64)
        cols = rng.integers(0, shape[1], size=n).astype(np.int64)
        values = rng.choice(
            [1.5, 2.0, 2.0, 7.25, 33.0, 150.0], size=n
        ).astype(np.float32)
        ref_rtt, ref_counts = _scattered_reference(shape, rows, cols, values)
        rtt = np.full(shape, np.inf, dtype=np.float32)
        counts = np.zeros(shape, dtype=np.uint8)
        _fold_min_count(rtt, counts, rows, cols, values, chunk=chunk)
        assert rtt.tobytes() == ref_rtt.tobytes()
        assert counts.tobytes() == ref_counts.tobytes()

    def test_fold_preserves_nan_poisoning(self):
        # A NaN sample must poison its cell exactly like np.minimum.at.
        rows = np.array([0, 0, 1], dtype=np.int64)
        cols = np.array([0, 0, 0], dtype=np.int64)
        values = np.array([5.0, np.nan, 3.0], dtype=np.float32)
        ref_rtt, ref_counts = _scattered_reference((2, 2), rows, cols, values)
        rtt = np.full((2, 2), np.inf, dtype=np.float32)
        counts = np.zeros((2, 2), dtype=np.uint8)
        _fold_min_count(rtt, counts, rows, cols, values)
        assert np.isnan(rtt[0, 0]) and np.isnan(ref_rtt[0, 0])
        assert rtt.tobytes() == ref_rtt.tobytes()
        assert counts.tobytes() == ref_counts.tobytes()

    def test_count_wraparound_matches_uint8_add(self):
        # 300 samples into one uint8 cell wrap mod 256 either way.
        n = 300
        rows = np.zeros(n, dtype=np.int64)
        cols = np.zeros(n, dtype=np.int64)
        values = np.full(n, 9.0, dtype=np.float32)
        ref_rtt, ref_counts = _scattered_reference((1, 1), rows, cols, values)
        rtt = np.full((1, 1), np.inf, dtype=np.float32)
        counts = np.zeros((1, 1), dtype=np.uint8)
        _fold_min_count(rtt, counts, rows, cols, values)
        assert counts[0, 0] == ref_counts[0, 0] == n % 256


def _random_matrix(seed, n_vps, n_targets, name_offset=0):
    rng = np.random.default_rng(seed)
    rtt = rng.choice([2.0, 5.0, 20.0, 90.0], size=(n_targets, n_vps))
    rtt = np.where(rng.random(rtt.shape) < 0.3, np.nan, rtt).astype(np.float32)
    counts = rng.integers(0, 4, size=rtt.shape).astype(np.uint8)
    return RttMatrix(
        prefixes=np.sort(
            rng.choice(2**16, size=n_targets, replace=False).astype(np.uint32)
        ),
        vp_names=[f"vp-{name_offset + i:03d}" for i in range(n_vps)],
        vp_locations=[
            GeoPoint(float(a), float(b))
            for a, b in zip(
                rng.uniform(-60, 60, n_vps), rng.uniform(-170, 170, n_vps)
            )
        ],
        rtt_ms=rtt,
        sample_count=counts,
    )


class TestMergeExactBytes:
    def _merge_reference(self, a, b):
        """The pre-streaming formulation: full coordinate arrays + minimum.at."""
        vp_index, vp_locations = {}, []
        for matrix in (a, b):
            for name, location in zip(matrix.vp_names, matrix.vp_locations):
                if name not in vp_index:
                    vp_index[name] = len(vp_index)
                    vp_locations.append(location)
        prefixes = np.union1d(a.prefixes, b.prefixes)
        shape = (len(prefixes), len(vp_index))
        rtt = np.full(shape, np.inf, dtype=np.float32)
        counts = np.zeros(shape, dtype=np.uint8)
        for matrix in (a, b):
            cols = np.array([vp_index[n] for n in matrix.vp_names], dtype=np.int64)
            rows = np.searchsorted(prefixes, matrix.prefixes)
            t, v = np.nonzero(~np.isnan(matrix.rtt_ms))
            np.minimum.at(rtt, (rows[t], cols[v]), matrix.rtt_ms[t, v])
            np.add.at(counts, (rows[t], cols[v]), matrix.sample_count[t, v])
        rtt[np.isinf(rtt)] = np.nan
        return rtt, counts

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_streaming_merge_matches_reference(self, seed):
        a = _random_matrix(seed, n_vps=6, n_targets=15)
        # Overlapping roster: vp-002.. shared between the two operands.
        b = _random_matrix(seed + 100, n_vps=7, n_targets=11, name_offset=2)
        ref_rtt, ref_counts = self._merge_reference(a, b)
        merged = merge_matrices(a, b)
        assert merged.rtt_ms.tobytes() == ref_rtt.tobytes()
        assert merged.sample_count.tobytes() == ref_counts.tobytes()

    def test_poisoned_counts_under_nan_do_not_merge(self):
        # A NaN cell carrying a nonzero count (poisoned plane) must not
        # contribute its count — the old masked fold never saw it.
        a = _random_matrix(8, n_vps=3, n_targets=4)
        a.rtt_ms[0, 0] = np.nan
        a.sample_count[0, 0] = 9
        b = _random_matrix(9, n_vps=3, n_targets=4)
        ref_rtt, ref_counts = self._merge_reference(a, b)
        merged = merge_matrices(a, b)
        assert merged.rtt_ms.tobytes() == ref_rtt.tobytes()
        assert merged.sample_count.tobytes() == ref_counts.tobytes()


class TestRowsOf:
    def test_bulk_matches_scalar(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        wanted = matrix.prefixes[:: max(len(matrix.prefixes) // 20, 1)]
        rows = matrix.rows_of(wanted)
        assert rows.dtype == np.int64
        for prefix, row in zip(wanted, rows):
            assert matrix.row_of(int(prefix)) == int(row)

    def test_preserves_query_order(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        wanted = matrix.prefixes[[5, 1, 3]]
        rows = matrix.rows_of(wanted)
        assert rows.tolist() == [5, 1, 3]

    def test_empty_query(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        assert matrix.rows_of([]).size == 0

    def test_unknown_prefix_raises(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        with pytest.raises(KeyError):
            matrix.rows_of([int(matrix.prefixes[0]), 99999999])

    def test_bulk_samples_matches_samples_for(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        rows = np.arange(min(10, matrix.n_targets), dtype=np.int64)
        present, rtt = matrix.bulk_samples(rows)
        for i, row in enumerate(rows):
            triples = matrix.samples_for(int(matrix.prefixes[row]))
            cols = np.nonzero(present[i])[0]
            assert [matrix.vp_names[j] for j in cols] == [t[0] for t in triples]
            assert [float(rtt[i, j]) for j in cols] == [t[2] for t in triples]
