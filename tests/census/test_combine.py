"""Tests for multi-census combination."""

import numpy as np
import pytest

from repro.census.combine import combine_censuses, matrix_from_census


@pytest.fixture(scope="module")
def two_censuses(tiny_internet, tiny_platform):
    from repro.measurement.campaign import CensusCampaign

    campaign = CensusCampaign(tiny_internet, tiny_platform, seed=123)
    return [campaign.run_census(availability=0.8), campaign.run_census(availability=0.8)]


class TestMatrix:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_censuses([])

    def test_single_census_matrix(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        assert matrix.n_vps == tiny_census.n_vps
        assert matrix.rtt_ms.shape == (matrix.n_targets, matrix.n_vps)
        assert matrix.sample_count.shape == matrix.rtt_ms.shape

    def test_prefixes_sorted_unique(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        assert np.array_equal(matrix.prefixes, np.unique(matrix.prefixes))

    def test_matrix_values_match_records(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        replies = tiny_census.records.replies()
        # Check a handful of cells against a manual group-by-min.
        for i in range(0, len(replies), max(len(replies) // 40, 1)):
            prefix = int(replies.prefix[i])
            vp = int(replies.vp_index[i])
            name = tiny_census.platform.vantage_points[vp].name
            col = matrix.vp_names.index(name)
            row = matrix.row_of(prefix)
            mask = (replies.prefix == prefix) & (replies.vp_index == vp)
            assert matrix.rtt_ms[row, col] == pytest.approx(float(replies.rtt_ms[mask].min()))

    def test_row_of_unknown(self, tiny_census):
        with pytest.raises(KeyError):
            matrix_from_census(tiny_census).row_of(12345678)

    def test_samples_for(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        prefix = int(matrix.prefixes[0])
        samples = matrix.samples_for(prefix)
        assert samples
        for name, loc, rtt in samples:
            assert name in matrix.vp_names
            assert rtt > 0

    def test_vp_distance_matrix_symmetric(self, tiny_census):
        matrix = matrix_from_census(tiny_census)
        d = matrix.vp_distance_matrix()
        assert d.shape == (matrix.n_vps, matrix.n_vps)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)


class TestCombination:
    def test_vp_union(self, two_censuses):
        combined = combine_censuses(two_censuses)
        names = set()
        for census in two_censuses:
            names.update(vp.name for vp in census.platform.vantage_points)
        assert set(combined.vp_names) == names

    def test_combination_only_tightens(self, two_censuses):
        """Per-cell combined RTT is <= each individual census value."""
        combined = combine_censuses(two_censuses)
        single = combine_censuses(two_censuses[:1])
        col_map = [combined.vp_names.index(n) for n in single.vp_names]
        for row_s, prefix in enumerate(single.prefixes[:200]):
            row_c = combined.row_of(int(prefix))
            a = single.rtt_ms[row_s]
            b = combined.rtt_ms[row_c][col_map]
            mask = ~np.isnan(a)
            assert (b[mask] <= a[mask] + 1e-6).all()

    def test_sample_counts_accumulate(self, two_censuses):
        combined = combine_censuses(two_censuses)
        assert combined.sample_count.max() == 2

    def test_combination_covers_more_or_equal_targets(self, two_censuses):
        combined = combine_censuses(two_censuses)
        single = combine_censuses(two_censuses[:1])
        assert combined.n_targets >= single.n_targets
