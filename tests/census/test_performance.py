"""Tests for anycast performance metrics."""

import numpy as np
import pytest

from repro.census.performance import affinity, availability, proximity
from repro.internet.deployments import AnycastDeployment


def deployment(internet, name) -> AnycastDeployment:
    for dep in internet.deployments:
        if dep.entry.name == name:
            return dep
    raise KeyError(name)


class TestProximity:
    def test_penalties_non_negative(self, tiny_internet, tiny_platform):
        dep = deployment(tiny_internet, "CLOUDFLARENET,US")
        report = proximity(dep, tiny_platform)
        assert (report.penalties_km >= -1e-6).all()
        assert len(report.penalties_km) == len(tiny_platform)

    def test_geographic_routing_mostly_optimal(self, tiny_internet, tiny_platform):
        """With mild policy noise most clients reach a nearby replica."""
        dep = deployment(tiny_internet, "CLOUDFLARENET,US")
        report = proximity(dep, tiny_platform)
        assert report.optimal_fraction > 0.4
        assert report.median_penalty_km < 2000

    def test_pure_geo_deployment_fully_optimal(self, tiny_internet, tiny_platform):
        import dataclasses

        dep = deployment(tiny_internet, "CLOUDFLARENET,US")
        geo = dataclasses.replace(dep, policy_sigma=0.0)
        report = proximity(geo, tiny_platform)
        assert report.optimal_fraction == 1.0
        assert report.median_penalty_km == pytest.approx(0.0, abs=1e-6)

    def test_policy_noise_increases_penalty(self, tiny_internet, tiny_platform):
        import dataclasses

        dep = deployment(tiny_internet, "MICROSOFT,US")
        mild = dataclasses.replace(dep, policy_sigma=0.1)
        wild = dataclasses.replace(dep, policy_sigma=1.5)
        assert proximity(wild, tiny_platform).penalties_km.mean() >= \
            proximity(mild, tiny_platform).penalties_km.mean()


class TestAffinity:
    def test_perfect_without_flaps(self, tiny_internet, tiny_platform):
        dep = deployment(tiny_internet, "GOOGLE,US")
        report = affinity(dep, tiny_platform, rounds=5, flap_prob=0.0)
        assert report.mean_affinity == 1.0
        assert report.flapping_fraction == 0.0

    def test_flaps_degrade_affinity(self, tiny_internet, tiny_platform):
        dep = deployment(tiny_internet, "GOOGLE,US")
        stable = affinity(dep, tiny_platform, rounds=20, flap_prob=0.02, seed=1)
        flappy = affinity(dep, tiny_platform, rounds=20, flap_prob=0.3, seed=1)
        assert flappy.mean_affinity < stable.mean_affinity
        assert flappy.flapping_fraction > stable.flapping_fraction

    def test_parameter_validation(self, tiny_internet, tiny_platform):
        dep = deployment(tiny_internet, "GOOGLE,US")
        with pytest.raises(ValueError):
            affinity(dep, tiny_platform, rounds=0)
        with pytest.raises(ValueError):
            affinity(dep, tiny_platform, flap_prob=1.5)

    def test_affinity_high_on_census_timescales(self, tiny_internet, tiny_platform):
        """The paper's premise: BGP routing is stable enough that censuses
        days apart see the same catchments."""
        dep = deployment(tiny_internet, "CLOUDFLARENET,US")
        report = affinity(dep, tiny_platform, rounds=10, flap_prob=0.02)
        assert report.mean_affinity > 0.9


class TestAvailability:
    def test_global_deployment_fully_available(self, tiny_internet, tiny_platform):
        dep = deployment(tiny_internet, "CLOUDFLARENET,US")
        assert availability(dep, tiny_platform) == 1.0

    def test_scoped_deployment_still_has_primary(self, tiny_internet, tiny_platform):
        scoped = [d for d in tiny_internet.deployments if d.local_scope_km is not None]
        assert scoped, "tail must contain scoped deployments"
        # The globally-announced primary keeps availability at 1.0 with a
        # generous distance bound...
        assert availability(scoped[0], tiny_platform) == 1.0

    def test_tight_bound_exposes_scoping(self, tiny_internet, tiny_platform):
        """...but within 5,000 km, scoped deployments strand some clients."""
        scoped = [d for d in tiny_internet.deployments if d.local_scope_km is not None]
        values = [availability(d, tiny_platform, max_distance_km=5000.0) for d in scoped]
        assert min(values) < 1.0

    def test_bound_validation(self, tiny_internet, tiny_platform):
        dep = deployment(tiny_internet, "GOOGLE,US")
        with pytest.raises(ValueError):
            availability(dep, tiny_platform, max_distance_km=0.0)
