"""Tests for the Sec. 3.1 target-list sanity checks."""

import pytest

from repro.census.coverage import coverage_report, spot_check_equivalence
from repro.geo.coords import GeoPoint
from repro.internet.hitlist import generate_hitlist


@pytest.fixture(scope="module")
def hitlist(tiny_internet):
    return generate_hitlist(tiny_internet)


class TestCoverageReport:
    def test_full_hitlist_covers_everything(self, tiny_internet, hitlist):
        report = coverage_report(tiny_internet, hitlist)
        assert report.coverage == 1.0
        assert report.hitlist_entries == report.routed_slash24

    def test_pruned_hitlist_still_near_full_coverage_of_used_space(
        self, tiny_internet, hitlist
    ):
        # Pruning drops only never-alive /24s; coverage of the routed space
        # falls, but stays a documented, deliberate reduction.
        pruned = hitlist.pruned()
        report = coverage_report(tiny_internet, pruned)
        assert report.coverage < 1.0
        assert report.hitlist_entries == len(pruned)

    def test_responsiveness_recall_against_census(
        self, tiny_internet, hitlist, tiny_census
    ):
        report = coverage_report(tiny_internet, hitlist, tiny_census)
        # Paper: ~90% of the independent used-space estimate.
        assert 0.8 <= report.responsiveness_recall <= 1.0
        assert report.observed_responsive <= report.expected_responsive * 1.05

    def test_no_census_no_observed(self, tiny_internet, hitlist):
        report = coverage_report(tiny_internet, hitlist)
        assert report.observed_responsive == 0


class TestSpotCheck:
    def test_edgecast_slash24_equivalent(self, tiny_internet):
        dep = next(
            d for d in tiny_internet.deployments if d.entry.name == "EDGECAST,US"
        )
        clients = [GeoPoint(48.9, 2.3), GeoPoint(40.7, -74.0), GeoPoint(35.7, 139.7)]
        assert spot_check_equivalence(dep, dep.prefixes[0], clients)

    def test_all_prefixes_pass(self, tiny_internet):
        dep = tiny_internet.deployments[5]
        clients = [GeoPoint(51.5, -0.1)]
        for prefix in dep.prefixes:
            assert spot_check_equivalence(dep, prefix, clients)
