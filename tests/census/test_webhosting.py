"""Tests for the Alexa frontpage-resolution pipeline."""

import pytest

from repro.census.analysis import analyze_matrix
from repro.census.combine import matrix_from_census
from repro.census.webhosting import FrontpageResolver, crosscheck_alexa_hosting
from repro.internet.deployments import alive_hosts
from repro.net.addresses import slash24_of


@pytest.fixture(scope="module")
def resolver(tiny_internet) -> FrontpageResolver:
    return FrontpageResolver(tiny_internet)


@pytest.fixture(scope="module")
def analysis(tiny_census, city_db):
    return analyze_matrix(matrix_from_census(tiny_census), city_db=city_db)


class TestResolver:
    def test_unknown_domain(self, resolver):
        with pytest.raises(KeyError):
            resolver.resolve("unknown.example")

    def test_contains(self, resolver, tiny_internet):
        from repro.census.ranks import alexa_anycast_sites

        site = alexa_anycast_sites(tiny_internet)[0]
        assert site.domain in resolver

    def test_resolution_lands_in_hosting_slash24(self, resolver, tiny_internet):
        from repro.census.ranks import alexa_anycast_sites

        for site in alexa_anycast_sites(tiny_internet)[:40]:
            resolution = resolver.resolve(site.domain)
            assert resolution.slash24 == site.prefix

    def test_a_record_is_alive_host(self, resolver, tiny_internet):
        from repro.census.ranks import alexa_anycast_sites

        for site in alexa_anycast_sites(tiny_internet)[:20]:
            resolution = resolver.resolve(site.domain)
            dep = tiny_internet.deployment_of(site.prefix)
            assert (resolution.address & 0xFF) in alive_hosts(dep, site.prefix)

    def test_cdn_sites_resolve_via_cname(self, resolver, tiny_internet):
        from repro.census.ranks import alexa_anycast_sites

        cdn_seen = apex_seen = False
        for site in alexa_anycast_sites(tiny_internet):
            resolution = resolver.resolve(site.domain)
            dep = tiny_internet.deployment_of(site.prefix)
            if dep.entry.category.coarse == "CDN":
                assert len(resolution.cname_chain) == 1
                cdn_seen = True
            else:
                assert resolution.cname_chain == ()
                apex_seen = True
        assert cdn_seen and apex_seen

    def test_deterministic(self, resolver, tiny_internet):
        from repro.census.ranks import alexa_anycast_sites

        domain = alexa_anycast_sites(tiny_internet)[0].domain
        assert resolver.resolve(domain) == resolver.resolve(domain)

    def test_resolve_all_count(self, resolver, tiny_internet):
        from repro.census.ranks import alexa_anycast_sites

        assert len(resolver.resolve_all()) == len(alexa_anycast_sites(tiny_internet))


class TestCrossCheck:
    def test_crosscheck_matches_paper_shape(self, analysis, tiny_internet):
        check = crosscheck_alexa_hosting(analysis, tiny_internet)
        # Nearly every Alexa site rides on detected anycast (catalog hosts
        # them on the big, easily-detected deployments).
        total = check.n_sites + len(check.missed)
        assert check.n_sites / total > 0.9
        assert 10 <= check.n_ases <= 15

    def test_cloudflare_hosts_most_sites(self, analysis, tiny_internet):
        check = crosscheck_alexa_hosting(analysis, tiny_internet)
        per_as = check.sites_per_as()
        assert max(per_as, key=per_as.get) == 13335  # CloudFlare: 188 sites
        assert per_as[13335] > 100

    def test_missed_sites_are_on_undetected_prefixes(self, analysis, tiny_internet):
        check = crosscheck_alexa_hosting(analysis, tiny_internet)
        detected = set(analysis.anycast_prefixes)
        resolver = FrontpageResolver(tiny_internet)
        for domain in check.missed:
            assert resolver.resolve(domain).slash24 not in detected
