"""Tests for BGP-hijack injection and inference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census.analysis import analyze_matrix
from repro.census.combine import matrix_from_census
from repro.census.hijack import detect_hijacks, inject_hijack
from repro.geo.coords import GeoPoint

MOSCOW = GeoPoint(55.76, 37.62)


@pytest.fixture(scope="module")
def matrix(tiny_census):
    return matrix_from_census(tiny_census)


@pytest.fixture(scope="module")
def baseline(matrix, city_db):
    return analyze_matrix(matrix, city_db=city_db)


def pick_unicast_victim(tiny_internet, tiny_platform, baseline):
    """A unicast prefix that replied and was (correctly) not flagged.

    The victim must be well-monitored (some vantage point nearby) so that
    its legitimate origin yields a tight disk: hijacks of prefixes with no
    nearby VP are invisible to the technique, exactly as in the paper.
    """
    detected = set(baseline.anycast_prefixes)
    replying = set(int(p) for p in baseline.prefixes)
    for host in tiny_internet.unicast_hosts:
        if host.prefix not in replying or host.prefix in detected:
            continue
        # Far from the attacker, close to at least one vantage point.
        if host.location.distance_km(MOSCOW) < 4000:
            continue
        nearest_vp = min(
            vp.location.distance_km(host.location) for vp in tiny_platform
        )
        if nearest_vp < 800:
            return host
    raise RuntimeError("no suitable victim found")


class TestInjection:
    def test_injection_only_touches_victim_row(self, matrix, tiny_internet, tiny_platform, baseline):
        victim = pick_unicast_victim(tiny_internet, tiny_platform, baseline)
        hijacked = inject_hijack(matrix, victim.prefix, MOSCOW, seed=3)
        row = matrix.row_of(victim.prefix)
        mask = np.ones(matrix.n_targets, dtype=bool)
        mask[row] = False
        a, b = matrix.rtt_ms[mask], hijacked.rtt_ms[mask]
        assert np.array_equal(np.isnan(a), np.isnan(b))
        assert np.allclose(a[~np.isnan(a)], b[~np.isnan(b)])
        assert not np.allclose(
            np.nan_to_num(matrix.rtt_ms[row]), np.nan_to_num(hijacked.rtt_ms[row])
        )

    def test_captured_fraction_bounds(self, matrix, tiny_internet, tiny_platform, baseline):
        victim = pick_unicast_victim(tiny_internet, tiny_platform, baseline)
        with pytest.raises(ValueError):
            inject_hijack(matrix, victim.prefix, MOSCOW, captured_fraction=0.0)
        with pytest.raises(ValueError):
            inject_hijack(matrix, victim.prefix, MOSCOW, captured_fraction=1.5)

    def test_unknown_victim_rejected(self, matrix):
        with pytest.raises(KeyError):
            inject_hijack(matrix, 123456789 % (1 << 24), MOSCOW)


class TestDetection:
    def test_hijack_raises_alarm(self, matrix, tiny_internet, tiny_platform, baseline, city_db):
        victim = pick_unicast_victim(tiny_internet, tiny_platform, baseline)
        hijacked = inject_hijack(matrix, victim.prefix, MOSCOW, seed=3)
        current = analyze_matrix(hijacked, city_db=city_db)
        alarms = detect_hijacks(baseline, current)
        assert victim.prefix in {a.prefix for a in alarms}
        alarm = next(a for a in alarms if a.prefix == victim.prefix)
        assert alarm.replica_count >= 2
        # One observed origin should be near the attacker.
        nearest = min(
            alarm.observed_cities, key=lambda c: c.location.distance_km(MOSCOW)
        )
        assert nearest.location.distance_km(MOSCOW) < 1500

    def test_no_alarms_without_change(self, baseline):
        assert detect_hijacks(baseline, baseline) == []

    def test_whitelist_suppresses(self, matrix, tiny_internet, tiny_platform, baseline, city_db):
        victim = pick_unicast_victim(tiny_internet, tiny_platform, baseline)
        hijacked = inject_hijack(matrix, victim.prefix, MOSCOW, seed=3)
        current = analyze_matrix(hijacked, city_db=city_db)
        alarms = detect_hijacks(baseline, current, known_anycast={victim.prefix})
        assert victim.prefix not in {a.prefix for a in alarms}


class TestEdgeCases:
    """Satellite edges: capture extremes and a co-located attacker."""

    @given(
        fraction=st.floats(min_value=0.05, max_value=1.0),
        seed=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_injection_invariants(
        self, matrix, tiny_internet, tiny_platform, baseline, fraction, seed
    ):
        """Any capture fraction: only the victim row moves, at least one
        cell is rewritten, and the injection is deterministic."""
        victim = pick_unicast_victim(tiny_internet, tiny_platform, baseline)
        hijacked = inject_hijack(
            matrix, victim.prefix, MOSCOW,
            captured_fraction=fraction, seed=seed,
        )
        row = matrix.row_of(victim.prefix)
        mask = np.ones(matrix.n_targets, dtype=bool)
        mask[row] = False
        assert np.array_equal(
            matrix.rtt_ms[mask], hijacked.rtt_ms[mask], equal_nan=True
        )
        changed = ~np.isclose(
            matrix.rtt_ms[row], hijacked.rtt_ms[row], equal_nan=True
        )
        # Even a vanishing fraction captures at least one vantage point.
        assert 1 <= int(changed.sum()) <= matrix.n_vps
        assert np.isfinite(hijacked.rtt_ms[row, changed]).all()
        again = inject_hijack(
            matrix, victim.prefix, MOSCOW,
            captured_fraction=fraction, seed=seed,
        )
        assert np.array_equal(
            hijacked.rtt_ms, again.rtt_ms, equal_nan=True
        )

    def test_full_capture_floor_and_relocation_signature(
        self, matrix, tiny_internet, tiny_platform, baseline, city_db
    ):
        """All VPs captured: the row is coherently unicast-at-the-attacker,
        so the anycast-flip detector stays silent (documented floor) while
        the matrix-level classifier catches the re-homing."""
        from repro.census.hijack import RoutingVerdict, classify_routing_changes

        victim = pick_unicast_victim(tiny_internet, tiny_platform, baseline)
        hijacked = inject_hijack(
            matrix, victim.prefix, MOSCOW, captured_fraction=1.0, seed=3
        )
        current = analyze_matrix(hijacked, city_db=city_db)
        assert victim.prefix not in {
            a.prefix for a in detect_hijacks(baseline, current)
        }
        verdicts = classify_routing_changes(
            baseline, current,
            baseline_matrix=matrix, current_matrix=hijacked,
        )
        hit = [v for v in verdicts if v.prefix == victim.prefix]
        assert [v.verdict for v in hit] == [RoutingVerdict.HIJACK]
        assert "re-homed" in hit[0].detail
        assert all(v.prefix == victim.prefix for v in verdicts if v.is_alarm)

    def test_co_located_attacker_is_silent(
        self, matrix, tiny_internet, tiny_platform, baseline, city_db
    ):
        """An attacker in the victim's own city moves no geography: no
        alarm from either detector, at any capture fraction."""
        from repro.census.hijack import classify_routing_changes

        victim = pick_unicast_victim(tiny_internet, tiny_platform, baseline)
        hijacked = inject_hijack(
            matrix, victim.prefix, victim.location,
            captured_fraction=0.5, seed=3,
        )
        current = analyze_matrix(hijacked, city_db=city_db)
        assert victim.prefix not in {
            a.prefix for a in detect_hijacks(baseline, current)
        }
        verdicts = classify_routing_changes(
            baseline, current,
            baseline_matrix=matrix, current_matrix=hijacked,
        )
        assert [v for v in verdicts if v.is_alarm] == []
