"""Tests for reporting helpers."""

import numpy as np
import pytest

from repro.census.report import (
    comparison_rows,
    empirical_ccdf,
    empirical_cdf,
    format_table,
    quantile_at,
)


class TestCdf:
    def test_cdf_basic(self):
        x, f = empirical_cdf([3, 1, 2])
        assert x.tolist() == [1, 2, 3]
        assert f.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_empty(self):
        x, f = empirical_cdf([])
        assert len(x) == 0 and len(f) == 0

    def test_cdf_monotone(self):
        rng = np.random.default_rng(0)
        _, f = empirical_cdf(rng.normal(size=100))
        assert (np.diff(f) >= 0).all()

    def test_ccdf_basic(self):
        x, p = empirical_ccdf([1, 2, 3, 4])
        assert p[0] == 1.0  # P(X >= min) = 1
        assert p[-1] == pytest.approx(0.25)

    def test_ccdf_cdf_complement(self):
        values = [1.0, 2.0, 5.0, 9.0]
        x, f = empirical_cdf(values)
        _, p = empirical_ccdf(values)
        # P(X >= x_i) = 1 - P(X < x_i) = 1 - F(x_{i-1})
        for i in range(1, len(values)):
            assert p[i] == pytest.approx(1.0 - f[i - 1])

    def test_quantile_at(self):
        assert quantile_at([1, 2, 3, 4], 2) == 0.5
        assert quantile_at([1, 2, 3, 4], 0) == 0.0
        assert quantile_at([1, 2, 3, 4], 10) == 1.0

    def test_quantile_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile_at([], 1.0)


class TestFormatting:
    def test_format_table_aligned(self):
        text = format_table([("a", 1), ("bbbb", 22)], ["name", "n"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        widths = {len(line) for line in lines}
        assert len(widths) <= 2  # header/sep/body align

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table([("a",)], ["x", "y"])

    def test_comparison_rows(self):
        rows = comparison_rows({"ip24": (1696, 1650.0)})
        assert rows == [("ip24", "1696", "1650")]
