"""Tests for per-AS characterization."""

import numpy as np
import pytest

from repro.census.analysis import analyze_matrix
from repro.census.characterize import Characterization
from repro.census.combine import matrix_from_census
from repro.census.ranks import alexa_hosted_prefixes, caida_top_asns


@pytest.fixture(scope="module")
def char(tiny_census, tiny_internet, city_db):
    analysis = analyze_matrix(matrix_from_census(tiny_census), city_db=city_db)
    return Characterization(analysis, tiny_internet)


class TestFootprints:
    def test_footprints_cover_detected_prefixes(self, char):
        total = sum(fp.n_ip24 for fp in char.footprints.values())
        assert total == char.analysis.n_anycast

    def test_prefixes_owned_by_their_as(self, char, tiny_internet):
        for fp in char.footprints.values():
            for prefix in fp.prefixes:
                assert tiny_internet.registry.owner_of(prefix).asn == fp.asn

    def test_stats_consistency(self, char):
        for fp in char.footprints.values():
            assert fp.total_replicas == sum(fp.replicas_per_prefix)
            assert fp.max_replicas >= fp.mean_replicas >= 1
            assert len(fp.countries) <= len(fp.cities)

    def test_cloudflare_has_largest_ip24_footprint(self, char):
        biggest = max(char.footprints.values(), key=lambda fp: fp.n_ip24)
        assert biggest.autonomous_system.name == "CLOUDFLARENET,US"


class TestTopAses:
    def test_ordering(self, char):
        top = char.top_ases(k=50)
        means = [fp.mean_replicas for fp in top]
        assert means == sorted(means, reverse=True)

    def test_min_replica_cut(self, char):
        for fp in char.top_ases(k=100, min_replicas=5):
            assert fp.max_replicas >= 5

    def test_k_limit(self, char):
        assert len(char.top_ases(k=10)) == 10


class TestGlanceTable:
    def test_rows_present(self, char, tiny_internet):
        rows = char.glance_table(
            caida_asns=caida_top_asns(tiny_internet),
            alexa_prefixes=alexa_hosted_prefixes(tiny_internet),
        )
        labels = [r.label for r in rows]
        assert labels[0] == "All"
        assert len(rows) == 4

    def test_all_row_dominates(self, char, tiny_internet):
        rows = char.glance_table(
            caida_asns=caida_top_asns(tiny_internet),
            alexa_prefixes=alexa_hosted_prefixes(tiny_internet),
        )
        all_row = rows[0]
        for row in rows[1:]:
            assert row.ip24 <= all_row.ip24
            assert row.ases <= all_row.ases
            assert row.replicas <= all_row.replicas

    def test_caida_intersection_near_paper(self, char, tiny_internet):
        rows = char.glance_table(caida_asns=caida_top_asns(tiny_internet))
        caida = rows[-1]
        # Ground truth: 8 ASes / 19 IP24; detection may miss a couple.
        assert 6 <= caida.ases <= 8
        assert 15 <= caida.ip24 <= 19

    def test_without_optional_rows(self, char):
        rows = char.glance_table()
        assert len(rows) == 2


class TestBreakdowns:
    def test_category_fractions_sum_to_one(self, char):
        breakdown = char.category_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_dns_prominent(self, char):
        breakdown = char.category_breakdown()
        assert breakdown.get("DNS", 0.0) > 0.2  # paper: about one third

    def test_replicas_cdf_sorted(self, char):
        counts = char.replicas_per_ip24()
        assert (np.diff(counts) >= 0).all()
        assert len(counts) == char.analysis.n_anycast

    def test_ip24_per_as_matches_footprints(self, char):
        per_as = char.ip24_per_as()
        for asn, count in per_as.items():
            assert count == char.footprints[asn].n_ip24

    def test_ip24_per_as_with_cut(self, char):
        cut = char.ip24_per_as(min_replicas=5)
        assert len(cut) <= len(char.ip24_per_as())
