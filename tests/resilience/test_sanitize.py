"""Tests for the stage-boundary validators/sanitizers."""

import numpy as np
import pytest

from repro.census.combine import RttMatrix
from repro.geo.coords import GeoPoint
from repro.internet.hitlist import HitlistEntry
from repro.measurement.faults import _impossible_point
from repro.measurement.recordio import CensusRecords
from repro.net.addresses import host_in_slash24, slash24_of
from repro.resilience import (
    MAX_PLAUSIBLE_RTT_MS,
    MIN_PLAUSIBLE_RTT_MS,
    QuarantineLog,
    sanitize_city_rows,
    sanitize_hitlist,
    sanitize_matrix,
    sanitize_records,
)


def make_records(rtts, flags, vp=None, prefix=None, census_id=0):
    n = len(rtts)
    return CensusRecords(
        census_id=census_id,
        vp_index=np.array(vp if vp is not None else range(n), dtype=np.uint16),
        prefix=np.array(prefix if prefix is not None else [7] * n, dtype=np.uint32),
        timestamp_ms=np.zeros(n, dtype=np.float64),
        rtt_ms=np.array(rtts, dtype=np.float32),
        flag=np.array(flags, dtype=np.int8),
    )


def make_matrix(rtt, locations=None, names=None, counts=None):
    rtt = np.array(rtt, dtype=np.float32)
    n_targets, n_vps = rtt.shape
    if counts is None:
        counts = (~np.isnan(rtt)).astype(np.uint8)
    return RttMatrix(
        prefixes=np.arange(100, 100 + n_targets, dtype=np.int64),
        vp_names=list(names or [f"vp{j}" for j in range(n_vps)]),
        vp_locations=list(
            locations or [GeoPoint(10.0 * j, 20.0) for j in range(n_vps)]
        ),
        rtt_ms=rtt,
        sample_count=np.asarray(counts, dtype=np.uint8),
    )


class TestSanitizeRecords:
    def test_clean_batch_returns_same_object(self):
        records = make_records([10.0, 20.0], [0, 0])
        log = QuarantineLog()
        assert sanitize_records(records, log) is records
        assert log.total == 0

    def test_empty_batch_is_clean(self):
        records = CensusRecords.empty(3)
        log = QuarantineLog()
        assert sanitize_records(records, log) is records

    def test_nan_rtt_on_reply_rows_is_quarantined(self):
        records = make_records([np.nan, 20.0], [0, 0])
        log = QuarantineLog()
        out = sanitize_records(records, log)
        assert len(out) == 1
        assert out.rtt_ms[0] == pytest.approx(20.0)
        assert log.by_reason() == {"nan_rtt": 1}

    def test_nan_rtt_on_error_rows_is_legitimate(self):
        # Error records carry NaN RTT by design — not a data fault.
        records = make_records([np.nan, np.nan], [1, -9])
        log = QuarantineLog()
        assert sanitize_records(records, log) is records

    def test_negative_and_superluminal_and_implausible(self):
        records = make_records(
            [-1.0, MIN_PLAUSIBLE_RTT_MS / 2, MAX_PLAUSIBLE_RTT_MS * 2, 30.0],
            [0, 0, 0, 0],
        )
        log = QuarantineLog()
        out = sanitize_records(records, log)
        assert len(out) == 1
        assert log.by_reason() == {
            "negative_rtt": 1,
            "superluminal_rtt": 1,
            "implausible_rtt": 1,
        }

    def test_unknown_flags_are_quarantined(self):
        records = make_records([10.0, 20.0], [0, 42])
        log = QuarantineLog()
        out = sanitize_records(records, log)
        assert len(out) == 1
        assert log.by_reason() == {"unknown_flag": 1}

    def test_duplicate_vp_target_pairs_keep_first(self):
        records = make_records(
            [10.0, 11.0, 12.0], [0, 0, 0], vp=[3, 3, 4], prefix=[7, 7, 7]
        )
        log = QuarantineLog()
        out = sanitize_records(records, log)
        assert len(out) == 2
        kept = out.rtt_ms[out.vp_index == 3]
        assert kept[0] == pytest.approx(10.0)
        assert log.by_reason() == {"duplicate_record": 1}


class TestSanitizeMatrix:
    def test_clean_matrix_returns_same_object_and_zero_losses(self):
        matrix = make_matrix([[10.0, 20.0], [np.nan, 30.0]])
        log = QuarantineLog()
        out, removed = sanitize_matrix(matrix, log)
        assert out is matrix
        assert removed.tolist() == [0, 0]
        assert log.total == 0

    def test_impossible_vp_coordinates_drop_the_column(self):
        matrix = make_matrix(
            [[10.0, 20.0], [15.0, 30.0]],
            locations=[_impossible_point(400.0, 500.0), GeoPoint(10.0, 20.0)],
        )
        log = QuarantineLog()
        out, removed = sanitize_matrix(matrix, log)
        assert out.n_vps == 1
        assert out.vp_names == ["vp1"]
        # Both targets lose the sample the bad column contributed.
        assert removed.tolist() == [1, 1]
        assert log.by_reason() == {"impossible_vp_coords": 1}

    def test_duplicate_vp_columns_merge_minimum(self):
        matrix = make_matrix(
            [[10.0, 5.0], [np.nan, 30.0]], names=["vp0", "vp0"]
        )
        log = QuarantineLog()
        out, removed = sanitize_matrix(matrix, log)
        assert out.n_vps == 1
        assert out.rtt_ms[0, 0] == pytest.approx(5.0)
        assert out.rtt_ms[1, 0] == pytest.approx(30.0)
        assert int(out.sample_count[0, 0]) == 2
        assert log.by_reason() == {"duplicate_vp": 1}

    def test_bad_cells_are_nulled_and_counted(self):
        matrix = make_matrix([[-2.0, 20.0], [MAX_PLAUSIBLE_RTT_MS * 10, 30.0]])
        log = QuarantineLog()
        out, removed = sanitize_matrix(matrix, log)
        assert np.isnan(out.rtt_ms[0, 0])
        assert np.isnan(out.rtt_ms[1, 0])
        assert int(out.sample_count[0, 0]) == 0
        assert removed.tolist() == [1, 1]
        assert log.by_reason() == {"negative_rtt": 1, "implausible_rtt": 1}

    def test_torn_cells_sample_count_without_rtt(self):
        # A NaN cell that *claims* samples is torn data, not silence.
        counts = [[1, 1], [0, 1]]
        matrix = make_matrix([[np.nan, 20.0], [np.nan, 30.0]], counts=counts)
        log = QuarantineLog()
        out, removed = sanitize_matrix(matrix, log)
        assert log.by_reason() == {"lost_sample": 1}
        assert removed.tolist() == [1, 0]
        assert int(out.sample_count[0, 0]) == 0

    def test_input_matrix_is_never_mutated(self):
        rtt = [[-2.0, 20.0], [15.0, 30.0]]
        matrix = make_matrix(rtt)
        before = matrix.rtt_ms.copy()
        sanitize_matrix(matrix, QuarantineLog())
        np.testing.assert_array_equal(matrix.rtt_ms, before)


class TestSanitizeHitlist:
    def test_clean_entries_pass_through(self):
        entries = [
            HitlistEntry(prefix=5, address=host_in_slash24(5, 9), score=10),
            HitlistEntry(prefix=6, address=host_in_slash24(6, 1), score=-2),
        ]
        log = QuarantineLog()
        out = sanitize_hitlist(entries, log)
        assert out == entries
        assert log.total == 0

    def test_invalid_prefix_is_dropped(self):
        entries = [HitlistEntry(prefix=-1, address=0, score=1)]
        log = QuarantineLog()
        assert sanitize_hitlist(entries, log) == []
        assert log.by_reason() == {"invalid_prefix": 1}

    def test_duplicate_prefix_keeps_first(self):
        entries = [
            HitlistEntry(prefix=5, address=host_in_slash24(5, 1), score=1),
            HitlistEntry(prefix=5, address=host_in_slash24(5, 2), score=2),
        ]
        log = QuarantineLog()
        out = sanitize_hitlist(entries, log)
        assert len(out) == 1
        assert out[0].score == 1
        assert log.by_reason() == {"duplicate_prefix": 1}

    def test_drifted_address_is_repaired_not_dropped(self):
        drifted = host_in_slash24(99, 7)  # address inside /24 #99 ...
        entries = [HitlistEntry(prefix=5, address=drifted, score=3)]  # ... on row 5
        log = QuarantineLog()
        out = sanitize_hitlist(entries, log)
        assert len(out) == 1
        assert slash24_of(out[0].address) == 5
        assert out[0].score == 3
        assert log.by_reason() == {"address_repaired": 1}
        assert log.dropped == 0


class TestSanitizeCityRows:
    def test_good_rows_become_cities(self):
        rows = [("Pisa", "IT", 43.7, 10.4, 90.0)]
        log = QuarantineLog()
        (city,) = sanitize_city_rows(rows, log)
        assert city.name == "Pisa"
        assert city.location.lat == pytest.approx(43.7)
        assert log.total == 0

    def test_each_defect_gets_its_reason(self):
        rows = [
            ("Pisa", "IT", 43.7, 10.4, 90.0),
            ("Short",),  # malformed tuple
            ("NorthPoleClone", "XX", 91.5, 0.0, 5.0),  # impossible coords
            ("Ghosttown", "XX", 0.0, 0.0, -3.0),  # invalid population
            ("Pisa", "IT", 43.7, 10.4, 90.0),  # duplicate key
        ]
        log = QuarantineLog()
        out = sanitize_city_rows(rows, log)
        assert len(out) == 1
        assert log.by_reason() == {
            "malformed_city_row": 1,
            "impossible_city_coords": 1,
            "invalid_city_population": 1,
            "duplicate_city": 1,
        }
