"""Tests for the reason-coded quarantine log."""

from repro.obs import MetricsRegistry, activate
from repro.resilience import QuarantineLog
from repro.resilience.quarantine import MAX_EXAMPLES


class TestQuarantineLog:
    def test_starts_empty(self):
        log = QuarantineLog()
        assert log.total == 0
        assert len(log) == 0
        assert not log
        assert log.summary_lines() == ["quarantine: empty"]

    def test_add_accumulates_by_stage_and_reason(self):
        log = QuarantineLog()
        log.add("combine", "nan_rtt", 3)
        log.add("combine", "nan_rtt", 2)
        log.add("analysis", "nan_rtt", 1)
        log.add("combine", "duplicate_record", 4)
        assert log.total == 10
        assert log.by_reason() == {"nan_rtt": 6, "duplicate_record": 4}
        assert log.by_stage() == {"combine": 9, "analysis": 1}
        assert len(log) == 3  # three (stage, reason) buckets

    def test_zero_or_negative_counts_are_ignored(self):
        log = QuarantineLog()
        log.add("combine", "nan_rtt", 0)
        log.add("combine", "nan_rtt", -2)
        assert log.total == 0
        assert not log

    def test_examples_are_bounded(self):
        log = QuarantineLog()
        for i in range(MAX_EXAMPLES + 10):
            log.add("hitlist", "invalid_prefix", 1, example=i)
        (bucket,) = (log._buckets[k] for k in log._buckets)
        assert len(bucket.examples) == MAX_EXAMPLES
        assert bucket.count == MAX_EXAMPLES + 10

    def test_repaired_vs_dropped_accounting(self):
        log = QuarantineLog()
        log.add("hitlist", "address_repaired", 3, repaired=True)
        log.add("hitlist", "invalid_prefix", 2)
        assert log.total == 5
        assert log.dropped == 2

    def test_to_dicts_is_sorted_and_jsonable(self):
        import json

        log = QuarantineLog()
        log.add("combine", "nan_rtt", 1, example=float("nan"))
        log.add("analysis", "lost_sample", 2)
        rows = log.to_dicts()
        assert [r["stage"] for r in rows] == ["analysis", "combine"]
        for row in rows:
            assert set(row) == {"stage", "reason", "count", "repaired", "examples"}
        json.dumps(rows)  # examples are repr'd, so this never raises

    def test_summary_lines_mention_every_bucket(self):
        log = QuarantineLog()
        log.add("combine", "nan_rtt", 7)
        log.add("hitlist", "address_repaired", 1, repaired=True)
        text = "\n".join(log.summary_lines())
        assert "nan_rtt" in text and "dropped" in text
        assert "address_repaired" in text and "repaired" in text

    def test_mirrors_into_active_metrics_registry(self):
        registry = MetricsRegistry()
        log = QuarantineLog()
        with activate(None, registry):
            log.add("combine", "nan_rtt", 5)
            log.add("combine", "superluminal_rtt", 2)
        snap = registry.snapshot()
        assert snap["counters"]["records_quarantined"] == 7
        assert snap["counters"]["quarantine_nan_rtt"] == 5
        assert snap["counters"]["quarantine_superluminal_rtt"] == 2

    def test_no_metrics_side_effects_without_registry(self):
        log = QuarantineLog()
        log.add("combine", "nan_rtt", 5)  # must not raise with null registry
        assert log.total == 5
