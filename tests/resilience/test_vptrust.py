"""Cross-VP trust scoring: detection, neutrality, and the excision cap.

The detector's contract has three legs, each pinned here:

* **identification** — on a diverse roster every keyed-distorted VP is
  convicted (exercised across kinds and fractions, including a
  hypothesis sweep up to the supported 30% minority), and the only
  honest convictions ever made are *sole-witness collateral*: excising
  a distorted VP can vacate a region, and the remaining honest
  regional witness is observationally identical to a mis-geolocated
  fabricator — the engine stays soundness-first and may excise it too,
  always and only via the solo-violation check;
* **neutrality** — a clean roster convicts nobody and
  :func:`apply_trust` returns the very same matrix object;
* **abort over adjudication** — a roster with no coherent consensus
  (small, clustered, dense anycast) drops its solo flags rather than
  excising honest regional witnesses.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census.analysis import analyze_matrix
from repro.census.combine import combine_censuses
from repro.geo.cities import default_city_db
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.faults import VpDistortionPlan
from repro.measurement.platform import planetlab_platform
from repro.resilience.vptrust import (
    TRUST_REASON_RTT_INFLATION,
    TRUST_REASON_SOL_VIOLATION,
    TRUST_REASON_STUCK_RTT,
    TrustPolicy,
    VpTrustReport,
    VpTrustVerdict,
    apply_trust,
    score_vps,
)


@pytest.fixture(scope="module")
def world():
    """A diverse 30-VP roster over a large sparse-anycast universe."""
    db = default_city_db()
    internet = SyntheticInternet(
        InternetConfig(seed=7, n_unicast_slash24=3000, tail_deployments=5)
    )
    platform = planetlab_platform(count=30, seed=11, city_db=db)
    return db, internet, platform


def census_for(world, plan):
    _, internet, platform = world
    campaign = CensusCampaign(
        internet, platform, seed=99, noise="keyed", distortion=plan
    )
    return campaign.run_census(availability=1.0)


def matrix_for(world, plan):
    """The combined matrix plus the injected ``{vp name: kind}`` map."""
    census = census_for(world, plan)
    return combine_censuses([census]), dict(census.health.distorted_vps)


@pytest.fixture(scope="module")
def clean_matrix(world):
    matrix, injected = matrix_for(world, None)
    assert not injected
    return matrix


@pytest.fixture(scope="module")
def clean_anycast(world, clean_matrix):
    db = world[0]
    return set(analyze_matrix(clean_matrix, city_db=db).anycast_prefixes)


def assert_only_sole_witness_collateral(report, injected):
    """Every conviction is either injected or sole-witness collateral.

    An honest VP may only ever fall to the solo-violation check — the
    documented non-adjudicable sole-witness case — never to a physics
    check, it must have been a genuine statistical outlier, and only
    the roster's few regional outposts are ever exposed to it.
    """
    extras = [v for v in report.untrusted if v.name not in injected]
    assert len(extras) <= 3
    for verdict in extras:
        assert verdict.reasons == [TRUST_REASON_SOL_VIOLATION]
        assert verdict.solo_rate > TrustPolicy().solo_margin


class TestCleanNeutrality:
    def test_clean_roster_convicts_nobody(self, clean_matrix):
        report = score_vps(clean_matrix)
        assert report.untrusted_names == []
        assert not report.sol_check_aborted
        assert all(v.trusted and not v.reasons for v in report.verdicts)

    def test_apply_trust_is_identity_when_clean(self, clean_matrix):
        report = score_vps(clean_matrix)
        filtered, excised = apply_trust(clean_matrix, report)
        assert filtered is clean_matrix
        assert excised.shape == (clean_matrix.n_targets,)
        assert not excised.any()

    def test_scoring_is_deterministic(self, clean_matrix):
        assert score_vps(clean_matrix).to_doc() == score_vps(clean_matrix).to_doc()


class TestDistortedDetection:
    @pytest.mark.parametrize(
        "plan",
        [
            VpDistortionPlan(fraction=0.2, seed=4242),
            VpDistortionPlan(fraction=0.1, seed=777),
            VpDistortionPlan(fraction=0.2, seed=31337, kinds=("geo_error",)),
        ],
        ids=["mixed20", "mixed10", "geo-only"],
    )
    def test_untrusted_is_exactly_the_injected_set(self, world, plan):
        matrix, injected = matrix_for(world, plan)
        assert injected  # the plan must actually hit someone
        report = score_vps(matrix)
        assert set(report.untrusted_names) == set(injected)

    def test_reasons_name_the_failure_mode(self, world):
        plan = VpDistortionPlan.single("stuck_rtt", fraction=0.1, seed=777)
        matrix, injected = matrix_for(world, plan)
        report = score_vps(matrix)
        assert set(report.untrusted_names) == set(injected)
        for verdict in report.untrusted:
            assert TRUST_REASON_STUCK_RTT in verdict.reasons

    def test_filtered_analysis_is_sound_against_clean(
        self, world, clean_anycast
    ):
        """Filtering restores soundness; the unfiltered matrix cannot
        even be analyzed (negative clock-skew RTTs -> negative radii)."""
        db = world[0]
        matrix, injected = matrix_for(
            world, VpDistortionPlan(fraction=0.2, seed=4242)
        )
        with pytest.raises(ValueError):
            analyze_matrix(matrix, city_db=db)
        filtered, excised = apply_trust(matrix, score_vps(matrix))
        verdicts = set(analyze_matrix(filtered, city_db=db).anycast_prefixes)
        assert verdicts <= clean_anycast
        assert len(clean_anycast - verdicts) <= 15  # recall loss stays tiny
        assert excised.any()

    def test_unfiltered_geo_distortion_fabricates_anycast(
        self, world, clean_anycast
    ):
        """Without trust filtering a mis-geolocated minority flips
        unicast prefixes to anycast; with it the verdicts match clean."""
        db, internet, _ = world
        truth = {int(p) for d in internet.deployments for p in d.prefixes}
        plan = VpDistortionPlan(fraction=0.2, seed=31337, kinds=("geo_error",))
        matrix, _ = matrix_for(world, plan)
        unfiltered = set(analyze_matrix(matrix, city_db=db).anycast_prefixes)
        assert unfiltered - truth  # fabricated verdicts
        filtered, _ = apply_trust(matrix, score_vps(matrix))
        assert (
            set(analyze_matrix(filtered, city_db=db).anycast_prefixes)
            == clean_anycast
        )

    @given(
        fraction=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=8, deadline=None)
    def test_minority_distortion_never_corrupts_verdicts(
        self, world, clean_anycast, fraction, seed
    ):
        """Property: for any minority (<= 30% of the roster) distorted
        by the non-geometric kinds, the filtered verdicts never contain
        a target the clean roster would not have called anycast.
        (``geo_error`` is excluded here: a displacement can land below
        the honest sole-witness background — the documented
        observability limit — and is pinned by the fixed-seed cases
        above instead.)  Identification is asserted to the engine's
        real contract: a stuck reporter is hard physical evidence and
        always convicted, while a skew/bloat inflation can sit below
        the absolute residual margin — such misses only *inflate* RTTs
        (bigger disks, fewer violations), so they hide detections but
        can never fabricate them, and soundness survives them."""
        db = world[0]
        plan = VpDistortionPlan(
            fraction=fraction,
            seed=seed,
            kinds=("clock_skew", "bufferbloat", "stuck_rtt"),
        )
        matrix, injected = matrix_for(world, plan)
        report = score_vps(matrix)
        assert_only_sole_witness_collateral(report, injected)
        missed = set(injected) - set(report.untrusted_names)
        assert all(injected[name] != "stuck_rtt" for name in missed)
        filtered, _ = apply_trust(matrix, report)
        verdicts = set(analyze_matrix(filtered, city_db=db).anycast_prefixes)
        assert verdicts <= clean_anycast
        # Recall loss is bounded by the witness loss: excising a VP can
        # only drop detections it alone witnessed, so the budget scales
        # with the excised fraction of the roster (~5% at the maximal
        # 30% excision) plus a small constant floor.
        excised_fraction = len(report.untrusted) / matrix.n_vps
        budget = 15 + 0.2 * excised_fraction * len(clean_anycast)
        assert len(clean_anycast - verdicts) <= budget

    @given(
        fraction=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=8, deadline=None)
    def test_honest_convictions_are_only_sole_witness_collateral(
        self, world, fraction, seed
    ):
        """Property: whatever the distorted minority looks like (all
        four kinds eligible), the physics checks — negative RTT, stuck
        column, RTT inflation — never convict an honest vantage point.
        The one honest conviction the engine is *allowed* is the
        documented sole-witness collateral: a geo liar's excision can
        vacate a region, and the honest witness left soloing over the
        vacated far catchments is observationally identical to a
        fabricator (pinned deterministically in
        ``test_sole_witness_collateral_is_solo_only``)."""
        matrix, injected = matrix_for(
            world, VpDistortionPlan(fraction=fraction, seed=seed)
        )
        assert_only_sole_witness_collateral(score_vps(matrix), injected)

    def test_sole_witness_collateral_is_solo_only(self, world):
        """The region-vacating case, pinned: four geo liars include the
        roster's only Taiwanese node, whose excision leaves the one
        Korean VP as sole witness of every Asian far catchment — an
        honest VP indistinguishable from a fabricator, excised
        soundness-first through the solo check and nothing else."""
        matrix, injected = matrix_for(
            world, VpDistortionPlan(fraction=0.25, seed=2215641)
        )
        assert "planetlab-0008-tw" in injected
        report = score_vps(matrix)
        assert set(report.untrusted_names) - set(injected) == {
            "planetlab-0005-kr"
        }
        (kr,) = [v for v in report.untrusted if v.name == "planetlab-0005-kr"]
        assert kr.reasons == [TRUST_REASON_SOL_VIOLATION]
        assert set(injected) <= set(report.untrusted_names)

    def test_co_distorted_cohort_cannot_mask_itself(self, world):
        """Five bufferbloated VPs with near-identical ~270 ms inflation
        must not widen the roster MAD enough to hide one another: the
        residual z-score scale comes from the sub-margin core of the
        cohort, so all five convict (a regression against the masking
        this seed exposed)."""
        plan = VpDistortionPlan(
            fraction=0.3,
            seed=7,
            kinds=("clock_skew", "bufferbloat", "stuck_rtt"),
        )
        matrix, injected = matrix_for(world, plan)
        bloated = {n for n, k in injected.items() if k == "bufferbloat"}
        assert len(bloated) == 5
        report = score_vps(matrix)
        assert set(report.untrusted_names) == set(injected)
        for verdict in report.untrusted:
            if verdict.name in bloated:
                assert TRUST_REASON_RTT_INFLATION in verdict.reasons


class TestExcisionCap:
    def test_incoherent_roster_aborts_instead_of_excising(self):
        """A small clustered roster over dense anycast has an honest
        solo-rate continuum the detector cannot adjudicate: it must
        drop its flags (and say so), not excise regional witnesses."""
        db = default_city_db()
        internet = SyntheticInternet(
            InternetConfig(seed=2015, n_unicast_slash24=150, tail_deployments=4)
        )
        platform = planetlab_platform(count=12, seed=41, city_db=db)
        campaign = CensusCampaign(internet, platform, seed=500, noise="keyed")
        matrix = combine_censuses([campaign.run_census(availability=1.0)])
        report = score_vps(matrix)
        assert report.sol_check_aborted
        assert report.untrusted_names == []
        doc = report.to_doc()
        assert doc["sol_check_aborted"] is True
        assert any("sol check aborted" in line for line in report.summary_lines())


class TestEdgesAndPolicy:
    def test_tiny_roster_is_never_judged(self, clean_matrix):
        from dataclasses import replace

        small = replace(
            clean_matrix,
            vp_names=clean_matrix.vp_names[:3],
            vp_locations=clean_matrix.vp_locations[:3],
            rtt_ms=np.ascontiguousarray(clean_matrix.rtt_ms[:, :3]),
            sample_count=np.ascontiguousarray(clean_matrix.sample_count[:, :3]),
        )
        report = score_vps(small)
        assert all(v.trusted for v in report.verdicts)

    def test_apply_trust_refuses_to_excise_everyone(self, clean_matrix):
        report = VpTrustReport(
            verdicts=[
                VpTrustVerdict(name=name, trusted=False, reasons=["stuck-rtt"])
                for name in clean_matrix.vp_names
            ]
        )
        with pytest.raises(ValueError):
            apply_trust(clean_matrix, report)

    def test_excised_counts_match_removed_samples(self, clean_matrix):
        victim = clean_matrix.vp_names[0]
        report = VpTrustReport(
            verdicts=[
                VpTrustVerdict(
                    name=name,
                    trusted=name != victim,
                    reasons=[] if name != victim else ["stuck-rtt"],
                )
                for name in clean_matrix.vp_names
            ]
        )
        filtered, excised = apply_trust(clean_matrix, report)
        assert victim not in filtered.vp_names
        assert filtered.n_vps == clean_matrix.n_vps - 1
        expected = (~np.isnan(clean_matrix.rtt_ms[:, 0])).astype(np.int64)
        assert np.array_equal(excised, expected)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"solo_margin": 0.0},
            {"solo_z": 0.0},
            {"solo_mad_floor": 0.0},
            {"max_excised_fraction": 0.0},
            {"residual_z": -1.0},
            {"residual_margin_ms": -1.0},
            {"min_spread_ms": -0.1},
            {"min_samples": 1},
            {"min_roster": 2},
            {"speed_km_per_ms": 0.0},
        ],
    )
    def test_policy_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrustPolicy(**kwargs)

    def test_report_doc_shape(self, clean_matrix):
        doc = score_vps(clean_matrix).to_doc()
        assert doc["kind"] == "vp-trust"
        assert doc["n_vps"] == clean_matrix.n_vps
        assert doc["n_untrusted"] == 0
        assert doc["untrusted_fraction"] == 0.0
        assert len(doc["verdicts"]) == clean_matrix.n_vps
        assert {"name", "trusted", "reasons", "solo_rate"} <= set(
            doc["verdicts"][0]
        )
