"""Tests for the stage supervisor, policies, and degradation report."""

import pytest

from repro.obs import MetricsRegistry, activate
from repro.resilience import (
    CorruptInputError,
    FatalStageError,
    QuarantineLog,
    ResiliencePolicy,
    StageFailed,
    StagePolicy,
    StageSupervisor,
    TransientStageError,
)


def make_supervisor(policy=None, quarantine=None):
    sleeps = []
    sup = StageSupervisor(
        policy=policy, quarantine=quarantine, sleep=sleeps.append
    )
    return sup, sleeps


class TestStagePolicy:
    def test_backoff_is_exponential(self):
        policy = StagePolicy(backoff_base_s=0.1, backoff_factor=3.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.3)
        assert policy.backoff_s(3) == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            StagePolicy(max_attempts=0)
        with pytest.raises(ValueError):
            StagePolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            StagePolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            StagePolicy(on_corrupt="shrug")

    def test_policy_overrides_per_stage(self):
        special = StagePolicy(max_attempts=7)
        policy = ResiliencePolicy(overrides={"measurement": special})
        assert policy.for_stage("measurement") is special
        assert policy.for_stage("analysis") == StagePolicy()

    def test_strict_never_degrades(self):
        strict = ResiliencePolicy.strict().for_stage("anything")
        assert strict.max_attempts == 1
        assert strict.on_corrupt == "fail"
        assert strict.fail_on_quarantine


class TestSupervisorRun:
    def test_success_passes_value_through(self):
        sup, sleeps = make_supervisor()
        assert sup.run("combine", lambda: 42) == 42
        assert sup.outcomes["combine"].status == "ok"
        assert sup.outcomes["combine"].attempts == 1
        assert sleeps == []

    def test_transient_failures_retry_with_backoff(self):
        sup, sleeps = make_supervisor()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientStageError("hiccup")
            return "ok"

        assert sup.run("measurement", flaky) == "ok"
        assert len(calls) == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential
        assert sup.outcomes["measurement"].attempts == 3
        assert sup.outcomes["measurement"].status == "ok"

    def test_transient_exhaustion_becomes_stage_failed(self):
        sup, _ = make_supervisor(
            ResiliencePolicy(default=StagePolicy(max_attempts=2))
        )

        def always():
            raise TransientStageError("still down")

        with pytest.raises(StageFailed) as info:
            sup.run("measurement", always)
        assert info.value.stage == "measurement"
        assert isinstance(info.value.__cause__, TransientStageError)
        assert sup.outcomes["measurement"].attempts == 2
        assert sup.outcomes["measurement"].status == "failed"

    def test_corrupt_input_runs_fallback_and_degrades(self):
        sup, sleeps = make_supervisor()

        def broken():
            raise CorruptInputError("bad rows")

        assert sup.run("combine", broken, fallback=lambda: "partial") == "partial"
        assert sup.outcomes["combine"].status == "degraded"
        assert sleeps == []  # corruption is never retried

    def test_corrupt_without_fallback_fails(self):
        sup, _ = make_supervisor()
        with pytest.raises(StageFailed):
            sup.run("combine", lambda: (_ for _ in ()).throw(CorruptInputError()))

    def test_corrupt_with_fail_policy_ignores_fallback(self):
        sup, _ = make_supervisor(ResiliencePolicy.strict())
        with pytest.raises(StageFailed):
            sup.run(
                "combine",
                lambda: (_ for _ in ()).throw(CorruptInputError("x")),
                fallback=lambda: "nope",
            )

    def test_fatal_fails_fast_without_retry(self):
        sup, sleeps = make_supervisor()
        calls = []

        def fatal():
            calls.append(1)
            raise FatalStageError("no quorum")

        with pytest.raises(StageFailed):
            sup.run("measurement", fatal, fallback=lambda: "nope")
        assert len(calls) == 1
        assert sleeps == []

    def test_quarantine_growth_marks_stage_degraded(self):
        log = QuarantineLog()
        sup, _ = make_supervisor(quarantine=log)

        def stage():
            log.add("combine", "nan_rtt", 4)
            return "value"

        assert sup.run("combine", stage) == "value"
        assert sup.outcomes["combine"].status == "degraded"
        assert sup.outcomes["combine"].quarantined == 4

    def test_fail_on_quarantine_refuses_partial_input(self):
        log = QuarantineLog()
        sup, _ = make_supervisor(ResiliencePolicy.strict(), quarantine=log)

        def stage():
            log.add("combine", "nan_rtt", 1)
            return "value"

        with pytest.raises(StageFailed) as info:
            sup.run("combine", stage)
        assert "quarantined" in str(info.value)
        assert sup.outcomes["combine"].status == "failed"

    def test_metrics_counters_are_emitted(self):
        registry = MetricsRegistry()
        sup, _ = make_supervisor()
        with activate(None, registry):
            sup.run("a", lambda: 1)
            with pytest.raises(StageFailed):
                sup.run("b", lambda: (_ for _ in ()).throw(FatalStageError()))
        counters = registry.snapshot()["counters"]
        assert counters["stage_ok"] == 1
        assert counters["stage_failed"] == 1


class TestDegradationReport:
    def test_clean_report(self):
        sup, _ = make_supervisor()
        sup.run("a", lambda: 1)
        report = sup.report()
        assert not report.degraded
        assert report.quarantined_total == 0
        assert report.stages["a"].status == "ok"

    def test_degraded_when_any_stage_degraded(self):
        sup, _ = make_supervisor()
        sup.run("a", lambda: (_ for _ in ()).throw(CorruptInputError()),
                fallback=lambda: 0)
        assert sup.report().degraded

    def test_degraded_when_confidence_has_insufficient_targets(self):
        sup, _ = make_supervisor()
        sup.run("a", lambda: 1)
        report = sup.report(confidence={"full": 5, "insufficient": 2})
        assert report.degraded
        assert report.confidence["insufficient"] == 2

    def test_to_dict_shape(self):
        import json

        sup, _ = make_supervisor()
        sup.run("a", lambda: 1)
        doc = sup.report(confidence={"full": 3}).to_dict()
        assert set(doc) == {"degraded", "quarantined_total", "stages", "confidence"}
        assert doc["stages"]["a"]["status"] == "ok"
        json.dumps(doc)

    def test_summary_lines_render(self):
        sup, _ = make_supervisor()
        sup.run("a", lambda: 1)
        text = "\n".join(sup.report().summary_lines())
        assert "degradation: clean" in text
        assert "a" in text
