"""Tests for the resilience error taxonomy and exception classifier."""

import pytest

from repro.measurement.campaign import CensusAborted
from repro.resilience import (
    CorruptInputError,
    FatalStageError,
    ResilienceError,
    Severity,
    StageFailed,
    TransientStageError,
    classify_exception,
)


class TestHierarchy:
    def test_typed_errors_carry_their_severity(self):
        assert TransientStageError("x").severity is Severity.TRANSIENT
        assert CorruptInputError("x").severity is Severity.CORRUPT
        assert FatalStageError("x").severity is Severity.FATAL

    def test_all_are_resilience_errors_and_runtime_errors(self):
        for cls in (TransientStageError, CorruptInputError, FatalStageError):
            assert issubclass(cls, ResilienceError)
            assert issubclass(cls, RuntimeError)

    def test_stage_failed_names_stage_and_severity(self):
        err = StageFailed("combine", Severity.CORRUPT, "bad rows")
        assert err.stage == "combine"
        assert err.failure_severity is Severity.CORRUPT
        assert "combine" in str(err)
        assert "corrupt" in str(err)
        assert "bad rows" in str(err)


class TestClassify:
    def test_typed_errors_classify_as_themselves(self):
        assert classify_exception(TransientStageError()) is Severity.TRANSIENT
        assert classify_exception(CorruptInputError()) is Severity.CORRUPT
        assert classify_exception(FatalStageError()) is Severity.FATAL

    def test_os_level_errors_are_transient(self):
        assert classify_exception(OSError("locked")) is Severity.TRANSIENT
        assert classify_exception(TimeoutError()) is Severity.TRANSIENT
        assert classify_exception(InterruptedError()) is Severity.TRANSIENT

    @pytest.mark.parametrize(
        "exc",
        [ValueError("v"), KeyError("k"), IndexError("i"),
         ZeroDivisionError(), TypeError("t")],
    )
    def test_data_shaped_errors_are_corrupt(self, exc):
        assert classify_exception(exc) is Severity.CORRUPT

    def test_census_aborted_is_fatal(self):
        class _Report:
            pass

        exc = CensusAborted(0, 0, 5, _Report())
        assert classify_exception(exc) is Severity.FATAL

    def test_unknown_exceptions_default_to_fatal(self):
        class Weird(Exception):
            pass

        assert classify_exception(Weird()) is Severity.FATAL
