"""Shared fixtures for the longitudinal-service suite.

The expensive object is the *reference archive*: one uninterrupted
5-day timeline of the laptop-scale service.  It is the byte-level
ground truth every chaos and corruption test compares against, so it is
built once per session and treated as read-only; tests that need to
corrupt an archive take a private copy (``scratch_archive``).
"""

from __future__ import annotations

import pathlib
import shutil
from typing import Dict

import pytest

from repro.workflow import small_service

#: Length of the reference timeline (days 0..4).
DAYS = 5


def archive_tree(root) -> Dict[str, bytes]:
    """Every file under ``root`` as relative-path -> bytes."""
    root = pathlib.Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def live_tree(root) -> Dict[str, bytes]:
    """The archive tree minus ``quarantine/``.

    Corruption recovery intentionally *keeps* the rotten bytes around
    for the operator, so repaired archives are compared on their live
    portion only; crash recovery quarantines nothing and compares whole.
    """
    return {
        path: data
        for path, data in archive_tree(root).items()
        if not path.startswith("quarantine/")
    }


@pytest.fixture(scope="session")
def reference_archive(tmp_path_factory) -> pathlib.Path:
    """An uninterrupted 5-day timeline (read-only!)."""
    root = tmp_path_factory.mktemp("reference") / "archive"
    service = small_service(root)
    for epoch in range(DAYS):
        service.run_epoch(epoch)
    return root


@pytest.fixture(scope="session")
def reference_tree(reference_archive) -> Dict[str, bytes]:
    return archive_tree(reference_archive)


@pytest.fixture()
def scratch_archive(reference_archive, tmp_path) -> pathlib.Path:
    """A private full copy of the reference archive, safe to corrupt."""
    root = tmp_path / "archive"
    shutil.copytree(reference_archive, root)
    return root
