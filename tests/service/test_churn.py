"""Unit tests for archive-level churn analytics."""

from __future__ import annotations

from repro.service.churn import churn_between


def target(anycast, replicas=0):
    entry = {"anycast": anycast}
    if replicas:
        entry["replicas"] = [{"city": f"c{i}"} for i in range(replicas)]
    return entry


def as_entry(name, mean_replicas, n_ip24):
    return {"name": name, "mean_replicas": mean_replicas, "n_ip24": n_ip24}


BEFORE = {
    "epoch": 1,
    "targets": {
        "10": target(True, 3),    # loses a replica
        "20": target(True, 2),    # flips to unicast
        "30": target(False),      # flips to anycast
        "40": target(True, 4),    # disappears
        "50": target(False),      # stays unicast
    },
    "ases": {
        "1": as_entry("GROWN,US", 2.0, 3),
        "2": as_entry("SHRUNK,US", 5.0, 3),
        "3": as_entry("STABLE,US", 3.0, 3),
        "4": as_entry("FOOTPRINT,US", 3.0, 3),
        "5": as_entry("GONE,US", 2.0, 1),
    },
}

AFTER = {
    "epoch": 2,
    "targets": {
        "10": target(True, 2),
        "20": target(False),
        "30": target(True, 5),
        "50": target(False),
        "60": target(True, 2),    # appears with two replicas
    },
    "ases": {
        "1": as_entry("GROWN,US", 4.0, 3),
        "2": as_entry("SHRUNK,US", 3.5, 3),
        "3": as_entry("STABLE,US", 3.2, 3),
        "4": as_entry("FOOTPRINT,US", 3.0, 5),
        "6": as_entry("NEW,US", 1.0, 1),
    },
}


class TestChurnBetween:
    def setup_method(self):
        self.summary = churn_between(BEFORE, AFTER)

    def test_epochs_and_totals(self):
        assert (self.summary.epoch_before, self.summary.epoch_after) == (1, 2)
        assert self.summary.n_targets_before == 5
        assert self.summary.n_targets_after == 5

    def test_appearance(self):
        assert self.summary.targets_appeared == 1
        assert self.summary.targets_disappeared == 1

    def test_flips(self):
        assert self.summary.flips_to_anycast == 1
        assert self.summary.flips_to_unicast == 1

    def test_replica_motion(self):
        # births: +5 (target 30) +2 (appeared 60) = 7
        # deaths: -1 (target 10) -2 (flip 20) -4 (disappeared 40) = 7
        assert self.summary.replica_births == 7
        assert self.summary.replica_deaths == 7

    def test_as_level_classification(self):
        assert self.summary.ases == {
            "grown": 1,
            "shrunk": 1,
            "stable": 1,
            "appeared": 1,
            "disappeared": 1,
            "footprint_grown": 1,
            "footprint_shrunk": 0,
        }

    def test_doc_round_trip(self):
        doc = self.summary.to_doc()
        assert doc["targets"] == {
            "before": 5, "after": 5, "appeared": 1, "disappeared": 1,
        }
        assert doc["flips"] == {"to_anycast": 1, "to_unicast": 1}
        assert doc["replicas"] == {"births": 7, "deaths": 7}
        assert doc["ases"]["footprint_grown"] == 1

    def test_summary_lines_render(self):
        lines = self.summary.summary_lines()
        assert any("1 -> 2" in line for line in lines)
        assert any("flips" in line for line in lines)

    def test_identical_docs_are_quiet(self):
        quiet = churn_between(BEFORE, dict(BEFORE, epoch=2))
        assert quiet.targets_appeared == 0
        assert quiet.replica_births == 0
        assert quiet.replica_deaths == 0
        assert quiet.ases["stable"] == 5
        assert quiet.ases["grown"] == 0
