"""Behavioural tests for the longitudinal census service."""

from __future__ import annotations

import json

import pytest

from repro.service import CensusService, ServiceConfig
from repro.service.archive import run_manifest_problems
from repro.service.delta import REASON_CHURN, REASON_NO_BASELINE
from repro.workflow import small_service

from .conftest import DAYS, live_tree
from .test_fsck import flip_byte


def config_like_small_service(archive_root, **overrides):
    """The ``small_service`` recipe as a raw config, for knob tests."""
    base = small_service(archive_root).config
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


class TestDeterminism:
    def test_runs_are_pure_functions_of_the_epoch(self, tmp_path, reference_archive):
        root = tmp_path / "archive"
        service = small_service(root)
        for epoch in range(2):
            service.run_epoch(epoch)
        for epoch in range(2):
            day = f"day-{epoch:06d}"
            for name in ("manifest.json", "records.bin", "results.json"):
                fresh = (root / "runs" / day / name).read_bytes()
                ref = (reference_archive / "runs" / day / name).read_bytes()
                assert fresh == ref, f"{day}/{name} differs between services"

    def test_rerun_is_idempotent(self, tmp_path):
        service = small_service(tmp_path / "archive")
        first = service.run_epoch(0)
        again = service.run_epoch(0)
        assert first.status == "committed"
        assert again.status == "already-present"
        assert (again.n_targets, again.n_anycast) == (
            first.n_targets,
            first.n_anycast,
        )


class TestIncrementalRecompute:
    def test_incremental_equals_cold_byte_for_byte(self, tmp_path, reference_archive):
        """The load-bearing safety property of the whole subsystem.

        The reference archive runs incrementally (the service default);
        a from-scratch cold timeline over the same evolving world must
        produce byte-identical results and records for every day.
        """
        root = tmp_path / "cold"
        service = CensusService(config_like_small_service(root, incremental=False))
        for epoch in range(DAYS):
            outcome = service.run_epoch(epoch)
            assert outcome.mode == "cold"
            assert outcome.n_copied == 0
            day = f"day-{epoch:06d}"
            for name in ("records.bin", "results.json"):
                cold = (root / "runs" / day / name).read_bytes()
                ref = (reference_archive / "runs" / day / name).read_bytes()
                assert cold == ref, f"{day}/{name}: incremental != cold"

    def test_first_day_is_cold_then_incremental(self, reference_archive):
        service = small_service(reference_archive)
        history = service.history()
        assert history[0]["mode"] == "cold"
        assert all(row["mode"] == "incremental" for row in history[1:])
        # Gentle evolution: the service really does skip most targets.
        manifest = service.archive.read_manifest(1)
        analysis = manifest["analysis"]
        assert analysis["n_copied"] > 10 * analysis["n_recomputed"]

    def test_zero_threshold_forces_cold(self, tmp_path):
        service = CensusService(
            config_like_small_service(tmp_path / "archive", churn_threshold=0.0)
        )
        service.run_epoch(0)
        outcome = service.run_epoch(1)
        assert outcome.mode == "cold"
        assert outcome.reason == REASON_CHURN

    def test_stream_noise_never_matches_signatures(self, tmp_path):
        # Stream noise re-draws every row each epoch, so signatures all
        # change and the service correctly refuses to reuse anything.
        service = CensusService(
            config_like_small_service(tmp_path / "archive", noise="stream")
        )
        service.run_epoch(0)
        outcome = service.run_epoch(1)
        assert outcome.mode == "cold"
        assert outcome.churn_fraction == pytest.approx(1.0)

    def test_corrupt_baseline_forces_cold(self, scratch_archive):
        # Keep only a rotten day 0; day 1 must refuse the baseline.
        import shutil

        for epoch in range(1, DAYS):
            shutil.rmtree(scratch_archive / "runs" / f"day-{epoch:06d}")
        flip_byte(scratch_archive / "runs" / "day-000000" / "results.json")
        service = small_service(scratch_archive)
        outcome = service.run_epoch(1)
        assert outcome.mode == "cold"
        assert outcome.reason.startswith("baseline-unreadable")


class TestManifests:
    def test_manifests_validate_and_carry_the_analysis_story(self, reference_archive):
        service = small_service(reference_archive)
        for epoch in range(DAYS):
            manifest = service.archive.read_manifest(epoch)
            assert run_manifest_problems(manifest) == []
            analysis = manifest["analysis"]
            assert analysis["n_recomputed"] + analysis["n_copied"] == (
                manifest["counts"]["n_targets"]
            )
        first = service.archive.read_manifest(0)
        assert first["analysis"]["reason"] == REASON_NO_BASELINE
        assert first["churn"] is None

    def test_churn_block_tracks_consecutive_days(self, reference_archive):
        service = small_service(reference_archive)
        for epoch in range(1, DAYS):
            churn = service.archive.read_manifest(epoch)["churn"]
            assert churn["epoch_before"] == epoch - 1
            assert churn["epoch_after"] == epoch
            assert set(churn["ases"]) >= {"grown", "stable", "appeared"}

    def test_no_wall_clock_anywhere(self, reference_archive):
        # Byte-identity across timelines forbids timestamps; a likely
        # regression is someone adding a "created"/"time" field.
        for path in (reference_archive / "runs").rglob("*.json"):
            doc = json.loads(path.read_text())
            banned = {"created", "created_unix", "timestamp", "time", "date"}
            assert not (banned & set(doc)), f"{path} grew a wall-clock field"


class TestServiceOperations:
    def test_catch_up_fills_gaps_only(self, scratch_archive, reference_tree):
        import shutil

        shutil.rmtree(scratch_archive / "runs" / "day-000003")
        report, outcomes = small_service(scratch_archive).catch_up(DAYS - 1)
        assert report.index_rebuilt  # the index still advertised day 3
        assert [o.status for o in outcomes] == [
            "already-present",
            "already-present",
            "already-present",
            "committed",
            "already-present",
        ]
        assert live_tree(scratch_archive) == reference_tree

    def test_history_shape(self, reference_archive):
        history = small_service(reference_archive).history()
        assert [row["epoch"] for row in history] == list(range(DAYS))
        for row in history:
            assert row["n_targets"] > 0
            assert 0.0 <= row["churn_fraction"] <= 1.0

    def test_outcome_summary_lines(self, reference_archive):
        outcome = small_service(reference_archive).run_epoch(0)
        text = "\n".join(outcome.summary_lines())
        assert "already-present" in text
        assert "recomputed/copied" in text


class TestConfigValidation:
    def test_bad_noise_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="noise"):
            ServiceConfig(archive_root=str(tmp_path), noise="loud")

    def test_bad_threshold_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="churn_threshold"):
            ServiceConfig(archive_root=str(tmp_path), churn_threshold=2.0)

    def test_negative_epoch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            small_service(tmp_path / "archive").catalog_for(-1)
