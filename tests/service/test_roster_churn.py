"""Roster-churn-tolerant incremental recompute, end to end.

A 20-VP service with a 5% keyed per-epoch dropout probability: rosters
shrink and rejoin day over day.  The per-VP column signatures make the
service survive this — an epoch whose roster matches an archived one
recovers those targets' analyses from history instead of going cold —
and whatever path each epoch takes, its committed results must be
byte-equal to a cold recompute of the same epoch.

The scenario (``roster_seed=11``, 8 epochs) is chosen so the timeline
exercises every path: full rosters, dropped VPs, an exact-roster
rejoin recovered via the multi-epoch baseline history.
"""

from __future__ import annotations

import pytest

from repro.service import CensusService, ServiceConfig

EPOCHS = 8


def service_for(root, **kw):
    return CensusService(
        ServiceConfig(
            archive_root=str(root),
            n_unicast=150,
            tail_deployments=4,
            n_vps=20,
            roster_churn_prob=0.05,
            roster_seed=11,
            baseline_depth=4,
            **kw,
        )
    )


@pytest.fixture(scope="module")
def churned(tmp_path_factory):
    root = tmp_path_factory.mktemp("roster") / "churn"
    service = service_for(root)
    outcomes = [service.run_epoch(e) for e in range(EPOCHS)]
    return service, outcomes


@pytest.fixture(scope="module")
def cold(tmp_path_factory):
    root = tmp_path_factory.mktemp("roster") / "cold"
    service = service_for(root, incremental=False)
    outcomes = [service.run_epoch(e) for e in range(EPOCHS)]
    return service, outcomes


class TestRosterChurn:
    def test_rosters_actually_move(self, churned):
        service, _ = churned
        rosters = [
            tuple(vp["name"] for vp in service.archive.read_manifest(e)["vantage_points"])
            for e in range(EPOCHS)
        ]
        assert len(set(rosters)) > 1
        assert min(len(r) for r in rosters) < 20  # someone sat a day out

    def test_dropout_is_keyed_not_streamed(self, churned, tmp_path):
        """Re-running the same epoch elsewhere drops the same VPs."""
        service, _ = churned
        twin = service_for(tmp_path / "twin")
        for epoch in range(EPOCHS):
            assert [vp.name for vp in twin.platform_for(epoch).vantage_points] == [
                vp["name"]
                for vp in service.archive.read_manifest(epoch)["vantage_points"]
            ]

    def test_rejoined_roster_goes_incremental_with_recovery(self, churned):
        _, outcomes = churned
        incremental = [o for o in outcomes[1:] if o.mode == "incremental"]
        assert incremental, "every churned epoch went cold"
        assert any(o.n_copied > 0 for o in incremental)
        assert sum(o.n_recovered for o in outcomes) > 0

    def test_manifest_carries_roster_diff(self, churned):
        service, _ = churned
        blocks = []
        for epoch in range(1, EPOCHS):
            churn = service.archive.read_manifest(epoch).get("churn") or {}
            if "roster" in churn:
                blocks.append(churn["roster"])
        assert blocks, "no manifest recorded the roster motion"
        for block in blocks:
            assert set(block) == {
                "joined", "left", "n_before", "n_after", "n_surviving"
            }
            assert block["n_surviving"] <= min(block["n_before"], block["n_after"])

    def test_incremental_results_byte_equal_to_cold(self, churned, cold):
        """The acceptance bar: whatever mix of copy/recover/recompute an
        epoch used, its results document equals a cold run's."""
        svc_inc, _ = churned
        svc_cold, _ = cold
        for epoch in range(EPOCHS):
            assert svc_inc.archive.read_results(epoch) == svc_cold.archive.read_results(
                epoch
            ), f"epoch {epoch}: incremental != cold under roster churn"

    def test_stable_roster_has_no_roster_block(self, tmp_path):
        """With churn off and identical rosters the manifest keeps its
        classic shape — no roster block appears (byte neutrality)."""
        service = CensusService(
            ServiceConfig(
                archive_root=str(tmp_path / "stable"),
                n_unicast=120,
                tail_deployments=2,
                n_vps=12,
            )
        )
        for epoch in range(2):
            service.run_epoch(epoch)
        churn = service.archive.read_manifest(1).get("churn") or {}
        assert "roster" not in churn
