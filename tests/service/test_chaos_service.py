"""Kill-restart chaos: the service's headline crash-tolerance invariant.

Kill the service at *any* point of a 5-day schedule — mid-census, or at
any instant of the archive commit protocol — then start a fresh service
over the same root and ``catch_up``.  The resulting archive must be
**byte-identical** to the one an uninterrupted timeline produces: same
run payloads, same manifests, same index, no leftover journals, nothing
quarantined.
"""

from __future__ import annotations

import pytest

from repro.measurement.campaign import CensusInterrupted
from repro.workflow import small_service

from .conftest import DAYS, archive_tree


class Kill(Exception):
    """Simulated hard crash inside the commit protocol."""


def run_until_dead(service, through, commit_kill=None, abort_after_vps=None):
    """Drive the schedule until the injected failure fires (or the end)."""
    if commit_kill is not None:
        def hook(point):
            if point == commit_kill:
                raise Kill(point)
        service.archive.crash_hook = hook
    try:
        for epoch in range(through + 1):
            service.run_epoch(epoch, abort_after_vps=abort_after_vps)
    except (Kill, CensusInterrupted):
        return True
    return False


def recover_and_compare(root, reference_tree):
    """Fresh process over the same root: catch up, demand byte-identity."""
    report, outcomes = small_service(root).catch_up(DAYS - 1)
    tree = archive_tree(root)
    assert tree == reference_tree, (
        "recovered archive differs from the uninterrupted timeline: "
        + ", ".join(sorted(set(tree) ^ set(reference_tree))[:5] or ["content"])
    )
    assert not list((root / "journal").iterdir())
    assert not (root / "quarantine").exists()
    return report, outcomes


class TestMidCensusKills:
    @pytest.mark.parametrize("day", [0, 1, 3])
    @pytest.mark.parametrize("after_vps", [1, 7])
    def test_interrupt_then_catch_up(self, tmp_path, reference_tree, day, after_vps):
        root = tmp_path / "archive"
        service = small_service(root)
        for epoch in range(day):
            service.run_epoch(epoch)
        with pytest.raises(CensusInterrupted):
            service.run_epoch(day, abort_after_vps=after_vps)
        assert service.archive.journal_path(day).exists()
        recover_and_compare(root, reference_tree)

    def test_interrupt_resumes_instead_of_restarting(self, tmp_path, reference_tree):
        # The second attempt must *resume* the journal: interrupting it
        # again after one more VP still converges, proving the journal
        # carries the partial progress forward bit-for-bit.
        root = tmp_path / "archive"
        service = small_service(root)
        service.run_epoch(0)
        with pytest.raises(CensusInterrupted):
            service.run_epoch(1, abort_after_vps=5)
        with pytest.raises(CensusInterrupted):
            small_service(root).run_epoch(1, abort_after_vps=1)
        recover_and_compare(root, reference_tree)


class TestCommitPointKills:
    @pytest.mark.parametrize(
        "point", ["commit:staged", "commit:renamed", "commit:indexed"]
    )
    def test_kill_inside_commit(self, tmp_path, reference_tree, point):
        root = tmp_path / "archive"
        service = small_service(root)
        assert run_until_dead(service, DAYS - 1, commit_kill=point)
        recover_and_compare(root, reference_tree)

    def test_kill_on_every_day_at_the_worst_point(self, tmp_path, reference_tree):
        # One timeline, repeatedly crashing right after the rename (the
        # state with the most stale artifacts: journal + old index).
        root = tmp_path / "archive"
        deaths = 0
        while run_until_dead(
            small_service(root), DAYS - 1, commit_kill="commit:renamed"
        ):
            deaths += 1
            assert deaths <= DAYS, "no forward progress between crashes"
        assert deaths == DAYS  # each day died once, and each day advanced
        recover_and_compare(root, reference_tree)


class TestCompoundFailures:
    def test_interrupt_then_commit_crash_then_recover(self, tmp_path, reference_tree):
        root = tmp_path / "archive"
        service = small_service(root)
        service.run_epoch(0)
        with pytest.raises(CensusInterrupted):
            service.run_epoch(1, abort_after_vps=4)
        # Restarted service resumes day 1 but dies inside its commit.
        survivor = small_service(root)
        assert run_until_dead(survivor, 1, commit_kill="commit:staged")
        recover_and_compare(root, reference_tree)

    def test_chaos_recovery_is_itself_killable(self, tmp_path, reference_tree):
        root = tmp_path / "archive"
        assert run_until_dead(small_service(root), DAYS - 1, abort_after_vps=9)
        # The catch-up run is killed too...
        assert run_until_dead(small_service(root), DAYS - 1, abort_after_vps=13)
        # ...and the third attempt still lands on the exact bytes.
        report, outcomes = recover_and_compare(root, reference_tree)
        assert report.clean  # interrupts leave valid journals, not rot

    def test_uninterrupted_catch_up_matches_day_by_day_runs(
        self, tmp_path, reference_tree
    ):
        root = tmp_path / "archive"
        report, outcomes = small_service(root).catch_up(DAYS - 1)
        assert [o.status for o in outcomes] == ["committed"] * DAYS
        assert archive_tree(root) == reference_tree
