"""Routing-plane wiring through the longitudinal service: manifests,
epoch outcomes, alarm history, the ``service alarms`` CLI verb, and the
false-alarm SLO budget."""

from __future__ import annotations

import pytest

from repro.bgp import RouteEvent, RouteEventKind, RouteEventPlan
from repro.workflow import small_service

MOAS_PLAN = RouteEventPlan.single(
    RouteEvent(kind=RouteEventKind.MOAS_HIJACK, epoch=1), seed=3
)


@pytest.fixture(scope="module")
def hijacked_archive(tmp_path_factory):
    """Two epochs with a validated above-floor MOAS hijack at epoch 1."""
    root = tmp_path_factory.mktemp("hijacked")
    service = small_service(
        root, routing="bgp", alarms=True, route_events=MOAS_PLAN
    )
    outcomes = [service.run_epoch(e) for e in range(2)]
    return root, service, outcomes


class TestManifestWiring:
    def test_geo_default_manifest_has_no_routing_block(self, tmp_path):
        service = small_service(tmp_path)
        service.run_epoch(0)
        manifest = service.archive.read_manifest(0)
        assert "routing" not in manifest

    def test_bgp_manifest_records_mode_and_events(self, hijacked_archive):
        _, service, _ = hijacked_archive
        doc = service.archive.read_manifest(1)["routing"]
        assert doc["mode"] == "bgp"
        assert doc["alarms_enabled"] is True
        assert [e["kind"] for e in doc["events"]] == ["moas-hijack"]
        assert doc["events"][0]["applied"] is True
        assert len(doc["alarms"]) == 1
        assert doc["alarms"][0]["verdict"] == "hijack"
        assert doc["verdicts"]["hijack"] == 1

    def test_outcome_carries_the_alarm(self, hijacked_archive):
        _, _, outcomes = hijacked_archive
        assert outcomes[0].alarms == []
        alarming = outcomes[1].alarming
        assert len(alarming) == 1
        assert alarming[0].verdict.value == "hijack"
        assert alarming[0].confidence >= 0.7
        assert outcomes[1].route_events[0]["kind"] == "moas-hijack"

    def test_alarm_history_reads_off_the_manifests(self, hijacked_archive):
        root, service, _ = hijacked_archive
        rows = service.alarm_history()
        assert len(rows) == 1
        assert rows[0]["epoch"] == 1
        assert rows[0]["verdict"] == "hijack"
        # A fresh service over the same archive sees the same history.
        again = small_service(root, routing="bgp", alarms=True)
        assert again.alarm_history() == rows


class TestCleanTimeline:
    def test_churning_clean_timeline_raises_zero_alarms(self, tmp_path):
        """Eight epochs of catalog drift and roster churn: no alarms."""
        service = small_service(
            tmp_path, routing="bgp", alarms=True, roster_churn_prob=0.15
        )
        for epoch in range(8):
            outcome = service.run_epoch(epoch)
            assert outcome.alarming == [], f"epoch {epoch}"
        assert service.alarm_history() == []


class TestAlarmsCli:
    def test_no_alarms_exits_zero(self, tmp_path, capsys):
        from repro.cli import EXIT_OK, main

        service = small_service(tmp_path, routing="bgp", alarms=True)
        service.run_epoch(0)
        code = main(["service", "alarms", "--archive", str(tmp_path)])
        assert code == EXIT_OK
        assert "no routing alarms" in capsys.readouterr().out

    def test_alarms_print_and_exit_seven(self, hijacked_archive, capsys):
        from repro.cli import EXIT_ALARMS, main

        root, _, _ = hijacked_archive
        code = main(["service", "alarms", "--archive", str(root)])
        assert code == EXIT_ALARMS == 7
        out = capsys.readouterr().out
        assert "hijack" in out
        assert "verdict" in out


class TestSloBudget:
    def test_false_alarm_rate_budget_exists(self):
        from repro.obs.slo import default_service_slo

        budget = default_service_slo().false_alarm_rate
        assert budget is not None
        assert budget.breach > budget.warn > 0


class TestConfigValidation:
    def test_route_events_require_bgp(self, tmp_path):
        with pytest.raises(ValueError, match="routing='bgp'"):
            small_service(tmp_path, route_events=MOAS_PLAN)

    def test_bad_routing_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="routing"):
            small_service(tmp_path, routing="magic")
