"""Unit tests for RTT signatures and the incremental-vs-cold planner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census.combine import RttMatrix
from repro.geo.coords import GeoPoint
from repro.service.delta import (
    REASON_BASELINE_UNREADABLE,
    REASON_CHURN,
    REASON_DELTA,
    REASON_DISABLED,
    REASON_NO_BASELINE,
    plan_delta,
    target_signatures,
    vp_context_digest,
)


def make_matrix(seed=0, vp_names=("vp-a", "vp-b", "vp-c"), shift=0.0):
    rng = np.random.default_rng(seed)
    rtt = rng.uniform(5.0, 200.0, size=(4, len(vp_names))).astype(np.float32)
    rtt[1, 0] = np.nan
    rtt += np.float32(shift)
    return RttMatrix(
        prefixes=np.array([10, 20, 30, 40], dtype=np.uint32),
        vp_names=list(vp_names),
        vp_locations=[GeoPoint(lat=10.0 * i, lon=20.0 * i) for i in range(len(vp_names))],
        rtt_ms=rtt,
        sample_count=np.ones_like(rtt, dtype=np.uint8),
    )


class TestSignatures:
    def test_deterministic(self):
        assert target_signatures(make_matrix()) == target_signatures(make_matrix())

    def test_one_cell_changes_only_that_row(self):
        base = target_signatures(make_matrix())
        matrix = make_matrix()
        matrix.rtt_ms[2, 1] += np.float32(0.25)
        after = target_signatures(matrix)
        assert after[30] != base[30]
        assert {p: s for p, s in after.items() if p != 30} == {
            p: s for p, s in base.items() if p != 30
        }

    def test_nan_pattern_is_part_of_the_signature(self):
        matrix = make_matrix()
        matrix.rtt_ms[1, 0] = np.float32(50.0)  # fill the hole
        assert target_signatures(matrix)[20] != target_signatures(make_matrix())[20]

    def test_roster_rename_changes_every_signature(self):
        base = target_signatures(make_matrix())
        renamed = target_signatures(make_matrix(vp_names=("vp-a", "vp-B", "vp-c")))
        assert all(renamed[p] != base[p] for p in base)

    def test_roster_move_changes_every_signature(self):
        matrix = make_matrix()
        matrix.vp_locations[1] = GeoPoint(lat=10.0, lon=20.5)
        moved = target_signatures(matrix)
        assert all(moved[p] != s for p, s in target_signatures(make_matrix()).items())

    def test_context_digest_feels_coordinates(self):
        names = ["a", "b"]
        here = [GeoPoint(0.0, 0.0), GeoPoint(1.0, 1.0)]
        there = [GeoPoint(0.0, 0.0), GeoPoint(1.0, 1.0000001)]
        assert vp_context_digest(names, here) != vp_context_digest(names, there)


class TestPlanDelta:
    CURRENT = {10: "aa", 20: "bb", 30: "cc", 40: "dd"}

    def test_disabled_goes_cold(self):
        plan = plan_delta(self.CURRENT, {10: "aa"}, enabled=False)
        assert (plan.mode, plan.reason) == ("cold", REASON_DISABLED)
        assert plan.recompute == sorted(self.CURRENT)

    def test_no_baseline_goes_cold(self):
        plan = plan_delta(self.CURRENT, None)
        assert (plan.mode, plan.reason) == ("cold", REASON_NO_BASELINE)
        assert plan.churn_fraction == 1.0

    def test_unreadable_baseline_goes_cold_with_reason(self):
        plan = plan_delta(
            self.CURRENT, None, baseline_epoch=3, baseline_problem="CRC mismatch"
        )
        assert plan.mode == "cold"
        assert plan.reason.startswith(REASON_BASELINE_UNREADABLE)
        assert "CRC mismatch" in plan.reason
        assert plan.baseline_epoch == 3

    def test_partition(self):
        baseline = {10: "aa", 20: "OLD", 50: "gone"}
        plan = plan_delta(self.CURRENT, baseline, baseline_epoch=1, churn_threshold=1.0)
        assert (plan.mode, plan.reason) == ("incremental", REASON_DELTA)
        assert plan.unchanged == [10]
        assert plan.changed == [20]
        assert plan.appeared == [30, 40]
        assert plan.disappeared == [50]
        assert plan.recompute == [20, 30, 40]
        assert plan.churn_fraction == pytest.approx(3 / 4)

    def test_churn_at_threshold_stays_incremental(self):
        baseline = {10: "aa", 20: "bb", 30: "cc", 40: "OLD"}
        plan = plan_delta(self.CURRENT, baseline, churn_threshold=0.25)
        assert plan.mode == "incremental"

    def test_churn_above_threshold_goes_cold_keeping_partition(self):
        baseline = {10: "aa", 20: "bb", 30: "OLD", 40: "OLD"}
        plan = plan_delta(self.CURRENT, baseline, churn_threshold=0.25)
        assert (plan.mode, plan.reason) == ("cold", REASON_CHURN)
        assert plan.churn_fraction == pytest.approx(0.5)
        assert plan.changed == [30, 40]  # analytics still see the true delta

    def test_empty_current_set(self):
        plan = plan_delta({}, {10: "aa"})
        assert plan.mode == "incremental"
        assert plan.churn_fraction == 0.0
        assert plan.disappeared == [10]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            plan_delta(self.CURRENT, None, churn_threshold=1.5)


class TestRosterFreeSignatures:
    """A VP joining or leaving only perturbs the targets it measured."""

    def test_all_nan_column_join_changes_nothing(self):
        base = target_signatures(make_matrix())
        joined = make_matrix(vp_names=("vp-a", "vp-b", "vp-c", "vp-new"))
        joined.rtt_ms[:, :3] = make_matrix().rtt_ms
        joined.rtt_ms[:, 3] = np.nan
        assert target_signatures(joined) == base

    def test_partial_coverage_join_only_touches_measured_rows(self):
        base = target_signatures(make_matrix())
        joined = make_matrix(vp_names=("vp-a", "vp-b", "vp-c", "vp-new"))
        joined.rtt_ms[:, :3] = make_matrix().rtt_ms
        joined.rtt_ms[:, 3] = np.nan
        joined.rtt_ms[2, 3] = np.float32(42.0)  # measures one target only
        after = target_signatures(joined)
        assert after[30] != base[30]
        assert {p: s for p, s in after.items() if p != 30} == {
            p: s for p, s in base.items() if p != 30
        }

    def test_leave_only_touches_measured_rows(self):
        """Dropping a VP that measured a strict subset of targets keeps
        every unmeasured target's signature."""
        matrix = make_matrix()
        matrix.rtt_ms[[0, 2, 3], 1] = np.nan  # vp-b only measured row 1
        base = target_signatures(matrix)
        left = make_matrix(vp_names=("vp-a", "vp-c"))
        left.vp_locations = [matrix.vp_locations[0], matrix.vp_locations[2]]
        left.rtt_ms = np.ascontiguousarray(matrix.rtt_ms[:, [0, 2]])
        after = target_signatures(left)
        assert after[20] != base[20]
        assert {p: s for p, s in after.items() if p != 20} == {
            p: s for p, s in base.items() if p != 20
        }

    def test_excised_counts_are_part_of_the_signature(self):
        matrix = make_matrix()
        none = target_signatures(matrix)
        zeros = target_signatures(matrix, excised=np.zeros(4, dtype=np.int64))
        assert zeros == none  # clean trust pass leaves signatures alone
        hit = target_signatures(matrix, excised=np.array([0, 0, 2, 0]))
        assert hit[30] != none[30]
        assert {p: s for p, s in hit.items() if p != 30} == {
            p: s for p, s in none.items() if p != 30
        }

    def test_context_digest_mismatch_reports_both_lengths(self):
        with pytest.raises(ValueError) as exc:
            vp_context_digest(["a", "b", "c"], [GeoPoint(0.0, 0.0)])
        assert "3" in str(exc.value) and "1" in str(exc.value)

    def test_column_digest_distinguishes_name_and_location(self):
        from repro.service.delta import vp_column_digest

        here = GeoPoint(10.0, 20.0)
        assert vp_column_digest("a", here) == vp_column_digest("a", here)
        assert vp_column_digest("a", here) != vp_column_digest("b", here)
        assert vp_column_digest("a", here) != vp_column_digest(
            "a", GeoPoint(10.0, 20.0001)
        )

    @given(
        joined_rows=st.sets(st.integers(min_value=0, max_value=3)),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_pure_vp_join_recomputes_only_measured_targets(
        self, joined_rows, seed
    ):
        """Property: under pure VP-join churn the delta plan recomputes
        exactly the targets the new VP measured — zero unchanged ones."""
        before = make_matrix(seed=seed)
        baseline = target_signatures(before)
        after = make_matrix(seed=seed, vp_names=("vp-a", "vp-b", "vp-c", "vp-new"))
        after.rtt_ms[:, :3] = before.rtt_ms
        after.rtt_ms[:, 3] = np.nan
        for row in joined_rows:
            after.rtt_ms[row, 3] = np.float32(33.0 + row)
        plan = plan_delta(
            target_signatures(after), baseline, baseline_epoch=1,
            churn_threshold=1.0,
        )
        assert plan.mode == "incremental"
        measured = sorted(int(before.prefixes[r]) for r in joined_rows)
        assert plan.recompute == measured
        assert plan.unchanged == [
            int(p) for p in before.prefixes if int(p) not in measured
        ]


class TestPlanDeltaHistory:
    CURRENT = {10: "aa", 20: "bb", 30: "cc", 40: "dd"}

    def test_changed_targets_recover_from_matching_history(self):
        baseline = {10: "aa", 20: "OLD", 30: "OLD", 40: "dd"}
        history = [(3, {20: "bb", 30: "x"}), (2, {30: "cc", 40: "y"})]
        plan = plan_delta(
            self.CURRENT, baseline, baseline_epoch=5,
            churn_threshold=1.0, history=history,
        )
        assert plan.mode == "incremental"
        assert plan.recovered == {20: 3, 30: 2}
        assert plan.recompute == []  # everything changed was recovered
        assert plan.changed == [20, 30]

    def test_newest_history_epoch_wins(self):
        baseline = {10: "aa", 20: "OLD", 30: "cc", 40: "dd"}
        history = [(1, {20: "bb"}), (4, {20: "bb"})]
        plan = plan_delta(
            self.CURRENT, baseline, baseline_epoch=5,
            churn_threshold=1.0, history=history,
        )
        assert plan.recovered == {20: 4}

    def test_recovery_discounts_churn(self):
        """Recovered targets do not count toward the cold-fallback churn."""
        baseline = {10: "aa", 20: "OLD", 30: "OLD", 40: "dd"}
        history = [(3, {20: "bb", 30: "cc"})]
        cold = plan_delta(self.CURRENT, baseline, churn_threshold=0.25)
        assert (cold.mode, cold.reason) == ("cold", REASON_CHURN)
        warm = plan_delta(
            self.CURRENT, baseline, churn_threshold=0.25, history=history
        )
        assert warm.mode == "incremental"
        assert warm.churn_fraction == pytest.approx(0.0)

    def test_cold_plan_clears_recovered(self):
        baseline = {10: "OLD", 20: "OLD", 30: "OLD", 40: "dd"}
        history = [(3, {10: "aa"})]
        plan = plan_delta(
            self.CURRENT, baseline, churn_threshold=0.25, history=history
        )
        assert plan.mode == "cold"
        assert plan.recovered == {}
        # The true partition survives for analytics; the recompute list
        # reverts to the full changed set (recovery is forfeited).
        assert plan.recompute == [10, 20, 30]
