"""Unit tests for the append-only run archive."""

from __future__ import annotations

import json

import pytest

from repro.measurement.recordio import CorruptPayloadError
from repro.service.archive import (
    ANALYSIS_MODES,
    INDEX_KIND,
    MANIFEST_FILE,
    RECORDS_FILE,
    RESULTS_FILE,
    RUN_KIND,
    RUN_SCHEMA_VERSION,
    ArchiveError,
    CensusArchive,
    canonical_json_bytes,
    parse_run_dirname,
    run_dirname,
    run_manifest_problems,
    validate_run_manifest,
)

from .conftest import archive_tree


@pytest.fixture()
def sample_run(reference_archive):
    """(manifest_core, records, results_doc) lifted from the reference."""
    archive = CensusArchive(reference_archive)
    manifest = archive.read_manifest(0)
    core = {
        k: v
        for k, v in manifest.items()
        if k not in ("kind", "schema_version", "epoch", "payloads")
    }
    return core, archive.read_records(0), archive.read_results(0)


class TestNaming:
    def test_round_trip(self):
        for epoch in (0, 1, 12, 999_999):
            assert parse_run_dirname(run_dirname(epoch)) == epoch

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            run_dirname(-1)
        with pytest.raises(ValueError):
            run_dirname(1_000_000)

    @pytest.mark.parametrize(
        "name",
        ["day-12", "day-0000001", "week-000001", "day-00000a", ".day-000001.staging"],
    )
    def test_malformed_names_parse_to_none(self, name):
        assert parse_run_dirname(name) is None


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        a = canonical_json_bytes({"b": 1, "a": [1.5, None]})
        b = canonical_json_bytes({"a": [1.5, None], "b": 1})
        assert a == b
        assert a.endswith(b"\n")

    def test_floats_round_trip(self):
        doc = {"x": 0.1 + 0.2, "y": 1e-17}
        assert json.loads(canonical_json_bytes(doc)) == doc


class TestManifestSchema:
    def test_reference_manifests_are_valid(self, reference_archive):
        archive = CensusArchive(reference_archive)
        for epoch in archive.epochs():
            assert run_manifest_problems(archive.read_manifest(epoch)) == []

    def test_non_object_is_one_problem(self):
        assert run_manifest_problems([1, 2]) == ["run manifest is not a JSON object"]

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda d: d.update(kind="diary"), "kind"),
            (lambda d: d.update(schema_version="1"), "schema_version"),
            (lambda d: d.update(schema_version=RUN_SCHEMA_VERSION + 1), "newer"),
            (lambda d: d.update(epoch=-1), "epoch"),
            (lambda d: d.update(census=None), "census"),
            (lambda d: d.update(vantage_points=[]), "vantage_points"),
            (lambda d: d.update(vantage_points=[{"name": "vp"}]), "name/lat/lon"),
            (lambda d: d.pop("payloads"), "payloads"),
            (lambda d: d["payloads"].pop(RECORDS_FILE), RECORDS_FILE),
            (lambda d: d["payloads"][RESULTS_FILE].pop("crc32"), RESULTS_FILE),
            (lambda d: d.update(analysis=None), "analysis"),
            (lambda d: d["analysis"].update(mode="warm"), "mode"),
            (lambda d: d.update(churn=7), "churn"),
        ],
    )
    def test_each_violation_is_reported(self, reference_archive, mutate, fragment):
        doc = CensusArchive(reference_archive).read_manifest(0)
        mutate(doc)
        problems = run_manifest_problems(doc)
        assert problems, f"mutation {fragment!r} went unnoticed"
        assert any(fragment in p for p in problems)
        with pytest.raises(ValueError):
            validate_run_manifest(doc)

    def test_declared_modes_match_schema(self):
        assert set(ANALYSIS_MODES) == {"cold", "incremental"}


class TestCommit:
    def test_commit_round_trips(self, tmp_path, sample_run):
        core, records, results = sample_run
        archive = CensusArchive(tmp_path / "archive")
        manifest = archive.commit_run(3, core, records, results)
        assert manifest["kind"] == RUN_KIND
        assert archive.epochs() == [3]
        assert archive.read_records(3).checksum() == records.checksum()
        assert archive.read_results(3) == results
        index = archive.read_index()
        assert index["kind"] == INDEX_KIND
        assert list(index["runs"]) == [run_dirname(3)]

    def test_double_commit_refused(self, tmp_path, sample_run):
        core, records, results = sample_run
        archive = CensusArchive(tmp_path / "archive")
        archive.commit_run(0, core, records, results)
        with pytest.raises(ArchiveError):
            archive.commit_run(0, core, records, results)

    def test_crash_before_rename_leaves_no_run(self, tmp_path, sample_run):
        core, records, results = sample_run
        archive = CensusArchive(tmp_path / "archive")

        class Boom(Exception):
            pass

        def hook(point):
            if point == "commit:staged":
                raise Boom

        archive.crash_hook = hook
        with pytest.raises(Boom):
            archive.commit_run(0, core, records, results)
        assert archive.epochs() == []
        staged = list(archive.runs_dir.iterdir())
        assert [p.name for p in staged] == [".day-000000.staging"]

        # Retrying on the same archive cleans the torn staging dir and
        # produces exactly the bytes an uncrashed commit would have.
        archive.crash_hook = None
        archive.commit_run(0, core, records, results)
        clean = CensusArchive(tmp_path / "clean")
        clean.commit_run(0, core, records, results)
        assert archive_tree(archive.root) == archive_tree(clean.root)

    def test_hook_points_fire_in_order(self, tmp_path, sample_run):
        core, records, results = sample_run
        archive = CensusArchive(tmp_path / "archive")
        points = []
        archive.crash_hook = points.append
        archive.commit_run(0, core, records, results)
        assert points == ["commit:staged", "commit:renamed", "commit:indexed"]


class TestReaders:
    def test_epochs_ignore_foreign_entries(self, tmp_path, sample_run):
        core, records, results = sample_run
        archive = CensusArchive(tmp_path / "archive")
        archive.commit_run(2, core, records, results)
        (archive.runs_dir / "notes.txt").write_text("hello")
        (archive.runs_dir / ".day-000005.staging").mkdir()
        assert archive.epochs() == [2]
        assert archive.latest_epoch_before(5) == 2
        assert archive.latest_epoch_before(2) is None

    def test_manifest_epoch_mismatch_detected(self, tmp_path, sample_run):
        core, records, results = sample_run
        archive = CensusArchive(tmp_path / "archive")
        archive.commit_run(0, core, records, results)
        archive.run_dir(0).rename(archive.run_dir(7))
        with pytest.raises(CorruptPayloadError, match="claims epoch 0"):
            archive.read_manifest(7)

    def test_results_verified_against_manifest(self, tmp_path, sample_run):
        core, records, results = sample_run
        archive = CensusArchive(tmp_path / "archive")
        archive.commit_run(0, core, records, results)
        path = archive.run_dir(0) / RESULTS_FILE
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptPayloadError, match="does not match"):
            archive.read_results(0)

    def test_missing_manifest_is_corrupt_not_crash(self, tmp_path, sample_run):
        core, records, results = sample_run
        archive = CensusArchive(tmp_path / "archive")
        archive.commit_run(0, core, records, results)
        (archive.run_dir(0) / MANIFEST_FILE).unlink()
        with pytest.raises(CorruptPayloadError):
            archive.read_manifest(0)

    def test_index_is_a_cache(self, tmp_path, sample_run):
        core, records, results = sample_run
        archive = CensusArchive(tmp_path / "archive")
        archive.commit_run(0, core, records, results)
        assert archive.read_index() == archive.build_index()
        archive.index_path.write_text("garbage")
        assert archive.read_index() is None  # unreadable -> rebuildable
        assert run_dirname(0) in archive.build_index()["runs"]
