"""Corruption-matrix tests for the archive fsck subsystem.

Every scenario corrupts a private copy of the 5-day reference archive,
then demands the same three things:

1. fsck never raises — it reports, quarantines, repairs;
2. nothing is silently lost — bad runs move to ``quarantine/``, they are
   not deleted, and good runs are untouched;
3. the service heals — ``catch_up`` over the repaired archive re-runs
   exactly the quarantined days and the live tree comes back
   byte-identical to the uninterrupted reference.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.service.archive import CensusArchive
from repro.service.fsck import fsck_archive
from repro.workflow import small_service

from .conftest import DAYS, archive_tree, live_tree


def flip_byte(path, offset=None):
    data = bytearray(path.read_bytes())
    offset = len(data) // 2 if offset is None else offset
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def heal_and_compare(root, reference_tree):
    """Catch up the corrupted archive and demand byte-identity."""
    report, outcomes = small_service(root).catch_up(DAYS - 1)
    assert live_tree(root) == reference_tree
    return report, outcomes


class TestPayloadCorruption:
    def test_truncated_records(self, scratch_archive, reference_tree):
        run = scratch_archive / "runs" / "day-000002"
        blob = (run / "records.bin").read_bytes()
        (run / "records.bin").write_bytes(blob[:-10])

        report = fsck_archive(CensusArchive(scratch_archive))
        assert [name for name, _ in report.quarantined] == ["day-000002"]
        assert "records.bin" in report.quarantined[0][1]
        assert report.ok_epochs == [0, 1, 3, 4]
        assert (scratch_archive / "quarantine" / "day-000002").is_dir()

        heal_and_compare(scratch_archive, reference_tree)

    def test_bit_flipped_records(self, scratch_archive, reference_tree):
        flip_byte(scratch_archive / "runs" / "day-000001" / "records.bin")
        report = fsck_archive(CensusArchive(scratch_archive))
        assert [name for name, _ in report.quarantined] == ["day-000001"]
        heal_and_compare(scratch_archive, reference_tree)

    def test_bit_flipped_results(self, scratch_archive, reference_tree):
        flip_byte(scratch_archive / "runs" / "day-000003" / "results.json")
        report = fsck_archive(CensusArchive(scratch_archive))
        assert [name for name, _ in report.quarantined] == ["day-000003"]
        assert "results.json" in report.quarantined[0][1]
        heal_and_compare(scratch_archive, reference_tree)

    def test_truncated_results(self, scratch_archive, reference_tree):
        path = scratch_archive / "runs" / "day-000000" / "results.json"
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        report = fsck_archive(CensusArchive(scratch_archive))
        assert [name for name, _ in report.quarantined] == ["day-000000"]
        assert "truncated" in report.quarantined[0][1]
        heal_and_compare(scratch_archive, reference_tree)


class TestManifestCorruption:
    def test_missing_manifest(self, scratch_archive, reference_tree):
        (scratch_archive / "runs" / "day-000002" / "manifest.json").unlink()
        report = fsck_archive(CensusArchive(scratch_archive))
        assert [name for name, _ in report.quarantined] == ["day-000002"]
        assert "manifest" in report.quarantined[0][1]
        heal_and_compare(scratch_archive, reference_tree)

    def test_garbled_manifest(self, scratch_archive, reference_tree):
        (scratch_archive / "runs" / "day-000004" / "manifest.json").write_text(
            "{not json"
        )
        report = fsck_archive(CensusArchive(scratch_archive))
        assert [name for name, _ in report.quarantined] == ["day-000004"]
        heal_and_compare(scratch_archive, reference_tree)

    def test_schema_invalid_manifest(self, scratch_archive, reference_tree):
        path = scratch_archive / "runs" / "day-000001" / "manifest.json"
        doc = json.loads(path.read_text())
        del doc["analysis"]
        path.write_text(json.dumps(doc))
        report = fsck_archive(CensusArchive(scratch_archive))
        assert [name for name, _ in report.quarantined] == ["day-000001"]
        heal_and_compare(scratch_archive, reference_tree)

    def test_manifest_pointing_at_wrong_bytes(self, scratch_archive, reference_tree):
        # A valid manifest whose payload seal disagrees with the disk.
        path = scratch_archive / "runs" / "day-000002" / "manifest.json"
        doc = json.loads(path.read_text())
        doc["payloads"]["records.bin"]["crc32"] ^= 1
        path.write_text(json.dumps(doc))
        report = fsck_archive(CensusArchive(scratch_archive))
        assert [name for name, _ in report.quarantined] == ["day-000002"]
        heal_and_compare(scratch_archive, reference_tree)


class TestIndexAndForeignEntries:
    def test_missing_index_rebuilt(self, scratch_archive, reference_tree):
        (scratch_archive / "index.json").unlink()
        report = fsck_archive(CensusArchive(scratch_archive))
        assert report.index_rebuilt
        assert not report.quarantined
        assert archive_tree(scratch_archive) == reference_tree

    def test_stale_index_rebuilt(self, scratch_archive, reference_tree):
        archive = CensusArchive(scratch_archive)
        index = archive.read_index()
        del index["runs"]["day-000004"]
        archive.write_index(index)
        report = fsck_archive(archive)
        assert report.index_rebuilt
        assert archive_tree(scratch_archive) == reference_tree

    def test_garbage_index_rebuilt(self, scratch_archive, reference_tree):
        (scratch_archive / "index.json").write_text("42")
        report = fsck_archive(CensusArchive(scratch_archive))
        assert report.index_rebuilt
        assert archive_tree(scratch_archive) == reference_tree

    def test_foreign_file_quarantined(self, scratch_archive, reference_tree):
        (scratch_archive / "runs" / "notes.txt").write_text("operator scribbles")
        report = fsck_archive(CensusArchive(scratch_archive))
        assert report.quarantined == [("notes.txt", "not a dated run")]
        assert (scratch_archive / "quarantine" / "notes.txt").is_file()
        # Quarantining a non-run touches neither the runs nor the index.
        assert not report.index_rebuilt
        assert live_tree(scratch_archive) == reference_tree

    def test_torn_staging_discarded(self, scratch_archive, reference_tree):
        staging = scratch_archive / "runs" / ".day-000005.staging"
        staging.mkdir()
        (staging / "records.bin").write_bytes(b"partial")
        report = fsck_archive(CensusArchive(scratch_archive))
        assert report.discarded_staging == [".day-000005.staging"]
        assert archive_tree(scratch_archive) == reference_tree


class TestJournals:
    def test_stale_journal_removed(self, scratch_archive, reference_tree):
        journal = scratch_archive / "journal" / "epoch-000001.journal"
        journal.write_bytes(b"resume state for a day that committed")
        report = fsck_archive(CensusArchive(scratch_archive))
        assert report.removed_journals == ["epoch-000001.journal"]
        assert archive_tree(scratch_archive) == reference_tree

    def test_pending_journal_kept(self, scratch_archive):
        journal = scratch_archive / "journal" / "epoch-000007.journal"
        journal.write_bytes(b"resume state for a day still pending")
        report = fsck_archive(CensusArchive(scratch_archive))
        assert report.removed_journals == []
        assert journal.exists()

    def test_foreign_journal_removed(self, scratch_archive, reference_tree):
        (scratch_archive / "journal" / "junk.tmp").write_bytes(b"noise")
        report = fsck_archive(CensusArchive(scratch_archive))
        assert report.removed_journals == ["junk.tmp"]
        assert archive_tree(scratch_archive) == reference_tree

    def test_quarantined_days_journal_survives_for_resume(self, scratch_archive):
        # A day that rots AND has a journal: the run is quarantined, so
        # the journal now belongs to a pending epoch and must be kept.
        flip_byte(scratch_archive / "runs" / "day-000002" / "records.bin")
        journal = scratch_archive / "journal" / "epoch-000002.journal"
        journal.write_bytes(b"whatever the campaign checkpointed")
        report = fsck_archive(CensusArchive(scratch_archive))
        assert [name for name, _ in report.quarantined] == ["day-000002"]
        assert journal.exists()


class TestFsckBehaviour:
    def test_dry_run_changes_nothing(self, scratch_archive, reference_tree):
        flip_byte(scratch_archive / "runs" / "day-000002" / "records.bin")
        before = archive_tree(scratch_archive)
        report = fsck_archive(CensusArchive(scratch_archive), repair=False)
        assert not report.repaired
        assert not report.clean
        assert [name for name, _ in report.quarantined] == ["day-000002"]
        assert archive_tree(scratch_archive) == before

    def test_clean_archive_is_a_no_op(self, scratch_archive, reference_tree):
        report = fsck_archive(CensusArchive(scratch_archive))
        assert report.clean
        assert report.ok_epochs == list(range(DAYS))
        assert archive_tree(scratch_archive) == reference_tree

    def test_missing_root_is_empty_report(self, tmp_path):
        report = fsck_archive(CensusArchive(tmp_path / "nothing-here"))
        assert report.clean
        assert report.ok_epochs == []

    def test_repeat_offender_keeps_every_copy(self, scratch_archive, reference_archive):
        flip_byte(scratch_archive / "runs" / "day-000002" / "records.bin")
        fsck_archive(CensusArchive(scratch_archive))
        # The same day rots again after being re-run.
        shutil.copytree(
            reference_archive / "runs" / "day-000002",
            scratch_archive / "runs" / "day-000002",
        )
        flip_byte(scratch_archive / "runs" / "day-000002" / "results.json")
        fsck_archive(CensusArchive(scratch_archive))
        quarantine = scratch_archive / "quarantine"
        assert (quarantine / "day-000002").is_dir()
        assert (quarantine / "day-000002.1").is_dir()

    def test_multi_day_rot_heals_in_one_catch_up(self, scratch_archive, reference_tree):
        flip_byte(scratch_archive / "runs" / "day-000001" / "records.bin")
        (scratch_archive / "runs" / "day-000003" / "manifest.json").unlink()
        report, outcomes = small_service(scratch_archive).catch_up(DAYS - 1)
        assert [name for name, _ in report.quarantined] == [
            "day-000001",
            "day-000003",
        ]
        statuses = [o.status for o in outcomes]
        assert statuses == [
            "already-present",
            "committed",
            "already-present",
            "committed",
            "already-present",
        ]
        assert live_tree(scratch_archive) == reference_tree

    def test_summary_lines_cover_every_action(self, scratch_archive):
        flip_byte(scratch_archive / "runs" / "day-000000" / "records.bin")
        (scratch_archive / "runs" / ".day-000009.staging").mkdir()
        (scratch_archive / "journal" / "junk.tmp").write_bytes(b"x")
        report = fsck_archive(CensusArchive(scratch_archive))
        text = "\n".join(report.summary_lines())
        assert "quarantined day-000000" in text
        assert "torn commit" in text
        assert "stale journal" in text
        assert "index rebuilt" in text
