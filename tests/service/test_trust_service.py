"""VP trust wired through the longitudinal service.

Three contracts:

* **neutrality** — a clean-roster service run with trust scoring on is
  byte-identical to one with it off (the sidecar is the only extra
  file);
* **verdict plumbing** — a distorted roster's convictions reach the
  archive (trust sidecar + manifest section), the outcome, and the
  affected targets' confidence markers;
* **fsck** — a rotten trust sidecar is repairable: quarantined alone,
  the run kept.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.measurement.faults import VpDistortionPlan
from repro.service import CensusService, ServiceConfig
from repro.service.archive import TRUST_FILE

DAYS = 3
#: Files excluded from byte comparisons: observability sidecars, never
#: census data (same contract as the telemetry suite).
SIDECARS = ("telemetry.json", "events.jsonl", TRUST_FILE)


def service_for(root, **kw):
    kw.setdefault("n_vps", 12)
    return CensusService(
        ServiceConfig(
            archive_root=str(root), n_unicast=150, tail_deployments=4, **kw
        )
    )


def census_digest(root):
    """One hash over every committed census byte (sidecars excluded)."""
    h = hashlib.sha256()
    for p in sorted(pathlib.Path(root, "runs").rglob("*")):
        if p.is_file() and p.name not in SIDECARS:
            h.update(p.name.encode())
            h.update(p.read_bytes())
    return h.hexdigest()


@pytest.fixture(scope="module")
def trust_off(tmp_path_factory):
    root = tmp_path_factory.mktemp("trust") / "off"
    service = service_for(root)
    outcomes = [service.run_epoch(e) for e in range(DAYS)]
    return service, outcomes, root


@pytest.fixture(scope="module")
def trust_on(tmp_path_factory):
    root = tmp_path_factory.mktemp("trust") / "on"
    service = service_for(root, trust=True)
    outcomes = [service.run_epoch(e) for e in range(DAYS)]
    return service, outcomes, root


@pytest.fixture(scope="module")
def distorted(tmp_path_factory):
    root = tmp_path_factory.mktemp("trust") / "distorted"
    service = service_for(
        root, trust=True, vp_distortion=VpDistortionPlan(fraction=0.25, seed=99)
    )
    outcomes = [service.run_epoch(e) for e in range(2)]
    return service, outcomes, root


class TestCleanNeutrality:
    def test_census_bytes_identical_with_trust_on(self, trust_off, trust_on):
        assert census_digest(trust_off[2]) == census_digest(trust_on[2])

    def test_nobody_convicted(self, trust_on):
        _, outcomes, _ = trust_on
        assert all(not o.untrusted_vps for o in outcomes)

    def test_clean_manifest_has_no_trust_section(self, trust_on):
        service, _, _ = trust_on
        assert "trust" not in service.archive.read_manifest(0)

    def test_sidecar_present_only_when_scoring(self, trust_off, trust_on):
        doc = trust_on[0].archive.read_trust(1)
        assert doc is not None
        assert doc["kind"] == "vp-trust"
        assert doc["n_untrusted"] == 0
        assert trust_off[0].archive.read_trust(1) is None


class TestDistortedService:
    def test_outcome_names_the_untrusted(self, distorted):
        _, outcomes, _ = distorted
        assert outcomes[0].untrusted_vps
        # Distortion is keyed per VP name: identical every epoch.
        assert outcomes[1].untrusted_vps == outcomes[0].untrusted_vps

    def test_manifest_trust_section(self, distorted):
        service, outcomes, _ = distorted
        section = service.archive.read_manifest(0)["trust"]
        assert section["enabled"] is True
        assert section["untrusted"] == outcomes[0].untrusted_vps
        assert set(section["reasons"]) == set(outcomes[0].untrusted_vps)

    def test_sidecar_matches_manifest(self, distorted):
        service, _, _ = distorted
        doc = service.archive.read_trust(0)
        manifest = service.archive.read_manifest(0)
        assert doc["n_untrusted"] == manifest["trust"]["n_untrusted"]
        flagged = [v["name"] for v in doc["verdicts"] if not v["trusted"]]
        assert sorted(flagged) == sorted(manifest["trust"]["untrusted"])

    def test_targets_carry_confidence_markers(self, distorted):
        service, _, _ = distorted
        targets = service.archive.read_results(0)["targets"]
        marked = [e for e in targets.values() if "confidence" in e]
        assert marked
        assert {e["confidence"] for e in marked} <= {"degraded", "insufficient"}

    def test_committed_outcomes_rehydrate_trust(self, distorted):
        """Re-running a committed epoch replays its verdicts off the
        manifest instead of recomputing."""
        service, outcomes, _ = distorted
        replayed = service.run_epoch(0)
        assert replayed.status == "already-present"
        assert replayed.untrusted_vps == outcomes[0].untrusted_vps


class TestTrustSidecarFsck:
    def test_corrupt_sidecar_is_quarantined_run_kept(self, distorted, tmp_path):
        import dataclasses
        import shutil

        service, _, source = distorted
        root = tmp_path / "archive"
        shutil.copytree(source, root)
        victim = CensusService(
            dataclasses.replace(service.config, archive_root=str(root))
        )
        sidecar = victim.archive.run_dir(0) / TRUST_FILE
        sidecar.write_text("{ not json", encoding="utf-8")
        report = victim.fsck()
        assert report.trust_quarantined
        assert not report.quarantined  # the run itself survived
        assert 0 in report.ok_epochs
        assert victim.archive.read_trust(0) is None
        assert victim.archive.read_results(0)["targets"]  # data intact
        assert any(
            "trust" in line for line in report.summary_lines()
        )
