"""Durable telemetry sidecars: byte-neutral, crash-safe, repairable.

The telemetry PR's service-level contract:

* **neutrality** — a telemetry-on timeline's census payloads (manifest,
  records, results, index) are byte-identical to a telemetry-off one;
  only the ``telemetry.json``/``events.jsonl`` sidecars differ;
* **crash safety** — sidecars ride inside the atomic commit, so a kill
  at any commit point leaves either a complete, seal-valid events file
  or none, and catch-up converges to byte-identical census outputs;
* **repairability** — fsck treats a rotten sidecar as repairable:
  quarantine the telemetry, keep the run;
* **regression sentinel** — a seeded slow stage is flagged by the
  timeline engine while clean epochs are not.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.measurement.campaign import CensusInterrupted
from repro.measurement.faults import FaultPlan
from repro.measurement.recordio import CorruptPayloadError
from repro.obs import parse_events, validate_slo_report
from repro.service.archive import EVENTS_FILE, TELEMETRY_FILE, telemetry_problems
from repro.workflow import small_service

from .conftest import DAYS, archive_tree
from .test_chaos_service import run_until_dead

#: Sidecar names excluded from census byte-identity comparisons.
SIDECARS = {TELEMETRY_FILE, EVENTS_FILE}


def census_tree(root):
    """The archive tree minus telemetry sidecars (the census bytes)."""
    return {
        path: data
        for path, data in archive_tree(root).items()
        if pathlib.PurePath(path).name not in SIDECARS
    }


def telemetry_service(root, fault_plan=None):
    return small_service(root, telemetry=True, fault_plan=fault_plan)


@pytest.fixture(scope="module")
def telemetry_archive(tmp_path_factory) -> pathlib.Path:
    """An uninterrupted 5-day telemetry-on timeline (read-only!)."""
    root = tmp_path_factory.mktemp("telemetry") / "archive"
    service = telemetry_service(root)
    for epoch in range(DAYS):
        service.run_epoch(epoch)
    return root


class TestByteNeutrality:
    def test_census_bytes_identical_to_plain_service(
        self, telemetry_archive, reference_tree
    ):
        reference_census = {
            path: data
            for path, data in reference_tree.items()
            if pathlib.PurePath(path).name not in SIDECARS
        }
        assert census_tree(telemetry_archive) == reference_census

    def test_sidecars_present_on_every_run(self, telemetry_archive):
        service = telemetry_service(telemetry_archive)
        for epoch in range(DAYS):
            run_dir = service.archive.run_dir(epoch)
            assert (run_dir / TELEMETRY_FILE).exists()
            assert (run_dir / EVENTS_FILE).exists()

    def test_sidecars_not_sealed_into_manifest(self, telemetry_archive):
        service = telemetry_service(telemetry_archive)
        manifest = service.archive.read_manifest(0)
        assert SIDECARS.isdisjoint(manifest["payloads"])


class TestTelemetryPayload:
    def test_telemetry_document_is_valid(self, telemetry_archive):
        service = telemetry_service(telemetry_archive)
        for epoch in range(DAYS):
            doc = service.archive.read_telemetry(epoch)
            assert telemetry_problems(doc) == []
            assert doc["epoch"] == epoch
            assert doc["stages"].get("census", 0) >= 0
            assert "analysis" in doc["stages"]
            validate_slo_report(doc["slo"])
            assert doc["metrics"]["counters"]["service_epochs_committed"] == 1

    def test_events_parse_and_match_seal(self, telemetry_archive):
        service = telemetry_service(telemetry_archive)
        for epoch in range(DAYS):
            text = (service.archive.run_dir(epoch) / EVENTS_FILE).read_text()
            events, problems = parse_events(text, strict=True)
            assert problems == []
            names = [e["name"] for e in events]
            assert names[0] == "epoch_start"
            assert "epoch_end" in names
            seal = service.archive.read_telemetry(epoch)["events"]
            assert seal["lines"] == len(text.splitlines())

    def test_plain_run_has_no_telemetry(self, reference_archive):
        service = small_service(reference_archive)
        assert service.archive.read_telemetry(0) is None

    def test_worker_metrics_folded_into_sidecar(self, tmp_path, monkeypatch):
        # With the epoch's census on a forked pool, the in-worker unit
        # counters must come home into the archived snapshot.
        import repro.service.service as service_mod
        from repro.exec import ExecutionPolicy

        root = tmp_path / "archive"
        telemetry_service(root).run_epoch(0)
        serial = telemetry_service(root).archive.read_telemetry(0)["metrics"]

        # The service config has no worker knob; wrap the campaign
        # factory so the same epoch runs on a 2-worker pool.
        real_campaign = service_mod.CensusCampaign
        monkeypatch.setattr(
            service_mod,
            "CensusCampaign",
            lambda *a, **kw: real_campaign(
                *a, executor=ExecutionPolicy(workers=2), **kw
            ),
        )
        pooled_root = tmp_path / "pooled"
        pooled_service = telemetry_service(pooled_root)
        pooled_service.run_epoch(0)
        pooled = pooled_service.archive.read_telemetry(0)["metrics"]

        # Unit counters shipped home from the forked workers (the serial
        # service path never builds exec units, so they exist only here)...
        assert pooled["counters"]["exec_unit_scans"] > 0
        assert "exec_unit_scans" not in serial["counters"]
        # ...census-level families agree with serial...
        assert pooled["counters"]["vps_ok"] == serial["counters"]["vps_ok"]
        assert (
            pooled["histograms"]["vp_scan_duration_hours"]
            == serial["histograms"]["vp_scan_duration_hours"]
        )
        # ...and the pooled census bytes are the serial bytes.
        assert census_tree(pooled_root) == census_tree(root)


class TestCrashSafety:
    @pytest.mark.parametrize(
        "point", ["commit:staged", "commit:renamed", "commit:indexed"]
    )
    def test_kill_inside_commit_never_tears_events(
        self, tmp_path, reference_tree, point
    ):
        root = tmp_path / "archive"
        assert run_until_dead(telemetry_service(root), DAYS - 1, commit_kill=point)
        # Every *committed* run has a complete, parseable events file.
        for run_dir in sorted((root / "runs").iterdir()):
            if run_dir.name.startswith("."):
                continue  # torn staging: fsck's job
            events_path = run_dir / EVENTS_FILE
            if events_path.exists():
                _, problems = parse_events(events_path.read_text(), strict=True)
                assert problems == [], run_dir.name
        # Catch-up converges to the exact census bytes of an
        # uninterrupted telemetry-off timeline.
        report, outcomes = telemetry_service(root).catch_up(DAYS - 1)
        reference_census = {
            p: d
            for p, d in reference_tree.items()
            if pathlib.PurePath(p).name not in SIDECARS
        }
        assert census_tree(root) == reference_census
        assert not list((root / "journal").iterdir())

    def test_mid_census_interrupt_then_catch_up(self, tmp_path, reference_tree):
        root = tmp_path / "archive"
        service = telemetry_service(root)
        service.run_epoch(0)
        with pytest.raises(CensusInterrupted):
            service.run_epoch(1, abort_after_vps=5)
        assert service.archive.journal_path(1).exists()
        telemetry_service(root).catch_up(DAYS - 1)
        reference_census = {
            p: d
            for p, d in reference_tree.items()
            if pathlib.PurePath(p).name not in SIDECARS
        }
        assert census_tree(root) == reference_census
        # The resumed epoch still archived complete telemetry.
        assert telemetry_service(root).archive.read_telemetry(1) is not None

    def test_catch_up_mixes_plain_and_telemetry_epochs(
        self, tmp_path, reference_tree
    ):
        # Telemetry switched on mid-history: old runs stay valid and
        # sidecar-less, new runs carry telemetry, census bytes converge.
        root = tmp_path / "archive"
        plain = small_service(root)
        plain.run_epoch(0)
        plain.run_epoch(1)
        service = telemetry_service(root)
        service.catch_up(DAYS - 1)
        reference_census = {
            p: d
            for p, d in reference_tree.items()
            if pathlib.PurePath(p).name not in SIDECARS
        }
        assert census_tree(root) == reference_census
        assert service.archive.read_telemetry(0) is None
        assert service.archive.read_telemetry(DAYS - 1) is not None


class TestFsckRepair:
    def _copy(self, telemetry_archive, tmp_path):
        import shutil

        root = tmp_path / "archive"
        shutil.copytree(telemetry_archive, root)
        return root

    def test_truncated_events_quarantined_run_kept(self, telemetry_archive, tmp_path):
        root = self._copy(telemetry_archive, tmp_path)
        service = telemetry_service(root)
        events_path = service.archive.run_dir(2) / EVENTS_FILE
        data = events_path.read_bytes()
        events_path.write_bytes(data[: len(data) // 2])  # torn mid-line
        with pytest.raises(CorruptPayloadError):
            service.archive.read_telemetry(2)
        report = service.fsck()
        assert sorted(report.ok_epochs) == list(range(DAYS))  # run survives
        assert len(report.telemetry_quarantined) == 1
        assert report.telemetry_quarantined[0][0] == service.archive.run_dir(2).name
        # Sidecars moved out; the epoch now reads as telemetry-less.
        assert service.archive.read_telemetry(2) is None
        assert any((root / "quarantine").iterdir())
        # Second pass: nothing left to repair.
        assert service.fsck().clean

    def test_corrupt_telemetry_json_quarantined(self, telemetry_archive, tmp_path):
        root = self._copy(telemetry_archive, tmp_path)
        service = telemetry_service(root)
        (service.archive.run_dir(1) / TELEMETRY_FILE).write_text("{not json")
        report = service.fsck()
        assert sorted(report.ok_epochs) == list(range(DAYS))
        assert len(report.telemetry_quarantined) == 1
        assert service.archive.read_telemetry(1) is None

    def test_orphan_events_file_quarantined(self, telemetry_archive, tmp_path):
        root = self._copy(telemetry_archive, tmp_path)
        service = telemetry_service(root)
        (service.archive.run_dir(0) / TELEMETRY_FILE).unlink()
        report = service.fsck()
        assert sorted(report.ok_epochs) == list(range(DAYS))
        assert len(report.telemetry_quarantined) == 1

    def test_dry_run_reports_without_touching(self, telemetry_archive, tmp_path):
        root = self._copy(telemetry_archive, tmp_path)
        service = telemetry_service(root)
        (service.archive.run_dir(3) / TELEMETRY_FILE).write_text("{not json")
        before = archive_tree(root)
        report = service.fsck(repair=False)
        assert len(report.telemetry_quarantined) == 1
        assert not report.repaired
        assert archive_tree(root) == before

    def test_catch_up_after_sidecar_rot_keeps_census(
        self, telemetry_archive, tmp_path, reference_tree
    ):
        root = self._copy(telemetry_archive, tmp_path)
        service = telemetry_service(root)
        events_path = service.archive.run_dir(2) / EVENTS_FILE
        events_path.write_bytes(b"garbage that is not json lines")
        report, outcomes = service.catch_up(DAYS - 1)
        # No epoch was re-run: the census survived its sidecar.
        assert [o.status for o in outcomes] == ["already-present"] * DAYS
        reference_census = {
            p: d
            for p, d in reference_tree.items()
            if pathlib.PurePath(p).name not in SIDECARS
        }
        live = {
            p: d
            for p, d in census_tree(root).items()
            if not p.startswith("quarantine/")
        }
        assert live == reference_census


class TestRegressionSentinel:
    @pytest.fixture(scope="class")
    def seeded_archive(self, tmp_path_factory):
        """4 clean telemetry epochs, then one with a seeded slow stage."""
        root = tmp_path_factory.mktemp("seeded") / "archive"
        clean = telemetry_service(root)
        for epoch in range(DAYS - 1):
            clean.run_epoch(epoch)
        slow = telemetry_service(root, fault_plan=FaultPlan(hang_prob=1.0))
        slow.run_epoch(DAYS - 1)
        return root

    def test_clean_timeline_is_quiet(self, telemetry_archive):
        timeline, regressions = telemetry_service(telemetry_archive).timeline()
        assert timeline.epochs == list(range(DAYS))
        assert regressions == []

    def test_seeded_slow_stage_is_flagged(self, seeded_archive):
        timeline, regressions = telemetry_service(seeded_archive).timeline()
        assert any(
            r.metric == "vp_scan_hours_mean" and r.epoch == DAYS - 1
            for r in regressions
        ), [r.describe() for r in regressions]
        # The sentinel saw a ~100x jump, not borderline jitter.
        (reg,) = [r for r in regressions if r.metric == "vp_scan_hours_mean"]
        assert reg.score > 10

    def test_seeded_census_bytes_stay_identical(
        self, seeded_archive, reference_tree
    ):
        # The hang fault stretches only simulated duration telemetry;
        # the committed census bytes are untouched.
        reference_census = {
            p: d
            for p, d in reference_tree.items()
            if pathlib.PurePath(p).name not in SIDECARS
        }
        assert census_tree(seeded_archive) == reference_census

    def test_timeline_mixes_telemetry_less_epochs(self, tmp_path):
        root = tmp_path / "archive"
        plain = small_service(root)
        plain.run_epoch(0)
        plain.run_epoch(1)
        service = telemetry_service(root)
        service.run_epoch(2)
        timeline, _ = service.timeline()
        assert timeline.epochs == [0, 1, 2]
        assert len(timeline.metric("n_targets")) == 3
        assert len(timeline.metric("stage_seconds:census")) == 1
