"""End-to-end tests of the CensusStudy facade (the paper's whole pipeline)."""

import numpy as np
import pytest


class TestStudyPipeline:
    def test_lazy_caching(self, small_study):
        assert small_study.internet is small_study.internet
        assert small_study.platform is small_study.platform
        assert small_study.matrix is small_study.matrix
        assert small_study.analysis is small_study.analysis

    def test_censuses_count(self, small_study):
        assert len(small_study.censuses) == 2

    def test_no_false_positives_end_to_end(self, small_study):
        """The headline soundness property across the whole pipeline."""
        net = small_study.internet
        truly_anycast = {int(p) for p, a in zip(net.prefixes, net.is_anycast) if a}
        detected = set(small_study.analysis.anycast_prefixes)
        assert detected <= truly_anycast

    def test_most_anycast_recovered(self, small_study):
        net = small_study.internet
        assert small_study.analysis.n_anycast > 0.7 * net.n_anycast_slash24

    def test_glance_table_shape(self, small_study):
        rows = small_study.glance_table()
        assert [r.label for r in rows] == [
            "All", ">= 5 Replicas", "/\\ CAIDA-100", "/\\ Alexa-100k",
        ]
        all_row = rows[0]
        assert all_row.ip24 >= rows[1].ip24
        assert rows[2].ases <= 8

    def test_funnels_per_census(self, small_study):
        funnels = small_study.funnels()
        assert len(funnels) == 2
        for funnel in funnels:
            assert funnel.anycast_found == small_study.analysis.n_anycast

    def test_combination_increases_or_keeps_recall(self, small_study, city_db):
        """Fig. 12: the censuses' combination finds at least as many anycast
        /24s as a single census."""
        from repro.census.analysis import analyze_matrix
        from repro.census.combine import combine_censuses

        single = analyze_matrix(
            combine_censuses(small_study.censuses[:1]), city_db=city_db
        )
        assert small_study.analysis.n_anycast >= single.n_anycast

    def test_validation_runs_for_cloudflare(self, small_study):
        report = small_study.validate("CLOUDFLARENET,US")
        assert report.per_prefix
        assert 0.4 <= report.tpr_mean <= 1.0

    def test_deployment_lookup(self, small_study):
        dep = small_study.deployment("GOOGLE,US")
        assert dep.entry.asn == 15169
        with pytest.raises(KeyError):
            small_study.deployment("NOT-AN-AS")

    def test_portscan_cached(self, small_study):
        assert small_study.portscan is small_study.portscan
        assert small_study.portscan.n_hosts > 0

    def test_hitlist_matches_internet(self, small_study):
        assert len(small_study.hitlist) == small_study.internet.n_targets


class TestReplicaStatistics:
    def test_average_footprint_order_of_magnitude(self, small_study):
        """The paper's abstract: deployments average O(10) replicas."""
        char = small_study.characterization
        counts = char.replicas_per_ip24()
        assert 2 <= counts.mean() <= 40

    def test_wide_deployments_enumerated_widely(self, small_study):
        char = small_study.characterization
        cf = char.footprints.get(13335)
        assert cf is not None
        assert cf.mean_replicas >= 10  # CloudFlare's 45 sites from 100 VPs
