"""Shared fixtures: scaled-down ground truths, platforms, and censuses.

Session-scoped fixtures cache the expensive objects (a census study takes
seconds); tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo.cities import CityDB, default_city_db
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform
from repro.workflow import CensusStudy, StudyConfig


@pytest.fixture(scope="session")
def city_db() -> CityDB:
    return default_city_db()


@pytest.fixture(scope="session")
def tiny_internet() -> SyntheticInternet:
    """A small but complete ground truth (top-100 + 20 tail ASes)."""
    return SyntheticInternet(
        InternetConfig(seed=7, n_unicast_slash24=600, tail_deployments=20)
    )


@pytest.fixture(scope="session")
def tiny_platform(city_db):
    return planetlab_platform(count=60, seed=11, city_db=city_db)


@pytest.fixture(scope="session")
def tiny_campaign(tiny_internet, tiny_platform) -> CensusCampaign:
    return CensusCampaign(tiny_internet, tiny_platform, seed=99)


@pytest.fixture(scope="session")
def tiny_census(tiny_campaign):
    """One census over the tiny internet (no pre-census blacklist)."""
    return tiny_campaign.run_census(availability=1.0)


@pytest.fixture(scope="session")
def small_study() -> CensusStudy:
    """An end-to-end study, evaluated lazily by the tests that need it."""
    return CensusStudy(
        StudyConfig(
            internet=InternetConfig(seed=5, n_unicast_slash24=1200, tail_deployments=40),
            n_vantage_points=100,
            n_censuses=2,
        )
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
