#!/usr/bin/env python3
"""A full census campaign, stage by stage.

Walks through the paper's workflow (Fig. 1) explicitly instead of using
the CensusStudy facade: hitlist generation, the single-VP pre-census that
seeds the blacklist, two full censuses, min-RTT combination, iGreedy
analysis, per-AS characterization, and the TCP portscan of the top
deployments.

Run time: ~20 s.

    python examples/census_campaign.py
"""

from repro.census.analysis import analyze_matrix, census_funnel
from repro.census.characterize import Characterization
from repro.census.combine import combine_censuses
from repro.census.report import format_table
from repro.internet.hitlist import generate_hitlist
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform
from repro.measurement.portscan import run_portscan


def main() -> None:
    # --- Substrate: ground truth and platform. --------------------------
    internet = SyntheticInternet(
        InternetConfig(seed=42, n_unicast_slash24=2500, tail_deployments=80)
    )
    platform = planetlab_platform(count=130, seed=41)
    print(f"Synthetic Internet: {internet.n_targets} routed /24s, "
          f"{internet.n_anycast_slash24} anycast in {internet.anycast_ases} ASes")
    print(f"Platform: {len(platform)} PlanetLab-like vantage points\n")

    hitlist = generate_hitlist(internet)
    print(f"Hitlist: {len(hitlist)} representatives, "
          f"{hitlist.never_alive_count} never-alive (score <= -2)\n")

    # --- Measurement: pre-census + two censuses. ------------------------
    campaign = CensusCampaign(internet, platform, seed=7)
    blacklisted = campaign.run_precensus()
    print(f"Pre-census blacklisted {blacklisted} administratively-prohibited /24s")

    censuses = [campaign.run_census(availability=0.85) for _ in range(2)]
    for census in censuses:
        print(f"Census {census.census_id}: {census.n_vps} VPs, "
              f"{len(census.records)} records, "
              f"{len(census.greylist)} newly greylisted")
    print()

    # --- Analysis: combination + iGreedy. --------------------------------
    matrix = combine_censuses(censuses)
    analysis = analyze_matrix(matrix)
    funnel = census_funnel(censuses[0], internet, analysis)
    print("Funnel (census 1):")
    for stage, count in funnel.rows():
        print(f"  {stage:30s} {count}")
    print()

    # --- Characterization. ------------------------------------------------
    char = Characterization(analysis, internet)
    print("Top-10 anycast ASes by geographical footprint (paper Fig. 9):")
    rows = [
        (
            fp.autonomous_system.whois_label,
            fp.autonomous_system.category.coarse,
            fp.n_ip24,
            f"{fp.mean_replicas:.1f}",
            len(fp.cities),
        )
        for fp in char.top_ases(k=10)
    ]
    print(format_table(rows, ["AS", "category", "IP/24", "replicas", "cities"]))

    print("\nBusiness-category breakdown (paper Fig. 11):")
    for category, share in char.category_breakdown().items():
        print(f"  {category:10s} {share:5.1%}")

    # --- Services: portscan of the top deployments. ----------------------
    print("\nTCP portscan of the top-100 deployments (paper Fig. 14):")
    scan = run_portscan(internet)
    print(f"  responding IPs/ASes:  {len(scan.responding_hosts)}/{scan.n_ases}")
    print(f"  total open ports:     {scan.total_open_ports}")
    print(f"  well-known services:  {len(scan.well_known_services())} "
          f"({len(scan.ssl_services())} over SSL)")
    print(f"  software fingerprints: {sorted(scan.software_seen())[:6]} ...")


if __name__ == "__main__":
    main()
