#!/usr/bin/env python3
"""Tracking anycast evolution across census epochs (paper Sec. 5).

The paper: "with later censuses, we observed small but interesting changes
in the anycast landscape" and proposes periodic censuses to track them.
This example runs censuses over two epochs of a drifting anycast landscape
— deployments expand their PoPs, new adopters appear — and diffs the two
census views per AS.

Run time: ~25 s.

    python examples/longitudinal_tracking.py
"""

from repro.census.analysis import analyze_matrix
from repro.census.characterize import Characterization
from repro.census.combine import matrix_from_census
from repro.census.longitudinal import EvolutionConfig, compare_epochs, evolve_catalog
from repro.internet.catalog import full_catalog
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform


def census_epoch(catalog, platform, city_db=None):
    internet = SyntheticInternet(
        InternetConfig(seed=5, n_unicast_slash24=400, tail_deployments=0),
        catalog=catalog,
    )
    campaign = CensusCampaign(internet, platform, seed=77)
    matrix = matrix_from_census(campaign.run_census(availability=0.9))
    analysis = analyze_matrix(matrix)
    return Characterization(analysis, internet)


def main() -> None:
    platform = planetlab_platform(count=120, seed=41)
    catalog_t0 = full_catalog(tail_count=40, seed=7)
    catalog_t1 = evolve_catalog(
        catalog_t0, seed=3,
        config=EvolutionConfig(growth_prob=0.3, new_adopters=8),
    )

    print("Epoch 0 census...")
    epoch0 = census_epoch(catalog_t0, platform)
    print("Epoch 1 census (three months later)...\n")
    epoch1 = census_epoch(catalog_t1, platform)

    report = compare_epochs(epoch0, epoch1)
    print(f"ASes tracked: {report.n_tracked}")
    print(f"  grown:       {len(report.grown)}")
    print(f"  shrunk:      {len(report.shrunk)}")
    print(f"  stable:      {len(report.stable)}")
    print(f"  new anycasters: {len(report.appeared)}")
    print(f"  gone:        {len(report.disappeared)}\n")

    print("Largest expansions observed:")
    for change in sorted(report.grown, key=lambda c: -c.replica_delta)[:8]:
        print(f"  {change.name[:20]:20s} {change.replicas_before:5.1f} -> "
              f"{change.replicas_after:5.1f} replicas/IP24")

    if report.appeared:
        print("\nNew anycast adopters detected:")
        for change in report.appeared[:5]:
            print(f"  {change.name[:30]:30s} ({change.ip24_after} /24s, "
                  f"{change.replicas_after:.0f} replicas)")


if __name__ == "__main__":
    main()
