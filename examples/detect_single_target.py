#!/usr/bin/env python3
"""Is this IP anycast?  The analysis technique on a single target.

Shows the core iGreedy pipeline (paper Fig. 3) step by step, without the
census machinery: hand-built latency samples from a handful of vantage
points, speed-of-light-violation detection, MIS enumeration, and
population-biased geolocation — for both a unicast and an anycast target.

Run time: <1 s.

    python examples/detect_single_target.py
"""

from repro.core import LatencySample, igreedy
from repro.geo import FIBER_SPEED_KM_PER_MS, default_city_db


def rtt_toward(vp_city, server_city, stretch=1.2):
    """A physically-plausible RTT between two cities (ms)."""
    distance = vp_city.location.distance_km(server_city.location)
    return 2.0 * distance * stretch / FIBER_SPEED_KM_PER_MS + 1.5


def main() -> None:
    db = default_city_db()
    vps = [db.get(name) for name in (
        "Paris", "London", "New York", "Seattle", "Tokyo", "Singapore",
        "Sydney", "Sao Paulo", "Johannesburg", "Moscow",
    )]

    # --- Target 1: an ordinary unicast server in Frankfurt. -------------
    frankfurt = db.get("Frankfurt")
    unicast_samples = [
        LatencySample(vp.name, vp.location, rtt_toward(vp, frankfurt))
        for vp in vps
    ]
    result = igreedy(unicast_samples, city_db=db)
    print("Target 1 — server in Frankfurt, measured from 10 cities:")
    print(f"  anycast?  {result.is_anycast}")
    print("  (every disk contains Frankfurt: no speed-of-light violation)\n")

    # --- Target 2: an anycast service with three replicas. --------------
    replicas = [db.get(n) for n in ("New York", "Frankfurt", "Singapore")]
    anycast_samples = []
    for vp in vps:
        nearest = min(replicas, key=lambda r: vp.location.distance_km(r.location))
        anycast_samples.append(
            LatencySample(vp.name, vp.location, rtt_toward(vp, nearest))
        )
    result = igreedy(anycast_samples, city_db=db)
    print("Target 2 — same address answering from NY/Frankfurt/Singapore:")
    print(f"  anycast?        {result.is_anycast}")
    if result.detection.witness:
        i, j = result.detection.witness
        print(f"  witness pair:   samples #{i} and #{j} have disjoint disks")
    print(f"  replicas found: {result.replica_count} (true: {len(replicas)})")
    for replica in result.replicas:
        print(f"    - {replica.city} (confidence {replica.confidence:.2f})")


if __name__ == "__main__":
    main()
