#!/usr/bin/env python3
"""Map a CDN's anycast footprint and validate it against HTTP ground truth.

The paper's CDN use case (Sec. 3.4): CloudFlare reveals its serving site in
the CF-RAY header, so an HTTP probe from each vantage point yields a
measured ground truth that the latency-based census geolocation can be
scored against — true-positive rate at city level, and distance error for
the misclassified replicas.

Run time: ~15 s.

    python examples/cdn_mapping.py
"""

import numpy as np

from repro.measurement.httpprobe import (
    http_probe,
    replica_city_from_headers,
)
from repro.workflow import small_study


def main() -> None:
    study = small_study()
    cdn = study.deployment("CLOUDFLARENET,US")

    # 1. What does one HTTP probe look like?
    vp = study.platform.vantage_points[0]
    response = http_probe(cdn, vp, study.codebook)
    city = replica_city_from_headers(response, study.codebook)
    print(f"HTTP probe from {vp.city}:")
    print(f"  CF-RAY: {response.headers['CF-RAY']}")
    print(f"  -> served by the {city} replica\n")

    # 2. Census-based footprint vs HTTP ground truth.
    print("Scoring census geolocation against the HTTP ground truth...")
    report = study.validate("CLOUDFLARENET,US")
    print(f"  advertised sites (PAI):       {len(report.pai_cities)}")
    print(f"  visible via HTTP (GT):        {len(report.gt_cities)}  "
          f"(GT/PAI = {report.gt_pai:.2f})")
    print(f"  /24s scored:                  {len(report.per_prefix)}")
    print(f"  city-level TPR:               {report.tpr_mean:.2f} "
          f"+- {report.tpr_std:.2f}   (paper: 0.77)")
    print(f"  median error (misclassified): {report.median_error_km:.0f} km "
          f"  (paper: 434 km)\n")

    # 3. The replica map of one /24.
    prefix = cdn.prefixes[0]
    result = study.analysis.results[prefix]
    gt_names = {f"{c.name},{c.country}" for c in report.gt_cities}
    print(f"Replica map of CloudFlare /24 #{prefix} "
          f"({result.replica_count} replicas):")
    for name in result.city_names:
        marker = "OK " if name in gt_names else "?  "
        print(f"  {marker} {name}")
    print("\n('?' replicas are outside the HTTP-visible ground truth: either")
    print(" a site the platform cannot reach over HTTP, or a geolocation")
    print(" error of the population-biased classifier.)")


if __name__ == "__main__":
    main()
