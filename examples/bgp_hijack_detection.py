#!/usr/bin/env python3
"""BGP-hijack detection via anycast censuses (the paper's Sec. 5 outlook).

"Detecting geo-inconsistencies for knowingly unicast prefixes is
symptomatic of BGP hijacking attacks."  This example runs a baseline
census, injects a hijack of a unicast prefix (an attacker in Moscow
captures part of the Internet's routes), re-analyzes, and diffs the two
censuses to raise an alarm that geolocates the rogue origin.

Run time: ~15 s.

    python examples/bgp_hijack_detection.py
"""

from repro.census.analysis import analyze_matrix
from repro.census.combine import matrix_from_census
from repro.census.hijack import detect_hijacks, inject_hijack
from repro.geo.coords import GeoPoint
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform
from repro.net.addresses import format_slash24

ATTACKER = GeoPoint(55.76, 37.62)  # Moscow


def main() -> None:
    internet = SyntheticInternet(
        InternetConfig(seed=12, n_unicast_slash24=1200, tail_deployments=30)
    )
    platform = planetlab_platform(count=100, seed=41)
    campaign = CensusCampaign(internet, platform, seed=5)

    print("Baseline census...")
    matrix = matrix_from_census(campaign.run_census(availability=1.0))
    baseline = analyze_matrix(matrix)
    print(f"  {baseline.n_anycast} anycast /24s "
          f"(legitimate deployments)\n")

    # Choose a well-monitored unicast victim in the US.
    detected = set(baseline.anycast_prefixes)
    replying = set(int(p) for p in baseline.prefixes)
    victim = next(
        host for host in internet.unicast_hosts
        if host.prefix in replying
        and host.prefix not in detected
        and host.city is not None
        and host.city.country == "US"
    )
    print(f"Victim: {format_slash24(victim.prefix)}, "
          f"a unicast network in {victim.city}")
    print(f"Attacker: bogus announcement from "
          f"{ATTACKER.lat:.1f}N,{ATTACKER.lon:.1f}E capturing ~40% of routes\n")

    hijacked_matrix = inject_hijack(
        matrix, victim.prefix, ATTACKER, captured_fraction=0.4, seed=99
    )
    print("Next census (under attack)...")
    current = analyze_matrix(hijacked_matrix)

    alarms = detect_hijacks(baseline, current)
    print(f"  {len(alarms)} geo-inconsistency alarm(s)\n")
    for alarm in alarms:
        print(f"ALARM: {format_slash24(alarm.prefix)} was unicast, now shows "
              f"{alarm.replica_count} origins:")
        for city in alarm.observed_cities:
            distance = city.location.distance_km(ATTACKER)
            tag = "<- near the attacker" if distance < 1500 else ""
            print(f"    {city}  {tag}")
    if not alarms:
        print("(no alarm: the attack was invisible from this platform — "
              "try more vantage points)")


if __name__ == "__main__":
    main()
