#!/usr/bin/env python3
"""A longitudinal census service under daily probe churn.

"Day in the Life of RIPE Atlas": a real measurement platform never has
the same roster two days running — probes disconnect, drift, rejoin.
This example runs a 5-epoch census service whose 20-VP roster churns
daily (keyed 5% per-VP dropout), with the VP trust engine on, and shows
what the roster-free delta signatures buy: epochs whose roster moved
still run incrementally, recomputing only the rows the moving VPs
actually measured and recovering rejoin targets from older baselines —
instead of the all-or-nothing cold fallback a roster digest would force.

Run time: ~30 s.

    python examples/vp_churn_service.py
"""

import tempfile

from repro.census.longitudinal import EvolutionConfig
from repro.service import CensusService, ServiceConfig

EPOCHS = 5

#: Gentle landscape drift (a percent or two of targets move per day) so
#: the roster motion, not deployment churn, is the story on display.
GENTLE = EvolutionConfig(
    growth_prob=0.02, max_new_sites=1, shrink_prob=0.01, new_adopters=1
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        service = CensusService(
            ServiceConfig(
                archive_root=f"{tmp}/archive",
                n_unicast=150,
                tail_deployments=4,
                evolution=GENTLE,
                n_vps=20,
                roster_churn_prob=0.05,   # keyed per-(epoch, VP) dropout
                roster_seed=11,
                baseline_depth=4,         # rejoin recovery looks this far back
                trust=True,               # score every epoch's roster
            )
        )

        print(f"Running {EPOCHS} epochs with daily probe churn...\n")
        outcomes = [service.run_epoch(epoch) for epoch in range(EPOCHS)]

        print("epoch  roster  mode         recomputed  copied  recovered")
        for outcome in outcomes:
            manifest = service.archive.read_manifest(outcome.epoch)
            roster = len(manifest["vantage_points"])
            print(
                f"  {outcome.epoch}    {roster:3d}    "
                f"{outcome.mode or 'cold':11s}  "
                f"{outcome.n_recomputed:6d}    {outcome.n_copied:6d}  "
                f"{outcome.n_recovered:6d}"
            )

        print("\nRoster motion recorded in the manifests:")
        for epoch in range(1, EPOCHS):
            block = (service.archive.read_manifest(epoch).get("churn") or {}).get(
                "roster"
            )
            if block is None:
                print(f"  epoch {epoch}: roster unchanged")
            else:
                print(
                    f"  epoch {epoch}: joined={block['joined']} "
                    f"left={block['left']} "
                    f"({block['n_surviving']} survived)"
                )

        convicted = sorted({vp for o in outcomes for vp in o.untrusted_vps})
        print(
            "\nTrust engine: "
            + (f"convicted {convicted}" if convicted else "clean roster, "
               "nobody convicted — output byte-identical to a trust-off run")
        )

        recovered = sum(o.n_recovered for o in outcomes)
        incremental = [o for o in outcomes[1:] if o.mode == "incremental"]
        print(
            f"\n{len(incremental)}/{EPOCHS - 1} epochs stayed incremental, "
            f"{recovered} targets recovered from pre-disconnect baselines — "
            "under an all-or-nothing roster digest every epoch after a "
            "roster move would have gone cold, and a rejoining VP could "
            "never have been recovered.  Every committed epoch is "
            "byte-equal to a cold recompute."
        )


if __name__ == "__main__":
    main()
