#!/usr/bin/env python3
"""Observability: trace a census study and inspect its run manifest.

Runs a tiny study with tracing and metrics enabled, prints the
hierarchical span tree (repeated siblings aggregate into ``×N`` lines),
the headline counters, and writes a JSON run manifest that validates
against the schema in ``repro.obs.manifest``.

Observability is behaviour-neutral: the scientific outputs of a traced
run are identical to an untraced one — only the trace/manifest carry
wall-clock timestamps.

Run time: ~5 s.

    python examples/trace_study.py
"""

import json
import tempfile
from pathlib import Path

from repro.obs import render_trace, validate_manifest
from repro.workflow import small_study


def main() -> None:
    study = small_study(trace=True, metrics=True)

    print("Running traced censuses and analysis (a few seconds)...\n")
    study.characterization  # force the full pipeline

    print("Span tree:")
    print(render_trace(study.tracer))

    counters = study.metrics.snapshot()["counters"]
    print("\nHeadline counters:")
    for name in (
        "probes_sent",
        "censuses_completed",
        "targets_analyzed",
        "targets_classified_anycast",
        "replicas_enumerated",
    ):
        print(f"  {name:30s} {counters.get(name, 0)}")

    with tempfile.TemporaryDirectory() as tmp:
        path = study.write_manifest(Path(tmp) / "manifest.json")
        doc = json.loads(path.read_text())
        validate_manifest(doc)
        print(f"\nManifest written and validated ({path.stat().st_size} bytes).")
        print(f"Pipeline stages covered: {', '.join(doc['pipeline_stages'])}")


if __name__ == "__main__":
    main()
