#!/usr/bin/env python3
"""A routing incident through the eyes of the longitudinal service.

Runs the laptop-scale census service for eight epochs over the real BGP
routing plane with the alarm pass enabled, and injects one MOAS hijack
at epoch 3: an attacker AS originates a unicast /24 it does not own,
capturing most vantage points' routes.  The census never sees BGP —
only the RTT matrix the hijack perturbs — yet the epoch diff flags the
victim with a typed ``hijack`` verdict, while the seven clean epochs
(catalog drift included) raise zero alarms.

The same story is queryable offline:

    repro service alarms --archive <dir>     # exits 7 when alarms exist

Run time: ~10 s.

    python examples/hijack_timeline.py
"""

import tempfile
from pathlib import Path

from repro.bgp import RouteEvent, RouteEventKind, RouteEventPlan
from repro.workflow import small_service

DAYS = 8
HIJACK_EPOCH = 3


def main() -> None:
    archive = Path(tempfile.mkdtemp(prefix="repro-hijack-")) / "archive"

    plan = RouteEventPlan.single(
        RouteEvent(kind=RouteEventKind.MOAS_HIJACK, epoch=HIJACK_EPOCH),
        seed=3,
    )
    service = small_service(
        archive, routing="bgp", alarms=True, route_events=plan
    )

    print(f"Running {DAYS} BGP-routed epochs into {archive} ...\n")
    for epoch in range(DAYS):
        outcome = service.run_epoch(epoch)
        events = ", ".join(
            f"{e['kind']}{'' if e['applied'] else ' (inert)'}"
            for e in outcome.route_events
        ) or "none"
        alarms = outcome.alarming
        flag = (
            " ".join(
                f"<< {a.verdict.value.upper()} "
                f"{a.prefix} conf={a.confidence:.2f}"
                for a in alarms
            )
            if alarms
            else ""
        )
        print(
            f"  epoch {epoch}: {outcome.n_anycast} anycast / "
            f"{outcome.n_targets} targets, events: {events}  {flag}"
        )

    print("\nAlarm history (repro service alarms):")
    rows = service.alarm_history()
    for row in rows:
        print(
            f"  day {row['epoch']}: {row['verdict']} on prefix "
            f"{row['prefix']} (confidence {row['confidence']:.2f})"
        )
        print(f"    {row['detail']}")

    clean_epochs = DAYS - len({row["epoch"] for row in rows})
    print(
        f"\n{len(rows)} alarm(s) on record; "
        f"{clean_epochs} clean epochs raised none."
    )
    assert rows, "the injected hijack must be on record"
    assert all(row["epoch"] == HIJACK_EPOCH for row in rows)


if __name__ == "__main__":
    main()
