#!/usr/bin/env python3
"""A daily anycast census service with a crash-tolerant archive.

The paper proposes running the census periodically to track how the
anycast landscape evolves (Sec. 5).  This example operates that idea as
a *service*: dated runs land in an append-only archive, each day's
analysis reuses the previous day's archived results for every target
whose RTT signature did not change (incremental recompute), and the
archive self-heals — kill the process anywhere, corrupt a day on disk,
and ``catch-up`` restores the exact bytes an uninterrupted timeline
would have produced.

Run time: ~5 s.

    python examples/daily_census.py

The CLI speaks the same archive::

    repro-anycast service history --archive /tmp/anycast-archive
    repro-anycast service fsck --archive /tmp/anycast-archive
"""

import shutil
import tempfile

from repro.workflow import small_service


def main() -> None:
    root = tempfile.mkdtemp(prefix="anycast-archive-")
    try:
        service = small_service(root)

        print("Running a three-day census schedule...")
        for day in range(3):
            outcome = service.run_epoch(day)
            print(
                f"  day {day}: {outcome.mode:11s} "
                f"recomputed {outcome.n_recomputed:4d} targets, "
                f"copied {outcome.n_copied:4d} from day "
                f"{outcome.baseline_epoch} "
                f"({outcome.n_anycast} anycast /24s)"
            )

        print("\nSimulating a crash: corrupting day 1 on disk...")
        records = service.archive.run_dir(1) / "records.bin"
        records.write_bytes(records.read_bytes()[:-20])  # torn write

        print("Fresh service starts up, fscks, and catches up:")
        fresh = small_service(root)
        report, outcomes = fresh.catch_up(2)
        for line in report.summary_lines():
            print(f"  {line}")
        for outcome in outcomes:
            print(f"  day {outcome.epoch}: {outcome.status}")

        print("\nDay-over-day churn (from the archived manifests):")
        for row in fresh.history():
            churn = row["churn"]
            if churn is None:
                continue
            print(
                f"  day {churn['epoch_before']} -> {churn['epoch_after']}: "
                f"+{churn['replicas']['births']}/-{churn['replicas']['deaths']} "
                f"replicas, {churn['ases']['grown']} AS(es) grew"
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
