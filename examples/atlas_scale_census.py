#!/usr/bin/env python3
"""Probing the Atlas-scale frontier: a census far bigger than RAM wants.

The paper measured ~10.6M /24s from ~250 PlanetLab nodes; RIPE Atlas
today offers ~10k vantage points, a ~40× larger VP×target product whose
dense RTT matrix alone is tens of gigabytes.  This example runs a
*reduced* frontier probe — default 64 VPs × 20k targets, a shape any
laptop handles in seconds — through the exact machinery that scales to
the full product:

* records stream through ``iter_raw_batches`` in O(batch) heap, never
  materializing the journal;
* the fold is the packed-key sort (byte-identical to the scattered
  ``np.minimum.at`` it replaced, measurably faster);
* the output planes live on a :class:`MatrixStore` (memmap here), so
  the matrix never touches the Python heap and worker processes attach
  by token instead of receiving pickled arrays.

Scale the numbers up with ``--vps`` / ``--targets`` to find your own
host's frontier; ``benchmarks/bench_scaling_frontier.py`` automates the
sweep with time and heap budgets.

Run time at the default scale: ~5 s.

    python examples/atlas_scale_census.py --vps 64 --targets 20000
"""

import argparse
import io
import time
import tracemalloc

import numpy as np

from repro.census.combine import (
    matrix_from_record_batches,
    matrix_from_records,
    reply_prefix_union,
)
from repro.geo.coords import GeoPoint
from repro.measurement.recordio import (
    CensusRecords,
    iter_raw_batches,
    write_raw_checksummed,
)


def synth_journal(n_vps: int, n_targets: int, samples_per_target: int) -> bytes:
    """A sealed raw-record payload standing in for one census's journal."""
    rng = np.random.default_rng(2015)
    n = n_targets * samples_per_target
    records = CensusRecords(
        census_id=1,
        vp_index=rng.integers(0, n_vps, n).astype(np.uint16),
        prefix=rng.integers(0, n_targets * 4, n).astype(np.uint32),
        timestamp_ms=rng.uniform(0, 8.64e7, n),
        rtt_ms=rng.uniform(1.0, 350.0, n).astype(np.float32),
        flag=np.zeros(n, dtype=np.int8),
    )
    sink = io.BytesIO()
    write_raw_checksummed(records, sink)
    return sink.getvalue()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vps", type=int, default=64, help="roster width")
    parser.add_argument("--targets", type=int, default=20_000,
                        help="distinct /24 targets in the journal")
    parser.add_argument("--samples", type=int, default=4,
                        help="records per target in the synthetic journal")
    parser.add_argument("--batch", type=int, default=1 << 16,
                        help="records per streamed batch")
    args = parser.parse_args()

    rng = np.random.default_rng(7)
    names = [f"atlas-{i:05d}" for i in range(args.vps)]
    locations = [
        GeoPoint(float(a), float(b))
        for a, b in zip(
            rng.uniform(-60, 60, args.vps), rng.uniform(-170, 170, args.vps)
        )
    ]

    print(f"Synthesizing a journal: {args.vps} VPs x ~{args.targets:,} targets...")
    blob = synth_journal(args.vps, args.targets, args.samples)
    print(f"  journal: {len(blob) / 1e6:.1f} MB sealed")

    # -- streaming + memmap store: the Atlas-scale path -----------------
    tracemalloc.start()
    start = time.perf_counter()
    union = reply_prefix_union(iter_raw_batches(io.BytesIO(blob), args.batch))
    matrix = matrix_from_record_batches(
        iter_raw_batches(io.BytesIO(blob), args.batch),
        names,
        locations,
        prefixes=union,
        store="memmap",
    )
    stream_s = time.perf_counter() - start
    stream_peak = tracemalloc.get_traced_memory()[1] / 1e6
    tracemalloc.stop()
    cells = matrix.n_targets * matrix.n_vps
    print(
        f"  streaming+memmap: {cells:,} cells in {stream_s:.2f}s, "
        f"heap peak {stream_peak:.1f} MB "
        f"(planes: {matrix.rtt_ms.nbytes / 1e6:.1f} MB, off-heap)"
    )

    # -- the classic one-shot inline path, for contrast ------------------
    tracemalloc.start()
    start = time.perf_counter()
    from repro.measurement.recordio import read_raw_checksummed

    records = read_raw_checksummed(io.BytesIO(blob))
    inline = matrix_from_records(records, names, locations, store="inline")
    inline_s = time.perf_counter() - start
    inline_peak = tracemalloc.get_traced_memory()[1] / 1e6
    tracemalloc.stop()
    print(
        f"  one-shot inline:  {cells:,} cells in {inline_s:.2f}s, "
        f"heap peak {inline_peak:.1f} MB"
    )

    identical = (
        np.asarray(matrix.rtt_ms).tobytes() == inline.rtt_ms.tobytes()
        and np.asarray(matrix.sample_count).tobytes()
        == inline.sample_count.tobytes()
    )
    print(f"  byte-identical planes across paths: {identical}")
    assert identical

    token = matrix.store.token()
    print(
        f"\nWorker hand-off: a {matrix.rtt_ms.nbytes / 1e6:.1f} MB plane "
        f"crosses process boundaries as a ~{len(repr(token))}-byte token"
    )
    ratio = inline_peak / max(stream_peak, 0.1)
    print(
        f"Heap-frontier headroom at this shape: {ratio:.1f}x "
        f"(grows with the journal; see benchmarks/bench_scaling_frontier.py)"
    )
    matrix.store.close()


if __name__ == "__main__":
    main()
