#!/usr/bin/env python3
"""Quickstart: run a small anycast census end to end.

Builds a scaled-down synthetic Internet (the full top-100 anycast catalog
plus a small unicast haystack), measures it from a PlanetLab-like platform,
and prints the paper's headline table (Fig. 10) plus one deployment's
discovered replicas.

Run time: ~10 s.

    python examples/quickstart.py
"""

from repro.census.report import format_table
from repro.workflow import small_study


def main() -> None:
    study = small_study()

    print("Running censuses and analysis (a few seconds)...\n")
    rows = study.glance_table()
    print("Census at a glance (paper Fig. 10):")
    print(
        format_table(
            [
                (r.label, r.ip24, r.ases, r.cities, r.countries, r.replicas)
                for r in rows
            ],
            headers=["", "IP/24", "ASes", "Cities", "CC", "Replicas"],
        )
    )

    # Zoom into one deployment: CloudFlare, the paper's biggest anycaster.
    deployment = study.deployment("CLOUDFLARENET,US")
    prefix = deployment.prefixes[0]
    result = study.analysis.results[prefix]
    print(f"\nCloudFlare {deployment.entry.n_slash24} anycast /24s; "
          f"ground truth {deployment.site_count} sites.")
    print(f"One /24 enumerated to {result.replica_count} replicas "
          f"(conservative lower bound), geolocated to:")
    for name in result.city_names:
        print(f"  - {name}")

    funnel = study.funnels()[0]
    print("\nCensus funnel (paper Fig. 4):")
    for stage, count in funnel.rows():
        print(f"  {stage:30s} {count}")


if __name__ == "__main__":
    main()
