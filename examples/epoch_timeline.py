#!/usr/bin/env python3
"""Operating a telemetry-on census service and reading its timeline.

Runs a laptop-scale longitudinal service for a week of epochs with the
telemetry subsystem enabled, then answers the operator's questions:

* what did each epoch cost, stage by stage (from the archived sidecars)?
* did any day regress against its own history (rolling median/MAD)?
* did every epoch meet its latency and error budgets (SLO verdicts)?

Finally it exports one epoch in the two standard interchange formats:
Prometheus text exposition (scrape/diff it) and a Chrome trace-event
file (open it in Perfetto / chrome://tracing).

Run time: ~10 s.

    python examples/epoch_timeline.py
"""

import json
import tempfile
from pathlib import Path

from repro.obs import render_timeline, to_chrome_trace, to_prometheus
from repro.workflow import small_service

DAYS = 5


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-timeline-"))
    archive = workdir / "archive"

    print(f"Running {DAYS} telemetry-on epochs into {archive} ...\n")
    service = small_service(archive, telemetry=True)
    for epoch in range(DAYS):
        outcome = service.run_epoch(epoch)
        telemetry = service.archive.read_telemetry(epoch)
        stages = ", ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in sorted(telemetry["stages"].items())
        )
        print(
            f"  epoch {epoch}: {outcome.n_targets} targets, "
            f"slo={telemetry['slo']['verdict']}  ({stages})"
        )

    print("\nLongitudinal health (repro service timeline):")
    timeline, regressions = service.timeline()
    for line in render_timeline(timeline, regressions):
        print(line)
    print(f"\nregressions flagged: {len(regressions)}")

    # Export the last epoch for external tools (repro obs export).
    telemetry = service.archive.read_telemetry(DAYS - 1)
    prom_path = workdir / "metrics.prom"
    prom_path.write_text(to_prometheus(telemetry["metrics"]))
    trace_path = workdir / "trace.json"
    trace_path.write_text(
        json.dumps(to_chrome_trace(telemetry["trace"]), indent=2) + "\n"
    )
    print(f"\nPrometheus metrics: {prom_path}")
    print(f"Chrome trace (open in Perfetto): {trace_path}")


if __name__ == "__main__":
    main()
