#!/usr/bin/env python3
"""Reproduce the whole paper in one run.

Runs the shared paper-scale study (full anycast catalog, 250 VPs, four
combined censuses) and prints every headline exhibit in the paper's order.
For the asserted paper-vs-measured comparisons, run the benchmark harness
instead (`pytest benchmarks/ --benchmark-only`).

Run time: ~60 s.

    python examples/reproduce_paper.py
"""

import numpy as np

from repro.census.geomap import replica_density_map
from repro.census.protocols import protocol_recall_table
from repro.census.report import format_table, quantile_at
from repro.core.igreedy import IGreedyConfig
from repro.internet.topology import InternetConfig
from repro.workflow import CensusStudy, StudyConfig


def main() -> None:
    study = CensusStudy(
        StudyConfig(
            internet=InternetConfig(seed=2015, n_unicast_slash24=8000, tail_deployments=260),
            n_vantage_points=250,
            n_censuses=4,
            igreedy=IGreedyConfig(),
        )
    )

    print("=" * 64)
    print("Fig. 4 — census funnel")
    print("=" * 64)
    for stage, count in study.funnels()[0].rows():
        print(f"  {stage:32s} {count}")

    print("\n" + "=" * 64)
    print("Fig. 6 — protocol recall (binary except ICMP)")
    print("=" * 64)
    deployments = [study.deployment(n) for n in
                   ("OPENDNS,US", "EDGECAST,US", "CLOUDFLARENET,US", "MICROSOFT,US")]
    table = protocol_recall_table(deployments)
    for name, rates in table.items():
        cells = " ".join(f"{k}={v:.2f}" for k, v in rates.items())
        print(f"  {name:18s} {cells}")

    print("\n" + "=" * 64)
    print("Fig. 7 — validation against HTTP ground truth")
    print("=" * 64)
    for name in ("CLOUDFLARENET,US", "EDGECAST,US"):
        report = study.validate(name)
        print(f"  {name:18s} TPR={report.tpr_mean:.2f}  "
              f"median err={report.median_error_km:.0f} km  GT/PAI={report.gt_pai:.2f}")

    print("\n" + "=" * 64)
    print("Fig. 8 — per-VP completion time (rescaled to 6.6M targets)")
    print("=" * 64)
    nominal = 6_600_000 / 1000.0 / 3600.0
    loads = np.concatenate([
        [vp.host_load for vp in census.platform.vantage_points]
        for census in study.censuses
    ])
    durations = nominal * loads
    print(f"  P(<= 2h) = {quantile_at(durations, 2.0):.2f}   "
          f"P(<= 5h) = {quantile_at(durations, 5.0):.2f}")

    print("\n" + "=" * 64)
    print("Fig. 10 — censuses at a glance")
    print("=" * 64)
    rows = [(r.label, r.ip24, r.ases, r.cities, r.countries, r.replicas)
            for r in study.glance_table()]
    print(format_table(rows, ["", "IP/24", "ASes", "Cities", "CC", "Replicas"]))

    print("\n" + "=" * 64)
    print("Fig. 9 — top-15 anycast ASes by footprint")
    print("=" * 64)
    rows = [
        (i + 1, fp.autonomous_system.whois_label, fp.autonomous_system.category.coarse,
         fp.n_ip24, f"{fp.mean_replicas:.1f}")
        for i, fp in enumerate(study.characterization.top_ases(k=15))
    ]
    print(format_table(rows, ["#", "AS", "cat", "IP/24", "replicas"]))

    print("\n" + "=" * 64)
    print("Fig. 11 — AS category breakdown")
    print("=" * 64)
    for category, share in study.characterization.category_breakdown().items():
        print(f"  {category:10s} {share:5.1%}")

    print("\n" + "=" * 64)
    print("Fig. 14 — portscan of the top-100 deployments")
    print("=" * 64)
    scan = study.portscan
    print(f"  responding IPs/ASes: {len(scan.responding_hosts)}/{scan.n_ases}")
    print(f"  open ports: {scan.total_open_ports}   "
          f"well-known: {len(scan.well_known_services())} "
          f"({len(scan.ssl_services())} SSL)")
    print(f"  top-10 by AS:  {[p for p, _ in scan.top_ports_by_as()]}")
    print(f"  top-10 by /24: {[p for p, _ in scan.top_ports_by_prefix()]}")

    print("\n" + "=" * 64)
    print("Fig. 10 (map) — anycast replica density")
    print("=" * 64)
    print(replica_density_map(study.analysis).render())


if __name__ == "__main__":
    main()
