"""Exporters to standard observability formats.

Two targets, both dependency-free:

* :func:`to_prometheus` renders a :meth:`MetricsRegistry.snapshot
  <repro.obs.metrics.MetricsRegistry.snapshot>` dict in the Prometheus
  text exposition format (``name_total`` counters, cumulative
  ``_bucket{le="..."}`` histogram series), ready for a node_exporter
  textfile collector or a pushgateway.
* :func:`to_chrome_trace` renders a tracer's span forest as Chrome
  trace-event JSON, loadable in Perfetto / ``chrome://tracing``.  Spans
  only record durations (not absolute starts), so the exporter lays out
  a *synthetic* timeline: each child starts where its previous sibling
  ended, inside its parent.  Relative widths and nesting are faithful;
  absolute timestamps are not wall-clock.

Both exporters ship with validators (:func:`prometheus_problems`,
:func:`chrome_trace_problems`) so tests and CI can assert the outputs
actually parse, without external tooling.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence, Union

from .trace import Tracer

#: Metric/label name grammar from the Prometheus exposition format spec.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def _sanitize(name: str) -> str:
    """Coerce an internal metric name to the Prometheus grammar."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: Union[int, float, None]) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def to_prometheus(
    snapshot: Dict[str, Dict[str, Any]], prefix: str = "repro_"
) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Counters become ``<prefix><name>_total``, gauges keep their name,
    histograms expand to the standard cumulative ``_bucket``/``_sum``/
    ``_count`` series.  Families are sorted by name so the output is
    deterministic for a given snapshot.
    """
    lines: List[str] = []

    for name in sorted(snapshot.get("counters", {})):
        metric = _sanitize(prefix + name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(snapshot['counters'][name])}")

    for name in sorted(snapshot.get("gauges", {})):
        metric = _sanitize(prefix + name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(snapshot['gauges'][name])}")

    for name in sorted(snapshot.get("histograms", {})):
        snap = snapshot["histograms"][name]
        metric = _sanitize(prefix + name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        bounds = list(snap.get("bounds", []))
        counts = list(snap.get("bucket_counts", []))
        for bound, count in zip(bounds, counts):
            cumulative += int(count)
            lines.append(f'{metric}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {int(snap.get("count", 0))}')
        lines.append(f"{metric}_sum {_fmt(float(snap.get('sum', 0.0)))}")
        lines.append(f"{metric}_count {int(snap.get('count', 0))}")

    return "\n".join(lines) + "\n" if lines else ""


def prometheus_problems(text: str) -> List[str]:
    """Grammar problems with a text-exposition payload ([] when valid).

    Checks each line against the exposition line grammar: comments must
    be ``# TYPE``/``# HELP``, samples must be
    ``name[{labels}] value`` with well-formed names, labels, and numeric
    values, and ``_bucket`` series must be cumulative (non-decreasing)
    and end with ``le="+Inf"``.
    """
    problems: List[str] = []
    bucket_last: Dict[str, float] = {}
    bucket_has_inf: Dict[str, bool] = {}
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                problems.append(f"line {i}: malformed comment")
            elif not _NAME_RE.match(parts[2]):
                problems.append(f"line {i}: bad metric name in comment")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {i}: not a valid sample line")
            continue
        labels = match.group("labels")
        if labels:
            for pair in labels.split(","):
                if not _LABEL_RE.match(pair.strip()):
                    problems.append(f"line {i}: bad label pair {pair.strip()!r}")
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            problems.append(f"line {i}: non-numeric value {raw_value!r}")
            continue
        name = match.group("name")
        if name.endswith("_bucket") and labels and labels.startswith('le="'):
            prev = bucket_last.get(name)
            if prev is not None and value == value and value < prev:
                problems.append(f"line {i}: bucket series {name} not cumulative")
            bucket_last[name] = value if value == value else prev or 0.0
            if 'le="+Inf"' in labels:
                bucket_has_inf[name] = True
    for name in bucket_last:
        if name not in bucket_has_inf:
            problems.append(f"bucket series {name} missing +Inf bucket")
    return problems


def _span_duration_us(span: Dict[str, Any]) -> float:
    """A span's synthetic duration: its inclusive time, stretched if
    needed to contain the sum of its children (defensive — inclusive
    should already dominate)."""
    inclusive = float(span.get("inclusive_s", 0.0)) * 1e6
    children_total = sum(_span_duration_us(c) for c in span.get("children", ()))
    return max(inclusive, children_total)


def _emit_span(
    span: Dict[str, Any],
    start_us: float,
    out: List[Dict[str, Any]],
    pid: int,
    tid: int,
) -> float:
    duration = _span_duration_us(span)
    out.append(
        {
            "name": str(span.get("name", "?")),
            "ph": "X",
            "ts": round(start_us, 3),
            "dur": round(duration, 3),
            "pid": pid,
            "tid": tid,
            "args": dict(span.get("attrs", {})),
        }
    )
    cursor = start_us
    for child in span.get("children", ()):
        cursor += _emit_span(child, cursor, out, pid, tid)
    return duration


def to_chrome_trace(
    trace: Union[Tracer, Sequence[Dict[str, Any]]],
    process_name: str = "repro",
) -> Dict[str, Any]:
    """Render a trace as a Chrome trace-event JSON document.

    Accepts either a :class:`Tracer` or a list of span dicts (the
    ``to_dicts()`` form, as stored in telemetry payloads).  Returns the
    JSON-object envelope (``{"traceEvents": [...]}``) — dump it with
    ``json.dump`` and load it in Perfetto or ``chrome://tracing``.
    """
    roots: Sequence[Dict[str, Any]]
    if isinstance(trace, Tracer):
        roots = trace.to_dicts()
    else:
        roots = list(trace)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    cursor = 0.0
    for root in roots:
        cursor += _emit_span(root, cursor, events, pid=1, tid=1)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_problems(doc: Any) -> List[str]:
    """Structural problems with a Chrome trace document ([] when valid).

    Verifies the envelope, per-event required fields, and that complete
    ("X") events on each thread nest properly: any two spans are either
    disjoint or one contains the other.
    """
    problems: List[str] = []
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except ValueError:
            return ["document is not valid JSON"]
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document is not an object with a traceEvents list"]

    intervals: Dict[Any, List[tuple]] = {}
    for i, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i}: missing name")
        if ph not in ("X", "M", "B", "E", "i"):
            problems.append(f"event {i}: unsupported phase {ph!r}")
            continue
        if ph != "X":
            continue
        for key in ("ts", "dur", "pid", "tid"):
            if not isinstance(event.get(key), (int, float)):
                problems.append(f"event {i}: missing numeric {key}")
                break
        else:
            if event["dur"] < 0:
                problems.append(f"event {i}: negative duration")
            else:
                intervals.setdefault((event["pid"], event["tid"]), []).append(
                    (float(event["ts"]), float(event["ts"]) + float(event["dur"]), i)
                )

    eps = 1e-6
    for key, spans in intervals.items():
        for a_start, a_end, a_i in spans:
            for b_start, b_end, b_i in spans:
                if a_i >= b_i:
                    continue
                disjoint = a_end <= b_start + eps or b_end <= a_start + eps
                a_in_b = a_start >= b_start - eps and a_end <= b_end + eps
                b_in_a = b_start >= a_start - eps and b_end <= a_end + eps
                if not (disjoint or a_in_b or b_in_a):
                    problems.append(
                        f"events {a_i} and {b_i} overlap without nesting "
                        f"on thread {key}"
                    )
    return problems
