"""Append-only structured-event log (JSONL).

Where the tracer answers "how long did it take" and the metrics registry
answers "how many", the event log answers "what happened, in order":
stage lifecycle, VP quarantines, worker loss, unit reassignments — the
operational narrative of an epoch.  Events are buffered in a bounded
in-memory ring (overflow increments a ``dropped`` counter rather than
growing without bound) and can be flushed to a path as JSON Lines, one
complete ``{...}\\n`` record per line, with an fsync so a crash never
leaves a torn line *in a flushed file*.

The longitudinal service does not flush incrementally at all: it stages
the whole log inside the archive's atomic commit, so a committed run
either has the complete ``events.jsonl`` or none — the crash tests
assert exactly this.

Mirrors the tracer/metrics null-object pattern: a free
:data:`NULL_EVENTS` no-op log is the process-wide default, swapped via
:func:`set_events` / :func:`use_events`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

#: Default in-memory buffer capacity (events, not bytes).  Generous for a
#: service epoch (a few hundred events) while bounding pathological runs.
DEFAULT_CAPACITY = 10_000

#: Keys every event record carries, in canonical order.
EVENT_KEYS = ("seq", "ts", "kind", "name", "attrs")


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to plain JSON types (numpy scalars etc.)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class EventLog:
    """Bounded append-only event buffer with optional path-backed flush.

    Parameters
    ----------
    path:
        When set, :meth:`flush` appends buffered events to this file as
        JSONL and fsyncs.  When ``None`` the log is memory-only (the
        service mode: lines are handed to the archive commit instead).
    capacity:
        Maximum buffered events; further emits are counted in
        :attr:`dropped` instead of stored.
    clock:
        Wall-clock source for the ``ts`` field (seconds).  Injectable for
        deterministic tests; telemetry is the sanctioned wall-clock
        exception and never feeds back into census bytes.
    """

    def __init__(
        self,
        path: Optional[Union[str, os.PathLike]] = None,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.path = os.fspath(path) if path is not None else None
        self.capacity = capacity
        self._clock = clock
        self._events: List[Dict[str, Any]] = []
        self._seq = 0
        self._flushed = 0
        self.dropped = 0

    enabled = True

    def __len__(self) -> int:
        return len(self._events)

    def emit(self, kind: str, name: str, **attrs: Any) -> None:
        """Record one event.  ``kind`` is a coarse category (``stage``,
        ``quarantine``, ``worker``, ``reassignment``, ``service``...),
        ``name`` the specific occurrence, ``attrs`` free-form context."""
        self._seq += 1
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append(
            {
                "seq": self._seq,
                "ts": round(float(self._clock()), 6),
                "kind": str(kind),
                "name": str(name),
                "attrs": _jsonable(attrs),
            }
        )

    def to_lines(self) -> List[str]:
        """All buffered events as canonical JSONL lines (sorted keys,
        trailing newline each) — the exact bytes a flush would append."""
        return [
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in self._events
        ]

    def flush(self) -> int:
        """Append not-yet-flushed events to :attr:`path`, fsync, and
        return how many lines were written.  No-op without a path."""
        if self.path is None:
            return 0
        pending = self._events[self._flushed :]
        if not pending:
            return 0
        payload = "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in pending
        )
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        self._flushed = len(self._events)
        return len(pending)

    def snapshot(self) -> Dict[str, Any]:
        """Summary stats for embedding in telemetry documents."""
        kinds: Dict[str, int] = {}
        for event in self._events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        return {
            "n_events": len(self._events),
            "dropped": self.dropped,
            "kinds": {k: kinds[k] for k in sorted(kinds)},
        }


class NullEventLog:
    """Disabled log: every emit is a free no-op."""

    enabled = False
    dropped = 0
    path = None

    def __len__(self) -> int:
        return 0

    def emit(self, kind: str, name: str, **attrs: Any) -> None:
        pass

    def to_lines(self) -> List[str]:
        return []

    def flush(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, Any]:
        return {"n_events": 0, "dropped": 0, "kinds": {}}


#: Process-wide disabled log (the default).
NULL_EVENTS = NullEventLog()

_current: Union[EventLog, NullEventLog] = NULL_EVENTS


def current_events() -> Union[EventLog, NullEventLog]:
    """The process-wide event log instrumented code reports to."""
    return _current


def set_events(log: Union[EventLog, NullEventLog]) -> Union[EventLog, NullEventLog]:
    """Install ``log`` process-wide; returns the previous one."""
    global _current
    previous = _current
    _current = log
    return previous


class use_events:
    """Scoped installation: ``with use_events(log): ...`` restores on exit."""

    def __init__(self, log: Union[EventLog, NullEventLog]) -> None:
        self._log = log
        self._previous: Union[EventLog, NullEventLog] = NULL_EVENTS

    def __enter__(self) -> Union[EventLog, NullEventLog]:
        self._previous = set_events(self._log)
        return self._log

    def __exit__(self, *exc: object) -> bool:
        set_events(self._previous)
        return False


def event_problems(event: Any) -> List[str]:
    """Schema problems with one decoded event record ([] when valid)."""
    problems: List[str] = []
    if not isinstance(event, dict):
        return ["event is not an object"]
    for key in EVENT_KEYS:
        if key not in event:
            problems.append(f"missing key {key!r}")
    if not isinstance(event.get("seq"), int) or (
        isinstance(event.get("seq"), bool)
    ):
        problems.append("seq is not an integer")
    if not isinstance(event.get("ts"), (int, float)):
        problems.append("ts is not a number")
    for key in ("kind", "name"):
        if not isinstance(event.get(key), str):
            problems.append(f"{key} is not a string")
    if not isinstance(event.get("attrs"), dict):
        problems.append("attrs is not an object")
    return problems


def parse_events(
    text: str, strict: bool = True
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Decode a JSONL events payload.

    Returns ``(events, problems)``.  In strict mode every line must be a
    complete, schema-valid JSON object; any defect is reported.  With
    ``strict=False`` (the fsck/catch-up reader) a torn *final* line —
    the signature of a crash mid-append — is tolerated and dropped,
    while torn or invalid lines anywhere else still count as problems.
    """
    events: List[Dict[str, Any]] = []
    problems: List[str] = []
    lines = text.splitlines(keepends=True)
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        torn = not line.endswith("\n")
        try:
            event = json.loads(stripped)
        except ValueError:
            if torn and not strict and i == len(lines) - 1:
                continue  # crash tore the final append — salvageable
            problems.append(f"line {i + 1}: invalid JSON")
            continue
        if torn and strict:
            problems.append(f"line {i + 1}: missing trailing newline")
        line_problems = event_problems(event)
        if line_problems:
            problems.append(f"line {i + 1}: " + "; ".join(line_problems))
            continue
        events.append(event)
    return events, problems


def read_events(
    path: Union[str, os.PathLike], strict: bool = True
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Read and decode an ``events.jsonl`` file (see :func:`parse_events`)."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_events(fh.read(), strict=strict)
