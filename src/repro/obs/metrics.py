"""Named counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the pipeline's tally sheet: instrumented
code increments counters (``probes_sent``), sets gauges
(``vps_quarantined``), and observes histograms (``disks_per_target``,
``mis_size``) through the process-wide *current* registry
(:func:`current_metrics`), which defaults to a free no-op
:class:`NullMetricsRegistry`.

Every recorded quantity is a deterministic function of the pipeline
inputs — durations measured in *simulated* hours are fine, wall-clock
time is not (that belongs in the tracer).  Two identical runs therefore
produce identical :meth:`MetricsRegistry.snapshot` dicts, which the
observability tests assert.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Default histogram buckets: a generic 1-2-5 ladder that suits counts
#: (disks per target, MIS sizes, iterations) out of the box.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class Counter:
    """Monotonically-increasing integer count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, value: Union[int, float]) -> None:
        """Fold another counter's snapshot value into this one (adds)."""
        self.inc(value)

    def snapshot(self) -> Union[int, float]:
        return self.value


class Gauge:
    """Last-written value (set-style, not add-style)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: Optional[Union[int, float]] = None

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def merge(self, value: Optional[Union[int, float]]) -> None:
        """Fold another gauge's snapshot into this one (last write wins)."""
        if value is not None:
            self.set(value)

    def snapshot(self) -> Optional[Union[int, float]]:
        return self.value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are upper bounds (inclusive); one overflow bucket catches
    everything above the last bound.  Bounds are fixed at creation so
    snapshots from different runs are structurally comparable.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be a non-empty increasing sequence")
        self.bounds = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        v = float(value)
        if v != v:  # NaN (e.g. a failed VP's duration) is not observable
            return
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) by linear
        interpolation within the bucket holding that rank.

        The estimate is clamped to the observed ``[min, max]`` range, so
        degenerate distributions (all values equal) report exact
        percentiles; ranks that land in the overflow bucket report
        ``max``.  Deterministic: a pure function of the bucket counts.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("percentile q must be in [0, 1]")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        rank = q * self.count
        cumulative = 0
        for i, bound in enumerate(self.bounds):
            in_bucket = self.bucket_counts[i]
            if in_bucket and cumulative + in_bucket >= rank:
                lower = self.bounds[i - 1] if i > 0 else min(self.min, bound)
                fraction = (rank - cumulative) / in_bucket
                estimate = lower + (bound - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += in_bucket
        return self.max  # rank falls in the overflow bucket

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Bucket bounds must match exactly (snapshots are only structurally
        comparable across identical ladders); counts add bucket-wise and
        min/max combine, so merging worker snapshots in any order yields
        the same totals a serial run would have observed.
        """
        bounds = tuple(float(b) for b in snap.get("bounds", ()))
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{bounds} vs {self.bounds}"
            )
        counts = snap.get("bucket_counts", ())
        if len(counts) != len(self.bucket_counts):
            raise ValueError("bucket_counts length does not match bounds")
        for i, c in enumerate(counts):
            self.bucket_counts[i] += int(c)
        self.count += int(snap.get("count", 0))
        self.total += float(snap.get("sum", 0.0))
        for other in (snap.get("min"),):
            if other is not None:
                self.min = other if self.min is None else min(self.min, other)
        for other in (snap.get("max"),):
            if other is not None:
                self.max = other if self.max is None else max(self.max, other)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Get-or-create store of named instruments."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, factory, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, "gauge")

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, lambda: Histogram(buckets), "histogram")

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def reset(self) -> None:
        self._instruments.clear()

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` dict (e.g. shipped back from a worker
        process) into this registry: counters add, histograms merge
        bucket-wise, gauges take the snapshot's value (last write wins).
        Instruments absent here are created on the fly, so a parent can
        merge snapshots containing metrics it never touched itself.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).merge(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).merge(value)
        for name, snap in snapshot.get("histograms", {}).items():
            self.histogram(name, buckets=snap["bounds"]).merge(snap)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict snapshot: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with names sorted for stable output."""
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            out[instrument.kind + "s"][name] = instrument.snapshot()
        return out


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()
    value = 0
    count = 0
    mean = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass

    def merge(self, value: Any) -> None:
        pass

    def percentile(self, q: float) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def reset(self) -> None:
        pass

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Process-wide disabled registry (the default).
NULL_METRICS = NullMetricsRegistry()

_current: Union[MetricsRegistry, NullMetricsRegistry] = NULL_METRICS


def current_metrics() -> Union[MetricsRegistry, NullMetricsRegistry]:
    """The process-wide registry instrumented code reports to."""
    return _current


def set_metrics(
    registry: Union[MetricsRegistry, NullMetricsRegistry],
) -> Union[MetricsRegistry, NullMetricsRegistry]:
    """Install ``registry`` process-wide; returns the previous one."""
    global _current
    previous = _current
    _current = registry
    return previous


class use_metrics:
    """Scoped installation: ``with use_metrics(m): ...`` restores on exit."""

    def __init__(self, registry: Union[MetricsRegistry, NullMetricsRegistry]) -> None:
        self._registry = registry
        self._previous: Union[MetricsRegistry, NullMetricsRegistry] = NULL_METRICS

    def __enter__(self) -> Union[MetricsRegistry, NullMetricsRegistry]:
        self._previous = set_metrics(self._registry)
        return self._registry

    def __exit__(self, *exc: object) -> bool:
        set_metrics(self._previous)
        return False
