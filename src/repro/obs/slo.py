"""Declarative SLOs: latency and error budgets evaluated per epoch.

An operated census needs more than raw telemetry — it needs a verdict.
:class:`SloSpec` declares budgets (a ``warn`` threshold and a larger
``breach`` threshold per objective) over per-stage wall-clock durations
and over error fractions the metrics registry already tracks
(VP-scan failure rate, quarantine fraction, degraded-target fraction).
:func:`evaluate_slo` folds a trace + metrics snapshot into a
schema-validated :class:`SloReport` whose objectives each carry a
``pass`` / ``warn`` / ``breach`` verdict; the report's overall verdict
is the worst of its objectives.

Objectives with no data (stage never ran, counter never incremented)
verdict ``pass`` — an SLO cannot be breached by silence; fsck-level
integrity problems are the archive's job, not the SLO's.

Wall-clock stage durations are the sanctioned nondeterminism: they live
only in telemetry sidecars and SLO reports, never in census bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .trace import Tracer

#: Verdicts, in increasing severity (list order is the comparison order).
VERDICTS = ("pass", "warn", "breach")

#: ``kind`` tag carried by serialized reports.
SLO_REPORT_KIND = "slo-report"


@dataclass(frozen=True)
class Budget:
    """A warn/breach threshold pair (both inclusive upper bounds)."""

    warn: float
    breach: float

    def __post_init__(self) -> None:
        if self.warn < 0 or self.breach < 0:
            raise ValueError("budget thresholds must be non-negative")
        if self.warn > self.breach:
            raise ValueError("warn threshold must not exceed breach threshold")

    def verdict(self, value: Optional[float]) -> str:
        if value is None:
            return "pass"
        if value <= self.warn:
            return "pass"
        if value <= self.breach:
            return "warn"
        return "breach"


@dataclass(frozen=True)
class SloSpec:
    """Declarative budget set for one epoch.

    ``stage_seconds`` maps span names (as produced by the tracer — e.g.
    ``census``, ``analysis``) to wall-clock budgets; the error-budget
    fields bound fractions in ``[0, 1]``.  Any field left ``None`` (or
    any stage not listed) is simply not evaluated.
    """

    stage_seconds: Mapping[str, Budget] = field(default_factory=dict)
    probe_failure_rate: Optional[Budget] = None
    quarantine_fraction: Optional[Budget] = None
    degraded_target_fraction: Optional[Budget] = None
    #: Fraction of the scored roster the trust engine excised.  Breach
    #: means the roster can no longer out-vote its liars.
    untrusted_vp_fraction: Optional[Budget] = None
    #: Fraction of classified prefixes raising an alarming routing
    #: verdict (hijack/leak).  On a clean timeline this must be ~zero;
    #: a noisy detector that cries wolf is as useless as a blind one.
    false_alarm_rate: Optional[Budget] = None


@dataclass(frozen=True)
class Objective:
    """One evaluated objective: the measured value against its budget."""

    name: str
    value: Optional[float]
    warn: float
    breach: float
    verdict: str

    def to_doc(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "value": None if self.value is None else round(float(self.value), 6),
            "warn": float(self.warn),
            "breach": float(self.breach),
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class SloReport:
    """All objectives for one epoch plus the overall (worst) verdict."""

    objectives: Sequence[Objective]
    verdict: str

    def to_doc(self) -> Dict[str, Any]:
        return {
            "kind": SLO_REPORT_KIND,
            "verdict": self.verdict,
            "objectives": [o.to_doc() for o in self.objectives],
        }


def _worst(verdicts: Sequence[str]) -> str:
    worst = "pass"
    for verdict in verdicts:
        if VERDICTS.index(verdict) > VERDICTS.index(worst):
            worst = verdict
    return worst


def stage_seconds_from_trace(
    trace: Union[Tracer, Sequence[Dict[str, Any]], None],
) -> Dict[str, float]:
    """Total inclusive wall-clock seconds per span name, summed over all
    occurrences anywhere in the span forest."""
    if trace is None:
        return {}
    roots = trace.to_dicts() if isinstance(trace, Tracer) else list(trace)
    totals: Dict[str, float] = {}

    def walk(span: Dict[str, Any]) -> None:
        name = str(span.get("name", "?"))
        totals[name] = totals.get(name, 0.0) + float(span.get("inclusive_s", 0.0))
        for child in span.get("children", ()):
            walk(child)

    for root in roots:
        walk(root)
    return totals


def _counter(snapshot: Mapping[str, Any], name: str) -> float:
    return float(snapshot.get("counters", {}).get(name, 0) or 0)


def _gauge(snapshot: Mapping[str, Any], name: str) -> Optional[float]:
    value = snapshot.get("gauges", {}).get(name)
    return None if value is None else float(value)


def evaluate_slo(
    spec: SloSpec,
    stage_seconds: Optional[Mapping[str, float]] = None,
    metrics_snapshot: Optional[Mapping[str, Any]] = None,
    observations: Optional[Mapping[str, Optional[float]]] = None,
) -> SloReport:
    """Evaluate ``spec`` against one epoch's evidence.

    Parameters
    ----------
    stage_seconds:
        Wall-clock seconds per stage (see :func:`stage_seconds_from_trace`).
    metrics_snapshot:
        A registry snapshot; supplies the standard error fractions —
        VP-scan failure rate from ``vps_ok``/``vps_failed``/
        ``vps_salvaged`` counters, quarantine fraction from the
        ``vps_quarantined`` gauge over ``observations["n_vps"]``.
    observations:
        Explicit overrides and extra denominators.  Recognized keys:
        any objective name (overrides the derived value) and ``n_vps``
        (quarantine-fraction denominator).  A key set to ``None`` forces
        "no data".
    """
    stage_seconds = dict(stage_seconds or {})
    snapshot = metrics_snapshot or {}
    observations = dict(observations or {})
    objectives: List[Objective] = []

    def add(name: str, budget: Optional[Budget], value: Optional[float]) -> None:
        if budget is None:
            return
        if name in observations:
            value = observations[name]
        verdict = budget.verdict(value)
        objectives.append(
            Objective(
                name=name,
                value=value,
                warn=budget.warn,
                breach=budget.breach,
                verdict=verdict,
            )
        )

    for stage in sorted(spec.stage_seconds):
        add(
            f"stage_seconds:{stage}",
            spec.stage_seconds[stage],
            stage_seconds.get(stage),
        )

    scans_ok = _counter(snapshot, "vps_ok")
    scans_failed = _counter(snapshot, "vps_failed")
    scans_salvaged = _counter(snapshot, "vps_salvaged")
    scans_total = scans_ok + scans_failed + scans_salvaged
    failure_rate = scans_failed / scans_total if scans_total else None
    add("probe_failure_rate", spec.probe_failure_rate, failure_rate)

    quarantined = _gauge(snapshot, "vps_quarantined")
    n_vps = observations.pop("n_vps", None)
    if quarantined is not None and n_vps:
        quarantine_fraction: Optional[float] = quarantined / float(n_vps)
    else:
        quarantine_fraction = None
    add("quarantine_fraction", spec.quarantine_fraction, quarantine_fraction)

    add(
        "degraded_target_fraction",
        spec.degraded_target_fraction,
        None,  # supplied via observations when the caller computed it
    )

    untrusted = _gauge(snapshot, "vps_untrusted")
    scored = _gauge(snapshot, "vps_scored")
    if untrusted is not None and scored:
        untrusted_fraction: Optional[float] = untrusted / float(scored)
    else:
        untrusted_fraction = None
    add("untrusted_vp_fraction", spec.untrusted_vp_fraction, untrusted_fraction)

    add(
        "false_alarm_rate",
        spec.false_alarm_rate,
        None,  # supplied via observations when the alarm pass ran
    )

    return SloReport(
        objectives=tuple(objectives),
        verdict=_worst([o.verdict for o in objectives]),
    )


def default_service_slo() -> SloSpec:
    """A permissive default for the longitudinal service: generous
    wall-clock budgets (simulated censuses run in seconds) and the error
    fractions the paper's operation would watch."""
    return SloSpec(
        stage_seconds={
            "census": Budget(warn=120.0, breach=600.0),
            "analysis": Budget(warn=120.0, breach=600.0),
        },
        probe_failure_rate=Budget(warn=0.10, breach=0.50),
        quarantine_fraction=Budget(warn=0.25, breach=0.50),
        degraded_target_fraction=Budget(warn=0.20, breach=0.50),
        # Past ~a third of the roster excised, majority voting (and the
        # census built on it) is no longer meaningful.
        untrusted_vp_fraction=Budget(warn=0.10, breach=0.34),
        # Routing alarms per classified prefix: any alarm is worth a
        # look (warn); past 2% the detector itself is the incident.
        false_alarm_rate=Budget(warn=0.001, breach=0.02),
    )


def slo_report_problems(doc: Any) -> List[str]:
    """Schema problems with a serialized SLO report ([] when valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["slo report is not an object"]
    if doc.get("kind") != SLO_REPORT_KIND:
        problems.append(f"kind is not {SLO_REPORT_KIND!r}")
    if doc.get("verdict") not in VERDICTS:
        problems.append("verdict is not one of pass/warn/breach")
    objectives = doc.get("objectives")
    if not isinstance(objectives, list):
        problems.append("objectives is not a list")
        return problems
    worst = "pass"
    for i, obj in enumerate(objectives):
        if not isinstance(obj, dict):
            problems.append(f"objective {i}: not an object")
            continue
        if not isinstance(obj.get("name"), str) or not obj.get("name"):
            problems.append(f"objective {i}: missing name")
        value = obj.get("value")
        if value is not None and not isinstance(value, (int, float)):
            problems.append(f"objective {i}: value is not a number or null")
        for key in ("warn", "breach"):
            if not isinstance(obj.get(key), (int, float)):
                problems.append(f"objective {i}: {key} is not a number")
        if (
            isinstance(obj.get("warn"), (int, float))
            and isinstance(obj.get("breach"), (int, float))
            and obj["warn"] > obj["breach"]
        ):
            problems.append(f"objective {i}: warn exceeds breach")
        verdict = obj.get("verdict")
        if verdict not in VERDICTS:
            problems.append(f"objective {i}: bad verdict {verdict!r}")
        else:
            if VERDICTS.index(verdict) > VERDICTS.index(worst):
                worst = verdict
    if doc.get("verdict") in VERDICTS and doc.get("verdict") != worst:
        problems.append(
            f"overall verdict {doc.get('verdict')!r} is not the worst "
            f"objective verdict {worst!r}"
        )
    return problems


def validate_slo_report(doc: Any) -> None:
    """Raise ``ValueError`` listing every schema problem, if any."""
    problems = slo_report_problems(doc)
    if problems:
        raise ValueError("invalid SLO report: " + "; ".join(problems))
