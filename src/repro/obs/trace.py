"""Hierarchical tracing for the census pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
pipeline stage, census, VP scan, or iGreedy phase — with monotonic wall
time (``time.perf_counter``) and derived inclusive/exclusive durations.
Instrumented code never takes a tracer parameter; it asks for the
process-wide *current* tracer (:func:`current_tracer`), which defaults to
a shared :class:`NullTracer` whose spans are free no-ops.  Callers that
want a trace install their tracer for the duration of a computation::

    tracer = Tracer()
    with use_tracer(tracer):
        campaign.run(n_censuses=2)
    print(render_trace(tracer))

Determinism contract: the *shape* of the span tree (names, nesting,
sibling order) is a pure function of the pipeline inputs, because the
pipeline itself is deterministic; only the recorded durations vary run to
run.  Timestamps live exclusively in spans — instrumentation never feeds
wall time back into scientific results.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "attrs", "children", "t_start", "t_end")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.children: List["Span"] = []
        self.t_start: float = 0.0
        self.t_end: Optional[float] = None

    def set(self, key: str, value: Any) -> None:
        """Attach (or update) an attribute mid-span."""
        self.attrs[key] = value

    @property
    def finished(self) -> bool:
        return self.t_end is not None

    @property
    def inclusive_s(self) -> float:
        """Wall time from entry to exit, children included."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    @property
    def exclusive_s(self) -> float:
        """Inclusive time minus the inclusive time of direct children."""
        return max(self.inclusive_s - sum(c.inclusive_s for c in self.children), 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict serialization (manifest / JSON friendly)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "inclusive_s": round(self.inclusive_s, 6),
            "exclusive_s": round(self.exclusive_s, 6),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.inclusive_s * 1000:.1f} ms, {len(self.children)} children)"


class _SpanContext:
    """Re-entrant-free context manager for one span (cheaper than
    ``@contextmanager`` on the hot path)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        stack = tracer._stack
        parent = stack[-1] if stack else None
        (parent.children if parent is not None else tracer.roots).append(span)
        stack.append(span)
        span.t_start = tracer._clock()
        return span

    def __exit__(self, *exc: object) -> bool:
        span = self._span
        span.t_end = self._tracer._clock()
        stack = self._tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        return False


class Tracer:
    """Collects a forest of spans; one instance per traced run."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._clock = clock

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span: ``with tracer.span("census", census_id=1):``."""
        return _SpanContext(self, Span(name, attrs or None))

    @property
    def n_spans(self) -> int:
        def count(spans: Sequence[Span]) -> int:
            return sum(1 + count(s.children) for s in spans)

        return count(self.roots)

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self.roots]


class _NullSpan:
    """Shared do-nothing span; entering/exiting costs two attribute hits."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``span()`` returns a shared no-op context."""

    enabled = False
    roots: Tuple[Span, ...] = ()
    n_spans = 0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def clear(self) -> None:
        pass

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []


#: Process-wide disabled tracer (the default for uninstrumented runs).
NULL_TRACER = NullTracer()

_current: Union[Tracer, NullTracer] = NULL_TRACER


def current_tracer() -> Union[Tracer, NullTracer]:
    """The process-wide tracer instrumented code reports to."""
    return _current


def set_tracer(tracer: Union[Tracer, NullTracer]) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` as the process-wide default; returns the previous one."""
    global _current
    previous = _current
    _current = tracer
    return previous


class use_tracer:
    """Scoped installation: ``with use_tracer(t): ...`` restores on exit."""

    def __init__(self, tracer: Union[Tracer, NullTracer]) -> None:
        self._tracer = tracer
        self._previous: Union[Tracer, NullTracer] = NULL_TRACER

    def __enter__(self) -> Union[Tracer, NullTracer]:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, *exc: object) -> bool:
        set_tracer(self._previous)
        return False


class Stopwatch:
    """Tiny context-managed timer for benchmarks and ad-hoc measurements.

    Replaces the ``t0 = time.perf_counter(); ...; elapsed = ...`` idiom::

        with Stopwatch() as sw:
            expensive()
        print(sw.elapsed_s)
    """

    __slots__ = ("_t0", "_t1")

    def __init__(self) -> None:
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._t1 = time.perf_counter()
        return False

    @property
    def elapsed_s(self) -> float:
        if self._t0 is None:
            return 0.0
        return (self._t1 if self._t1 is not None else time.perf_counter()) - self._t0


# ----------------------------------------------------------------------
# Rendering and shape extraction
# ----------------------------------------------------------------------


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000.0:.1f} ms"


def _fmt_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    return "  " + " ".join(f"{k}={v}" for k, v in attrs.items())


def _group_siblings(spans: Sequence[Span]) -> List[Tuple[str, List[Span]]]:
    """Group sibling spans by name, preserving first-appearance order."""
    groups: Dict[str, List[Span]] = {}
    order: List[str] = []
    for span in spans:
        if span.name not in groups:
            groups[span.name] = []
            order.append(span.name)
        groups[span.name].append(span)
    return [(name, groups[name]) for name in order]


def _render(spans: Sequence[Span], lines: List[str], depth: int, indent: int) -> None:
    pad = " " * (depth * indent)
    for name, group in _group_siblings(spans):
        if len(group) == 1:
            span = group[0]
            lines.append(
                f"{pad}{name:<{max(28 - depth * indent, 1)}} "
                f"{_fmt_duration(span.inclusive_s):>10} "
                f"(excl {_fmt_duration(span.exclusive_s)})"
                f"{_fmt_attrs(span.attrs)}"
            )
            _render(span.children, lines, depth + 1, indent)
        else:
            total = sum(s.inclusive_s for s in group)
            mean = total / len(group)
            lines.append(
                f"{pad}{name} ×{len(group):<{max(22 - depth * indent, 1)}} "
                f"{_fmt_duration(total):>10} "
                f"(mean {_fmt_duration(mean)})"
            )
            merged: List[Span] = []
            for span in group:
                merged.extend(span.children)
            _render(merged, lines, depth + 1, indent)


def render_trace(
    source: Union[Tracer, NullTracer, Sequence[Span]], indent: int = 2
) -> str:
    """Indented text rendering of a span forest.

    Sibling spans sharing a name (e.g. 100 ``vp_scan`` spans under one
    census) are aggregated into a single ``name ×N`` line with total and
    mean durations, so big traces stay readable; their children are merged
    and aggregated recursively the same way.
    """
    spans = source if isinstance(source, (list, tuple)) else source.roots
    if not spans:
        return "(no spans recorded)"
    lines: List[str] = []
    _render(list(spans), lines, 0, indent)
    return "\n".join(lines)


def tree_shape(
    source: Union[Tracer, NullTracer, Sequence[Span]],
) -> Tuple[Tuple[str, tuple], ...]:
    """The duration-free shape of a span forest: nested (name, children).

    Two runs of the same deterministic pipeline must produce equal shapes;
    the neutrality tests assert exactly that.
    """
    spans = source if isinstance(source, (list, tuple)) else source.roots

    def shape(span: Span) -> Tuple[str, tuple]:
        return (span.name, tuple(shape(c) for c in span.children))

    return tuple(shape(s) for s in spans)


def iter_span_names(source: Union[Tracer, NullTracer, Sequence[Span]]) -> Iterator[str]:
    """Depth-first iteration over every span name in the forest."""
    spans = source if isinstance(source, (list, tuple)) else source.roots
    stack: List[Span] = list(reversed(list(spans)))
    while stack:
        span = stack.pop()
        yield span.name
        stack.extend(reversed(span.children))
