"""Longitudinal health engine over an archived census timeline.

The archive (PR 6) stores every epoch's manifest and — when the service
runs with telemetry — a ``telemetry.json`` sidecar.  This module folds
those into per-metric time series (:func:`collect_timeline`) and flags
day-over-day regressions with a rolling median/MAD sentinel
(:func:`detect_regressions`): a point is flagged when it exceeds the
rolling median of its recent history by more than ``k`` robust scale
units.  Median/MAD (rather than mean/stddev) keeps a single historical
outlier from inflating the baseline — the standard robust detector for
operational time series.

Regression direction is one-sided: only *increases* are flagged, since
every tracked metric is a "higher is worse" signal (stage seconds, scan
hours, churn, failure rates).  Count metrics (``n_anycast`` …) are
tracked in the timeline for dashboards but not fed to the detector —
deployment growth is the object of study, not an operational fault.

Runs without telemetry (older epochs, telemetry disabled) simply
contribute no points to telemetry-derived series; the manifest-derived
series still cover them, which is the catch-up tolerance the service
needs when mixing old and new runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Series whose regressions would be meaningless (they measure the
#: *world*, not the service) — excluded from the detector by default.
DESCRIPTIVE_SERIES = ("n_targets", "n_anycast", "total_replicas")

#: Series measured in wall-clock time.  Real machines are noisy (CI
#: runners especially), so these get a much larger relative floor on the
#: robust scale before a jump counts as a regression.
WALL_CLOCK_PREFIXES = ("stage_seconds:",)

#: Relative floor on the robust scale for deterministic series...
DEFAULT_FLOOR_FRAC = 0.05
#: ...and for wall-clock series.
WALL_CLOCK_FLOOR_FRAC = 0.5
#: Absolute floor (seconds) on the robust scale for wall-clock series: a
#: stage that takes tens of milliseconds can triple on a shared machine
#: without meaning anything; deltas below ~a second are never actionable.
WALL_CLOCK_ABS_FLOOR_S = 1.0


@dataclass(frozen=True)
class Regression:
    """One flagged point: ``value`` jumped ``score`` robust-scale units
    above the rolling ``median`` of its history."""

    metric: str
    epoch: int
    value: float
    median: float
    scale: float
    score: float

    def describe(self) -> str:
        return (
            f"epoch {self.epoch}: {self.metric} = {self.value:.4g} "
            f"(rolling median {self.median:.4g}, {self.score:.1f}x scale)"
        )


@dataclass
class Timeline:
    """Per-metric series over the archive's committed epochs."""

    epochs: List[int]
    #: metric name -> [(epoch, value), ...] sorted by epoch; epochs with
    #: no data for a metric are simply absent from its series.
    series: Dict[str, List[Tuple[int, float]]]
    #: epoch -> SLO verdict, for epochs that archived an SLO report.
    verdicts: Dict[int, str]

    def metric(self, name: str) -> List[Tuple[int, float]]:
        return self.series.get(name, [])


def _add(
    series: Dict[str, List[Tuple[int, float]]],
    name: str,
    epoch: int,
    value: Any,
) -> None:
    if value is None:
        return
    try:
        v = float(value)
    except (TypeError, ValueError):
        return
    if v != v:
        return
    series.setdefault(name, []).append((epoch, v))


def _histogram_mean(snapshot: Mapping[str, Any], name: str) -> Optional[float]:
    snap = snapshot.get("histograms", {}).get(name)
    if not snap or not snap.get("count"):
        return None
    return float(snap["sum"]) / float(snap["count"])


def _failure_rate(snapshot: Mapping[str, Any]) -> Optional[float]:
    counters = snapshot.get("counters", {})
    ok = float(counters.get("vps_ok", 0) or 0)
    failed = float(counters.get("vps_failed", 0) or 0)
    salvaged = float(counters.get("vps_salvaged", 0) or 0)
    total = ok + failed + salvaged
    return failed / total if total else None


def collect_timeline(archive, epochs: Optional[Sequence[int]] = None) -> Timeline:
    """Fold archived manifests + telemetry sidecars into a timeline.

    ``archive`` is a :class:`~repro.service.archive.CensusArchive`.
    Epochs whose manifest or telemetry is unreadable are skipped
    (fsck's job, not the timeline's); telemetry-less runs contribute
    only manifest-derived series.
    """
    from ..measurement.recordio import CorruptPayloadError

    wanted = sorted(epochs) if epochs is not None else archive.epochs()
    series: Dict[str, List[Tuple[int, float]]] = {}
    verdicts: Dict[int, str] = {}
    seen: List[int] = []
    for epoch in wanted:
        try:
            manifest = archive.read_manifest(epoch)
        except (CorruptPayloadError, ValueError):
            continue
        seen.append(epoch)
        counts = manifest.get("counts", {})
        _add(series, "n_targets", epoch, counts.get("n_targets"))
        _add(series, "n_anycast", epoch, counts.get("n_anycast"))
        _add(series, "total_replicas", epoch, counts.get("total_replicas"))
        _add(
            series,
            "churn_fraction",
            epoch,
            manifest.get("analysis", {}).get("churn_fraction"),
        )
        slo_doc = manifest.get("slo")
        if isinstance(slo_doc, dict) and isinstance(slo_doc.get("verdict"), str):
            verdicts[epoch] = slo_doc["verdict"]

        try:
            telemetry = archive.read_telemetry(epoch)
        except CorruptPayloadError:
            telemetry = None
        if telemetry is None:
            continue
        for stage, seconds in sorted(telemetry.get("stages", {}).items()):
            _add(series, f"stage_seconds:{stage}", epoch, seconds)
        snapshot = telemetry.get("metrics", {})
        _add(
            series,
            "vp_scan_hours_mean",
            epoch,
            _histogram_mean(snapshot, "vp_scan_duration_hours"),
        )
        _add(series, "probe_failure_rate", epoch, _failure_rate(snapshot))
        slo_doc = telemetry.get("slo")
        if isinstance(slo_doc, dict) and isinstance(slo_doc.get("verdict"), str):
            verdicts[epoch] = slo_doc["verdict"]
    return Timeline(epochs=seen, series=series, verdicts=verdicts)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_regressions(
    timeline_or_series,
    k: float = 4.0,
    min_history: int = 3,
    window: int = 8,
    floor_frac: float = DEFAULT_FLOOR_FRAC,
    include: Optional[Sequence[str]] = None,
) -> List[Regression]:
    """Flag points that jump above their rolling median by > ``k`` robust
    scale units.

    For each point with at least ``min_history`` earlier points, the
    history is the up-to-``window`` most recent prior values; the scale
    is ``max(MAD, floor_frac * |median|, epsilon)`` — the floor keeps a
    near-constant history (MAD 0) from flagging trivial jitter, and
    wall-clock series get :data:`WALL_CLOCK_FLOOR_FRAC` plus an absolute
    :data:`WALL_CLOCK_ABS_FLOOR_S` floor instead, so noisy CI machines
    and millisecond-scale stages don't fire the sentinel.  Only
    increases are flagged.

    ``include`` restricts detection to the named series; by default every
    series except :data:`DESCRIPTIVE_SERIES` is scanned.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if min_history < 1:
        raise ValueError("min_history must be >= 1")
    series: Dict[str, List[Tuple[int, float]]]
    if isinstance(timeline_or_series, Timeline):
        series = timeline_or_series.series
    else:
        series = dict(timeline_or_series)

    regressions: List[Regression] = []
    for name in sorted(series):
        if include is not None:
            if name not in include:
                continue
        elif name in DESCRIPTIVE_SERIES:
            continue
        frac = floor_frac
        abs_floor = 1e-9
        if any(name.startswith(p) for p in WALL_CLOCK_PREFIXES):
            frac = max(frac, WALL_CLOCK_FLOOR_FRAC)
            abs_floor = WALL_CLOCK_ABS_FLOOR_S
        points = sorted(series[name])
        for i in range(min_history, len(points)):
            history = [v for _, v in points[max(0, i - window) : i]]
            epoch, value = points[i]
            median = _median(history)
            mad = _median([abs(v - median) for v in history])
            scale = max(mad, frac * abs(median), abs_floor)
            deviation = value - median
            if deviation > k * scale:
                regressions.append(
                    Regression(
                        metric=name,
                        epoch=epoch,
                        value=value,
                        median=median,
                        scale=scale,
                        score=deviation / scale,
                    )
                )
    return regressions


def render_timeline(
    timeline: Timeline, regressions: Sequence[Regression] = ()
) -> List[str]:
    """Human-readable timeline summary for the CLI."""
    lines = [f"epochs: {len(timeline.epochs)}"]
    flagged = {(r.metric, r.epoch) for r in regressions}
    for name in sorted(timeline.series):
        points = timeline.series[name]
        values = [v for _, v in points]
        lines.append(
            f"  {name}: n={len(points)} "
            f"min={min(values):.4g} median={_median(values):.4g} "
            f"max={max(values):.4g}"
            + (
                " [REGRESSION]"
                if any((name, e) in flagged for e, _ in points)
                else ""
            )
        )
    if timeline.verdicts:
        worst = {}
        for epoch in sorted(timeline.verdicts):
            worst[timeline.verdicts[epoch]] = worst.get(timeline.verdicts[epoch], 0) + 1
        verdict_summary = ", ".join(f"{k}={v}" for k, v in sorted(worst.items()))
        lines.append(f"  slo verdicts: {verdict_summary}")
    for regression in regressions:
        lines.append("  ! " + regression.describe())
    return lines
