"""repro.obs — zero-dependency observability for the census pipeline.

Deterministic in-process layers (see ``docs/API_GUIDE.md``):

* :mod:`repro.obs.trace` — hierarchical spans with inclusive/exclusive
  wall time, a process-wide default tracer, and a free no-op tracer;
* :mod:`repro.obs.metrics` — named counters, gauges, and fixed-bucket
  histograms (with p50/p90/p99 estimation and order-free ``merge``),
  snapshotable to plain dicts;
* :mod:`repro.obs.manifest` — the run manifest: config + trace + metrics
  + health in one atomically-written, schema-validated JSON document;

and the fleet-telemetry layers built on top of them:

* :mod:`repro.obs.events` — append-only JSONL structured-event log with
  a bounded buffer and crash-safe flush;
* :mod:`repro.obs.export` — Prometheus text-exposition and Chrome
  trace-event (Perfetto) exporters, with self-contained validators;
* :mod:`repro.obs.slo` — declarative latency/error budgets evaluated
  per epoch into schema-validated pass/warn/breach reports;
* :mod:`repro.obs.timeline` — longitudinal series over an archive plus
  a rolling median/MAD regression sentinel.

The golden rule: observability is *behaviour-neutral*.  Instrumentation
never touches an RNG, never feeds wall time into results, and with the
null tracer/registry/log installed (the default) its overhead is a few
attribute lookups per call site.
"""

from .events import (
    NULL_EVENTS,
    EventLog,
    NullEventLog,
    current_events,
    parse_events,
    read_events,
    set_events,
    use_events,
)
from .export import (
    chrome_trace_problems,
    prometheus_problems,
    to_chrome_trace,
    to_prometheus,
)
from .manifest import (
    CANONICAL_STAGES,
    REQUIRED_KEYS,
    SCHEMA_VERSION,
    RunManifest,
    manifest_problems,
    validate_manifest,
)
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    current_metrics,
    set_metrics,
    use_metrics,
)
from .slo import (
    Budget,
    SloReport,
    SloSpec,
    default_service_slo,
    evaluate_slo,
    slo_report_problems,
    stage_seconds_from_trace,
    validate_slo_report,
)
from .timeline import (
    Regression,
    Timeline,
    collect_timeline,
    detect_regressions,
    render_timeline,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Stopwatch,
    Tracer,
    current_tracer,
    iter_span_names,
    render_trace,
    set_tracer,
    tree_shape,
    use_tracer,
)


class activate:
    """Install a tracer, a metrics registry and an event log together,
    scoped.

    ``with activate(tracer, metrics, events): study_stage()`` — any
    argument may be ``None`` to leave that layer untouched.
    """

    def __init__(self, tracer=None, metrics=None, events=None) -> None:
        self._tracer_cm = use_tracer(tracer) if tracer is not None else None
        self._metrics_cm = use_metrics(metrics) if metrics is not None else None
        self._events_cm = use_events(events) if events is not None else None

    def __enter__(self) -> "activate":
        if self._tracer_cm is not None:
            self._tracer_cm.__enter__()
        if self._metrics_cm is not None:
            self._metrics_cm.__enter__()
        if self._events_cm is not None:
            self._events_cm.__enter__()
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._events_cm is not None:
            self._events_cm.__exit__(*exc)
        if self._metrics_cm is not None:
            self._metrics_cm.__exit__(*exc)
        if self._tracer_cm is not None:
            self._tracer_cm.__exit__(*exc)
        return False


__all__ = [
    "CANONICAL_STAGES",
    "REQUIRED_KEYS",
    "SCHEMA_VERSION",
    "RunManifest",
    "manifest_problems",
    "validate_manifest",
    "DEFAULT_BUCKETS",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "current_metrics",
    "set_metrics",
    "use_metrics",
    "NULL_EVENTS",
    "EventLog",
    "NullEventLog",
    "current_events",
    "parse_events",
    "read_events",
    "set_events",
    "use_events",
    "chrome_trace_problems",
    "prometheus_problems",
    "to_chrome_trace",
    "to_prometheus",
    "Budget",
    "SloReport",
    "SloSpec",
    "default_service_slo",
    "evaluate_slo",
    "slo_report_problems",
    "stage_seconds_from_trace",
    "validate_slo_report",
    "Regression",
    "Timeline",
    "collect_timeline",
    "detect_regressions",
    "render_timeline",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Stopwatch",
    "Tracer",
    "current_tracer",
    "iter_span_names",
    "render_trace",
    "set_tracer",
    "tree_shape",
    "use_tracer",
    "activate",
]
