"""repro.obs — zero-dependency observability for the census pipeline.

Three deterministic layers (see ``docs/API_GUIDE.md``):

* :mod:`repro.obs.trace` — hierarchical spans with inclusive/exclusive
  wall time, a process-wide default tracer, and a free no-op tracer;
* :mod:`repro.obs.metrics` — named counters, gauges, and fixed-bucket
  histograms, snapshotable to plain dicts;
* :mod:`repro.obs.manifest` — the run manifest: config + trace + metrics
  + health in one atomically-written, schema-validated JSON document.

The golden rule: observability is *behaviour-neutral*.  Instrumentation
never touches an RNG, never feeds wall time into results, and with the
null tracer/registry installed (the default) its overhead is a few
attribute lookups per call site.
"""

from .manifest import (
    CANONICAL_STAGES,
    REQUIRED_KEYS,
    SCHEMA_VERSION,
    RunManifest,
    manifest_problems,
    validate_manifest,
)
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    current_metrics,
    set_metrics,
    use_metrics,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Stopwatch,
    Tracer,
    current_tracer,
    iter_span_names,
    render_trace,
    set_tracer,
    tree_shape,
    use_tracer,
)


class activate:
    """Install a tracer and a metrics registry together, scoped.

    ``with activate(tracer, metrics): study_stage()`` — either argument
    may be ``None`` to leave that half untouched.
    """

    def __init__(self, tracer=None, metrics=None) -> None:
        self._tracer_cm = use_tracer(tracer) if tracer is not None else None
        self._metrics_cm = use_metrics(metrics) if metrics is not None else None

    def __enter__(self) -> "activate":
        if self._tracer_cm is not None:
            self._tracer_cm.__enter__()
        if self._metrics_cm is not None:
            self._metrics_cm.__enter__()
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._metrics_cm is not None:
            self._metrics_cm.__exit__(*exc)
        if self._tracer_cm is not None:
            self._tracer_cm.__exit__(*exc)
        return False


__all__ = [
    "CANONICAL_STAGES",
    "REQUIRED_KEYS",
    "SCHEMA_VERSION",
    "RunManifest",
    "manifest_problems",
    "validate_manifest",
    "DEFAULT_BUCKETS",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "current_metrics",
    "set_metrics",
    "use_metrics",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Stopwatch",
    "Tracer",
    "current_tracer",
    "iter_span_names",
    "render_trace",
    "set_tracer",
    "tree_shape",
    "use_tracer",
    "activate",
]
