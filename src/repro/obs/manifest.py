"""Run manifests: one JSON document describing what a run did.

A :class:`RunManifest` bundles the study configuration (seeds, scales,
fault plan), the recorded span forest, a metrics snapshot, and the
per-census health reports into a single machine-readable record — the
pipeline's flight recorder.  Manifests are written atomically (temp file
+ ``os.replace``) so a crash mid-write never leaves a torn document, and
:func:`validate_manifest` checks the documented schema so CI catches
drift.

Schema sketch (``schema_version`` 1)::

    {
      "schema_version": 1,
      "generator": "repro-anycast",
      "created_unix": 1754000000.0,          # wall clock, manifest-only
      "config": {...},                       # jsonable StudyConfig dump
      "pipeline_stages": ["measurement", "detection", ...],
      "trace": [ {"name", "attrs", "inclusive_s",
                  "exclusive_s", "children": [...]}, ... ] | null,
      "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
      "health": [ {...CampaignHealthReport...}, ... ],
      # optional, added by the resilience layer (absent on older runs):
      "quarantine": [ {"stage", "reason", "count",
                       "repaired", "examples": [...]}, ... ],
      "degradation": {"degraded": bool, "quarantined_total": int,
                      "stages": {...}, "confidence": {...}},
      # optional, added by the telemetry layer (absent on older runs):
      "slo": {"kind": "slo-report", "verdict": "pass"|"warn"|"breach",
              "objectives": [ {"name", "value", "warn",
                               "breach", "verdict"}, ... ]}
    }

The ``quarantine``, ``degradation`` and ``slo`` sections are *optional*:
a manifest without them (every pre-resilience / pre-telemetry run) still
validates, and a manifest with them explicitly ``null`` means the
corresponding layer was off.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import pathlib
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .metrics import MetricsRegistry, NullMetricsRegistry
from .trace import NullTracer, Tracer, iter_span_names

SCHEMA_VERSION = 1

#: Keys every valid manifest must carry (CI validates against these).
REQUIRED_KEYS = (
    "schema_version",
    "generator",
    "created_unix",
    "config",
    "pipeline_stages",
    "trace",
    "metrics",
    "health",
)

#: The paper pipeline's canonical stages, in pipeline order.  A manifest's
#: ``pipeline_stages`` lists the subset whose spans the trace actually
#: contains — a full study run covers all five.
CANONICAL_STAGES = (
    "measurement",
    "detection",
    "enumeration",
    "geolocation",
    "characterization",
)


def _to_jsonable(value: Any) -> Any:
    """Best-effort conversion of config/report objects to JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_to_jsonable(v) for v in items]
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return _to_jsonable(value.tolist())
    if hasattr(value, "item"):
        return value.item()
    return repr(value)


@dataclasses.dataclass
class RunManifest:
    """The machine-readable record of one pipeline run."""

    config: Dict[str, Any] = dataclasses.field(default_factory=dict)
    trace: Optional[List[Dict[str, Any]]] = None
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    health: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    pipeline_stages: List[str] = dataclasses.field(default_factory=list)
    #: Quarantine buckets from the resilience layer; ``None`` when the
    #: layer is off (the key is then omitted from the document).
    quarantine: Optional[List[Dict[str, Any]]] = None
    #: Degradation report dump; ``None`` when the layer is off.
    degradation: Optional[Dict[str, Any]] = None
    #: Serialized SLO report (see :mod:`repro.obs.slo`); ``None`` when no
    #: SLO spec was evaluated (the key is then omitted).
    slo: Optional[Dict[str, Any]] = None
    generator: str = "repro-anycast"
    schema_version: int = SCHEMA_VERSION
    #: Wall-clock creation time.  Lives only here — never in results.
    created_unix: float = dataclasses.field(default_factory=time.time)

    @classmethod
    def collect(
        cls,
        config: Any = None,
        tracer: Optional[Union[Tracer, NullTracer]] = None,
        metrics: Optional[Union[MetricsRegistry, NullMetricsRegistry]] = None,
        health: Iterable[Any] = (),
        quarantine: Any = None,
        degradation: Any = None,
        slo: Any = None,
    ) -> "RunManifest":
        """Assemble a manifest from live pipeline objects.

        ``config`` may be any dataclass (typically ``StudyConfig``);
        ``health`` any iterable of ``CampaignHealthReport``-like objects.
        A :class:`NullTracer` yields ``trace: null`` — the manifest still
        validates, it just records that tracing was off.  ``quarantine``
        accepts a ``QuarantineLog`` (or prepared list of bucket dicts)
        and ``degradation`` a ``DegradationReport`` (or its dict dump);
        both default to ``None`` — resilience off.
        """
        trace = None
        stages: List[str] = []
        if tracer is not None and tracer.enabled:
            trace = tracer.to_dicts()
            seen = set(iter_span_names(tracer))
            stages = [s for s in CANONICAL_STAGES if s in seen]
        snapshot = (
            metrics.snapshot()
            if metrics is not None
            else NullMetricsRegistry().snapshot()
        )
        if quarantine is not None and hasattr(quarantine, "to_dicts"):
            quarantine = quarantine.to_dicts()
        if degradation is not None and hasattr(degradation, "to_dict"):
            degradation = degradation.to_dict()
        if slo is not None and hasattr(slo, "to_doc"):
            slo = slo.to_doc()
        return cls(
            config=_to_jsonable(config) if config is not None else {},
            trace=trace,
            metrics=snapshot,
            health=[_to_jsonable(h) for h in health],
            pipeline_stages=stages,
            quarantine=quarantine,
            degradation=degradation,
            slo=slo,
        )

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "schema_version": self.schema_version,
            "generator": self.generator,
            "created_unix": self.created_unix,
            "config": self.config,
            "pipeline_stages": list(self.pipeline_stages),
            "trace": self.trace,
            "metrics": self.metrics,
            "health": list(self.health),
        }
        # Optional resilience sections: omitted entirely when the layer
        # is off, keeping the document byte-identical to older runs.
        if self.quarantine is not None:
            doc["quarantine"] = list(self.quarantine)
        if self.degradation is not None:
            doc["degradation"] = dict(self.degradation)
        if self.slo is not None:
            doc["slo"] = dict(self.slo)
        return doc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: Union[str, os.PathLike]) -> pathlib.Path:
        """Atomically write the manifest JSON to ``path``.

        The document lands under a temporary name in the target directory
        and is renamed into place, so readers never observe a torn file.
        """
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        return target


def _span_problems(span: Any, path: str, problems: List[str]) -> None:
    if not isinstance(span, dict):
        problems.append(f"{path}: span is not an object")
        return
    for key in ("name", "inclusive_s", "exclusive_s", "children"):
        if key not in span:
            problems.append(f"{path}: span missing key {key!r}")
    if not isinstance(span.get("children", []), list):
        problems.append(f"{path}: span children is not a list")
        return
    for i, child in enumerate(span.get("children", [])):
        _span_problems(child, f"{path}.children[{i}]", problems)


def manifest_problems(doc: Any) -> List[str]:
    """All schema violations of a parsed manifest document (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["manifest is not a JSON object"]
    for key in REQUIRED_KEYS:
        if key not in doc:
            problems.append(f"missing required key {key!r}")
    if problems:
        return problems
    if not isinstance(doc["schema_version"], int):
        problems.append("schema_version must be an integer")
    elif doc["schema_version"] > SCHEMA_VERSION:
        problems.append(
            f"schema_version {doc['schema_version']} is newer than "
            f"supported {SCHEMA_VERSION}"
        )
    if not isinstance(doc["config"], dict):
        problems.append("config must be an object")
    if not (
        isinstance(doc["pipeline_stages"], list)
        and all(isinstance(s, str) for s in doc["pipeline_stages"])
    ):
        problems.append("pipeline_stages must be a list of strings")
    else:
        unknown = [s for s in doc["pipeline_stages"] if s not in CANONICAL_STAGES]
        if unknown:
            problems.append(f"pipeline_stages contains unknown stages {unknown!r}")
    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        for family in ("counters", "gauges", "histograms"):
            if not isinstance(metrics.get(family), dict):
                problems.append(f"metrics.{family} must be an object")
    if not isinstance(doc["health"], list):
        problems.append("health must be a list")
    trace = doc["trace"]
    if trace is not None:
        if not isinstance(trace, list):
            problems.append("trace must be null or a list of spans")
        else:
            for i, span in enumerate(trace):
                _span_problems(span, f"trace[{i}]", problems)
    _resilience_problems(doc, problems)
    slo = doc.get("slo")
    if slo is not None:
        from .slo import slo_report_problems

        problems.extend(f"slo: {p}" for p in slo_report_problems(slo))
    return problems


def _resilience_problems(doc: Dict[str, Any], problems: List[str]) -> None:
    """Schema checks for the optional quarantine/degradation sections.

    Both keys are optional (pre-resilience manifests omit them) and may
    be ``null`` (resilience was off for that run).
    """
    quarantine = doc.get("quarantine")
    if quarantine is not None:
        if not isinstance(quarantine, list):
            problems.append("quarantine must be null or a list of buckets")
        else:
            for i, bucket in enumerate(quarantine):
                if not isinstance(bucket, dict):
                    problems.append(f"quarantine[{i}]: bucket is not an object")
                    continue
                for key, kind in (("stage", str), ("reason", str), ("count", int)):
                    if not isinstance(bucket.get(key), kind):
                        problems.append(
                            f"quarantine[{i}]: {key!r} must be {kind.__name__}"
                        )
                if isinstance(bucket.get("count"), int) and bucket["count"] < 0:
                    problems.append(f"quarantine[{i}]: count must be >= 0")
                if "examples" in bucket and not isinstance(bucket["examples"], list):
                    problems.append(f"quarantine[{i}]: examples must be a list")
    degradation = doc.get("degradation")
    if degradation is not None:
        if not isinstance(degradation, dict):
            problems.append("degradation must be null or an object")
            return
        if not isinstance(degradation.get("degraded"), bool):
            problems.append("degradation.degraded must be a boolean")
        total = degradation.get("quarantined_total")
        if not isinstance(total, int) or total < 0:
            problems.append("degradation.quarantined_total must be an int >= 0")
        stages = degradation.get("stages")
        if not isinstance(stages, dict):
            problems.append("degradation.stages must be an object")
        else:
            for name, outcome in stages.items():
                if not isinstance(outcome, dict):
                    problems.append(f"degradation.stages[{name!r}] is not an object")
                elif outcome.get("status") not in ("ok", "degraded", "failed"):
                    problems.append(
                        f"degradation.stages[{name!r}].status is "
                        f"{outcome.get('status')!r}, expected ok/degraded/failed"
                    )
        confidence = degradation.get("confidence")
        if not isinstance(confidence, dict) or not all(
            isinstance(v, int) for v in confidence.values()
        ):
            problems.append("degradation.confidence must map verdicts to ints")


def validate_manifest(doc: Any) -> None:
    """Raise ``ValueError`` listing every schema violation in ``doc``."""
    problems = manifest_problems(doc)
    if problems:
        raise ValueError(
            "invalid run manifest:\n" + "\n".join(f"  - {p}" for p in problems)
        )
