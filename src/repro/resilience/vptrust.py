"""Cross-VP trust scoring: which vantage points can the census believe?

The speed-of-light detection test has no false positives *only if every
vantage point tells the truth* about two things: the RTT it measured
and the place it measured from.  One miscalibrated node — a skewed
clock, a bufferbloated uplink, a stale geolocation entry, a wedged
timestamping path — can fabricate disk-disjointness and flip a unicast
prefix to anycast, or hide real violations.  This module scores each VP
against the rest of the roster and excises the ones that cannot be
physically consistent with it, feeding the same quarantine/degraded-
confidence machinery the sanitizers use.

Scoring runs in two passes, because liars contaminate statistics:

**Pass 1 — hard physical evidence**, needing no roster comparison:
negative RTTs (only a skewed clock produces a sub-zero round trip) and
a near-zero RTT spread (real paths to a global hitlist span a huge RTT
range; a constant column is a wedged timestamping path).  Pass-1
flagged columns are *excluded from every pass-2 statistic* — a VP
reporting negative RTTs would otherwise drag every target's best-RTT
reference down and smear honest VPs' residuals.

**Pass 2 — cross-VP consistency** over the surviving roster:

* **iterative solo-violation attribution** — a target's speed-of-light
  violations are *attributable* to one VP when every violating disk
  pair involves it: remove that VP and the target has no violation
  left.  Genuine anycast violations are corroborated across catchments
  (many pairs, no single VP accounts for all of them), so an honest
  VP's solo rate stays near zero no matter how eccentric its
  geography; a mis-geolocated VP fabricates violations on unicast
  targets that *only it* can witness.  Flagging is iterative — excise
  the worst offender above ``solo_margin``, recompute, repeat —
  because two distorted VPs can corroborate each other's fake
  violations and hide from a single-shot solo count; peeling them off
  one at a time re-exposes the remainder;
* **RTT residual** — the VP's median excess over each target's best
  surviving RTT, robust-z-scored over the roster with an absolute
  margin floor.  Bufferbloat and positive clock skew inflate it far
  above the honest straggler cohort (whose exponential inflation is an
  order of magnitude smaller).  The z-score scale is estimated from
  the *sub-margin core* of the cohort only: several co-distorted
  nodes with similar inflation would otherwise widen the roster MAD
  enough to mask each other.

Thresholds are margins over roster-relative statistics, so a clean
roster flags nobody: the whole layer is output-neutral on clean data
(:func:`apply_trust` returns its argument object unchanged when every
VP is trusted).  The supported adversary is a minority — up to ~30% of
the roster — of independently-miscalibrated nodes.

Known observability limits: a mis-geolocated VP is caught through the
violations it fabricates, and fabrication needs target mass near the
VP's true position.  A remote node displaced to an equally remote spot
(an island probe claiming mid-ocean coordinates) fabricates violations
on well under 1% of targets — beneath the honest sole-witness
background, and with proportionally small census harm.  Conversely,
excising a distorted VP can *vacate a region*: the remaining honest
regional witness inherits every far-catchment violation its excised
neighbour used to corroborate, and a sole honest witness of a far
anycast catchment is observationally identical to a mis-geolocated
fabricator (same all-pairs-involve-me solo signature, same small
disks).  No per-matrix statistic can tell them apart, so the engine
stays soundness-first and may excise such a witness too — the cost is
bounded (only the detections that witness alone could make), where
keeping a real liar would fabricate anycast.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..census.combine import RttMatrix
from ..geo.disks import FIBER_SPEED_KM_PER_MS
from ..obs import current_events, current_metrics

#: Reason codes attached to untrusted verdicts.
TRUST_REASON_NEGATIVE_RTT = "negative-rtt"
TRUST_REASON_SOL_VIOLATION = "sol-violation-outlier"
TRUST_REASON_RTT_INFLATION = "rtt-inflation"
TRUST_REASON_STUCK_RTT = "stuck-rtt"


@dataclass(frozen=True)
class TrustPolicy:
    """Thresholds of the cross-VP consistency checks.

    The relative thresholds (``*_z``) are robust z-scores over the
    roster; each is paired with an absolute margin so a tightly-packed
    clean roster (tiny MAD) cannot flag a VP over measurement dust.
    """

    #: Disk geometry speed (must match the detection configuration).
    speed_km_per_ms: float = FIBER_SPEED_KM_PER_MS
    #: Absolute floor below which a VP's solo-violation rate is never
    #: flagged.  Honest VPs on a diverse roster sit near zero (a real
    #: anycast violation is corroborated by pairs that do not involve
    #: any single VP); sole-witness anycast targets — where one VP
    #: genuinely is the only roster member in a separate catchment —
    #: are the honest background this floor must clear (observed well
    #: under 1% of a VP's targets on realistic anycast densities;
    #: mis-geolocated VPs fabricate several percent).
    solo_margin: float = 0.02
    #: ...and the robust z-score over the roster's solo-rate
    #: distribution a candidate must also exceed.  On small or
    #: geographically clustered rosters the honest sole-witness
    #: background is a wide *continuum* (a lone VP per region solos on
    #: every anycast target whose far catchment only it sees), so an
    #: absolute threshold alone would excise honest VPs; a liar must
    #: instead stick out of whatever background its roster has.
    solo_z: float = 3.5
    #: Floor (in rate units, pre z-scaling) on the roster MAD used for
    #: ``solo_z`` — an immaculate roster (all rates ~0) must not flag a
    #: VP over measurement dust.
    solo_mad_floor: float = 0.005
    #: Stop the iterative solo excision once this fraction of the
    #: pass-2 cohort (the columns surviving hard pass-1 evidence) has
    #: been flagged — past a minority of liars the remaining
    #: "consensus" is meaningless and excising further only destroys
    #: coverage.  Pass-1 convictions never count against this budget:
    #: they are physical evidence, not adjudication.
    max_excised_fraction: float = 0.34
    #: Robust z-score above which a VP's median RTT residual is an
    #: outlier.  Deliberately loose — rosters with genuinely-isolated
    #: honest nodes (island VPs far from the target mass) have a wide
    #: residual spread; the absolute margin below is the main gate and
    #: the z-score only protects tightly-packed rosters.  The scale is
    #: estimated from the sub-margin core of the cohort, so several
    #: similarly-inflated co-distorted nodes cannot widen the roster
    #: MAD enough to mask one another; the threshold is sized so that a
    #: geographically bimodal honest core (a dense continental cluster
    #: plus remote outposts, MAD in the tens of ms) still cannot mask a
    #: hundreds-of-ms liar.  Honest VPs are kept out by the margin
    #: gate: distortion elsewhere only *raises* a target's best-RTT
    #: reference, so it can shrink honest residuals but never inflate
    #: them across the margin.
    residual_z: float = 2.5
    #: ...and the minimum absolute excess over the roster median (ms).
    #: Sized above honest straggler inflation (an overloaded host adds an
    #: exponential of a few tens of ms), below the hundreds of ms that
    #: bufferbloat or a broken clock discipline introduce.
    residual_margin_ms: float = 150.0
    #: A column MAD below this many ms marks a stuck (constant) reporter.
    min_spread_ms: float = 0.5
    #: Checks need at least this many samples in the VP's column.
    min_samples: int = 8
    #: A roster smaller than this cannot out-vote a liar; score nothing.
    min_roster: int = 4

    def __post_init__(self) -> None:
        if self.speed_km_per_ms <= 0:
            raise ValueError("speed_km_per_ms must be positive")
        if not 0.0 < self.solo_margin < 1.0:
            raise ValueError("solo_margin must be in (0, 1)")
        if self.solo_z <= 0:
            raise ValueError("solo_z must be positive")
        if self.solo_mad_floor <= 0:
            raise ValueError("solo_mad_floor must be positive")
        if not 0.0 < self.max_excised_fraction <= 1.0:
            raise ValueError("max_excised_fraction must be in (0, 1]")
        if self.residual_z <= 0:
            raise ValueError("residual_z must be positive")
        if self.residual_margin_ms < 0:
            raise ValueError("residual_margin_ms must be non-negative")
        if self.min_spread_ms < 0:
            raise ValueError("min_spread_ms must be non-negative")
        if self.min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if self.min_roster < 3:
            raise ValueError("min_roster must be >= 3")


@dataclass
class VpTrustVerdict:
    """One vantage point's consistency scorecard."""

    name: str
    trusted: bool
    #: Reason codes (empty when trusted).
    reasons: List[str] = field(default_factory=list)
    #: Fraction of (target, peer) disk pairs disjoint from this VP's —
    #: the raw background, reported for context, never used for flagging.
    violation_rate: float = 0.0
    #: Fraction of this VP's measured targets whose speed-of-light
    #: violations are attributable to it *alone* (every violating pair
    #: involves it).  The flagging statistic of the solo check; for a
    #: flagged VP this is the rate at the excision round, for a trusted
    #: VP the final-round (fully cleaned roster) rate.
    solo_rate: float = 0.0
    #: Median excess (ms) of this VP's RTTs over each target's best RTT.
    residual_ms: float = 0.0
    #: Robust z-score of ``residual_ms`` over the surviving roster.
    residual_zscore: float = 0.0
    #: Median absolute deviation (ms) of the VP's RTT column.
    spread_ms: float = 0.0
    n_samples: int = 0

    def to_doc(self) -> Dict:
        return {
            "name": self.name,
            "trusted": self.trusted,
            "reasons": list(self.reasons),
            "violation_rate": round(self.violation_rate, 6),
            "solo_rate": round(self.solo_rate, 6),
            "residual_ms": round(self.residual_ms, 3),
            "residual_zscore": round(self.residual_zscore, 3),
            "spread_ms": round(self.spread_ms, 3),
            "n_samples": self.n_samples,
        }


@dataclass
class VpTrustReport:
    """Trust verdicts for one roster (the ``trust.json`` sidecar body)."""

    verdicts: List[VpTrustVerdict] = field(default_factory=list)
    #: The solo-violation excision ran into ``max_excised_fraction``
    #: with candidates still above threshold: the roster has no
    #: coherent majority consensus (e.g. a small, geographically
    #: clustered roster over dense anycast, where every regional
    #: outpost looks like a sole witness).  All solo flags were
    #: dropped rather than excising what cannot be adjudicated; hard
    #: pass-1 evidence and the residual check still apply.
    sol_check_aborted: bool = False

    @property
    def untrusted(self) -> List[VpTrustVerdict]:
        return [v for v in self.verdicts if not v.trusted]

    @property
    def untrusted_names(self) -> List[str]:
        return [v.name for v in self.untrusted]

    @property
    def untrusted_fraction(self) -> float:
        if not self.verdicts:
            return 0.0
        return len(self.untrusted) / len(self.verdicts)

    def reasons_by_vp(self) -> Dict[str, List[str]]:
        return {v.name: list(v.reasons) for v in self.untrusted}

    def to_doc(self) -> Dict:
        return {
            "kind": "vp-trust",
            "n_vps": len(self.verdicts),
            "n_untrusted": len(self.untrusted),
            "untrusted_fraction": round(self.untrusted_fraction, 6),
            "sol_check_aborted": self.sol_check_aborted,
            "verdicts": [v.to_doc() for v in self.verdicts],
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"vp trust: {len(self.verdicts) - len(self.untrusted)}"
            f"/{len(self.verdicts)} trusted"
        ]
        if self.sol_check_aborted:
            lines.append(
                "  sol check aborted: no coherent roster consensus "
                "(excision cap reached); solo flags dropped"
            )
        for verdict in self.untrusted:
            lines.append(
                f"  untrusted {verdict.name}: {', '.join(verdict.reasons)}"
            )
        return lines


def _robust_z(
    values: np.ndarray, core_margin: Optional[float] = None
) -> Tuple[np.ndarray, float]:
    """Per-element robust z-scores over a vector, plus its median.

    With ``core_margin`` set, the MAD is estimated from the sub-margin
    core only (values within ``median + core_margin``): outliers above
    the margin are exactly the conviction candidates, and several
    co-distorted nodes with similar inflation would otherwise widen
    the roster MAD enough to mask one another.
    """
    median = float(np.median(values))
    core = values
    if core_margin is not None:
        core = values[values <= median + core_margin]
    mad = float(np.median(np.abs(core - median)))
    scale = 1.4826 * mad
    if scale <= 1e-12:
        # A degenerate spread: z-scores are meaningless, rely on the
        # absolute margins alone (report inf where above the median).
        z = np.where(values > median, np.inf, 0.0)
    else:
        z = (values - median) / scale
    return z, median


def score_vps(
    matrix: RttMatrix,
    policy: Optional[TrustPolicy] = None,
    chunk: int = 256,
) -> VpTrustReport:
    """Score every vantage point of a matrix against the roster.

    Pure and deterministic: the report depends only on the matrix
    contents and the policy.  Metrics/events are emitted when an obs
    context is active.
    """
    policy = policy or TrustPolicy()
    n_targets, n_vps = matrix.rtt_ms.shape
    rtt = matrix.rtt_ms.astype(np.float64)
    present = ~np.isnan(rtt)
    col_samples = present.sum(axis=0)

    verdicts = [
        VpTrustVerdict(name=name, trusted=True, n_samples=int(col_samples[j]))
        for j, name in enumerate(matrix.vp_names)
    ]
    report = VpTrustReport(verdicts=verdicts)
    if n_vps < policy.min_roster:
        _emit(report)
        return report

    # ---- Pass 1: hard physical evidence, no roster comparison needed.
    scorable = col_samples >= policy.min_samples
    with np.errstate(invalid="ignore"):
        has_negative = np.nansum(np.where(rtt < 0.0, 1, 0), axis=0) > 0

    spread_ms = np.zeros(n_vps, dtype=np.float64)
    for j in range(n_vps):
        column = rtt[present[:, j], j]
        if len(column) >= 2:
            spread_ms[j] = float(np.median(np.abs(column - np.median(column))))
    stuck = scorable & (spread_ms < policy.min_spread_ms)

    # Columns excluded from every pass-2 statistic: a negative-RTT clock
    # would drag the per-target best-RTT reference down and smear every
    # honest VP's residual; a stuck-low column fabricates violations.
    surviving = ~(has_negative | stuck)

    # ---- Pass 2: iterative solo-violation attribution.
    #
    # Per round: with the currently-excised columns silenced (radius
    # +inf never forms a disjoint pair), count for each VP the targets
    # whose violating pairs ALL involve it — remove the VP and that
    # target has no violation left.  Flag the single worst offender
    # above the margin, silence it, rescan; repeat until nothing
    # clears the margin or a roster-fraction cap trips.  One-at-a-time
    # argmax matters twice over: corroborating liars hide each other
    # from a single-shot solo count until the first is peeled off, and
    # a lone fabricated pair is formally attributable to *both* of its
    # endpoints — the honest endpoint's rate deflates once the liar
    # (the common endpoint of many such pairs, hence the argmax) goes.
    distances = matrix.vp_distance_matrix()
    radii = rtt / 2.0 * policy.speed_km_per_ms
    sol_flag = np.zeros(n_vps, dtype=bool)
    solo_rates = np.zeros(n_vps, dtype=np.float64)
    violation_rate = np.zeros(n_vps, dtype=np.float64)
    max_solo = int(policy.max_excised_fraction * int(surviving.sum()))
    sol_aborted = False
    first_round = True
    while True:
        active = surviving & ~sol_flag
        safe = np.where(present & active[None, :], radii, np.inf)
        solo_counts = np.zeros(n_vps, dtype=np.int64)
        raw_counts = np.zeros(n_vps, dtype=np.int64)
        raw_pairs = np.zeros(n_vps, dtype=np.int64)
        for start in range(0, n_targets, chunk):
            block = safe[start : start + chunk]
            sums = block[:, :, None] + block[:, None, :]
            violations = distances[None, :, :] > sums
            involved = violations.sum(axis=2)  # (t, n): pairs touching VP j
            total = involved.sum(axis=1)  # (t,): 2 x violating pairs
            solo = (involved > 0) & (2 * involved == total[:, None])
            solo_counts += solo.sum(axis=0)
            if first_round:
                both = present[start : start + chunk] & active[None, :]
                raw_counts += involved.sum(axis=0)
                raw_pairs += (
                    both.sum(axis=1)[:, None] * both - both
                ).sum(axis=0)
        rates = solo_counts / np.maximum(col_samples, 1)
        solo_rates = np.where(active, rates, solo_rates)
        if first_round:
            violation_rate = raw_counts / np.maximum(raw_pairs, 1)
            first_round = False
        # A candidate must clear the absolute floor AND be a robust
        # outlier against the surviving roster's own solo background —
        # clustered rosters have honestly-high backgrounds (see
        # ``TrustPolicy.solo_z``) that no fixed threshold survives.
        cohort = rates[scorable & active]
        if cohort.size >= policy.min_roster:
            cohort_median = float(np.median(cohort))
            cohort_mad = float(np.median(np.abs(cohort - cohort_median)))
            scale = max(1.4826 * cohort_mad, policy.solo_mad_floor)
            threshold = max(
                policy.solo_margin, cohort_median + policy.solo_z * scale
            )
        else:
            threshold = np.inf  # too few scorable columns to out-vote
        candidates = scorable & active & (rates > threshold)
        if not bool(candidates.any()):
            break
        if int(sol_flag.sum()) >= max_solo:
            # The peel hit the cohort-fraction cap with offenders still
            # standing.  A true liar minority converges before the cap
            # (each excision removes its fabrications); an endless
            # supply of "offenders" means the solo statistic is seeing
            # honest structure — every peeled regional witness promotes
            # the next one.  There is no coherent consensus to defer
            # to, so drop every solo flag instead of excising a third
            # of an honest roster.
            sol_aborted = True
            sol_flag[:] = False
            break
        worst = int(np.argmax(np.where(candidates, rates, -1.0)))
        sol_flag[worst] = True

    # Median residual over each target's best RTT among the columns that
    # survived both passes (liars neither set the reference nor sit in
    # the z-score cohort).
    cleaned = surviving & ~sol_flag
    masked = np.where(present & cleaned[None, :], rtt, np.nan)
    row_has_two = (present & cleaned[None, :]).sum(axis=1) >= 2
    residual_ms = np.zeros(n_vps, dtype=np.float64)
    if bool(row_has_two.any()):
        rows = masked[row_has_two]
        with np.errstate(all="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            best = np.nanmin(rows, axis=1)
            med = np.nanmedian(rows - best[:, None], axis=0)
        residual_ms = np.where(np.isnan(med), 0.0, med)
    # z-scores over the cleaned roster only.
    residual_zs = np.zeros(n_vps, dtype=np.float64)
    residual_median = 0.0
    if int(cleaned.sum()) >= policy.min_roster:
        zs, residual_median = _robust_z(
            residual_ms[cleaned], core_margin=policy.residual_margin_ms
        )
        residual_zs[cleaned] = zs
    inflated = (
        scorable
        & cleaned
        & (residual_zs > policy.residual_z)
        & (residual_ms > residual_median + policy.residual_margin_ms)
    )

    report.sol_check_aborted = sol_aborted
    for j, verdict in enumerate(verdicts):
        verdict.violation_rate = float(violation_rate[j])
        verdict.solo_rate = float(solo_rates[j])
        verdict.residual_ms = float(residual_ms[j])
        verdict.residual_zscore = float(residual_zs[j])
        verdict.spread_ms = float(spread_ms[j])
        if not scorable[j]:
            continue  # too thin to judge either way; keep, but unscored
        if bool(has_negative[j]):
            verdict.reasons.append(TRUST_REASON_NEGATIVE_RTT)
        if bool(stuck[j]):
            verdict.reasons.append(TRUST_REASON_STUCK_RTT)
        if bool(sol_flag[j]):
            verdict.reasons.append(TRUST_REASON_SOL_VIOLATION)
        if bool(inflated[j]):
            verdict.reasons.append(TRUST_REASON_RTT_INFLATION)
        verdict.trusted = not verdict.reasons

    _emit(report)
    return report


def _emit(report: VpTrustReport) -> None:
    metrics = current_metrics()
    if metrics.enabled:
        metrics.gauge("vps_scored").set(len(report.verdicts))
        metrics.gauge("vps_untrusted").set(len(report.untrusted))
    events = current_events()
    if events.enabled:
        for verdict in report.untrusted:
            events.emit(
                "trust",
                "vp_untrusted",
                vp=verdict.name,
                reasons=",".join(verdict.reasons),
            )


def apply_trust(
    matrix: RttMatrix, report: VpTrustReport
) -> Tuple[RttMatrix, np.ndarray]:
    """Excise untrusted VP columns from a matrix.

    Returns ``(filtered_matrix, excised_per_target)`` where the second
    element counts, per target row, the non-NaN samples that were
    removed — the confidence-downgrade input (a target that lost
    samples is honestly labelled rather than silently re-judged on
    thinner data).  When every VP is trusted the *original matrix
    object* is returned with an all-zero count: the trust layer is
    output-neutral on clean rosters.
    """
    untrusted = set(report.untrusted_names)
    if not untrusted:
        return matrix, np.zeros(matrix.n_targets, dtype=np.int64)
    keep = [j for j, name in enumerate(matrix.vp_names) if name not in untrusted]
    if not keep:
        raise ValueError("trust filtering would excise every vantage point")
    drop = [j for j in range(matrix.n_vps) if j not in set(keep)]
    excised = (~np.isnan(matrix.rtt_ms[:, drop])).sum(axis=1).astype(np.int64)
    filtered = replace(
        matrix,
        vp_names=[matrix.vp_names[j] for j in keep],
        vp_locations=[matrix.vp_locations[j] for j in keep],
        rtt_ms=np.ascontiguousarray(matrix.rtt_ms[:, keep]),
        sample_count=np.ascontiguousarray(matrix.sample_count[:, keep]),
    )
    return filtered, excised
