"""Degraded-mode analysis: partial inputs, honestly-labelled outputs.

When sanitizers quarantine samples, the analysis stages still run — on
whatever survived — and every target carries a confidence verdict
(:data:`CONFIDENCE_LEVELS`):

* ``full`` — the target kept every sample it ever had; its verdict is
  exactly what a clean run would produce;
* ``degraded`` — samples were quarantined but enough remain to analyze;
  detection is still sound (fewer disks can only *miss* violations,
  never fabricate them) but enumeration is a weaker lower bound;
* ``insufficient`` — too few samples remain to reason about the target
  at all; it is reported as not-anycast with this explicit marker
  instead of being silently dropped or crashing downstream tables.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..census.analysis import AnalysisResult
from ..census.combine import RttMatrix

#: Verdicts, strongest first.
CONFIDENCE_LEVELS = ("full", "degraded", "insufficient")

CONFIDENCE_FULL = "full"
CONFIDENCE_DEGRADED = "degraded"
CONFIDENCE_INSUFFICIENT = "insufficient"


def confidence_verdicts(
    matrix: RttMatrix,
    removed_per_target: Optional[np.ndarray] = None,
    min_samples: int = 3,
) -> Dict[int, str]:
    """Per-target confidence for an analysis over ``matrix``.

    ``removed_per_target`` is the sanitizer's per-row loss count (see
    :func:`~repro.resilience.sanitize.sanitize_matrix`); ``None`` means
    nothing was removed.  ``min_samples`` must match the detection
    guard of :func:`~repro.census.analysis.analyze_matrix`.
    """
    filled = (~np.isnan(matrix.rtt_ms)).sum(axis=1)
    if removed_per_target is None:
        removed = np.zeros(matrix.n_targets, dtype=np.int64)
    else:
        removed = np.asarray(removed_per_target)
        if removed.shape != (matrix.n_targets,):
            raise ValueError("removed_per_target length mismatch")
    verdicts: Dict[int, str] = {}
    for row in range(matrix.n_targets):
        prefix = int(matrix.prefixes[row])
        if filled[row] < min_samples:
            verdicts[prefix] = CONFIDENCE_INSUFFICIENT
        elif removed[row] > 0:
            verdicts[prefix] = CONFIDENCE_DEGRADED
        else:
            verdicts[prefix] = CONFIDENCE_FULL
    return verdicts


def confidence_counts(verdicts: Dict[int, str]) -> Dict[str, int]:
    """Tally a verdict map into ``{"full": n, "degraded": m, ...}``."""
    counts = {level: 0 for level in CONFIDENCE_LEVELS}
    for verdict in verdicts.values():
        counts[verdict] = counts.get(verdict, 0) + 1
    return counts


def empty_analysis(matrix: RttMatrix) -> AnalysisResult:
    """The degrade-to-nothing fallback for a hopelessly-poisoned matrix.

    Every target is reported as not-anycast with an ``insufficient``
    verdict — downstream characterization renders empty tables instead
    of raising.
    """
    return AnalysisResult(
        prefixes=matrix.prefixes,
        anycast_mask=np.zeros(matrix.n_targets, dtype=bool),
        confidence={int(p): CONFIDENCE_INSUFFICIENT for p in matrix.prefixes},
    )
