"""Stage supervision: retry, degrade, or fail — per policy, never by luck.

A :class:`StageSupervisor` wraps each pipeline stage of a
:class:`~repro.workflow.CensusStudy`.  Failures are classified through
the :mod:`~repro.resilience.errors` taxonomy and handled by the stage's
:class:`StagePolicy`:

* **transient** failures are retried with exponential backoff, a bounded
  number of times;
* **corrupt-input** failures degrade-and-continue: the stage's fallback
  (typically the same computation over the sanitized subset, or an
  honestly-empty result) runs instead, and the outcome is labelled
  ``degraded`` in the :class:`DegradationReport`;
* **fatal** failures fail fast, wrapped in a :class:`StageFailed` that
  names the stage.

The supervisor also watches the quarantine log around each stage: a
stage that succeeded but only after its input was partially quarantined
is ``degraded``, not ``ok`` — partial results are fine, mislabelled
results are not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..obs import current_metrics
from .errors import Severity, StageFailed, classify_exception
from .quarantine import QuarantineLog


@dataclass(frozen=True)
class StagePolicy:
    """How one pipeline stage responds to each failure severity."""

    #: Total attempts for transient failures (1 = no retry).
    max_attempts: int = 3
    #: Base of the exponential backoff between transient retries, in
    #: seconds.  Real wall-clock sleep — supervision is operational, not
    #: part of the simulated timeline.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    #: ``"degrade"`` runs the stage's fallback on corrupt input;
    #: ``"fail"`` treats corrupt input as fatal.
    on_corrupt: str = "degrade"
    #: Refuse quarantined input outright: a stage that *succeeds* but
    #: only after the sanitizers removed part of its input fails instead
    #: of being labelled degraded.  The strict posture's teeth.
    fail_on_quarantine: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.on_corrupt not in ("degrade", "fail"):
            raise ValueError(f"unknown on_corrupt mode {self.on_corrupt!r}")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Pipeline-wide supervision configuration.

    ``overrides`` maps stage names (``"measurement"``, ``"combine"``,
    ``"analysis"``, ...) to stage-specific policies; every other stage
    uses ``default``.
    """

    default: StagePolicy = field(default_factory=StagePolicy)
    overrides: Mapping[str, StagePolicy] = field(default_factory=dict)

    def for_stage(self, name: str) -> StagePolicy:
        return self.overrides.get(name, self.default)

    @classmethod
    def strict(cls) -> "ResiliencePolicy":
        """Never degrade: corrupt or quarantined input fails the stage."""
        return cls(
            default=StagePolicy(
                max_attempts=1, on_corrupt="fail", fail_on_quarantine=True
            )
        )

    @classmethod
    def permissive(cls) -> "ResiliencePolicy":
        """The default degrade-and-continue posture (alias for clarity)."""
        return cls()


@dataclass
class StageOutcome:
    """What the supervisor saw while running one stage."""

    stage: str
    status: str = "ok"  # "ok" | "degraded" | "failed"
    attempts: int = 1
    #: Items quarantined out of this stage's input.
    quarantined: int = 0
    error: Optional[str] = None
    error_severity: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "status": self.status,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "error": self.error,
            "error_severity": self.error_severity,
        }


@dataclass
class DegradationReport:
    """Honest labelling of a partially-successful study.

    Collects per-stage outcomes, the quarantine totals, and the
    per-target confidence tally — the run's "what you are looking at"
    note, persisted into the manifest.
    """

    stages: Dict[str, StageOutcome] = field(default_factory=dict)
    #: Per-verdict target counts ("full" / "degraded" / "insufficient"),
    #: filled in once the analysis stage has run.
    confidence: Dict[str, int] = field(default_factory=dict)
    quarantined_total: int = 0

    @property
    def degraded(self) -> bool:
        """Whether any stage ran on less than its full, clean input."""
        return any(o.status != "ok" for o in self.stages.values()) or any(
            self.confidence.get(v, 0) > 0 for v in ("degraded", "insufficient")
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "degraded": self.degraded,
            "quarantined_total": self.quarantined_total,
            "stages": {name: o.to_dict() for name, o in sorted(self.stages.items())},
            "confidence": dict(self.confidence),
        }

    def summary_lines(self) -> List[str]:
        lines = [
            "degradation: "
            + ("DEGRADED" if self.degraded else "clean")
            + f" ({self.quarantined_total} quarantined)"
        ]
        for name in sorted(self.stages):
            outcome = self.stages[name]
            detail = f" [{outcome.error_severity}: {outcome.error}]" if outcome.error else ""
            lines.append(
                f"  {name:16s} {outcome.status:9s} attempts={outcome.attempts}"
                f" quarantined={outcome.quarantined}{detail}"
            )
        if self.confidence:
            tally = ", ".join(
                f"{verdict}={self.confidence[verdict]}"
                for verdict in ("full", "degraded", "insufficient")
                if verdict in self.confidence
            )
            lines.append(f"  confidence:      {tally}")
        return lines


class StageSupervisor:
    """Runs pipeline stages under a :class:`ResiliencePolicy`."""

    def __init__(
        self,
        policy: Optional[ResiliencePolicy] = None,
        quarantine: Optional[QuarantineLog] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy or ResiliencePolicy()
        self.quarantine = quarantine if quarantine is not None else QuarantineLog()
        self.outcomes: Dict[str, StageOutcome] = {}
        self._sleep = sleep

    def run(
        self,
        stage: str,
        fn: Callable[[], Any],
        fallback: Optional[Callable[[], Any]] = None,
    ) -> Any:
        """Run one stage under its policy; see the module docstring.

        ``fallback`` is the degrade path for corrupt input — typically
        the same computation over a sanitized subset or an explicitly
        empty result.  Without one, corrupt input escalates to failure.
        """
        policy = self.policy.for_stage(stage)
        outcome = StageOutcome(stage=stage)
        self.outcomes[stage] = outcome
        quarantined_before = self.quarantine.total
        metrics = current_metrics()

        attempt = 0
        while True:
            attempt += 1
            outcome.attempts = attempt
            try:
                value = fn()
            except Exception as exc:  # noqa: BLE001 — classification is the point
                severity = classify_exception(exc)
                outcome.error = str(exc)
                outcome.error_severity = severity.value
                if severity is Severity.TRANSIENT and attempt < policy.max_attempts:
                    if metrics.enabled:
                        metrics.counter("stage_retries").inc()
                    self._sleep(policy.backoff_s(attempt))
                    continue
                if (
                    severity is Severity.CORRUPT
                    and policy.on_corrupt == "degrade"
                    and fallback is not None
                ):
                    value = fallback()
                    outcome.status = "degraded"
                    outcome.quarantined = self.quarantine.total - quarantined_before
                    if metrics.enabled:
                        metrics.counter("stage_degraded").inc()
                    return value
                outcome.status = "failed"
                if metrics.enabled:
                    metrics.counter("stage_failed").inc()
                raise StageFailed(stage, severity, str(exc)) from exc
            else:
                outcome.quarantined = self.quarantine.total - quarantined_before
                if outcome.quarantined and policy.fail_on_quarantine:
                    outcome.status = "failed"
                    outcome.error = f"{outcome.quarantined} item(s) quarantined"
                    outcome.error_severity = Severity.CORRUPT.value
                    if metrics.enabled:
                        metrics.counter("stage_failed").inc()
                    raise StageFailed(stage, Severity.CORRUPT, outcome.error)
                if outcome.quarantined and outcome.status == "ok":
                    outcome.status = "degraded"
                if metrics.enabled:
                    metrics.counter(f"stage_{outcome.status}").inc()
                return value

    def report(self, confidence: Optional[Dict[str, int]] = None) -> DegradationReport:
        """Assemble the degradation report from everything seen so far."""
        return DegradationReport(
            stages=dict(self.outcomes),
            confidence=dict(confidence or {}),
            quarantined_total=self.quarantine.total,
        )
