"""Validators and sanitizers for data crossing stage boundaries.

The paper's own pipeline is built on distrust of its inputs — iGreedy
relies on speed-of-light *violations* rather than raw RTT trust exactly
because latency samples are noisy — but noise is only half the problem:
real measurement platforms also deliver structurally broken data (NaN
RTTs from packet mangling, impossible vantage-point coordinates from bad
geolocation feeds, duplicated or truncated rows from torn writes).  The
functions here sit at the seams between stages and enforce a simple
contract:

* **repair what is repairable** (a hitlist row whose representative
  address drifted out of its /24 gets a fresh one),
* **quarantine what is not** (reason-coded, into a
  :class:`~repro.resilience.quarantine.QuarantineLog`),
* **touch nothing that is clean** — on pristine input every sanitizer
  returns its argument *object* unchanged, which is what keeps a
  resilience-enabled run byte-identical to the baseline.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..census.combine import RttMatrix
from ..geo.cities import City
from ..geo.coords import GeoPoint
from ..internet.hitlist import HitlistEntry
from ..measurement.recordio import CensusRecords
from ..net.addresses import TOTAL_SLASH24, host_in_slash24, slash24_of
from .quarantine import QuarantineLog

#: Record flags the pipeline knows how to interpret (see recordio).
VALID_FLAGS = frozenset({0, 1, -9, -10, -13})

#: An RTT below this cannot be a real network round trip even to a
#: machine in the same rack — the reply would have outrun light through
#: the host's own stack.  Values below are quarantined as superluminal.
MIN_PLAUSIBLE_RTT_MS = 1e-3

#: An RTT above this (100x the worst intercontinental satellite path)
#: is a timer or parser artifact, not a measurement.
MAX_PLAUSIBLE_RTT_MS = 1e5


def _location_ok(point: GeoPoint) -> bool:
    """Whether a (possibly validation-bypassed) GeoPoint is physical."""
    try:
        lat, lon = float(point.lat), float(point.lon)
    except (TypeError, ValueError):
        return False
    return (
        np.isfinite(lat)
        and np.isfinite(lon)
        and -90.0 <= lat <= 90.0
        and -180.0 <= lon <= 180.0
    )


# ----------------------------------------------------------------------
# RTT records (per-census probe batches)
# ----------------------------------------------------------------------


def sanitize_records(
    records: CensusRecords, log: QuarantineLog, stage: str = "combine"
) -> CensusRecords:
    """Validate one census's probe records; quarantine the unusable ones.

    Checks, in order: unknown outcome flags, reply rows with NaN /
    negative / superluminal / implausibly-large RTTs, and duplicate
    (VP, target) pairs (first occurrence wins).  A clean batch is
    returned as the *same object*, so the fast path allocates nothing.
    """
    n = len(records)
    if n == 0:
        return records
    keep = np.ones(n, dtype=bool)
    flag = records.flag
    rtt = records.rtt_ms

    unknown = ~np.isin(flag, list(VALID_FLAGS))
    if unknown.any():
        log.add(
            stage,
            "unknown_flag",
            int(unknown.sum()),
            example=int(flag[unknown][0]),
        )
        keep &= ~unknown

    reply = flag == 0
    nan_rtt = reply & np.isnan(rtt)
    if nan_rtt.any():
        log.add(stage, "nan_rtt", int(nan_rtt.sum()))
        keep &= ~nan_rtt

    with np.errstate(invalid="ignore"):
        negative = reply & (rtt < 0.0)
        superluminal = reply & (rtt >= 0.0) & (rtt < MIN_PLAUSIBLE_RTT_MS)
        implausible = reply & (rtt > MAX_PLAUSIBLE_RTT_MS)
    if negative.any():
        log.add(stage, "negative_rtt", int(negative.sum()),
                example=float(rtt[negative][0]))
        keep &= ~negative
    if superluminal.any():
        log.add(stage, "superluminal_rtt", int(superluminal.sum()),
                example=float(rtt[superluminal][0]))
        keep &= ~superluminal
    if implausible.any():
        log.add(stage, "implausible_rtt", int(implausible.sum()),
                example=float(rtt[implausible][0]))
        keep &= ~implausible

    # Duplicate (VP, target) pairs: a VP probes each /24 once per census,
    # so a duplicate is a replayed or re-appended row.  Keep the first.
    pair_key = records.vp_index.astype(np.uint64) << np.uint64(32)
    pair_key |= records.prefix.astype(np.uint64)
    _, first_idx = np.unique(pair_key, return_index=True)
    unique_mask = np.zeros(n, dtype=bool)
    unique_mask[first_idx] = True
    duplicates = keep & ~unique_mask
    if duplicates.any():
        log.add(stage, "duplicate_record", int(duplicates.sum()))
        keep &= unique_mask

    if keep.all():
        return records
    return records.select(keep)


# ----------------------------------------------------------------------
# RTT matrix (combined censuses)
# ----------------------------------------------------------------------


def sanitize_matrix(
    matrix: RttMatrix, log: QuarantineLog, stage: str = "analysis"
) -> Tuple[RttMatrix, np.ndarray]:
    """Validate a combined RTT matrix; return it plus per-target losses.

    Quarantines vantage points with impossible coordinates (the whole
    column goes — a disk anchored at lat 400 proves nothing), merges
    duplicate VP columns (elementwise minimum, summed sample counts),
    nulls out cells with negative / superluminal / implausible RTTs, and
    nulls cells that *claim* contributing samples but lost their RTT
    (``sample_count > 0`` with NaN — torn data, not honest silence).

    The second return value counts, per target row, how many samples the
    sanitizer removed — the input of the per-target confidence verdicts.
    A clean matrix is returned as the same object with an all-zero loss
    vector.
    """
    removed = np.zeros(matrix.n_targets, dtype=np.int64)
    rtt = matrix.rtt_ms
    counts = matrix.sample_count
    dirty = False

    # -- vantage-point columns -----------------------------------------
    bad_cols: List[int] = []
    for j, point in enumerate(matrix.vp_locations):
        if not _location_ok(point):
            bad_cols.append(j)
    if bad_cols:
        for j in bad_cols:
            log.add(
                stage,
                "impossible_vp_coords",
                1,
                example=(matrix.vp_names[j], getattr(matrix.vp_locations[j], "lat", None)),
            )
        dirty = True

    first_of: dict = {}
    merged_into: List[Tuple[int, int]] = []  # (duplicate col, canonical col)
    for j, name in enumerate(matrix.vp_names):
        if j in bad_cols:
            continue
        if name in first_of:
            merged_into.append((j, first_of[name]))
        else:
            first_of[name] = j
    if merged_into:
        log.add(stage, "duplicate_vp", len(merged_into),
                example=matrix.vp_names[merged_into[0][0]])
        dirty = True

    if dirty:
        rtt = rtt.copy()
        counts = counts.copy()
        with np.errstate(invalid="ignore"):
            for dup, canon in merged_into:
                rtt[:, canon] = np.fmin(rtt[:, canon], rtt[:, dup])
                counts[:, canon] = np.minimum(
                    counts[:, canon].astype(np.int64) + counts[:, dup], 255
                ).astype(np.uint8)
        drop = set(bad_cols) | {dup for dup, _ in merged_into}
        # Samples in a dropped (not merged) column are losses.
        for j in bad_cols:
            removed += (~np.isnan(matrix.rtt_ms[:, j])).astype(np.int64)
        keep_cols = [j for j in range(matrix.n_vps) if j not in drop]
        rtt = rtt[:, keep_cols]
        counts = counts[:, keep_cols]
        vp_names = [matrix.vp_names[j] for j in keep_cols]
        vp_locations = [matrix.vp_locations[j] for j in keep_cols]
    else:
        vp_names = matrix.vp_names
        vp_locations = matrix.vp_locations

    # -- cells ---------------------------------------------------------
    cells_dirty = False
    with np.errstate(invalid="ignore"):
        negative = rtt < 0.0
        superluminal = (rtt >= 0.0) & (rtt < MIN_PLAUSIBLE_RTT_MS)
        implausible = rtt > MAX_PLAUSIBLE_RTT_MS
    lost = np.isnan(rtt) & (counts > 0)
    for mask, reason in (
        (negative, "negative_rtt"),
        (superluminal, "superluminal_rtt"),
        (implausible, "implausible_rtt"),
        (lost, "lost_sample"),
    ):
        n_bad = int(mask.sum())
        if n_bad:
            log.add(stage, reason, n_bad)
            removed += mask.sum(axis=1)
            if not cells_dirty and not dirty:
                rtt = rtt.copy()
                counts = counts.copy()
            cells_dirty = True
            rtt[mask] = np.nan
            counts[mask] = 0

    if not dirty and not cells_dirty:
        return matrix, removed
    return (
        RttMatrix(
            prefixes=matrix.prefixes,
            vp_names=vp_names,
            vp_locations=vp_locations,
            rtt_ms=rtt,
            sample_count=counts,
        ),
        removed,
    )


# ----------------------------------------------------------------------
# Hitlist entries
# ----------------------------------------------------------------------


def sanitize_hitlist(
    entries: Iterable[HitlistEntry], log: QuarantineLog, stage: str = "hitlist"
) -> List[HitlistEntry]:
    """Validate hitlist rows; repair drifted addresses, drop the rest.

    * a prefix index outside the /24 space ⇒ the row is meaningless,
      drop it;
    * a representative address outside its own /24 ⇒ repairable — the
      representative is arbitrary anyway, so re-anchor it at host ``.1``
      (logged as repaired, kept);
    * a duplicate /24 ⇒ keep the first row (``Hitlist`` would refuse the
      set outright otherwise).
    """
    out: List[HitlistEntry] = []
    seen = set()
    for entry in entries:
        prefix = entry.prefix
        if not isinstance(prefix, (int, np.integer)) or not 0 <= prefix < TOTAL_SLASH24:
            log.add(stage, "invalid_prefix", 1, example=prefix)
            continue
        if prefix in seen:
            log.add(stage, "duplicate_prefix", 1, example=int(prefix))
            continue
        seen.add(prefix)
        address = entry.address
        addr_ok = (
            isinstance(address, (int, np.integer))
            and 0 <= address <= 0xFFFFFFFF
            and slash24_of(int(address)) == prefix
        )
        if not addr_ok:
            log.add(stage, "address_repaired", 1, example=address, repaired=True)
            entry = HitlistEntry(
                prefix=int(prefix),
                address=host_in_slash24(int(prefix), 1),
                score=entry.score,
            )
        out.append(entry)
    return out


# ----------------------------------------------------------------------
# City / geo records
# ----------------------------------------------------------------------


def sanitize_city_rows(
    rows: Sequence[Tuple], log: QuarantineLog, stage: str = "geolocation"
) -> List[City]:
    """Validate raw ``(name, country, lat, lon, population)`` gazetteer rows.

    Rows with out-of-range coordinates, non-positive or non-finite
    populations, or duplicate ``(name, country)`` keys are quarantined;
    the survivors come back as :class:`City` objects.
    """
    out: List[City] = []
    seen = set()
    for row in rows:
        try:
            name, country, lat, lon, population = row
            lat, lon, population = float(lat), float(lon), float(population)
        except (TypeError, ValueError):
            log.add(stage, "malformed_city_row", 1, example=row)
            continue
        if not (
            np.isfinite(lat)
            and np.isfinite(lon)
            and -90.0 <= lat <= 90.0
            and -180.0 <= lon <= 180.0
        ):
            log.add(stage, "impossible_city_coords", 1, example=(name, lat, lon))
            continue
        if not np.isfinite(population) or population <= 0.0:
            log.add(stage, "invalid_city_population", 1, example=(name, population))
            continue
        key = (name, country)
        if key in seen:
            log.add(stage, "duplicate_city", 1, example=key)
            continue
        seen.add(key)
        out.append(
            City(name=name, country=country, location=GeoPoint(lat, lon),
                 population=population)
        )
    return out
