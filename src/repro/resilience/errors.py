"""Typed error taxonomy for pipeline-stage supervision.

The census pipeline runs for hours before its analysis stages see a
single byte, so *how* a stage fails matters as much as *that* it failed.
Every failure the :class:`~repro.resilience.supervisor.StageSupervisor`
sees is classified into one of three severities:

* **transient** — the operation might succeed if simply tried again
  (a checkpoint file briefly locked, an interrupted system call).  The
  supervisor retries with backoff.
* **corrupt** — the stage's *input* is bad (malformed records, impossible
  coordinates, a matrix that lost its samples).  Retrying is pointless;
  the supervisor degrades: it re-runs the stage on the sanitized subset
  and labels the result honestly instead of crashing the study.
* **fatal** — the run cannot meaningfully continue (quorum missed,
  misconfiguration).  The supervisor fails fast and re-raises.

Raise the typed subclasses from resilience-aware code; foreign
exceptions are mapped by :func:`classify_exception` so a study never
dies of an unclassified stack trace after the expensive measurement
phase already ran.
"""

from __future__ import annotations

import enum

from ..measurement.campaign import CensusAborted


class Severity(enum.Enum):
    """How a stage failure should be handled."""

    #: Might succeed on retry (I/O hiccup, interrupted call).
    TRANSIENT = "transient"
    #: The stage input is malformed; retrying cannot help, degrading can.
    CORRUPT = "corrupt"
    #: The run cannot meaningfully continue; fail fast.
    FATAL = "fatal"


class ResilienceError(RuntimeError):
    """Base of the typed stage-failure hierarchy."""

    severity: Severity = Severity.FATAL


class TransientStageError(ResilienceError):
    """A failure worth retrying (e.g. a brief I/O hiccup)."""

    severity = Severity.TRANSIENT


class CorruptInputError(ResilienceError):
    """A stage received input it cannot analyze soundly."""

    severity = Severity.CORRUPT


class FatalStageError(ResilienceError):
    """A failure no retry or degradation can recover from."""

    severity = Severity.FATAL


class StageFailed(ResilienceError):
    """Raised by the supervisor when a stage exhausted its policy.

    Wraps the last underlying exception so callers see both the stage
    name and the original cause (available as ``__cause__``).
    """

    severity = Severity.FATAL

    def __init__(self, stage: str, severity: Severity, message: str) -> None:
        self.stage = stage
        self.failure_severity = severity
        super().__init__(f"stage {stage!r} failed ({severity.value}): {message}")


def classify_exception(exc: BaseException) -> Severity:
    """Map an arbitrary exception onto the severity taxonomy.

    Typed :class:`ResilienceError` subclasses carry their own severity.
    For foreign exceptions the mapping is deliberately conservative:
    data-shaped errors (``ValueError``/``KeyError``/``IndexError``/
    arithmetic) come from malformed input and are *corrupt*; OS-level
    errors are *transient*; a :class:`CensusAborted` quorum miss and
    everything unrecognized are *fatal* — an unknown failure mode should
    stop the study, not be papered over.
    """
    if isinstance(exc, ResilienceError):
        return exc.severity
    if isinstance(exc, CensusAborted):
        return Severity.FATAL
    severity = _classify_exec_error(exc)
    if severity is not None:
        return severity
    if isinstance(exc, (OSError, TimeoutError, InterruptedError)):
        return Severity.TRANSIENT
    if isinstance(exc, (ValueError, KeyError, IndexError, ArithmeticError, TypeError)):
        return Severity.CORRUPT
    return Severity.FATAL


def _classify_exec_error(exc: BaseException):
    """Severity of parallel-engine failures (None for non-exec errors).

    A lost or wedged worker is infrastructure weather — a rerun gets a
    fresh pool, so *transient*.  An exhausted reassignment budget or an
    expired deadline means the supervisor already spent its recovery
    allowance; retrying the whole stage would spend it again, so *fatal*.
    Imported lazily: resilience must not require the exec package.
    """
    from ..exec.errors import (
        DeadlineExceeded,
        ReassignmentBudgetExceeded,
        WorkerLost,
        WorkerWedged,
    )

    if isinstance(exc, (WorkerLost, WorkerWedged)):
        return Severity.TRANSIENT
    if isinstance(exc, (ReassignmentBudgetExceeded, DeadlineExceeded)):
        return Severity.FATAL
    return None
