"""repro.resilience — pipeline-wide data quarantine and stage supervision.

Three pillars (see ``docs/API_GUIDE.md``):

* :mod:`repro.resilience.sanitize` — validators/sanitizers for the data
  crossing stage boundaries (probe records, RTT matrices, hitlists,
  city rows): repair what's repairable, quarantine what isn't;
* :mod:`repro.resilience.supervisor` — a :class:`StageSupervisor` with a
  typed error taxonomy (:mod:`repro.resilience.errors`) and per-stage
  policies: retry transient failures, degrade-and-continue on corrupt
  input, fail fast on fatal errors;
* :mod:`repro.resilience.degraded` — per-target confidence verdicts
  (``full`` / ``degraded`` / ``insufficient``) that flow into the
  characterization tables and the run manifest.

The golden rule mirrors the obs layer's: resilience is *output-neutral*
on clean data.  Every sanitizer returns its argument object unchanged
when nothing is wrong, so a resilience-enabled study over an unpoisoned
campaign is byte-identical to the baseline.
"""

from .degraded import (
    CONFIDENCE_DEGRADED,
    CONFIDENCE_FULL,
    CONFIDENCE_INSUFFICIENT,
    CONFIDENCE_LEVELS,
    confidence_counts,
    confidence_verdicts,
    empty_analysis,
)
from .errors import (
    CorruptInputError,
    FatalStageError,
    ResilienceError,
    Severity,
    StageFailed,
    TransientStageError,
    classify_exception,
)
from .quarantine import QuarantineBucket, QuarantineLog
from .sanitize import (
    MAX_PLAUSIBLE_RTT_MS,
    MIN_PLAUSIBLE_RTT_MS,
    VALID_FLAGS,
    sanitize_city_rows,
    sanitize_hitlist,
    sanitize_matrix,
    sanitize_records,
)
from .supervisor import (
    DegradationReport,
    ResiliencePolicy,
    StageOutcome,
    StagePolicy,
    StageSupervisor,
)
from .vptrust import (
    TRUST_REASON_NEGATIVE_RTT,
    TRUST_REASON_RTT_INFLATION,
    TRUST_REASON_SOL_VIOLATION,
    TRUST_REASON_STUCK_RTT,
    TrustPolicy,
    VpTrustReport,
    VpTrustVerdict,
    apply_trust,
    score_vps,
)

__all__ = [
    "CONFIDENCE_DEGRADED",
    "CONFIDENCE_FULL",
    "CONFIDENCE_INSUFFICIENT",
    "CONFIDENCE_LEVELS",
    "confidence_counts",
    "confidence_verdicts",
    "empty_analysis",
    "CorruptInputError",
    "FatalStageError",
    "ResilienceError",
    "Severity",
    "StageFailed",
    "TransientStageError",
    "classify_exception",
    "QuarantineBucket",
    "QuarantineLog",
    "MAX_PLAUSIBLE_RTT_MS",
    "MIN_PLAUSIBLE_RTT_MS",
    "VALID_FLAGS",
    "sanitize_city_rows",
    "sanitize_hitlist",
    "sanitize_matrix",
    "sanitize_records",
    "DegradationReport",
    "ResiliencePolicy",
    "StageOutcome",
    "StagePolicy",
    "StageSupervisor",
    "TRUST_REASON_NEGATIVE_RTT",
    "TRUST_REASON_RTT_INFLATION",
    "TRUST_REASON_SOL_VIOLATION",
    "TRUST_REASON_STUCK_RTT",
    "TrustPolicy",
    "VpTrustReport",
    "VpTrustVerdict",
    "apply_trust",
    "score_vps",
]
