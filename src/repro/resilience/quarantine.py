"""Structured quarantine of data rejected at stage boundaries.

Sanitizers never discard silently: every record, cell, or row they
refuse (or repair) is logged here under a ``(stage, reason)`` key with a
bounded sample of concrete examples.  The log is the audit trail of a
degraded run — it flows into the run manifest, is mirrored into the obs
metrics registry (``records_quarantined`` plus one
``quarantine_<reason>`` counter per reason), and is what lets a census
operator answer "where did my samples go?" after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..obs import current_metrics

#: Examples kept per (stage, reason) — enough to debug, small enough to
#: keep manifests readable when a poisoned stage rejects millions.
MAX_EXAMPLES = 5


@dataclass
class QuarantineBucket:
    """Aggregated quarantine decisions for one ``(stage, reason)`` pair."""

    stage: str
    reason: str
    count: int = 0
    #: Whether the items were repaired in place rather than dropped.
    repaired: bool = False
    examples: List[Any] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "reason": self.reason,
            "count": self.count,
            "repaired": self.repaired,
            "examples": [repr(e) for e in self.examples],
        }


class QuarantineLog:
    """Reason-coded tally of everything the sanitizers rejected."""

    def __init__(self) -> None:
        self._buckets: Dict[Tuple[str, str], QuarantineBucket] = {}

    def add(
        self,
        stage: str,
        reason: str,
        count: int = 1,
        example: Any = None,
        repaired: bool = False,
    ) -> None:
        """Record ``count`` quarantined (or repaired) items."""
        if count <= 0:
            return
        key = (stage, reason)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = QuarantineBucket(stage=stage, reason=reason, repaired=repaired)
            self._buckets[key] = bucket
        bucket.count += count
        if example is not None and len(bucket.examples) < MAX_EXAMPLES:
            bucket.examples.append(example)
        metrics = current_metrics()
        if metrics.enabled:
            metrics.counter("records_quarantined").inc(count)
            metrics.counter(f"quarantine_{reason}").inc(count)

    @property
    def total(self) -> int:
        """All quarantined/repaired items across every stage and reason."""
        return sum(b.count for b in self._buckets.values())

    @property
    def dropped(self) -> int:
        """Quarantined items that were removed (not repaired in place)."""
        return sum(b.count for b in self._buckets.values() if not b.repaired)

    def by_reason(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for bucket in self._buckets.values():
            out[bucket.reason] = out.get(bucket.reason, 0) + bucket.count
        return out

    def by_stage(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for bucket in self._buckets.values():
            out[bucket.stage] = out.get(bucket.stage, 0) + bucket.count
        return out

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Manifest-ready rows, sorted for stable output."""
        return [
            self._buckets[key].to_dict() for key in sorted(self._buckets)
        ]

    def summary_lines(self) -> List[str]:
        """Human-readable rendering for CLIs and logs."""
        if not self._buckets:
            return ["quarantine: empty"]
        lines = [f"quarantine: {self.total} item(s) in {len(self._buckets)} bucket(s)"]
        for key in sorted(self._buckets):
            bucket = self._buckets[key]
            verb = "repaired" if bucket.repaired else "dropped"
            lines.append(
                f"  {bucket.stage:16s} {bucket.reason:28s} {bucket.count:8d} {verb}"
            )
        return lines

    def __len__(self) -> int:
        return len(self._buckets)

    def __bool__(self) -> bool:
        return bool(self._buckets)
