"""High-level workflow facade: from nothing to a characterized census.

Wires the full pipeline of the paper's Fig. 1 together:

    hitlist -> PlanetLab measurement -> detection/enumeration/geolocation
            -> characterization (+ validation, + portscan)

:class:`CensusStudy` is the one-stop entry point used by the examples and
the benchmark harness; each stage is also available individually through
the subpackage APIs for custom studies.
"""

from __future__ import annotations

import contextlib
import pathlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

from .census.analysis import AnalysisResult, CensusFunnel, analyze_matrix, census_funnel
from .census.characterize import Characterization
from .census.combine import RttMatrix, combine_censuses
from .census.ranks import alexa_hosted_prefixes, caida_top_asns
from .census.validation import ValidationReport, validate_deployment
from .core.igreedy import IGreedyConfig
from .geo.cities import CityDB, default_city_db
from .internet.hitlist import Hitlist, generate_hitlist
from .internet.topology import InternetConfig, SyntheticInternet
from .measurement.campaign import CampaignHealthReport, Census, CensusCampaign
from .measurement.faults import FaultPlan, RetryPolicy
from .measurement.httpprobe import SiteCodeBook
from .measurement.platform import Platform, planetlab_platform
from .measurement.portscan import PortscanReport, run_portscan
from .obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    NullMetricsRegistry,
    NullTracer,
    RunManifest,
    Tracer,
    activate,
)


@dataclass
class StudyConfig:
    """Scale and seeds of a complete census study."""

    internet: InternetConfig = field(default_factory=InternetConfig)
    n_vantage_points: int = 308
    n_censuses: int = 4
    availability: float = 0.85
    rate_pps: float = 1000.0
    platform_seed: int = 41
    campaign_seed: int = 500
    igreedy: IGreedyConfig = field(default_factory=IGreedyConfig)
    #: Node-fault model for the measurement platform; the default plan
    #: injects nothing and leaves campaign output byte-identical.
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    #: Supervision policy for per-VP scans (retries, timeout, backoff).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Minimum usable VPs per census before it aborts (CensusAborted).
    min_vp_quorum: int = 1
    #: Journal directory for checkpoint/resume of censuses (optional).
    checkpoint_dir: Optional[str] = None
    #: Record a hierarchical span tree of every pipeline stage.  Purely
    #: observational: results are byte-identical with tracing on or off.
    trace: bool = False
    #: Record pipeline metrics (probe counters, iGreedy histograms, ...).
    metrics: bool = False
    #: Default path for :meth:`CensusStudy.write_manifest` (optional).
    manifest_path: Optional[str] = None


class CensusStudy:
    """Lazily-evaluated end-to-end census study.

    Stages are computed on first access and cached, so a single study can
    back many experiments without recomputation::

        study = CensusStudy(StudyConfig())
        study.characterization.glance_table(...)
        study.validate("CLOUDFLARENET,US")
    """

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        #: Span collector; a shared no-op unless ``config.trace`` is set.
        self.tracer: Union[Tracer, NullTracer] = (
            Tracer() if self.config.trace else NULL_TRACER
        )
        #: Metric store; a shared no-op unless ``config.metrics`` is set.
        self.metrics: Union[MetricsRegistry, NullMetricsRegistry] = (
            MetricsRegistry() if self.config.metrics else NULL_METRICS
        )
        self._internet: Optional[SyntheticInternet] = None
        self._platform: Optional[Platform] = None
        self._campaign: Optional[CensusCampaign] = None
        self._censuses: Optional[List[Census]] = None
        self._matrix: Optional[RttMatrix] = None
        self._analysis: Optional[AnalysisResult] = None
        self._characterization: Optional[Characterization] = None
        self._hitlist: Optional[Hitlist] = None
        self._portscan: Optional[PortscanReport] = None
        self._codebook: Optional[SiteCodeBook] = None
        self.city_db: CityDB = default_city_db()

    # -- observability ---------------------------------------------------

    @contextlib.contextmanager
    def _stage(self, name: str) -> Iterator[None]:
        """Run one pipeline stage under this study's tracer and metrics.

        Installs the study's tracer/registry as the process-wide defaults
        (so deep instrumentation in campaign/iGreedy reports here) and
        opens a stage span.  With observability off this is a handful of
        attribute lookups around the stage.
        """
        with activate(self.tracer, self.metrics):
            with self.tracer.span(name):
                yield

    # -- substrate -----------------------------------------------------

    @property
    def internet(self) -> SyntheticInternet:
        if self._internet is None:
            with self._stage("internet"):
                self._internet = SyntheticInternet(self.config.internet)
        return self._internet

    @property
    def platform(self) -> Platform:
        if self._platform is None:
            with self._stage("platform"):
                self._platform = planetlab_platform(
                    count=self.config.n_vantage_points,
                    seed=self.config.platform_seed,
                    city_db=self.city_db,
                )
        return self._platform

    @property
    def hitlist(self) -> Hitlist:
        if self._hitlist is None:
            internet = self.internet
            with self._stage("hitlist"):
                self._hitlist = generate_hitlist(internet)
        return self._hitlist

    # -- measurement ----------------------------------------------------

    @property
    def campaign(self) -> CensusCampaign:
        if self._campaign is None:
            self._campaign = CensusCampaign(
                self.internet,
                self.platform,
                rate_pps=self.config.rate_pps,
                seed=self.config.campaign_seed,
                fault_plan=self.config.fault_plan,
                retry=self.config.retry,
                min_vp_quorum=self.config.min_vp_quorum,
            )
        return self._campaign

    @property
    def censuses(self) -> List[Census]:
        if self._censuses is None:
            campaign = self.campaign
            with self._stage("measurement"):
                self._censuses = campaign.run(
                    n_censuses=self.config.n_censuses,
                    availability=self.config.availability,
                    checkpoint_dir=self.config.checkpoint_dir,
                )
        return self._censuses

    @property
    def health_reports(self) -> List[CampaignHealthReport]:
        """Per-census supervision reports (faults, retries, salvage).

        Lazy in the read-only sense: this reflects only censuses that have
        already been materialized and returns ``[]`` otherwise, rather
        than forcing a full campaign run just to look at health.  Access
        :attr:`censuses` first when you want the campaign to run.
        """
        if self._censuses is None:
            return []
        return [census.health for census in self._censuses]

    # -- analysis --------------------------------------------------------

    @property
    def matrix(self) -> RttMatrix:
        """Minimum-RTT combination of all censuses."""
        if self._matrix is None:
            censuses = self.censuses
            with self._stage("combine"):
                self._matrix = combine_censuses(censuses)
        return self._matrix

    @property
    def analysis(self) -> AnalysisResult:
        if self._analysis is None:
            matrix = self.matrix
            with self._stage("analysis"):
                self._analysis = analyze_matrix(
                    matrix, city_db=self.city_db, config=self.config.igreedy
                )
        return self._analysis

    @property
    def characterization(self) -> Characterization:
        if self._characterization is None:
            analysis, internet = self.analysis, self.internet
            with self._stage("characterization"):
                self._characterization = Characterization(analysis, internet)
        return self._characterization

    # -- cross-checks ------------------------------------------------------

    def glance_table(self):
        """The Fig. 10 summary table with CAIDA and Alexa intersections."""
        return self.characterization.glance_table(
            caida_asns=caida_top_asns(self.internet),
            alexa_prefixes=alexa_hosted_prefixes(self.internet),
        )

    def funnels(self) -> List[CensusFunnel]:
        """Per-census magnitude funnels (Fig. 4)."""
        return [census_funnel(c, self.internet, self.analysis) for c in self.censuses]

    @property
    def portscan(self) -> PortscanReport:
        if self._portscan is None:
            internet = self.internet
            with self._stage("portscan"):
                self._portscan = run_portscan(internet)
        return self._portscan

    # -- run manifest ----------------------------------------------------

    @property
    def manifest(self) -> RunManifest:
        """A run manifest of everything this study has computed so far.

        Covers the config, the recorded span forest (when tracing), the
        metric snapshot (when metering), and the health reports of every
        materialized census — without forcing any stage to run.
        """
        return RunManifest.collect(
            config=self.config,
            tracer=self.tracer,
            metrics=self.metrics,
            health=self.health_reports,
        )

    def write_manifest(self, path: Optional[str] = None) -> pathlib.Path:
        """Atomically write the run manifest JSON.

        ``path`` defaults to ``config.manifest_path``; one of the two must
        be set.
        """
        target = path or self.config.manifest_path
        if target is None:
            raise ValueError(
                "no manifest path: pass one or set StudyConfig.manifest_path"
            )
        return self.manifest.write(target)

    @property
    def codebook(self) -> SiteCodeBook:
        if self._codebook is None:
            self._codebook = SiteCodeBook(self.city_db)
        return self._codebook

    def deployment(self, name: str):
        """Look up a ground-truth deployment by catalog name."""
        for dep in self.internet.deployments:
            if dep.entry.name == name:
                return dep
        raise KeyError(f"no deployment named {name!r}")

    def validate(self, as_name: str) -> ValidationReport:
        """Fig. 7 validation of one HTTP-instrumented deployment."""
        return validate_deployment(
            self.analysis, self.deployment(as_name), self.platform, self.codebook
        )


def small_study(
    seed: int = 2015, trace: bool = False, metrics: bool = False
) -> CensusStudy:
    """A laptop-scale study (seconds, not minutes) for examples and tests."""
    return CensusStudy(
        StudyConfig(
            internet=InternetConfig(
                seed=seed, n_unicast_slash24=2_000, tail_deployments=80
            ),
            n_vantage_points=120,
            n_censuses=2,
            trace=trace,
            metrics=metrics,
        )
    )
