"""High-level workflow facade: from nothing to a characterized census.

Wires the full pipeline of the paper's Fig. 1 together:

    hitlist -> PlanetLab measurement -> detection/enumeration/geolocation
            -> characterization (+ validation, + portscan)

:class:`CensusStudy` is the one-stop entry point used by the examples and
the benchmark harness; each stage is also available individually through
the subpackage APIs for custom studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .census.analysis import AnalysisResult, CensusFunnel, analyze_matrix, census_funnel
from .census.characterize import Characterization
from .census.combine import RttMatrix, combine_censuses
from .census.ranks import alexa_hosted_prefixes, caida_top_asns
from .census.validation import ValidationReport, validate_deployment
from .core.igreedy import IGreedyConfig
from .geo.cities import CityDB, default_city_db
from .internet.hitlist import Hitlist, generate_hitlist
from .internet.topology import InternetConfig, SyntheticInternet
from .measurement.campaign import CampaignHealthReport, Census, CensusCampaign
from .measurement.faults import FaultPlan, RetryPolicy
from .measurement.httpprobe import SiteCodeBook
from .measurement.platform import Platform, planetlab_platform
from .measurement.portscan import PortscanReport, run_portscan


@dataclass
class StudyConfig:
    """Scale and seeds of a complete census study."""

    internet: InternetConfig = field(default_factory=InternetConfig)
    n_vantage_points: int = 308
    n_censuses: int = 4
    availability: float = 0.85
    rate_pps: float = 1000.0
    platform_seed: int = 41
    campaign_seed: int = 500
    igreedy: IGreedyConfig = field(default_factory=IGreedyConfig)
    #: Node-fault model for the measurement platform; the default plan
    #: injects nothing and leaves campaign output byte-identical.
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    #: Supervision policy for per-VP scans (retries, timeout, backoff).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Minimum usable VPs per census before it aborts (CensusAborted).
    min_vp_quorum: int = 1
    #: Journal directory for checkpoint/resume of censuses (optional).
    checkpoint_dir: Optional[str] = None


class CensusStudy:
    """Lazily-evaluated end-to-end census study.

    Stages are computed on first access and cached, so a single study can
    back many experiments without recomputation::

        study = CensusStudy(StudyConfig())
        study.characterization.glance_table(...)
        study.validate("CLOUDFLARENET,US")
    """

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        self._internet: Optional[SyntheticInternet] = None
        self._platform: Optional[Platform] = None
        self._campaign: Optional[CensusCampaign] = None
        self._censuses: Optional[List[Census]] = None
        self._matrix: Optional[RttMatrix] = None
        self._analysis: Optional[AnalysisResult] = None
        self._characterization: Optional[Characterization] = None
        self._hitlist: Optional[Hitlist] = None
        self._portscan: Optional[PortscanReport] = None
        self._codebook: Optional[SiteCodeBook] = None
        self.city_db: CityDB = default_city_db()

    # -- substrate -----------------------------------------------------

    @property
    def internet(self) -> SyntheticInternet:
        if self._internet is None:
            self._internet = SyntheticInternet(self.config.internet)
        return self._internet

    @property
    def platform(self) -> Platform:
        if self._platform is None:
            self._platform = planetlab_platform(
                count=self.config.n_vantage_points,
                seed=self.config.platform_seed,
                city_db=self.city_db,
            )
        return self._platform

    @property
    def hitlist(self) -> Hitlist:
        if self._hitlist is None:
            self._hitlist = generate_hitlist(self.internet)
        return self._hitlist

    # -- measurement ----------------------------------------------------

    @property
    def campaign(self) -> CensusCampaign:
        if self._campaign is None:
            self._campaign = CensusCampaign(
                self.internet,
                self.platform,
                rate_pps=self.config.rate_pps,
                seed=self.config.campaign_seed,
                fault_plan=self.config.fault_plan,
                retry=self.config.retry,
                min_vp_quorum=self.config.min_vp_quorum,
            )
        return self._campaign

    @property
    def censuses(self) -> List[Census]:
        if self._censuses is None:
            self._censuses = self.campaign.run(
                n_censuses=self.config.n_censuses,
                availability=self.config.availability,
                checkpoint_dir=self.config.checkpoint_dir,
            )
        return self._censuses

    @property
    def health_reports(self) -> List[CampaignHealthReport]:
        """Per-census supervision reports (faults, retries, salvage)."""
        return [census.health for census in self.censuses]

    # -- analysis --------------------------------------------------------

    @property
    def matrix(self) -> RttMatrix:
        """Minimum-RTT combination of all censuses."""
        if self._matrix is None:
            self._matrix = combine_censuses(self.censuses)
        return self._matrix

    @property
    def analysis(self) -> AnalysisResult:
        if self._analysis is None:
            self._analysis = analyze_matrix(
                self.matrix, city_db=self.city_db, config=self.config.igreedy
            )
        return self._analysis

    @property
    def characterization(self) -> Characterization:
        if self._characterization is None:
            self._characterization = Characterization(self.analysis, self.internet)
        return self._characterization

    # -- cross-checks ------------------------------------------------------

    def glance_table(self):
        """The Fig. 10 summary table with CAIDA and Alexa intersections."""
        return self.characterization.glance_table(
            caida_asns=caida_top_asns(self.internet),
            alexa_prefixes=alexa_hosted_prefixes(self.internet),
        )

    def funnels(self) -> List[CensusFunnel]:
        """Per-census magnitude funnels (Fig. 4)."""
        return [census_funnel(c, self.internet, self.analysis) for c in self.censuses]

    @property
    def portscan(self) -> PortscanReport:
        if self._portscan is None:
            self._portscan = run_portscan(self.internet)
        return self._portscan

    @property
    def codebook(self) -> SiteCodeBook:
        if self._codebook is None:
            self._codebook = SiteCodeBook(self.city_db)
        return self._codebook

    def deployment(self, name: str):
        """Look up a ground-truth deployment by catalog name."""
        for dep in self.internet.deployments:
            if dep.entry.name == name:
                return dep
        raise KeyError(f"no deployment named {name!r}")

    def validate(self, as_name: str) -> ValidationReport:
        """Fig. 7 validation of one HTTP-instrumented deployment."""
        return validate_deployment(
            self.analysis, self.deployment(as_name), self.platform, self.codebook
        )


def small_study(seed: int = 2015) -> CensusStudy:
    """A laptop-scale study (seconds, not minutes) for examples and tests."""
    return CensusStudy(
        StudyConfig(
            internet=InternetConfig(
                seed=seed, n_unicast_slash24=2_000, tail_deployments=80
            ),
            n_vantage_points=120,
            n_censuses=2,
        )
    )
