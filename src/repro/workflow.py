"""High-level workflow facade: from nothing to a characterized census.

Wires the full pipeline of the paper's Fig. 1 together:

    hitlist -> PlanetLab measurement -> detection/enumeration/geolocation
            -> characterization (+ validation, + portscan)

:class:`CensusStudy` is the one-stop entry point used by the examples and
the benchmark harness; each stage is also available individually through
the subpackage APIs for custom studies.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, List, Optional, Union

from .census.analysis import AnalysisResult, CensusFunnel, analyze_matrix, census_funnel
from .census.characterize import Characterization
from .census.combine import RttMatrix, combine_censuses
from .census.ranks import alexa_hosted_prefixes, caida_top_asns
from .census.validation import ValidationReport, validate_deployment
from .core.igreedy import IGreedyConfig
from .exec.supervisor import ExecutionPolicy
from .geo.cities import CityDB, default_city_db
from .internet.hitlist import Hitlist, generate_hitlist
from .internet.topology import InternetConfig, SyntheticInternet
from .measurement.campaign import CampaignHealthReport, Census, CensusCampaign
from .measurement.faults import (
    DataPoisoner,
    FaultPlan,
    PoisonPlan,
    RetryPolicy,
    VpDistortionPlan,
)
from .measurement.httpprobe import SiteCodeBook
from .measurement.platform import Platform, planetlab_platform
from .measurement.portscan import PortscanReport, run_portscan
from .obs import (
    NULL_EVENTS,
    NULL_METRICS,
    NULL_TRACER,
    EventLog,
    MetricsRegistry,
    NullEventLog,
    NullMetricsRegistry,
    NullTracer,
    RunManifest,
    SloSpec,
    Tracer,
    activate,
    evaluate_slo,
    stage_seconds_from_trace,
)
from .resilience import (
    DegradationReport,
    FatalStageError,
    QuarantineLog,
    ResiliencePolicy,
    StageSupervisor,
    TrustPolicy,
    VpTrustReport,
    apply_trust,
    confidence_counts,
    confidence_verdicts,
    empty_analysis,
    sanitize_hitlist,
    sanitize_matrix,
    sanitize_records,
    score_vps,
)


@dataclass
class StudyConfig:
    """Scale and seeds of a complete census study."""

    internet: InternetConfig = field(default_factory=InternetConfig)
    n_vantage_points: int = 308
    n_censuses: int = 4
    availability: float = 0.85
    rate_pps: float = 1000.0
    platform_seed: int = 41
    campaign_seed: int = 500
    igreedy: IGreedyConfig = field(default_factory=IGreedyConfig)
    #: Node-fault model for the measurement platform; the default plan
    #: injects nothing and leaves campaign output byte-identical.
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    #: Supervision policy for per-VP scans (retries, timeout, backoff).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Minimum usable VPs per census before it aborts (CensusAborted).
    min_vp_quorum: int = 1
    #: Journal directory for checkpoint/resume of censuses (optional).
    checkpoint_dir: Optional[str] = None
    #: Worker processes for census scans.  ``None`` keeps the classic
    #: serial VP loop; ``0`` runs the sharded engine in-process (the
    #: determinism reference); ``N >= 1`` runs a supervised pool of N
    #: forked workers.  Output bytes are identical in every mode.
    workers: Optional[int] = None
    #: Worker processes for the *analysis* stage (fast engine only).
    #: ``None``/``0`` analyzes detected targets serially; ``N >= 1``
    #: chunks them over a forked pool with a canonical-order merge, so
    #: results are identical for every worker count.
    analysis_workers: Optional[int] = None
    #: Wall-clock budget (seconds) for each census's scan phase when the
    #: parallel engine is active; on expiry unfinished VPs are failed
    #: into the quorum machinery instead of hanging the run.
    deadline: Optional[float] = None
    #: Full engine policy override.  When set it wins over ``workers``/
    #: ``deadline``; use it to tune shards, liveness, breakers, budgets.
    execution: Optional["ExecutionPolicy"] = None
    #: Record a hierarchical span tree of every pipeline stage.  Purely
    #: observational: results are byte-identical with tracing on or off.
    trace: bool = False
    #: Record pipeline metrics (probe counters, iGreedy histograms, ...).
    metrics: bool = False
    #: Record structured lifecycle events (quarantines, reassignments,
    #: stage boundaries) into an in-memory :class:`~repro.obs.EventLog`.
    events: bool = False
    #: SLO budgets evaluated into the run manifest's ``slo`` section;
    #: ``None`` leaves the manifest without one (the classic shape).
    slo: Optional[SloSpec] = None
    #: Default path for :meth:`CensusStudy.write_manifest` (optional).
    manifest_path: Optional[str] = None
    #: Stage supervision + data quarantine.  ``None`` turns the resilience
    #: layer off entirely: stages run bare, exactly as before.  With a
    #: policy set and clean inputs, outputs stay byte-identical — every
    #: sanitizer returns its argument unchanged when nothing is wrong.
    resilience: Optional[ResiliencePolicy] = None
    #: Chaos harness: poison data *between* stages (NaN RTTs, impossible
    #: VP coordinates, malformed hitlist rows, ...).  Test-only knob.
    poison: Optional[PoisonPlan] = None
    #: Chaos harness for the *measurement* side: a keyed fraction of
    #: vantage points is miscalibrated (clock skew, bufferbloat, stale
    #: geolocation, stuck RTTs) for the whole campaign.  The default
    #: plan distorts nothing and leaves output byte-identical.
    vp_distortion: Optional[VpDistortionPlan] = None
    #: Cross-VP trust scoring on the combined matrix: convicted columns
    #: are excised before analysis and their targets marked with
    #: degraded confidence.  On clean data no VP is convicted and the
    #: results stay byte-identical to a run without the trust layer.
    trust: bool = False
    #: Detector thresholds; ``None`` uses :class:`TrustPolicy` defaults.
    trust_policy: Optional[TrustPolicy] = None
    #: Backing store for the combined RTT matrix: ``"inline"`` keeps the
    #: classic heap arrays, ``"memmap"``/``"shared"`` place the planes in
    #: a file-backed or POSIX shared-memory segment workers attach to by
    #: token, and ``"auto"`` picks inline below the size threshold.  The
    #: ``REPRO_MATRIX_STORE`` env var wins over this field; bytes are
    #: identical for every choice.
    matrix_store: str = "auto"


class CensusStudy:
    """Lazily-evaluated end-to-end census study.

    Stages are computed on first access and cached, so a single study can
    back many experiments without recomputation::

        study = CensusStudy(StudyConfig())
        study.characterization.glance_table(...)
        study.validate("CLOUDFLARENET,US")
    """

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        #: Span collector; a shared no-op unless ``config.trace`` is set.
        self.tracer: Union[Tracer, NullTracer] = (
            Tracer() if self.config.trace else NULL_TRACER
        )
        #: Metric store; a shared no-op unless ``config.metrics`` is set.
        self.metrics: Union[MetricsRegistry, NullMetricsRegistry] = (
            MetricsRegistry() if self.config.metrics else NULL_METRICS
        )
        #: Event log; a shared no-op unless ``config.events`` is set.
        self.events: Union[EventLog, NullEventLog] = (
            EventLog() if self.config.events else NULL_EVENTS
        )
        #: Reason-coded record of everything the sanitizers removed or
        #: repaired.  Always present (and empty) so callers can inspect it
        #: without caring whether resilience is on.
        self.quarantine = QuarantineLog()
        #: Stage supervisor; ``None`` when ``config.resilience`` is unset.
        self.supervisor: Optional[StageSupervisor] = (
            StageSupervisor(self.config.resilience, quarantine=self.quarantine)
            if self.config.resilience is not None
            else None
        )
        self._poisoner: Optional[DataPoisoner] = (
            DataPoisoner(self.config.poison)
            if self.config.poison is not None and self.config.poison.enabled
            else None
        )
        self._removed_per_target = None
        #: VP trust verdicts of the combined matrix; ``None`` until the
        #: matrix stage runs (or when ``config.trust`` is off).
        self.trust_report: Optional[VpTrustReport] = None
        self._trust_excised = None
        self._internet: Optional[SyntheticInternet] = None
        self._platform: Optional[Platform] = None
        self._campaign: Optional[CensusCampaign] = None
        self._censuses: Optional[List[Census]] = None
        self._matrix: Optional[RttMatrix] = None
        self._analysis: Optional[AnalysisResult] = None
        self._characterization: Optional[Characterization] = None
        self._hitlist: Optional[Hitlist] = None
        self._portscan: Optional[PortscanReport] = None
        self._codebook: Optional[SiteCodeBook] = None
        self.city_db: CityDB = default_city_db()

    # -- observability / supervision -------------------------------------

    def _run_stage(
        self,
        name: str,
        fn: Callable[[], Any],
        fallback: Optional[Callable[[], Any]] = None,
    ) -> Any:
        """Run one pipeline stage under tracing, metrics and supervision.

        Installs the study's tracer/registry as the process-wide defaults
        (so deep instrumentation in campaign/iGreedy reports here) and
        opens a stage span.  With a resilience policy configured the
        stage additionally runs under the :class:`StageSupervisor`
        (retry / degrade / fail-fast per policy); otherwise ``fn`` runs
        bare and any exception propagates untouched.
        """
        with activate(self.tracer, self.metrics, self.events):
            with self.tracer.span(name):
                self.events.emit("stage", "stage_start", stage=name)
                try:
                    if self.supervisor is None:
                        return fn()
                    return self.supervisor.run(name, fn, fallback=fallback)
                finally:
                    self.events.emit("stage", "stage_end", stage=name)

    # -- substrate -----------------------------------------------------

    @property
    def internet(self) -> SyntheticInternet:
        if self._internet is None:
            self._internet = self._run_stage(
                "internet", lambda: SyntheticInternet(self.config.internet)
            )
        return self._internet

    @property
    def platform(self) -> Platform:
        if self._platform is None:
            self._platform = self._run_stage(
                "platform",
                lambda: planetlab_platform(
                    count=self.config.n_vantage_points,
                    seed=self.config.platform_seed,
                    city_db=self.city_db,
                ),
            )
        return self._platform

    def _build_hitlist(self, internet: SyntheticInternet) -> Hitlist:
        hitlist = generate_hitlist(internet)
        if self._poisoner is None:
            return hitlist
        entries = self._poisoner.poison_hitlist(list(hitlist))
        if self.supervisor is not None:
            entries = sanitize_hitlist(entries, self.quarantine)
        return Hitlist(entries=entries)

    @property
    def hitlist(self) -> Hitlist:
        if self._hitlist is None:
            internet = self.internet
            self._hitlist = self._run_stage(
                "hitlist", lambda: self._build_hitlist(internet)
            )
        return self._hitlist

    # -- measurement ----------------------------------------------------

    def _execution_policy(self) -> Optional[ExecutionPolicy]:
        """Resolve the engine policy from the config's parallel knobs.

        ``None`` (no knob set) keeps the classic serial loop; a bare
        ``deadline`` runs the engine in-process so the budget applies
        without any multiprocessing.
        """
        if self.config.execution is not None:
            return self.config.execution
        if self.config.workers is None and self.config.deadline is None:
            return None
        return ExecutionPolicy(
            workers=self.config.workers if self.config.workers is not None else 0,
            deadline_s=self.config.deadline,
        )

    @property
    def campaign(self) -> CensusCampaign:
        if self._campaign is None:
            self._campaign = CensusCampaign(
                self.internet,
                self.platform,
                rate_pps=self.config.rate_pps,
                seed=self.config.campaign_seed,
                fault_plan=self.config.fault_plan,
                retry=self.config.retry,
                min_vp_quorum=self.config.min_vp_quorum,
                executor=self._execution_policy(),
                distortion=self.config.vp_distortion,
            )
        return self._campaign

    @property
    def censuses(self) -> List[Census]:
        if self._censuses is None:
            campaign = self.campaign
            self._censuses = self._run_stage(
                "measurement",
                lambda: campaign.run(
                    n_censuses=self.config.n_censuses,
                    availability=self.config.availability,
                    checkpoint_dir=self.config.checkpoint_dir,
                ),
            )
        return self._censuses

    @property
    def health_reports(self) -> List[CampaignHealthReport]:
        """Per-census supervision reports (faults, retries, salvage).

        Lazy in the read-only sense: this reflects only censuses that have
        already been materialized and returns ``[]`` otherwise, rather
        than forcing a full campaign run just to look at health.  Access
        :attr:`censuses` first when you want the campaign to run.
        """
        if self._censuses is None:
            return []
        return [census.health for census in self._censuses]

    # -- analysis --------------------------------------------------------

    def _combine_censuses(self, censuses: List[Census]) -> RttMatrix:
        """combine stage body: poison -> sanitize -> min-RTT combine."""
        inputs = list(censuses)
        if self._poisoner is not None:
            inputs = [
                replace(c, records=self._poisoner.poison_records(c.records, key=i))
                for i, c in enumerate(inputs)
            ]
        if self.supervisor is not None:
            sanitized = []
            for census in inputs:
                clean = sanitize_records(census.records, self.quarantine)
                sanitized.append(
                    census if clean is census.records else replace(census, records=clean)
                )
            inputs = sanitized
        matrix = combine_censuses(inputs, store=self.config.matrix_store)
        if self._poisoner is not None:
            matrix = self._poisoner.poison_matrix(matrix)
        if self.supervisor is not None:
            matrix, self._removed_per_target = sanitize_matrix(matrix, self.quarantine)
        return matrix

    def _combine_salvage(self, censuses: List[Census]) -> RttMatrix:
        """combine degrade path: drop censuses that are individually broken."""
        usable = []
        for census in censuses:
            try:
                combine_censuses([census])
            except Exception:  # noqa: BLE001 — any breakage disqualifies it
                self.quarantine.add(
                    "combine", "census_dropped", example=census.census_id
                )
            else:
                usable.append(census)
        if not usable:
            raise FatalStageError("no census survived salvage")
        return self._combine_censuses(usable)

    def _score_trust(self, matrix: RttMatrix) -> RttMatrix:
        """trust stage body: score every VP column, excise the convicted.

        On a clean roster nothing is convicted and the very same matrix
        object comes back — the neutrality invariant of the trust layer.
        """
        report = score_vps(matrix, self.config.trust_policy)
        self.trust_report = report
        matrix, self._trust_excised = apply_trust(matrix, report)
        if report.untrusted_names and self._censuses is not None:
            reasons = report.reasons_by_vp()
            for census in self._censuses:
                census.health.absorb_trust(report.untrusted_names, reasons)
        return matrix

    @property
    def matrix(self) -> RttMatrix:
        """Minimum-RTT combination of all censuses (trust-filtered when
        ``config.trust`` is on)."""
        if self._matrix is None:
            censuses = self.censuses
            matrix = self._run_stage(
                "combine",
                lambda: self._combine_censuses(censuses),
                fallback=lambda: self._combine_salvage(censuses),
            )
            if self.config.trust:
                matrix = self._run_stage("trust", lambda: self._score_trust(matrix))
            self._matrix = matrix
        return self._matrix

    @property
    def analysis(self) -> AnalysisResult:
        if self._analysis is None:
            matrix = self.matrix

            def build() -> AnalysisResult:
                result = analyze_matrix(
                    matrix,
                    city_db=self.city_db,
                    config=self.config.igreedy,
                    workers=self.config.analysis_workers,
                )
                removed = self._removed_per_target
                trust_hit = (
                    self._trust_excised is not None and self._trust_excised.any()
                )
                if trust_hit:
                    removed = (
                        self._trust_excised
                        if removed is None
                        else removed + self._trust_excised
                    )
                if self.supervisor is not None or trust_hit:
                    result.confidence = confidence_verdicts(matrix, removed)
                return result

            self._analysis = self._run_stage(
                "analysis", build, fallback=lambda: empty_analysis(matrix)
            )
        return self._analysis

    @property
    def characterization(self) -> Characterization:
        if self._characterization is None:
            analysis, internet = self.analysis, self.internet
            self._characterization = self._run_stage(
                "characterization", lambda: Characterization(analysis, internet)
            )
        return self._characterization

    # -- cross-checks ------------------------------------------------------

    def glance_table(self):
        """The Fig. 10 summary table with CAIDA and Alexa intersections."""
        return self.characterization.glance_table(
            caida_asns=caida_top_asns(self.internet),
            alexa_prefixes=alexa_hosted_prefixes(self.internet),
        )

    def funnels(self) -> List[CensusFunnel]:
        """Per-census magnitude funnels (Fig. 4)."""
        return [census_funnel(c, self.internet, self.analysis) for c in self.censuses]

    @property
    def portscan(self) -> PortscanReport:
        if self._portscan is None:
            internet = self.internet
            self._portscan = self._run_stage("portscan", lambda: run_portscan(internet))
        return self._portscan

    # -- degradation -----------------------------------------------------

    @property
    def degradation_report(self) -> Optional[DegradationReport]:
        """Honest labelling of what (if anything) ran on partial input.

        ``None`` when the resilience layer is off.  Like
        :attr:`health_reports`, this is read-only lazy: it reflects only
        the stages that have already run.
        """
        if self.supervisor is None:
            return None
        confidence = None
        if self._analysis is not None and self._analysis.confidence:
            confidence = confidence_counts(self._analysis.confidence)
        return self.supervisor.report(confidence=confidence)

    # -- run manifest ----------------------------------------------------

    @property
    def manifest(self) -> RunManifest:
        """A run manifest of everything this study has computed so far.

        Covers the config, the recorded span forest (when tracing), the
        metric snapshot (when metering), the health reports of every
        materialized census, and — when resilience is on — the quarantine
        log and degradation report.  Never forces a stage to run.
        """
        slo_report = None
        if self.config.slo is not None:
            slo_report = evaluate_slo(
                self.config.slo,
                stage_seconds=stage_seconds_from_trace(
                    self.tracer.to_dicts() if self.config.trace else None
                ),
                metrics_snapshot=(
                    self.metrics.snapshot() if self.config.metrics else None
                ),
            )
        return RunManifest.collect(
            config=self.config,
            tracer=self.tracer,
            metrics=self.metrics,
            health=self.health_reports,
            quarantine=self.quarantine if self.supervisor is not None else None,
            degradation=self.degradation_report,
            slo=slo_report,
        )

    def write_manifest(self, path: Optional[str] = None) -> pathlib.Path:
        """Atomically write the run manifest JSON.

        ``path`` defaults to ``config.manifest_path``; one of the two must
        be set.
        """
        target = path or self.config.manifest_path
        if target is None:
            raise ValueError(
                "no manifest path: pass one or set StudyConfig.manifest_path"
            )
        return self.manifest.write(target)

    @property
    def codebook(self) -> SiteCodeBook:
        if self._codebook is None:
            self._codebook = SiteCodeBook(self.city_db)
        return self._codebook

    def deployment(self, name: str):
        """Look up a ground-truth deployment by catalog name."""
        for dep in self.internet.deployments:
            if dep.entry.name == name:
                return dep
        raise KeyError(f"no deployment named {name!r}")

    def validate(self, as_name: str) -> ValidationReport:
        """Fig. 7 validation of one HTTP-instrumented deployment."""
        return validate_deployment(
            self.analysis, self.deployment(as_name), self.platform, self.codebook
        )


def small_study(
    seed: int = 2015,
    trace: bool = False,
    metrics: bool = False,
    events: bool = False,
    resilience: Optional[ResiliencePolicy] = None,
    poison: Optional[PoisonPlan] = None,
) -> CensusStudy:
    """A laptop-scale study (seconds, not minutes) for examples and tests."""
    return CensusStudy(
        StudyConfig(
            internet=InternetConfig(
                seed=seed, n_unicast_slash24=2_000, tail_deployments=80
            ),
            n_vantage_points=120,
            n_censuses=2,
            trace=trace,
            metrics=metrics,
            events=events,
            resilience=resilience,
            poison=poison,
        )
    )


def small_service(
    archive_root: Union[str, pathlib.Path],
    seed: int = 2015,
    incremental: bool = True,
    churn_threshold: float = 0.25,
    resilience: Optional[ResiliencePolicy] = None,
    telemetry: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    **overrides,
):
    """A laptop-scale longitudinal service for examples and tests.

    A dozen catalog deployments over a small unicast haystack, gentle
    day-over-day drift (about 1-2% of targets move per day), 20 vantage
    points — each epoch takes a fraction of a second, and consecutive
    days mostly reuse the previous day's archived analysis.  Extra
    keyword arguments override any other ``ServiceConfig`` field
    (``roster_churn_prob=0.05``, ``trust=True``, ...).
    """
    from .census.longitudinal import EvolutionConfig
    from .internet.catalog import full_catalog
    from .service import CensusService, ServiceConfig

    return CensusService(
        ServiceConfig(
            archive_root=str(archive_root),
            internet_seed=seed,
            n_unicast=120,
            tail_deployments=0,
            base_catalog=full_catalog(tail_count=0, seed=seed)[:12],
            evolution=EvolutionConfig(
                growth_prob=0.02, max_new_sites=1, shrink_prob=0.01,
                new_adopters=1,
            ),
            n_vps=20,
            incremental=incremental,
            churn_threshold=churn_threshold,
            resilience=resilience,
            telemetry=telemetry,
            fault_plan=fault_plan,
            **overrides,
        )
    )
