"""Geodesic disks — the central geometric object of anycast detection.

A latency sample (vantage point *v*, round-trip time *rtt*) bounds the
position of the replica that answered: it must lie within distance
``rtt/2 * v_prop`` of the vantage point, where ``v_prop`` is the signal
propagation speed (at most the speed of light; ~2/3 c in fiber).  That
bound is a *disk* on the sphere, centered at the vantage point.

Two disks that do **not** intersect cannot contain the same replica — a
speed-of-light violation — which is the paper's anycast detection criterion
(Fig. 3b).  A set of pairwise-disjoint disks lower-bounds the number of
replicas (Fig. 3c).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence

import numpy as np

from .coords import (
    MAX_SURFACE_DISTANCE_KM,
    GeoPoint,
    great_circle_km,
    pairwise_distances_km,
)

#: Speed of light in vacuum, km/ms.
LIGHT_SPEED_KM_PER_MS = 299.792458

#: Conventional propagation speed in optical fiber (~2/3 c), km/ms.
FIBER_SPEED_KM_PER_MS = LIGHT_SPEED_KM_PER_MS * 2.0 / 3.0


@dataclass(frozen=True)
class Disk:
    """A closed geodesic disk: all points within ``radius_km`` of ``center``."""

    center: GeoPoint
    radius_km: float

    def __post_init__(self) -> None:
        if self.radius_km < 0:
            raise ValueError(f"negative disk radius: {self.radius_km!r}")

    def contains(self, point: GeoPoint) -> bool:
        """True if ``point`` lies in the (closed) disk."""
        return self.center.distance_km(point) <= self.radius_km + 1e-9

    def overlaps(self, other: "Disk") -> bool:
        """True if the two closed disks share at least one point.

        On the sphere, two disks intersect iff the distance between their
        centers is at most the sum of their radii (radii are always < half
        the circumference for RTTs of interest, so the planar criterion
        carries over).
        """
        gap = self.center.distance_km(other.center)
        return gap <= self.radius_km + other.radius_km + 1e-9

    def contains_disk(self, other: "Disk") -> bool:
        """True if ``other`` lies entirely inside this disk."""
        gap = self.center.distance_km(other.center)
        return gap + other.radius_km <= self.radius_km + 1e-9

    def shrunk_to(self, point: GeoPoint) -> "Disk":
        """Collapse the disk to a zero-radius disk at ``point``.

        This is the paper's step (e): once a replica inside the disk has
        been geolocated to a city, the disk is replaced by that city's
        location, reducing overlap for the next iteration.
        """
        return Disk(center=point, radius_km=0.0)

    def with_radius(self, radius_km: float) -> "Disk":
        """Return a copy with a different radius."""
        return replace(self, radius_km=radius_km)

    def covers_earth(self) -> bool:
        """True if the disk spans the whole sphere (vacuous constraint)."""
        return self.radius_km >= MAX_SURFACE_DISTANCE_KM


def rtt_to_radius_km(rtt_ms: float, speed_km_per_ms: float = FIBER_SPEED_KM_PER_MS) -> float:
    """Convert a round-trip time to the maximal replica distance.

    The one-way delay is at most ``rtt/2``; the replica is therefore within
    ``rtt/2 * speed`` of the vantage point.  ``speed`` defaults to the fiber
    propagation speed (2/3 c) as in iGreedy; pass
    :data:`LIGHT_SPEED_KM_PER_MS` for a fully conservative bound.
    """
    if rtt_ms < 0:
        raise ValueError(f"negative RTT: {rtt_ms!r}")
    if speed_km_per_ms <= 0:
        raise ValueError("propagation speed must be positive")
    return rtt_ms / 2.0 * speed_km_per_ms


def disk_from_sample(
    vantage: GeoPoint, rtt_ms: float, speed_km_per_ms: float = FIBER_SPEED_KM_PER_MS
) -> Disk:
    """Build the disk induced by an RTT sample at a vantage point."""
    return Disk(center=vantage, radius_km=rtt_to_radius_km(rtt_ms, speed_km_per_ms))


def overlap_matrix(disks: Sequence[Disk]) -> np.ndarray:
    """Boolean matrix ``M[i, j]`` = disks *i* and *j* overlap.

    Vectorized over all pairs; the diagonal is True.  This is the input to
    the Maximum Independent Set solver, where each census target contributes
    up to one disk per vantage point (a few hundred disks).
    """
    if not disks:
        return np.zeros((0, 0), dtype=bool)
    lats = [d.center.lat for d in disks]
    lons = [d.center.lon for d in disks]
    radii = np.array([d.radius_km for d in disks], dtype=np.float64)
    gaps = pairwise_distances_km(lats, lons, lats, lons)
    return gaps <= radii[:, None] + radii[None, :] + 1e-9


def any_disjoint_pair(disks: Sequence[Disk]) -> Optional[tuple]:
    """Return indices of one disjoint pair of disks, or ``None``.

    The existence of such a pair is the anycast detection criterion; the
    search is vectorized and short-circuits on the first violation row.
    """
    matrix = overlap_matrix(disks)
    disjoint = ~matrix
    if not disjoint.any():
        return None
    i, j = np.argwhere(disjoint)[0]
    return int(i), int(j)


def smallest_disk(disks: Iterable[Disk]) -> Disk:
    """The disk with the smallest radius (ties broken by center ordering).

    Geolocation always operates on the smallest disk because it carries the
    tightest position constraint.
    """
    try:
        return min(disks, key=lambda d: (d.radius_km, d.center))
    except ValueError:
        raise ValueError("smallest_disk of empty disk set") from None


def disks_containing(disks: Sequence[Disk], point: GeoPoint) -> List[int]:
    """Indices of all disks that contain ``point``."""
    return [i for i, d in enumerate(disks) if d.contains(point)]


def min_enclosing_radius_km(center: GeoPoint, points: Iterable[GeoPoint]) -> float:
    """Radius of the smallest disk at ``center`` covering all ``points``."""
    radius = 0.0
    for p in points:
        radius = max(radius, great_circle_km(center.lat, center.lon, p.lat, p.lon))
    return radius
