"""Embedded world-city database.

The paper's geolocation step classifies each replica to a city, using city
population as the discriminative side channel ("our geolocation criterion
boils down into picking the largest city in that disk", Sec. 2.1).  That
requires a city gazetteer with coordinates and populations.

The table below embeds ~330 cities: the world's most populous metropolitan
areas plus the secondary cities where Internet infrastructure concentrates
(IXP/datacenter towns such as Ashburn, Reston, Secaucus, Frankfurt, and
Amsterdam).  Populations are in thousands of inhabitants (mid-2010s, matching the
paper's census epoch); like real gazetteers, the figures mix metro and
municipal scopes — notably the US mid-Atlantic cluster uses municipal
values, which is what makes Philadelphia outrank Washington and drive
the paper's documented Ashburn-as-Philadelphia misclassification.  Absolute precision is unimportant — what matters for the
reproduction is the *relative ordering* (e.g. Philadelphia ≈ 33x more
populous than Ashburn, which drives the paper's one documented
misclassification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .coords import (
    GeoPoint,
    distances_to_point_km,
    pairwise_distances_from_radians,
    unit_vectors,
)
from .disks import Disk


@dataclass(frozen=True)
class City:
    """A city with location and population.

    ``population`` is in thousands of inhabitants.  Cities are uniquely
    identified by ``(name, country)``.
    """

    name: str
    country: str
    location: GeoPoint
    population: float

    @property
    def key(self) -> Tuple[str, str]:
        return (self.name, self.country)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name},{self.country}"


# (name, ISO-3166 alpha-2 country, lat, lon, metro population in thousands)
_CITY_ROWS: List[Tuple[str, str, float, float, float]] = [
    # --- North America ---
    ("New York", "US", 40.7128, -74.0060, 8400),
    ("Los Angeles", "US", 34.0522, -118.2437, 13200),
    ("Chicago", "US", 41.8781, -87.6298, 9500),
    ("Dallas", "US", 32.7767, -96.7970, 7200),
    ("Houston", "US", 29.7604, -95.3698, 6900),
    ("Washington", "US", 38.9072, -77.0369, 680),
    ("Miami", "US", 25.7617, -80.1918, 6100),
    ("Philadelphia", "US", 39.9526, -75.1652, 1570),
    ("Atlanta", "US", 33.7490, -84.3880, 5900),
    ("Phoenix", "US", 33.4484, -112.0740, 4850),
    ("Boston", "US", 42.3601, -71.0589, 670),
    ("San Francisco", "US", 37.7749, -122.4194, 4700),
    ("Detroit", "US", 42.3314, -83.0458, 4300),
    ("Seattle", "US", 47.6062, -122.3321, 3980),
    ("Minneapolis", "US", 44.9778, -93.2650, 3650),
    ("San Diego", "US", 32.7157, -117.1611, 3300),
    ("Tampa", "US", 27.9506, -82.4572, 3100),
    ("Denver", "US", 39.7392, -104.9903, 2960),
    ("St. Louis", "US", 38.6270, -90.1994, 2800),
    ("Baltimore", "US", 39.2904, -76.6122, 620),
    ("Charlotte", "US", 35.2271, -80.8431, 2600),
    ("Portland", "US", 45.5152, -122.6784, 2500),
    ("San Antonio", "US", 29.4241, -98.4936, 2500),
    ("Orlando", "US", 28.5383, -81.3792, 2500),
    ("Sacramento", "US", 38.5816, -121.4944, 2350),
    ("Pittsburgh", "US", 40.4406, -79.9959, 303),
    ("Las Vegas", "US", 36.1699, -115.1398, 2250),
    ("Cincinnati", "US", 39.1031, -84.5120, 2220),
    ("Austin", "US", 30.2672, -97.7431, 2170),
    ("Kansas City", "US", 39.0997, -94.5786, 2140),
    ("Columbus", "US", 39.9612, -82.9988, 2080),
    ("Indianapolis", "US", 39.7684, -86.1581, 2050),
    ("Cleveland", "US", 41.4993, -81.6944, 2050),
    ("San Jose", "US", 37.3382, -121.8863, 2000),
    ("Nashville", "US", 36.1627, -86.7816, 1930),
    ("Salt Lake City", "US", 40.7608, -111.8910, 1230),
    ("Raleigh", "US", 35.7796, -78.6382, 1390),
    ("Milwaukee", "US", 43.0389, -87.9065, 1570),
    ("Jacksonville", "US", 30.3322, -81.6557, 1530),
    ("Oklahoma City", "US", 35.4676, -97.5164, 1400),
    ("Memphis", "US", 35.1495, -90.0490, 1340),
    ("Louisville", "US", 38.2527, -85.7585, 1290),
    ("Richmond", "US", 37.5407, -77.4360, 220),
    ("New Orleans", "US", 29.9511, -90.0715, 1270),
    ("Buffalo", "US", 42.8864, -78.8784, 258),
    ("Albuquerque", "US", 35.0844, -106.6504, 920),
    ("Omaha", "US", 41.2565, -95.9345, 940),
    ("Honolulu", "US", 21.3069, -157.8583, 980),
    ("El Paso", "US", 31.7619, -106.4850, 840),
    ("Boise", "US", 43.6150, -116.2023, 710),
    ("Des Moines", "US", 41.5868, -93.6250, 640),
    ("Madison", "US", 43.0731, -89.4012, 660),
    ("Spokane", "US", 47.6588, -117.4260, 570),
    ("Anchorage", "US", 61.2181, -149.9003, 400),
    ("Reno", "US", 39.5296, -119.8138, 460),
    ("Billings", "US", 45.7833, -108.5007, 180),
    ("Ashburn", "US", 39.0438, -77.4874, 48),
    ("Reston", "US", 38.9586, -77.3570, 62),
    ("Secaucus", "US", 40.7895, -74.0565, 21),
    ("Newark", "US", 40.7357, -74.1724, 282),
    ("Santa Clara", "US", 37.3541, -121.9552, 130),
    ("Palo Alto", "US", 37.4419, -122.1430, 67),
    ("Mountain View", "US", 37.3861, -122.0839, 82),
    ("Cambridge", "US", 42.3736, -71.1097, 118),
    ("Princeton", "US", 40.3573, -74.6672, 31),
    ("Durham", "US", 35.9940, -78.8986, 280),
    ("Champaign", "US", 40.1164, -88.2434, 88),
    ("Boulder", "US", 40.0150, -105.2705, 108),
    ("Ann Arbor", "US", 42.2808, -83.7430, 121),
    ("Toronto", "CA", 43.6532, -79.3832, 6200),
    ("Montreal", "CA", 45.5017, -73.5673, 4200),
    ("Vancouver", "CA", 49.2827, -123.1207, 2600),
    ("Calgary", "CA", 51.0447, -114.0719, 1480),
    ("Ottawa", "CA", 45.4215, -75.6972, 1430),
    ("Edmonton", "CA", 53.5461, -113.4938, 1420),
    ("Winnipeg", "CA", 49.8951, -97.1384, 830),
    ("Quebec City", "CA", 46.8139, -71.2080, 810),
    ("Halifax", "CA", 44.6488, -63.5752, 440),
    ("Mexico City", "MX", 19.4326, -99.1332, 21800),
    ("Guadalajara", "MX", 20.6597, -103.3496, 5200),
    ("Monterrey", "MX", 25.6866, -100.3161, 4700),
    ("Tijuana", "MX", 32.5149, -117.0382, 2100),
    ("Queretaro", "MX", 20.5888, -100.3899, 1400),
    ("Panama City", "PA", 8.9824, -79.5199, 1900),
    ("San Jose CR", "CR", 9.9281, -84.0907, 1400),
    ("Guatemala City", "GT", 14.6349, -90.5069, 2900),
    ("Havana", "CU", 23.1136, -82.3666, 2100),
    ("Santo Domingo", "DO", 18.4861, -69.9312, 3300),
    ("San Juan", "PR", 18.4655, -66.1057, 2300),
    ("Kingston", "JM", 17.9712, -76.7936, 1200),
    # --- South America ---
    ("Sao Paulo", "BR", -23.5505, -46.6333, 21300),
    ("Rio de Janeiro", "BR", -22.9068, -43.1729, 12800),
    ("Buenos Aires", "AR", -34.6037, -58.3816, 15100),
    ("Lima", "PE", -12.0464, -77.0428, 10400),
    ("Bogota", "CO", 4.7110, -74.0721, 10200),
    ("Santiago", "CL", -33.4489, -70.6693, 6700),
    ("Belo Horizonte", "BR", -19.9167, -43.9345, 5900),
    ("Brasilia", "BR", -15.8267, -47.9218, 4300),
    ("Porto Alegre", "BR", -30.0346, -51.2177, 4300),
    ("Recife", "BR", -8.0476, -34.8770, 4000),
    ("Fortaleza", "BR", -3.7319, -38.5267, 4000),
    ("Salvador", "BR", -12.9777, -38.5016, 3900),
    ("Curitiba", "BR", -25.4284, -49.2733, 3600),
    ("Campinas", "BR", -22.9099, -47.0626, 3200),
    ("Medellin", "CO", 6.2442, -75.5812, 3900),
    ("Cali", "CO", 3.4516, -76.5320, 2800),
    ("Caracas", "VE", 10.4806, -66.9036, 2900),
    ("Quito", "EC", -0.1807, -78.4678, 1900),
    ("Guayaquil", "EC", -2.1710, -79.9224, 3000),
    ("Montevideo", "UY", -34.9011, -56.1645, 1700),
    ("Asuncion", "PY", -25.2637, -57.5759, 2300),
    ("La Paz", "BO", -16.4897, -68.1193, 1800),
    ("Cordoba", "AR", -31.4201, -64.1888, 1600),
    # --- Europe ---
    ("London", "GB", 51.5074, -0.1278, 14000),
    ("Paris", "FR", 48.8566, 2.3522, 12500),
    ("Madrid", "ES", 40.4168, -3.7038, 6600),
    ("Barcelona", "ES", 41.3851, 2.1734, 5500),
    ("Milan", "IT", 45.4642, 9.1900, 5200),
    ("Rome", "IT", 41.9028, 12.4964, 4300),
    ("Berlin", "DE", 52.5200, 13.4050, 4500),
    ("Hamburg", "DE", 53.5511, 9.9937, 3200),
    ("Munich", "DE", 48.1351, 11.5820, 2900),
    ("Frankfurt", "DE", 50.1109, 8.6821, 2700),
    ("Cologne", "DE", 50.9375, 6.9603, 2100),
    ("Dusseldorf", "DE", 51.2277, 6.7735, 1550),
    ("Stuttgart", "DE", 48.7758, 9.1829, 2700),
    ("Athens", "GR", 37.9838, 23.7275, 3750),
    ("Lisbon", "PT", 38.7223, -9.1393, 2900),
    ("Porto", "PT", 41.1579, -8.6291, 1750),
    ("Manchester", "GB", 53.4808, -2.2426, 2800),
    ("Birmingham", "GB", 52.4862, -1.8904, 2900),
    ("Leeds", "GB", 53.8008, -1.5491, 1900),
    ("Glasgow", "GB", 55.8642, -4.2518, 1800),
    ("Edinburgh", "GB", 55.9533, -3.1883, 900),
    ("Dublin", "IE", 53.3498, -6.2603, 1900),
    ("Brussels", "BE", 50.8503, 4.3517, 2100),
    ("Antwerp", "BE", 51.2194, 4.4025, 1050),
    ("Amsterdam", "NL", 52.3676, 4.9041, 2480),
    ("Rotterdam", "NL", 51.9244, 4.4777, 1000),
    ("The Hague", "NL", 52.0705, 4.3007, 700),
    ("Eindhoven", "NL", 51.4416, 5.4697, 420),
    ("Luxembourg", "LU", 49.6116, 6.1319, 600),
    ("Vienna", "AT", 48.2082, 16.3738, 2600),
    ("Zurich", "CH", 47.3769, 8.5417, 1400),
    ("Geneva", "CH", 46.2044, 6.1432, 600),
    ("Bern", "CH", 46.9480, 7.4474, 420),
    ("Vaduz", "LI", 47.1410, 9.5209, 6),
    ("Prague", "CZ", 50.0755, 14.4378, 2100),
    ("Warsaw", "PL", 52.2297, 21.0122, 3100),
    ("Krakow", "PL", 50.0647, 19.9450, 1700),
    ("Wroclaw", "PL", 51.1079, 17.0385, 1200),
    ("Poznan", "PL", 52.4064, 16.9252, 1000),
    ("Gdansk", "PL", 54.3520, 18.6466, 1100),
    ("Budapest", "HU", 47.4979, 19.0402, 3000),
    ("Bucharest", "RO", 44.4268, 26.1025, 2200),
    ("Cluj-Napoca", "RO", 46.7712, 23.6236, 410),
    ("Sofia", "BG", 42.6977, 23.3219, 1700),
    ("Belgrade", "RS", 44.7866, 20.4489, 1700),
    ("Zagreb", "HR", 45.8150, 15.9819, 1100),
    ("Ljubljana", "SI", 46.0569, 14.5058, 540),
    ("Bratislava", "SK", 48.1486, 17.1077, 660),
    ("Copenhagen", "DK", 55.6761, 12.5683, 2050),
    ("Stockholm", "SE", 59.3293, 18.0686, 2350),
    ("Gothenburg", "SE", 57.7089, 11.9746, 1030),
    ("Oslo", "NO", 59.9139, 10.7522, 1540),
    ("Helsinki", "FI", 60.1699, 24.9384, 1490),
    ("Tallinn", "EE", 59.4370, 24.7536, 610),
    ("Riga", "LV", 56.9496, 24.1052, 1000),
    ("Vilnius", "LT", 54.6872, 25.2797, 810),
    ("Reykjavik", "IS", 64.1466, -21.9426, 230),
    ("Moscow", "RU", 55.7558, 37.6173, 17100),
    ("Saint Petersburg", "RU", 59.9311, 30.3609, 5400),
    ("Novosibirsk", "RU", 55.0084, 82.9357, 1600),
    ("Yekaterinburg", "RU", 56.8389, 60.6057, 1500),
    ("Kazan", "RU", 55.8304, 49.0661, 1300),
    ("Kiev", "UA", 50.4501, 30.5234, 3400),
    ("Kharkiv", "UA", 49.9935, 36.2304, 1450),
    ("Minsk", "BY", 53.9006, 27.5590, 2000),
    ("Istanbul", "TR", 41.0082, 28.9784, 14800),
    ("Ankara", "TR", 39.9334, 32.8597, 5300),
    ("Izmir", "TR", 38.4237, 27.1428, 4300),
    ("Lyon", "FR", 45.7640, 4.8357, 2300),
    ("Marseille", "FR", 43.2965, 5.3698, 1760),
    ("Toulouse", "FR", 43.6047, 1.4442, 1350),
    ("Nice", "FR", 43.7102, 7.2620, 1000),
    ("Bordeaux", "FR", 44.8378, -0.5792, 1200),
    ("Nantes", "FR", 47.2184, -1.5536, 950),
    ("Strasbourg", "FR", 48.5734, 7.7521, 790),
    ("Roubaix", "FR", 50.6927, 3.1746, 96),
    ("Lille", "FR", 50.6292, 3.0573, 1200),
    ("Turin", "IT", 45.0703, 7.6869, 1700),
    ("Naples", "IT", 40.8518, 14.2681, 3100),
    ("Bologna", "IT", 44.4949, 11.3426, 1000),
    ("Valencia", "ES", 39.4699, -0.3763, 1600),
    ("Seville", "ES", 37.3891, -5.9845, 1500),
    ("Bilbao", "ES", 43.2630, -2.9350, 1000),
    ("Nicosia", "CY", 35.1856, 33.3823, 330),
    ("Valletta", "MT", 35.8989, 14.5146, 210),
    # --- Africa & Middle East ---
    ("Cairo", "EG", 30.0444, 31.2357, 20000),
    ("Lagos", "NG", 6.5244, 3.3792, 13900),
    ("Kinshasa", "CD", -4.4419, 15.2663, 12000),
    ("Johannesburg", "ZA", -26.2041, 28.0473, 9600),
    ("Cape Town", "ZA", -33.9249, 18.4241, 4000),
    ("Durban", "ZA", -29.8587, 31.0218, 3400),
    ("Nairobi", "KE", -1.2921, 36.8219, 4400),
    ("Mombasa", "KE", -4.0435, 39.6682, 1200),
    ("Addis Ababa", "ET", 9.0300, 38.7400, 4400),
    ("Dar es Salaam", "TZ", -6.7924, 39.2083, 5100),
    ("Accra", "GH", 5.6037, -0.1870, 2500),
    ("Abidjan", "CI", 5.3600, -4.0083, 4700),
    ("Dakar", "SN", 14.7167, -17.4677, 3100),
    ("Casablanca", "MA", 33.5731, -7.5898, 3700),
    ("Algiers", "DZ", 36.7538, 3.0588, 2700),
    ("Tunis", "TN", 36.8065, 10.1815, 2300),
    ("Kampala", "UG", 0.3476, 32.5825, 3300),
    ("Kigali", "RW", -1.9441, 30.0619, 1100),
    ("Luanda", "AO", -8.8390, 13.2894, 7800),
    ("Maputo", "MZ", -25.9692, 32.5732, 1100),
    ("Tel Aviv", "IL", 32.0853, 34.7818, 3800),
    ("Jerusalem", "IL", 31.7683, 35.2137, 1100),
    ("Haifa", "IL", 32.7940, 34.9896, 920),
    ("Amman", "JO", 31.9454, 35.9284, 4000),
    ("Beirut", "LB", 33.8938, 35.5018, 2400),
    ("Riyadh", "SA", 24.7136, 46.6753, 6900),
    ("Jeddah", "SA", 21.4858, 39.1925, 4200),
    ("Dubai", "AE", 25.2048, 55.2708, 2900),
    ("Abu Dhabi", "AE", 24.4539, 54.3773, 1500),
    ("Doha", "QA", 25.2854, 51.5310, 2400),
    ("Kuwait City", "KW", 29.3759, 47.9774, 3100),
    ("Manama", "BH", 26.2285, 50.5860, 650),
    ("Muscat", "OM", 23.5880, 58.3829, 1500),
    ("Tehran", "IR", 35.6892, 51.3890, 9000),
    ("Baghdad", "IQ", 33.3152, 44.3661, 7200),
    # --- Asia ---
    ("Tokyo", "JP", 35.6762, 139.6503, 37400),
    ("Osaka", "JP", 34.6937, 135.5023, 19300),
    ("Nagoya", "JP", 35.1815, 136.9066, 9500),
    ("Fukuoka", "JP", 33.5904, 130.4017, 5500),
    ("Sapporo", "JP", 43.0618, 141.3545, 2600),
    ("Seoul", "KR", 37.5665, 126.9780, 25600),
    ("Busan", "KR", 35.1796, 129.0756, 3400),
    ("Shanghai", "CN", 31.2304, 121.4737, 27000),
    ("Beijing", "CN", 39.9042, 116.4074, 20400),
    ("Guangzhou", "CN", 23.1291, 113.2644, 13300),
    ("Shenzhen", "CN", 22.5431, 114.0579, 12400),
    ("Chengdu", "CN", 30.5728, 104.0668, 9100),
    ("Chongqing", "CN", 29.4316, 106.9123, 15300),
    ("Tianjin", "CN", 39.3434, 117.3616, 13200),
    ("Wuhan", "CN", 30.5928, 114.3055, 8400),
    ("Hangzhou", "CN", 30.2741, 120.1551, 7600),
    ("Xian", "CN", 34.3416, 108.9398, 7100),
    ("Nanjing", "CN", 32.0603, 118.7969, 8300),
    ("Hong Kong", "HK", 22.3193, 114.1694, 7400),
    ("Taipei", "TW", 25.0330, 121.5654, 7000),
    ("Kaohsiung", "TW", 22.6273, 120.3014, 2770),
    ("Macau", "MO", 22.1987, 113.5439, 650),
    ("Singapore", "SG", 1.3521, 103.8198, 5600),
    ("Kuala Lumpur", "MY", 3.1390, 101.6869, 7600),
    ("Jakarta", "ID", -6.2088, 106.8456, 31000),
    ("Surabaya", "ID", -7.2575, 112.7521, 6500),
    ("Bandung", "ID", -6.9175, 107.6191, 8000),
    ("Bangkok", "TH", 13.7563, 100.5018, 15000),
    ("Manila", "PH", 14.5995, 120.9842, 13500),
    ("Cebu", "PH", 10.3157, 123.8854, 2900),
    ("Ho Chi Minh City", "VN", 10.8231, 106.6297, 8400),
    ("Hanoi", "VN", 21.0278, 105.8342, 7600),
    ("Phnom Penh", "KH", 11.5564, 104.9282, 2100),
    ("Yangon", "MM", 16.8661, 96.1951, 5200),
    ("Dhaka", "BD", 23.8103, 90.4125, 19600),
    ("Chittagong", "BD", 22.3569, 91.7832, 4900),
    ("Mumbai", "IN", 19.0760, 72.8777, 23600),
    ("Delhi", "IN", 28.7041, 77.1025, 28500),
    ("Bangalore", "IN", 12.9716, 77.5946, 11400),
    ("Hyderabad", "IN", 17.3850, 78.4867, 9500),
    ("Chennai", "IN", 13.0827, 80.2707, 10500),
    ("Kolkata", "IN", 22.5726, 88.3639, 14700),
    ("Pune", "IN", 18.5204, 73.8567, 6500),
    ("Ahmedabad", "IN", 23.0225, 72.5714, 7700),
    ("Karachi", "PK", 24.8607, 67.0011, 15400),
    ("Lahore", "PK", 31.5204, 74.3587, 11100),
    ("Islamabad", "PK", 33.6844, 73.0479, 1100),
    ("Colombo", "LK", 6.9271, 79.8612, 2300),
    ("Kathmandu", "NP", 27.7172, 85.3240, 1400),
    ("Almaty", "KZ", 43.2220, 76.8512, 1800),
    ("Tashkent", "UZ", 41.2995, 69.2401, 2400),
    ("Baku", "AZ", 40.4093, 49.8671, 2300),
    ("Tbilisi", "GE", 41.7151, 44.8271, 1100),
    ("Yerevan", "AM", 40.1792, 44.4991, 1080),
    ("Ulaanbaatar", "MN", 47.8864, 106.9057, 1400),
    # --- Oceania ---
    ("Sydney", "AU", -33.8688, 151.2093, 5200),
    ("Melbourne", "AU", -37.8136, 144.9631, 5000),
    ("Brisbane", "AU", -27.4698, 153.0251, 2500),
    ("Perth", "AU", -31.9505, 115.8605, 2100),
    ("Adelaide", "AU", -34.9285, 138.6007, 1360),
    ("Canberra", "AU", -35.2809, 149.1300, 430),
    ("Auckland", "NZ", -36.8485, 174.7633, 1650),
    ("Wellington", "NZ", -41.2866, 174.7756, 420),
    ("Christchurch", "NZ", -43.5321, 172.6362, 400),
    ("Suva", "FJ", -18.1416, 178.4419, 180),
]


class CityDB:
    """In-memory gazetteer with vectorized spatial queries.

    The database is immutable after construction; coordinate and population
    arrays are cached so disk-membership queries (the inner loop of the
    geolocation classifier) run as single numpy expressions.
    """

    def __init__(self, cities: Optional[Iterable[City]] = None) -> None:
        if cities is None:
            cities = (
                City(name, country, GeoPoint(lat, lon), pop)
                for name, country, lat, lon, pop in _CITY_ROWS
            )
        self._cities: List[City] = list(cities)
        if not self._cities:
            raise ValueError("CityDB requires at least one city")
        by_key: Dict[Tuple[str, str], City] = {}
        for city in self._cities:
            if city.key in by_key:
                raise ValueError(f"duplicate city {city.key}")
            by_key[city.key] = city
        self._by_key = by_key
        self._index_by_key = {c.key: i for i, c in enumerate(self._cities)}
        self._lats = np.array([c.location.lat for c in self._cities])
        self._lons = np.array([c.location.lon for c in self._cities])
        self._pops = np.array([c.population for c in self._cities])
        # Derived geometry, computed once: radian coordinates feed the
        # radians-native haversine (skipping the degree conversion in the
        # classification hot loop) and unit vectors serve aggregate
        # queries such as spherical centroids.
        self._lat_rad = np.radians(self._lats)
        self._lon_rad = np.radians(self._lons)
        self._units = unit_vectors(self._lat_rad, self._lon_rad)
        for arr in (
            self._lats,
            self._lons,
            self._pops,
            self._lat_rad,
            self._lon_rad,
            self._units,
        ):
            arr.setflags(write=False)

    def __len__(self) -> int:
        return len(self._cities)

    def __iter__(self):
        return iter(self._cities)

    @property
    def cities(self) -> Sequence[City]:
        return tuple(self._cities)

    def get(self, name: str, country: Optional[str] = None) -> City:
        """Look up a city by name (and country, if ambiguous)."""
        if country is not None:
            try:
                return self._by_key[(name, country)]
            except KeyError:
                raise KeyError(f"unknown city {name},{country}") from None
        matches = [c for c in self._cities if c.name == name]
        if not matches:
            raise KeyError(f"unknown city {name!r}")
        if len(matches) > 1:
            raise KeyError(f"ambiguous city {name!r}: specify country")
        return matches[0]

    def city_at(self, index: int) -> City:
        """The city at a gazetteer index (the order of :meth:`__iter__`)."""
        return self._cities[index]

    def index_of(self, city: City) -> int:
        """Gazetteer index of a city (keyed by ``(name, country)``)."""
        try:
            return self._index_by_key[city.key]
        except KeyError:
            raise KeyError(f"city {city.key} not in this CityDB") from None

    def population_array(self) -> np.ndarray:
        """Cached read-only population vector, aligned with city indices.

        Classifiers build their weight vectors by slicing this array
        instead of touching per-city Python objects.
        """
        return self._pops

    def coordinates_radians(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached read-only ``(lat, lon)`` radian arrays (city order)."""
        return self._lat_rad, self._lon_rad

    def unit_vector_array(self) -> np.ndarray:
        """Cached read-only unit vectors on the sphere, shape ``(n, 3)``."""
        return self._units

    def spherical_centroid(self, indices: Sequence[int]) -> GeoPoint:
        """Spherical centroid of a set of cities (by gazetteer index)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("centroid of empty city set")
        mean = self._units[idx].mean(axis=0)
        norm = float(np.linalg.norm(mean))
        if norm < 1e-12:
            raise ValueError("degenerate city set: centroid undefined")
        x, y, z = (mean / norm).tolist()
        return GeoPoint(
            float(np.degrees(np.arcsin(min(1.0, max(-1.0, z))))),
            float(np.degrees(np.arctan2(y, x))),
        )

    def cities_in_disk(self, disk: Disk) -> List[City]:
        """All cities whose centers lie inside the disk."""
        return [self._cities[i] for i in self.city_indices_in_disk(disk)]

    def city_indices_in_disk(self, disk: Disk) -> np.ndarray:
        """Gazetteer indices of all cities inside the disk (ascending)."""
        dists = distances_to_point_km(self._lats, self._lons, disk.center)
        return np.nonzero(dists <= disk.radius_km + 1e-9)[0]

    def center_distance_matrix(self, disks: Sequence[Disk]) -> np.ndarray:
        """Distances from every city to every disk center, ``(n_cities, k)``.

        One vectorized haversine over the cached radian arrays; column *j*
        is bit-identical to ``distances_to_point_km(..., disks[j].center)``.
        """
        lats = np.radians([d.center.lat for d in disks])
        lons = np.radians([d.center.lon for d in disks])
        return pairwise_distances_from_radians(
            self._lat_rad, self._lon_rad, lats, lons
        )

    def classify_disks(
        self,
        disks: Sequence[Disk],
        population_exponent: float = 1.0,
        center_distances: Optional[np.ndarray] = None,
    ) -> List:
        """Batched replica classification: one replica per disk.

        Equivalent to running :func:`repro.core.geolocation.classify_disk`
        (with the :func:`~repro.core.geolocation.classify_nearest`
        fallback) on each disk, but the city-to-center geometry for *all*
        disks is a single vectorized haversine call and the population
        weights come from the cached :meth:`population_array` slice.

        ``center_distances`` lets callers that hold a precomputed
        city-to-center matrix (e.g. the census fast path, whose disks are
        always centered on vantage points) pass the relevant columns in
        and skip the geometry entirely.
        """
        if population_exponent < 0:
            raise ValueError("population_exponent must be non-negative")
        from ..core.geolocation import GeolocatedReplica  # local: avoids cycle

        if not disks:
            return []
        if center_distances is None:
            center_distances = self.center_distance_matrix(disks)
        if center_distances.shape != (len(self._cities), len(disks)):
            raise ValueError("center_distances shape mismatch")
        out = []
        for j, disk in enumerate(disks):
            col = center_distances[:, j]
            inside = np.nonzero(col <= disk.radius_km + 1e-9)[0]
            if inside.size == 0:
                # Nearest-city fallback, exactly like classify_nearest.
                city = self._cities[int(np.argmin(col))]
                out.append(GeolocatedReplica(city=city, disk=disk, confidence=0.0))
                continue
            if population_exponent == 0.0:
                # Uniform prior degenerates to the city nearest the center.
                best = min(
                    (self._cities[i] for i in inside),
                    key=lambda c: disk.center.distance_km(c.location),
                )
                out.append(
                    GeolocatedReplica(
                        city=best, disk=disk, confidence=1.0 / inside.size
                    )
                )
                continue
            weights = self._pops[inside] ** population_exponent
            total = float(weights.sum())
            idx = int(np.argmax(weights))
            out.append(
                GeolocatedReplica(
                    city=self._cities[int(inside[idx])],
                    disk=disk,
                    confidence=float(weights[idx]) / total,
                )
            )
        return out

    def largest_in_disk(self, disk: Disk) -> Optional[City]:
        """The most populous city inside the disk, or ``None`` if empty.

        This is the paper's geolocation criterion reduced to its essence:
        the population prior has "sufficient discriminative power alone"
        (~75% accuracy), so the MLE collapses to picking the largest city.
        """
        dists = distances_to_point_km(self._lats, self._lons, disk.center)
        inside = dists <= disk.radius_km + 1e-9
        if not inside.any():
            return None
        pops = np.where(inside, self._pops, -np.inf)
        return self._cities[int(np.argmax(pops))]

    def nearest(self, point: GeoPoint) -> City:
        """The city nearest to ``point`` (no population weighting)."""
        dists = distances_to_point_km(self._lats, self._lons, point)
        return self._cities[int(np.argmin(dists))]

    def sample(self, rng: np.random.Generator, count: int, weight_by_population: bool = True) -> List[City]:
        """Draw ``count`` cities (with replacement), optionally population-weighted.

        Used by the synthetic-Internet builder to place unicast hosts where
        people (and therefore networks) are.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if weight_by_population:
            weights = self._pops / self._pops.sum()
            idx = rng.choice(len(self._cities), size=count, p=weights)
        else:
            idx = rng.integers(0, len(self._cities), size=count)
        return [self._cities[i] for i in idx]


_DEFAULT_DB: Optional[CityDB] = None


def default_city_db() -> CityDB:
    """Return the process-wide default :class:`CityDB` (lazily built)."""
    global _DEFAULT_DB
    if _DEFAULT_DB is None:
        _DEFAULT_DB = CityDB()
    return _DEFAULT_DB
