"""Geodesy substrate: coordinates, great-circle math, disks, and cities."""

from .coords import (
    EARTH_RADIUS_KM,
    MAX_SURFACE_DISTANCE_KM,
    GeoPoint,
    centroid,
    destination_point,
    distances_to_point_km,
    great_circle_km,
    initial_bearing_deg,
    midpoint,
    pairwise_distances_km,
)
from .disks import (
    FIBER_SPEED_KM_PER_MS,
    LIGHT_SPEED_KM_PER_MS,
    Disk,
    any_disjoint_pair,
    disk_from_sample,
    disks_containing,
    min_enclosing_radius_km,
    overlap_matrix,
    rtt_to_radius_km,
    smallest_disk,
)
from .cities import City, CityDB, default_city_db

__all__ = [
    "EARTH_RADIUS_KM",
    "MAX_SURFACE_DISTANCE_KM",
    "GeoPoint",
    "centroid",
    "destination_point",
    "distances_to_point_km",
    "great_circle_km",
    "initial_bearing_deg",
    "midpoint",
    "pairwise_distances_km",
    "FIBER_SPEED_KM_PER_MS",
    "LIGHT_SPEED_KM_PER_MS",
    "Disk",
    "any_disjoint_pair",
    "disk_from_sample",
    "disks_containing",
    "min_enclosing_radius_km",
    "overlap_matrix",
    "rtt_to_radius_km",
    "smallest_disk",
    "City",
    "CityDB",
    "default_city_db",
]
