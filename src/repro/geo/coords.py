"""Geodesic coordinate primitives.

Everything in the census pipeline reasons about positions on the surface of
the Earth: vantage points, anycast replicas, and the disks that latency
samples induce.  This module provides the small amount of spherical geometry
the rest of the package needs:

* :class:`GeoPoint` — an immutable (latitude, longitude) pair in degrees.
* :func:`great_circle_km` — haversine distance between two points.
* :func:`pairwise_distances_km` — vectorized VP-by-target distance matrix.
* :func:`destination_point` — move a point a given distance along a bearing.

The Earth is modelled as a sphere of radius :data:`EARTH_RADIUS_KM`; the
sub-0.5% error of ignoring the flattening is far below the noise floor of
RTT-derived distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

#: Mean Earth radius (km), IUGG value.
EARTH_RADIUS_KM = 6371.0088

#: Half the Earth's circumference: no two points are farther apart than this.
MAX_SURFACE_DISTANCE_KM = math.pi * EARTH_RADIUS_KM


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A point on the Earth's surface.

    Latitude is in degrees north (range [-90, 90]); longitude in degrees
    east (range [-180, 180]).  Instances are immutable and hashable so they
    can be used as dictionary keys (e.g. mapping replica sites to cities).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat!r} outside [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon!r} outside [-180, 180]")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return great_circle_km(self.lat, self.lon, other.lat, other.lon)

    def as_radians(self) -> Tuple[float, float]:
        """Return (lat, lon) converted to radians."""
        return math.radians(self.lat), math.radians(self.lon)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"{abs(self.lat):.3f}{ns},{abs(self.lon):.3f}{ew}"


def great_circle_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Haversine great-circle distance between two (degree) coordinates.

    The haversine formulation is numerically stable for the short distances
    that dominate disk-overlap tests, unlike the spherical law of cosines.
    """
    phi1, lam1 = math.radians(lat1), math.radians(lon1)
    phi2, lam2 = math.radians(lat2), math.radians(lon2)
    dphi = phi2 - phi1
    dlam = lam2 - lam1
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    # Clamp for floating error before the asin.
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def pairwise_distances_km(
    lats1: Sequence[float],
    lons1: Sequence[float],
    lats2: Sequence[float],
    lons2: Sequence[float],
) -> np.ndarray:
    """Vectorized haversine: distance matrix of shape (len(1), len(2)).

    Used to compute the full vantage-point x target propagation matrix in one
    shot — the hot path of a simulated census (O(10^7) pairs), which would be
    intractable with per-pair Python calls.
    """
    return pairwise_distances_from_radians(
        np.radians(np.asarray(lats1, dtype=np.float64)),
        np.radians(np.asarray(lons1, dtype=np.float64)),
        np.radians(np.asarray(lats2, dtype=np.float64)),
        np.radians(np.asarray(lons2, dtype=np.float64)),
    )


def pairwise_distances_from_radians(
    phi1: np.ndarray,
    lam1: np.ndarray,
    phi2: np.ndarray,
    lam2: np.ndarray,
) -> np.ndarray:
    """Haversine matrix over coordinates already converted to radians.

    Callers that query the same point set repeatedly (the city gazetteer,
    the fixed vantage-point grid) cache the radian arrays once and skip the
    degree conversion on every call.  The arithmetic is elementwise, so a
    distance computed here is bit-identical to the same pair computed
    through :func:`pairwise_distances_km` — submatrices of a cached matrix
    can therefore substitute for fresh per-pair computations exactly.
    """
    phi1 = np.asarray(phi1, dtype=np.float64)[:, None]
    lam1 = np.asarray(lam1, dtype=np.float64)[:, None]
    phi2 = np.asarray(phi2, dtype=np.float64)[None, :]
    lam2 = np.asarray(lam2, dtype=np.float64)[None, :]
    a = (
        np.sin((phi2 - phi1) / 2.0) ** 2
        + np.cos(phi1) * np.cos(phi2) * np.sin((lam2 - lam1) / 2.0) ** 2
    )
    np.clip(a, 0.0, 1.0, out=a)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))


def unit_vectors(lats_rad: np.ndarray, lons_rad: np.ndarray) -> np.ndarray:
    """Unit vectors on the sphere for radian coordinate arrays, shape (n, 3).

    Dot products of unit vectors give the cosine of the central angle —
    useful for aggregate queries (spherical centroids, coarse bounding
    tests) that do not need the haversine's bit-exact distances.
    """
    lats_rad = np.asarray(lats_rad, dtype=np.float64)
    lons_rad = np.asarray(lons_rad, dtype=np.float64)
    cos_lat = np.cos(lats_rad)
    return np.stack(
        [cos_lat * np.cos(lons_rad), cos_lat * np.sin(lons_rad), np.sin(lats_rad)],
        axis=1,
    )


def distances_to_point_km(
    lats: Sequence[float], lons: Sequence[float], point: GeoPoint
) -> np.ndarray:
    """Vectorized haversine distances from many coordinates to one point."""
    return pairwise_distances_km(lats, lons, [point.lat], [point.lon])[:, 0]


def initial_bearing_deg(origin: GeoPoint, target: GeoPoint) -> float:
    """Initial great-circle bearing from ``origin`` toward ``target``.

    Returned in degrees clockwise from north, in [0, 360).
    """
    phi1, lam1 = origin.as_radians()
    phi2, lam2 = target.as_radians()
    dlam = lam2 - lam1
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    theta = math.degrees(math.atan2(y, x))
    return theta % 360.0


def destination_point(origin: GeoPoint, bearing_deg: float, distance_km: float) -> GeoPoint:
    """Point reached travelling ``distance_km`` from ``origin`` along a bearing.

    Used to scatter synthetic hosts around a city center and to construct
    geometric test fixtures.
    """
    if distance_km < 0:
        raise ValueError("distance_km must be non-negative")
    delta = distance_km / EARTH_RADIUS_KM
    theta = math.radians(bearing_deg)
    phi1, lam1 = origin.as_radians()
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lam2 = lam1 + math.atan2(y, x)
    lon = math.degrees(lam2)
    # Normalize longitude into [-180, 180].
    lon = (lon + 180.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(phi2), lon)


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Great-circle midpoint between two points."""
    bearing = initial_bearing_deg(a, b)
    return destination_point(a, bearing, a.distance_km(b) / 2.0)


def centroid(points: Iterable[GeoPoint]) -> GeoPoint:
    """Spherical centroid (mean of unit vectors) of a set of points.

    Raises ``ValueError`` on an empty input or a degenerate configuration
    whose mean vector is the origin (e.g. two antipodal points).
    """
    xs = ys = zs = 0.0
    count = 0
    for p in points:
        phi, lam = p.as_radians()
        xs += math.cos(phi) * math.cos(lam)
        ys += math.cos(phi) * math.sin(lam)
        zs += math.sin(phi)
        count += 1
    if count == 0:
        raise ValueError("centroid of empty point set")
    norm = math.sqrt(xs * xs + ys * ys + zs * zs)
    if norm < 1e-12:
        raise ValueError("degenerate point set: centroid undefined")
    lat = math.degrees(math.asin(zs / norm))
    lon = math.degrees(math.atan2(ys, xs))
    return GeoPoint(lat, lon)
