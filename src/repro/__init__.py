"""repro — reproduction of "Characterizing IPv4 Anycast Adoption and
Deployment" (Cicalese et al., ACM CoNEXT 2015).

The package is organized bottom-up:

* :mod:`repro.geo` — geodesy: coordinates, disks, the city gazetteer;
* :mod:`repro.net` — networking substrate: /24 arithmetic, ASes, the RTT
  model, ICMP semantics, TCP service registry;
* :mod:`repro.internet` — the synthetic-Internet ground truth (deployment
  catalog, topology builder, hitlist);
* :mod:`repro.measurement` — the measurement platform simulator
  (PlanetLab/RIPE-like platforms, fastping prober, census campaigns,
  portscan, HTTP ground-truth probes);
* :mod:`repro.core` — the paper's analysis technique (iGreedy): detection,
  enumeration, geolocation, iteration;
* :mod:`repro.census` — census-level analysis and characterization
  (combination, per-AS footprints, rank intersections, validation);
* :mod:`repro.obs` — observability: hierarchical tracing, pipeline
  metrics, and machine-readable run manifests (behaviour-neutral);
* :mod:`repro.workflow` — the end-to-end :class:`~repro.workflow.CensusStudy`
  facade.

Quick start::

    from repro.workflow import small_study

    study = small_study()
    for row in study.glance_table():
        print(row.label, row.ip24, row.ases, row.replicas)
"""

from .obs import MetricsRegistry, RunManifest, Tracer
from .workflow import CensusStudy, StudyConfig, small_study

__version__ = "1.0.0"

__all__ = [
    "CensusStudy",
    "StudyConfig",
    "small_study",
    "Tracer",
    "MetricsRegistry",
    "RunManifest",
    "__version__",
]
