"""Per-target RTT signatures and the incremental-vs-cold decision.

The service's incremental recompute stands on one fact about the
analysis pipeline: a target's verdict is a pure function of the set of
``(VP name, VP coordinates, RTT)`` samples that actually measured it,
plus run-wide context that is identical for every row (the gazetteer,
the iGreedy config).  Detection
(:func:`repro.core.detection.detection_mask`) ignores NaN cells by
construction, enumeration/geolocation
(:meth:`FastAnalysisEngine.analyze_row`) reads only the non-NaN samples
of the row (its witness indices live in RTT-sorted sample order, not
raw column order), and nothing couples two targets.

So a *signature* — a hash over the target's non-NaN cells, each cell
prefixed by a digest of the measuring VP's name and exact coordinates —
certifies: equal signature ⟹ identical analysis-relevant input ⟹
identical analysis output.  Crucially the signature never mentions the
roster as a whole: a vantage point joining or leaving the platform only
perturbs the signatures of targets that VP actually measured.  Under
the old scheme (a whole-roster digest folded into every row hash) one
VP joining forced a full cold census; under this scheme the surviving
targets' entries are copied and provably byte-equal to a cold recompute
on the same roster.

:func:`plan_delta` turns the signature maps into the recompute plan.
Besides the primary baseline (the latest committed epoch) it can
consult a short *history* of older epochs: a probe that disconnects for
a day and returns — the dominant churn mode of a real measurement
platform — produces rows identical to its pre-disconnect epoch (keyed
noise), so the plan copies those targets from the older baseline
instead of re-analyzing them.  The plan falls back to a full cold
census whenever incremental mode is disabled, has no baseline, cannot
read it, or the residual churn fraction exceeds the configured
threshold.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..census.combine import RttMatrix
from ..geo.coords import GeoPoint

#: Cold-census reasons (manifest ``analysis.reason`` vocabulary).
REASON_DISABLED = "incremental-disabled"
REASON_NO_BASELINE = "no-baseline"
REASON_BASELINE_UNREADABLE = "baseline-unreadable"
REASON_CHURN = "churn-exceeds-threshold"
REASON_DELTA = "delta"

#: Row-block budget for :func:`target_signatures` — bounds the reordered
#: float32 scratch copy to ~16 MB regardless of matrix size.
_SIGNATURE_BLOCK_CELLS = 1 << 22


def vp_column_digest(name: str, location: GeoPoint) -> bytes:
    """8-byte digest of one vantage point's identity (name + coordinates).

    The per-cell prefix of every target signature: a row cell is only
    comparable across epochs when it was measured by the same VP from
    the same place.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(name.encode("utf-8"))
    h.update(b"\x00")
    h.update(np.float64(location.lat).tobytes())
    h.update(np.float64(location.lon).tobytes())
    return h.digest()


def vp_context_digest(vp_names: Sequence[str], vp_locations: Sequence[GeoPoint]) -> str:
    """Digest of a whole VP roster (names + exact coordinates), hex.

    No longer part of any target signature (see
    :func:`vp_column_digest`); kept as the results document's roster
    fingerprint so two epochs' analyzed rosters can be compared at a
    glance.
    """
    if len(vp_names) != len(vp_locations):
        raise ValueError(
            "vp_names/vp_locations length mismatch: "
            f"{len(vp_names)} names vs {len(vp_locations)} locations"
        )
    h = hashlib.blake2b(digest_size=8)
    for name, location in zip(vp_names, vp_locations):
        h.update(vp_column_digest(name, location))
    return h.hexdigest()


def target_signatures(
    matrix: RttMatrix, excised: Optional[np.ndarray] = None
) -> Dict[int, str]:
    """Per-target signatures over the non-NaN ``(VP digest, RTT)`` cells.

    Cells are hashed in VP-*name* order (not column order), so the
    signature is invariant to how the roster happens to be arranged —
    and, because NaN cells contribute nothing, invariant to VPs that
    never measured the target at all.

    ``excised`` is the trust layer's per-target count of samples it
    removed from the row (see :func:`repro.resilience.vptrust.apply_trust`);
    a non-zero count is folded into the hash because it changes the
    entry's confidence marker.  Rows with a zero count hash exactly as
    if the argument was never given, preserving byte-identity of
    trust-on runs over clean data.
    """
    n_vps = matrix.n_vps
    order = np.argsort(np.array(matrix.vp_names))
    digests = [
        vp_column_digest(matrix.vp_names[int(j)], matrix.vp_locations[int(j)])
        for j in order
    ]
    cells = np.zeros(n_vps, dtype=[("vp", "S8"), ("rtt", "<f4")])
    cells["vp"] = digests
    signatures: Dict[int, str] = {}
    # Reorder/hash one row block at a time: the full ``[:, order]`` copy
    # is a second dense matrix (40 GB at Atlas scale) for no gain — the
    # per-row bytes fed to blake2b are identical either way.
    block_rows = max(1, _SIGNATURE_BLOCK_CELLS // max(n_vps, 1))
    for lo in range(0, len(matrix.prefixes), block_rows):
        hi = min(lo + block_rows, len(matrix.prefixes))
        rtt = np.ascontiguousarray(matrix.rtt_ms[lo:hi], dtype="<f4")[:, order]
        present = ~np.isnan(rtt)
        for i in range(hi - lo):
            cells["rtt"] = rtt[i]
            h = hashlib.blake2b(digest_size=8)
            h.update(cells[present[i]].tobytes())
            row = lo + i
            if excised is not None and excised[row]:
                h.update(b"\x01" + int(excised[row]).to_bytes(4, "little"))
            signatures[int(matrix.prefixes[row])] = h.hexdigest()
    return signatures


@dataclass
class DeltaPlan:
    """What the analysis stage must recompute this epoch."""

    #: ``"incremental"`` or ``"cold"``.
    mode: str
    #: Why (one of the ``REASON_*`` constants).
    reason: str
    baseline_epoch: Optional[int]
    #: Fraction of current targets that must actually be re-analyzed
    #: (signature new or changed, and not recoverable from history).
    churn_fraction: float
    #: Common targets whose signature changed vs the primary baseline.
    changed: List[int] = field(default_factory=list)
    #: Common targets whose signature is identical — copy from baseline.
    unchanged: List[int] = field(default_factory=list)
    #: Targets present now but not in the primary baseline.
    appeared: List[int] = field(default_factory=list)
    #: Baseline targets that no longer reply.
    disappeared: List[int] = field(default_factory=list)
    #: Targets whose signature misses the primary baseline but matches an
    #: older epoch's (prefix -> that epoch) — copy from there instead of
    #: recomputing.  The roster-rejoin fast path: a VP returning after an
    #: absence reproduces its keyed rows, so its targets match the epoch
    #: before the disconnect.
    recovered: Dict[int, int] = field(default_factory=dict)

    @property
    def recompute(self) -> List[int]:
        """Targets the engine must actually analyze this epoch."""
        return sorted(
            p for p in self.changed + self.appeared if p not in self.recovered
        )


def plan_delta(
    current: Dict[int, str],
    baseline: Optional[Dict[int, str]],
    baseline_epoch: Optional[int] = None,
    churn_threshold: float = 0.25,
    enabled: bool = True,
    baseline_problem: Optional[str] = None,
    history: Sequence[Tuple[int, Dict[int, str]]] = (),
) -> DeltaPlan:
    """Decide incremental vs cold and partition the target set.

    ``baseline_problem`` is set by the caller when the baseline run
    exists but could not be read (corrupt/quarantined) — always a cold
    census, with the manifest recording why.

    ``history`` is a sequence of ``(epoch, signatures)`` pairs for older
    committed epochs; targets missing the primary baseline are matched
    against them (most recent epoch first) and copied when a signature
    agrees — equal signature certifies identical analysis input no
    matter which epoch produced it.
    """
    if not 0.0 <= churn_threshold <= 1.0:
        raise ValueError("churn_threshold must be in [0, 1]")

    def cold(reason: str, epoch: Optional[int] = None, churn: float = 1.0) -> DeltaPlan:
        return DeltaPlan(
            mode="cold",
            reason=reason,
            baseline_epoch=epoch,
            churn_fraction=churn,
            changed=sorted(current),
        )

    if not enabled:
        return cold(REASON_DISABLED)
    if baseline_problem is not None:
        return cold(f"{REASON_BASELINE_UNREADABLE}: {baseline_problem}", baseline_epoch)
    if baseline is None:
        return cold(REASON_NO_BASELINE)

    ordered_history = sorted(history, key=lambda pair: pair[0], reverse=True)

    changed: List[int] = []
    unchanged: List[int] = []
    appeared: List[int] = []
    recovered: Dict[int, int] = {}
    for prefix, signature in current.items():
        previous = baseline.get(prefix)
        if previous == signature:
            unchanged.append(prefix)
            continue
        if previous is None:
            appeared.append(prefix)
        else:
            changed.append(prefix)
        for epoch, signatures in ordered_history:
            if signatures.get(prefix) == signature:
                recovered[prefix] = epoch
                break
    disappeared = sorted(set(baseline) - set(current))
    churn = (len(changed) + len(appeared) - len(recovered)) / max(len(current), 1)

    plan = DeltaPlan(
        mode="incremental",
        reason=REASON_DELTA,
        baseline_epoch=baseline_epoch,
        churn_fraction=churn,
        changed=sorted(changed),
        unchanged=sorted(unchanged),
        appeared=sorted(appeared),
        disappeared=disappeared,
        recovered=recovered,
    )
    if churn > churn_threshold:
        plan.mode = "cold"
        plan.reason = REASON_CHURN
        plan.recovered = {}
    return plan
