"""Per-target RTT signatures and the incremental-vs-cold decision.

The service's incremental recompute stands on one fact about the
analysis pipeline: a target's verdict is a pure function of its own RTT
row plus run-wide context that is identical for every row (the VP
roster, the gazetteer, the iGreedy config).  Detection
(:func:`repro.core.detection.detection_mask`) is computed row by row,
and enumeration/geolocation (:meth:`FastAnalysisEngine.analyze_row`)
reads only the target's row and the shared geometry — nothing couples
two targets.

So a *signature* — a keyed hash over (VP-roster digest, the row's raw
float32 bytes) — certifies: equal signature ⟹ byte-equal analysis
input ⟹ identical analysis output.  The roster digest folds the VP
names *and coordinates* into every signature, which makes the scheme
conservative under platform drift: change one VP and every signature
changes, forcing a cold census rather than silently comparing rows
measured from different places.

:func:`plan_delta` turns two epochs' signature maps into the recompute
plan, falling back to a full cold census whenever incremental mode is
disabled, has no baseline, cannot read it, or the churn fraction
exceeds the configured threshold (at which point recomputing everything
is both cheaper to reason about and barely slower).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..census.combine import RttMatrix
from ..geo.coords import GeoPoint

#: Cold-census reasons (manifest ``analysis.reason`` vocabulary).
REASON_DISABLED = "incremental-disabled"
REASON_NO_BASELINE = "no-baseline"
REASON_BASELINE_UNREADABLE = "baseline-unreadable"
REASON_CHURN = "churn-exceeds-threshold"
REASON_DELTA = "delta"


def vp_context_digest(vp_names: Sequence[str], vp_locations: Sequence[GeoPoint]) -> str:
    """Digest of the VP roster (names + exact coordinates), hex.

    Folded into every target signature: two rows are only comparable
    when they were measured by the same vantage points from the same
    places.
    """
    h = hashlib.blake2b(digest_size=8)
    for name, location in zip(vp_names, vp_locations):
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        h.update(np.float64(location.lat).tobytes())
        h.update(np.float64(location.lon).tobytes())
    return h.hexdigest()


def target_signatures(matrix: RttMatrix) -> Dict[int, str]:
    """Per-target signature over (VP roster, raw float32 RTT row).

    Hashing the row *bytes* (NaNs included) rather than any derived
    quantity means the certificate covers everything the analysis can
    possibly read from the row.
    """
    context = vp_context_digest(matrix.vp_names, matrix.vp_locations).encode("ascii")
    rows = np.ascontiguousarray(matrix.rtt_ms, dtype="<f4")
    signatures: Dict[int, str] = {}
    for i, prefix in enumerate(matrix.prefixes):
        h = hashlib.blake2b(context, digest_size=8)
        h.update(rows[i].tobytes())
        signatures[int(prefix)] = h.hexdigest()
    return signatures


@dataclass
class DeltaPlan:
    """What the analysis stage must recompute this epoch."""

    #: ``"incremental"`` or ``"cold"``.
    mode: str
    #: Why (one of the ``REASON_*`` constants).
    reason: str
    baseline_epoch: Optional[int]
    #: Fraction of current targets whose signature is new or changed.
    churn_fraction: float
    #: Common targets whose signature changed.
    changed: List[int] = field(default_factory=list)
    #: Common targets whose signature is identical — copy from baseline.
    unchanged: List[int] = field(default_factory=list)
    #: Targets present now but not in the baseline.
    appeared: List[int] = field(default_factory=list)
    #: Baseline targets that no longer reply.
    disappeared: List[int] = field(default_factory=list)

    @property
    def recompute(self) -> List[int]:
        """Targets the engine must actually analyze this epoch."""
        return sorted(self.changed + self.appeared)


def plan_delta(
    current: Dict[int, str],
    baseline: Optional[Dict[int, str]],
    baseline_epoch: Optional[int] = None,
    churn_threshold: float = 0.25,
    enabled: bool = True,
    baseline_problem: Optional[str] = None,
) -> DeltaPlan:
    """Decide incremental vs cold and partition the target set.

    ``baseline_problem`` is set by the caller when the baseline run
    exists but could not be read (corrupt/quarantined) — always a cold
    census, with the manifest recording why.
    """
    if not 0.0 <= churn_threshold <= 1.0:
        raise ValueError("churn_threshold must be in [0, 1]")

    def cold(reason: str, epoch: Optional[int] = None, churn: float = 1.0) -> DeltaPlan:
        return DeltaPlan(
            mode="cold",
            reason=reason,
            baseline_epoch=epoch,
            churn_fraction=churn,
            changed=sorted(current),
        )

    if not enabled:
        return cold(REASON_DISABLED)
    if baseline_problem is not None:
        return cold(f"{REASON_BASELINE_UNREADABLE}: {baseline_problem}", baseline_epoch)
    if baseline is None:
        return cold(REASON_NO_BASELINE)

    changed: List[int] = []
    unchanged: List[int] = []
    appeared: List[int] = []
    for prefix, signature in current.items():
        previous = baseline.get(prefix)
        if previous is None:
            appeared.append(prefix)
        elif previous == signature:
            unchanged.append(prefix)
        else:
            changed.append(prefix)
    disappeared = sorted(set(baseline) - set(current))
    churn = (len(changed) + len(appeared)) / max(len(current), 1)

    plan = DeltaPlan(
        mode="incremental",
        reason=REASON_DELTA,
        baseline_epoch=baseline_epoch,
        churn_fraction=churn,
        changed=sorted(changed),
        unchanged=sorted(unchanged),
        appeared=sorted(appeared),
        disappeared=disappeared,
    )
    if churn > churn_threshold:
        plan.mode = "cold"
        plan.reason = REASON_CHURN
    return plan
