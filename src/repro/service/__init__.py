"""Longitudinal census service (paper Sec. 5, ROADMAP's LACeS direction).

The one-shot :class:`~repro.workflow.CensusStudy` answers "what does the
anycast landscape look like today"; this package turns that into a
*service* that answers it every day, for months, unattended:

* :mod:`~repro.service.archive` — the append-only on-disk archive of
  dated census runs (schema-validated manifests, checksummed payloads,
  rebuildable index, atomic commits);
* :mod:`~repro.service.fsck` — startup verification and repair:
  quarantine corrupt runs, discard torn commits, rebuild the index;
* :mod:`~repro.service.delta` — per-target RTT signatures and the
  incremental-vs-cold recompute decision;
* :mod:`~repro.service.churn` — epoch-over-epoch analytics (replica
  births/deaths, footprint growth, anycast<->unicast flips) on top of
  :func:`~repro.census.longitudinal.compare_epochs`;
* :mod:`~repro.service.service` — the scheduler tying it together:
  dated runs over an evolving internet, crash-tolerant resume from the
  checkpoint journal, catch-up for missed epochs.
"""

from .archive import (  # noqa: F401
    CensusArchive,
    run_manifest_problems,
    validate_run_manifest,
)
from .churn import ChurnSummary, churn_between  # noqa: F401
from .delta import DeltaPlan, plan_delta, target_signatures  # noqa: F401
from .fsck import FsckReport, fsck_archive  # noqa: F401
from .service import CensusService, EpochOutcome, ServiceConfig  # noqa: F401
