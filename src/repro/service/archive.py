"""Append-only archive of dated census runs.

Layout (all under one root directory)::

    root/
      index.json                     # rebuildable top-level index
      runs/
        day-000000/
          manifest.json              # schema-validated run manifest
          records.bin                # raw records + CRC-32 integrity seal
          results.json               # per-target analysis + signatures
        day-000001/
          ...
      quarantine/                    # fsck moves corrupt runs here
      journal/                       # per-epoch checkpoint journals

Design rules, in decreasing order of importance:

* **Crash-anywhere safety.**  A run is committed by staging its three
  files in a dot-prefixed directory (contents fsynced), then a single
  ``os.replace`` into the dated name.  A crash before the rename leaves
  only a staging directory (discarded by fsck); after it, a fully-valid
  run whose index entry is stale (rebuilt by fsck).  There is no window
  in which a reader can observe a half-written run.
* **No wall clock.**  Nothing under the root records when it was
  written: the archive is a pure function of (service config, epoch),
  which is what makes "kill it anywhere, catch up, compare trees"
  byte-exact and testable.
* **Self-describing integrity.**  Payloads carry their own CRC seals
  (:func:`~repro.measurement.recordio.read_raw_checksummed`) *and* the
  manifest records each payload's size and CRC, so fsck can distinguish
  a torn payload from a manifest pointing at the wrong bytes.
* **The index is a cache.**  ``index.json`` exists so ``history`` and
  dashboards need not stat every run directory; it is always rebuildable
  from the surviving manifests and never trusted over them.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import re
import shutil
import zlib
from typing import Any, Callable, Dict, List, Optional, Union

from ..measurement.recordio import (
    CensusRecords,
    CorruptPayloadError,
    read_raw_checksummed,
    write_raw_checksummed,
)

RUN_SCHEMA_VERSION = 1
RUN_KIND = "census-run"
INDEX_KIND = "census-archive-index"

MANIFEST_FILE = "manifest.json"
RECORDS_FILE = "records.bin"
RESULTS_FILE = "results.json"
PAYLOAD_FILES = (RECORDS_FILE, RESULTS_FILE)

#: Optional telemetry sidecars, committed in the same atomic rename but
#: *not* sealed in the manifest: the census payloads stay byte-identical
#: whether telemetry is on or off, and fsck treats a rotten sidecar as
#: repairable (quarantine the sidecar, keep the run).
TELEMETRY_FILE = "telemetry.json"
EVENTS_FILE = "events.jsonl"
TELEMETRY_FILES = (TELEMETRY_FILE, EVENTS_FILE)
TELEMETRY_KIND = "census-telemetry"

#: VP trust sidecar (the serialized :class:`~repro.resilience.vptrust.
#: VpTrustReport`), committed with the run when trust scoring ran.
#: Same contract as telemetry: atomic with the run, outside the payload
#: seals, and repairable by fsck (quarantine the sidecar, keep the run).
TRUST_FILE = "trust.json"
TRUST_KIND = "vp-trust"

_RUN_DIR_RE = re.compile(r"^day-(\d{6})$")
_STAGING_PREFIX = "."

#: Analysis modes a run manifest may declare.
ANALYSIS_MODES = ("cold", "incremental")


def run_dirname(epoch: int) -> str:
    """Directory name of one epoch's run (``day-000012``)."""
    if not 0 <= epoch <= 999_999:
        raise ValueError(f"epoch {epoch} outside the dated-run range")
    return f"day-{epoch:06d}"


def parse_run_dirname(name: str) -> Optional[int]:
    """Epoch encoded in a run directory name, or ``None`` if malformed."""
    match = _RUN_DIR_RE.match(name)
    return int(match.group(1)) if match else None


def canonical_json_bytes(doc: Any) -> bytes:
    """The archive's one JSON serialization: sorted keys, stable floats.

    Every JSON file under the root goes through this, so two runs that
    computed the same values produce the same bytes — the foundation of
    the chaos suite's tree comparison.
    """
    return (json.dumps(doc, sort_keys=True, indent=1) + "\n").encode("utf-8")


# ----------------------------------------------------------------------
# Run manifest schema
# ----------------------------------------------------------------------

def run_manifest_problems(doc: Any) -> List[str]:
    """All schema violations of a parsed run manifest (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["run manifest is not a JSON object"]
    if doc.get("kind") != RUN_KIND:
        problems.append(f"kind is {doc.get('kind')!r}, expected {RUN_KIND!r}")
    if not isinstance(doc.get("schema_version"), int):
        problems.append("schema_version must be an integer")
    elif doc["schema_version"] > RUN_SCHEMA_VERSION:
        problems.append(
            f"schema_version {doc['schema_version']} is newer than "
            f"supported {RUN_SCHEMA_VERSION}"
        )
    if not (isinstance(doc.get("epoch"), int) and doc["epoch"] >= 0):
        problems.append("epoch must be an int >= 0")
    census = doc.get("census")
    if not isinstance(census, dict):
        problems.append("census must be an object")
    vps = doc.get("vantage_points")
    if not isinstance(vps, list) or not vps:
        problems.append("vantage_points must be a non-empty list")
    else:
        for i, vp in enumerate(vps):
            if not (
                isinstance(vp, dict)
                and isinstance(vp.get("name"), str)
                and isinstance(vp.get("lat"), (int, float))
                and isinstance(vp.get("lon"), (int, float))
            ):
                problems.append(f"vantage_points[{i}] must carry name/lat/lon")
                break
    payloads = doc.get("payloads")
    if not isinstance(payloads, dict):
        problems.append("payloads must be an object")
    else:
        for name in PAYLOAD_FILES:
            entry = payloads.get(name)
            if not (
                isinstance(entry, dict)
                and isinstance(entry.get("bytes"), int)
                and entry["bytes"] >= 0
                and isinstance(entry.get("crc32"), int)
            ):
                problems.append(f"payloads[{name!r}] must carry bytes/crc32")
    analysis = doc.get("analysis")
    if not isinstance(analysis, dict):
        problems.append("analysis must be an object")
    elif analysis.get("mode") not in ANALYSIS_MODES:
        problems.append(
            f"analysis.mode is {analysis.get('mode')!r}, "
            f"expected one of {ANALYSIS_MODES}"
        )
    churn = doc.get("churn", None)
    if churn is not None and not isinstance(churn, dict):
        problems.append("churn must be null or an object")
    return problems


def validate_run_manifest(doc: Any) -> None:
    """Raise ``ValueError`` listing every schema violation in ``doc``."""
    problems = run_manifest_problems(doc)
    if problems:
        raise ValueError(
            "invalid run manifest:\n" + "\n".join(f"  - {p}" for p in problems)
        )


def telemetry_problems(doc: Any) -> List[str]:
    """All schema violations of a parsed telemetry sidecar (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["telemetry is not a JSON object"]
    if doc.get("kind") != TELEMETRY_KIND:
        problems.append(f"kind is {doc.get('kind')!r}, expected {TELEMETRY_KIND!r}")
    if not (isinstance(doc.get("epoch"), int) and doc["epoch"] >= 0):
        problems.append("epoch must be an int >= 0")
    stages = doc.get("stages")
    if not isinstance(stages, dict) or not all(
        isinstance(k, str) and isinstance(v, (int, float))
        for k, v in (stages or {}).items()
    ):
        problems.append("stages must map stage names to numbers")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        for family in ("counters", "gauges", "histograms"):
            if not isinstance(metrics.get(family), dict):
                problems.append(f"metrics.{family} must be an object")
    trace = doc.get("trace", None)
    if trace is not None and not isinstance(trace, list):
        problems.append("trace must be null or a list of spans")
    slo = doc.get("slo", None)
    if slo is not None:
        from ..obs.slo import slo_report_problems

        problems.extend(f"slo: {p}" for p in slo_report_problems(slo))
    events = doc.get("events", None)
    if events is not None:
        if not (
            isinstance(events, dict)
            and isinstance(events.get("lines"), int)
            and events["lines"] >= 0
            and isinstance(events.get("bytes"), int)
            and events["bytes"] >= 0
            and isinstance(events.get("crc32"), int)
        ):
            problems.append("events must be null or carry lines/bytes/crc32")
    return problems


def trust_problems(doc: Any) -> List[str]:
    """All schema violations of a parsed trust sidecar (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["trust sidecar is not a JSON object"]
    if doc.get("kind") != TRUST_KIND:
        problems.append(f"kind is {doc.get('kind')!r}, expected {TRUST_KIND!r}")
    if not (isinstance(doc.get("epoch"), int) and doc["epoch"] >= 0):
        problems.append("epoch must be an int >= 0")
    verdicts = doc.get("verdicts")
    if not isinstance(verdicts, list):
        problems.append("verdicts must be a list")
    else:
        for i, verdict in enumerate(verdicts):
            if not (
                isinstance(verdict, dict)
                and isinstance(verdict.get("name"), str)
                and isinstance(verdict.get("trusted"), bool)
                and isinstance(verdict.get("reasons"), list)
            ):
                problems.append(f"verdicts[{i}] must carry name/trusted/reasons")
                break
        if isinstance(doc.get("n_untrusted"), int) and isinstance(verdicts, list):
            actual = sum(1 for v in verdicts if not v.get("trusted", True))
            if actual != doc["n_untrusted"]:
                problems.append(
                    f"n_untrusted says {doc['n_untrusted']}, "
                    f"verdicts contain {actual}"
                )
    return problems


# ----------------------------------------------------------------------
# The archive
# ----------------------------------------------------------------------

class ArchiveError(RuntimeError):
    """The archive refused an operation (duplicate epoch, bad manifest)."""


class CensusArchive:
    """One longitudinal archive rooted at a directory.

    ``crash_hook`` is the chaos-test seam: when set, it is invoked with a
    named commit point (``"commit:staged"``, ``"commit:renamed"``,
    ``"commit:indexed"``) and may raise to simulate a crash exactly
    there.  Production runs leave it ``None``.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = pathlib.Path(root)
        self.crash_hook: Optional[Callable[[str], None]] = None

    # -- layout --------------------------------------------------------

    @property
    def runs_dir(self) -> pathlib.Path:
        return self.root / "runs"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / "quarantine"

    @property
    def journal_dir(self) -> pathlib.Path:
        return self.root / "journal"

    @property
    def index_path(self) -> pathlib.Path:
        return self.root / "index.json"

    def ensure_layout(self) -> None:
        """Create the fixed directories (quarantine stays lazy)."""
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self.journal_dir.mkdir(parents=True, exist_ok=True)

    def run_dir(self, epoch: int) -> pathlib.Path:
        return self.runs_dir / run_dirname(epoch)

    def journal_path(self, epoch: int) -> pathlib.Path:
        return self.journal_dir / f"epoch-{epoch:06d}.journal"

    # -- reading -------------------------------------------------------

    def epochs(self) -> List[int]:
        """Committed epochs, sorted — by directory presence, not index."""
        if not self.runs_dir.is_dir():
            return []
        found = []
        for entry in self.runs_dir.iterdir():
            epoch = parse_run_dirname(entry.name)
            if epoch is not None and entry.is_dir():
                found.append(epoch)
        return sorted(found)

    def has(self, epoch: int) -> bool:
        return self.run_dir(epoch).is_dir()

    def latest_epoch_before(self, epoch: int) -> Optional[int]:
        """The newest committed epoch strictly before ``epoch``."""
        earlier = [e for e in self.epochs() if e < epoch]
        return max(earlier) if earlier else None

    def read_manifest(self, epoch: int) -> Dict[str, Any]:
        """Load and schema-validate one run's manifest."""
        path = self.run_dir(epoch) / MANIFEST_FILE
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CorruptPayloadError(
                f"unreadable manifest for epoch {epoch}: {exc}"
            ) from exc
        validate_run_manifest(doc)
        if doc["epoch"] != epoch:
            raise CorruptPayloadError(
                f"manifest in {path.parent.name} claims epoch {doc['epoch']}"
            )
        return doc

    def read_records(self, epoch: int) -> CensusRecords:
        """Load one run's records, verifying the integrity seal."""
        path = self.run_dir(epoch) / RECORDS_FILE
        try:
            with open(path, "rb") as fp:
                return read_raw_checksummed(fp)
        except OSError as exc:
            raise CorruptPayloadError(
                f"unreadable records for epoch {epoch}: {exc}"
            ) from exc

    def read_results(self, epoch: int) -> Dict[str, Any]:
        """Load one run's results document, verified against the manifest."""
        manifest = self.read_manifest(epoch)
        path = self.run_dir(epoch) / RESULTS_FILE
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise CorruptPayloadError(
                f"unreadable results for epoch {epoch}: {exc}"
            ) from exc
        sealed = manifest["payloads"][RESULTS_FILE]
        if len(data) != sealed["bytes"] or (
            zlib.crc32(data) & 0xFFFFFFFF
        ) != sealed["crc32"]:
            raise CorruptPayloadError(
                f"results payload for epoch {epoch} does not match its manifest"
            )
        return json.loads(data.decode("utf-8"))

    def read_telemetry(self, epoch: int) -> Optional[Dict[str, Any]]:
        """Load one run's telemetry sidecar, or ``None`` when the run has
        none (telemetry was off, or fsck quarantined a rotten sidecar).

        Raises :class:`CorruptPayloadError` when a sidecar is present but
        unreadable, schema-invalid, or its events seal does not match the
        on-disk events file — the condition fsck repairs by quarantining
        the sidecar while keeping the run.
        """
        run = self.run_dir(epoch)
        path = run / TELEMETRY_FILE
        if not path.exists():
            if (run / EVENTS_FILE).exists():
                raise CorruptPayloadError(
                    f"epoch {epoch} has an orphan events file without its "
                    f"telemetry document"
                )
            return None
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CorruptPayloadError(
                f"unreadable telemetry for epoch {epoch}: {exc}"
            ) from exc
        problems = telemetry_problems(doc)
        if problems:
            raise CorruptPayloadError(
                f"invalid telemetry for epoch {epoch}: " + "; ".join(problems)
            )
        if doc["epoch"] != epoch:
            raise CorruptPayloadError(
                f"telemetry in {run.name} claims epoch {doc['epoch']}"
            )
        seal = doc.get("events")
        events_path = run / EVENTS_FILE
        if seal is None:
            if events_path.exists():
                raise CorruptPayloadError(
                    f"epoch {epoch} has an events file but no events seal"
                )
        else:
            try:
                data = events_path.read_bytes()
            except OSError as exc:
                raise CorruptPayloadError(
                    f"unreadable events for epoch {epoch}: {exc}"
                ) from exc
            if len(data) != seal["bytes"] or (
                zlib.crc32(data) & 0xFFFFFFFF
            ) != seal["crc32"]:
                raise CorruptPayloadError(
                    f"events payload for epoch {epoch} does not match its seal"
                )
        return doc

    def read_trust(self, epoch: int) -> Optional[Dict[str, Any]]:
        """Load one run's VP trust sidecar, or ``None`` when the run has
        none (trust scoring was off, or fsck quarantined a rotten one).

        Raises :class:`CorruptPayloadError` when a sidecar is present
        but unreadable or schema-invalid — the condition fsck repairs by
        quarantining the sidecar while keeping the run.
        """
        run = self.run_dir(epoch)
        path = run / TRUST_FILE
        if not path.exists():
            return None
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CorruptPayloadError(
                f"unreadable trust sidecar for epoch {epoch}: {exc}"
            ) from exc
        problems = trust_problems(doc)
        if problems:
            raise CorruptPayloadError(
                f"invalid trust sidecar for epoch {epoch}: " + "; ".join(problems)
            )
        if doc["epoch"] != epoch:
            raise CorruptPayloadError(
                f"trust sidecar in {run.name} claims epoch {doc['epoch']}"
            )
        return doc

    # -- committing ----------------------------------------------------

    def commit_run(
        self,
        epoch: int,
        manifest_core: Dict[str, Any],
        records: CensusRecords,
        results_doc: Dict[str, Any],
        telemetry_doc: Optional[Dict[str, Any]] = None,
        events_lines: Optional[List[str]] = None,
        trust_doc: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Atomically commit one epoch's run; return the full manifest.

        ``manifest_core`` is everything but ``payloads`` (filled here
        from the serialized bytes) — the caller never has to guess CRCs.

        ``telemetry_doc``/``events_lines`` are the optional telemetry
        sidecars.  They ride in the same staging directory and atomic
        rename — a committed run can never hold a torn events file — but
        are deliberately left out of the manifest's ``payloads`` seals,
        so the manifest/records/results bytes are identical whether
        telemetry is on or off.  The events file's own size/CRC seal is
        embedded in the telemetry document instead.

        ``trust_doc`` is the optional VP trust sidecar (a serialized
        :class:`~repro.resilience.vptrust.VpTrustReport`), committed
        under the same atomic-rename / outside-the-seals contract.
        """
        if self.has(epoch):
            raise ArchiveError(f"epoch {epoch} is already committed")
        self.ensure_layout()

        records_sink = io.BytesIO()
        write_raw_checksummed(records, records_sink)
        records_bytes = records_sink.getvalue()
        results_bytes = canonical_json_bytes(results_doc)

        manifest = dict(manifest_core)
        manifest["kind"] = RUN_KIND
        manifest["schema_version"] = RUN_SCHEMA_VERSION
        manifest["epoch"] = epoch
        manifest["payloads"] = {
            RECORDS_FILE: {
                "bytes": len(records_bytes),
                "crc32": zlib.crc32(records_bytes) & 0xFFFFFFFF,
            },
            RESULTS_FILE: {
                "bytes": len(results_bytes),
                "crc32": zlib.crc32(results_bytes) & 0xFFFFFFFF,
            },
        }
        validate_run_manifest(manifest)

        final = self.run_dir(epoch)
        staging = self.runs_dir / f"{_STAGING_PREFIX}{final.name}.staging"
        if staging.exists():  # a previous crashed commit: start clean
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        self._write_file(staging / RECORDS_FILE, records_bytes)
        self._write_file(staging / RESULTS_FILE, results_bytes)
        self._write_file(staging / MANIFEST_FILE, canonical_json_bytes(manifest))
        if telemetry_doc is not None:
            telemetry = dict(telemetry_doc)
            telemetry["kind"] = TELEMETRY_KIND
            telemetry["epoch"] = epoch
            events_bytes = "".join(events_lines or []).encode("utf-8")
            telemetry["events"] = (
                {
                    "lines": len(events_lines),
                    "bytes": len(events_bytes),
                    "crc32": zlib.crc32(events_bytes) & 0xFFFFFFFF,
                }
                if events_lines is not None
                else None
            )
            problems = telemetry_problems(telemetry)
            if problems:
                raise ArchiveError(
                    "invalid telemetry document: " + "; ".join(problems)
                )
            if events_lines is not None:
                self._write_file(staging / EVENTS_FILE, events_bytes)
            self._write_file(
                staging / TELEMETRY_FILE, canonical_json_bytes(telemetry)
            )
        if trust_doc is not None:
            trust = dict(trust_doc)
            trust["kind"] = TRUST_KIND
            trust["epoch"] = epoch
            problems = trust_problems(trust)
            if problems:
                raise ArchiveError(
                    "invalid trust document: " + "; ".join(problems)
                )
            self._write_file(staging / TRUST_FILE, canonical_json_bytes(trust))
        self._fire("commit:staged")
        os.replace(staging, final)
        self._fire("commit:renamed")
        self.write_index(self.build_index())
        self._fire("commit:indexed")
        return manifest

    @staticmethod
    def _write_file(path: pathlib.Path, data: bytes) -> None:
        with open(path, "wb") as fp:
            fp.write(data)
            fp.flush()
            os.fsync(fp.fileno())

    def _fire(self, point: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(point)

    # -- index ---------------------------------------------------------

    def build_index(self) -> Dict[str, Any]:
        """Recompute the index from the on-disk manifests.

        Runs whose manifest does not load/validate are skipped — the
        index only ever advertises what a reader can actually use (fsck
        is the pass that removes the bad run itself).
        """
        runs: Dict[str, Any] = {}
        for epoch in self.epochs():
            try:
                manifest = self.read_manifest(epoch)
            except (CorruptPayloadError, ValueError):
                continue
            manifest_bytes = canonical_json_bytes(manifest)
            runs[run_dirname(epoch)] = {
                "epoch": epoch,
                "analysis_mode": manifest["analysis"]["mode"],
                "n_records": manifest["census"].get("n_records"),
                "manifest_crc32": zlib.crc32(manifest_bytes) & 0xFFFFFFFF,
            }
        return {
            "kind": INDEX_KIND,
            "schema_version": RUN_SCHEMA_VERSION,
            "runs": runs,
        }

    def write_index(self, index: Dict[str, Any]) -> None:
        """Atomically (re)write ``index.json``."""
        tmp = self.index_path.with_name(self.index_path.name + ".tmp")
        self._write_file(tmp, canonical_json_bytes(index))
        os.replace(tmp, self.index_path)

    def read_index(self) -> Optional[Dict[str, Any]]:
        """The on-disk index, or ``None`` when absent/unparseable."""
        try:
            doc = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return doc if isinstance(doc, dict) and doc.get("kind") == INDEX_KIND else None
