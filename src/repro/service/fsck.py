"""Archive verification and repair — run on every service startup.

The archive's commit protocol guarantees that a crash leaves one of a
small set of states; fsck enumerates them and restores the invariant
"every run directory under ``runs/`` is fully valid, and ``index.json``
describes exactly those runs":

* **staging directories** (``.{day}.staging``) are torn commits that
  never renamed — discarded;
* **run directories** failing any check (missing/garbled/mismatched
  manifest, torn or bit-flipped payload, payload not matching the
  manifest's size/CRC) are **quarantined**: moved wholesale into
  ``quarantine/`` under a collision-free name, never deleted — an
  operator can inspect or hand-repair them, and the service treats the
  epoch as missing (catch-up will re-run it);
* **foreign entries** in ``runs/`` (names that are not dated runs) are
  quarantined too;
* **telemetry sidecars** (``telemetry.json``/``events.jsonl``) failing
  their schema or events seal are *repairable*: only the sidecar files
  move to quarantine, the run itself is kept — losing a day's telemetry
  must never cost the day's census;
* **stale journals** — checkpoint journals of epochs that did commit —
  are removed (the run is durable; the journal is resume state that no
  longer applies).  Journals of *uncommitted* epochs are kept: they are
  exactly what lets the next run resume bit-for-bit;
* the **index** is rebuilt whenever it differs from what the surviving
  manifests imply (missing, unparseable, stale, or trailing a
  quarantine).

``repair=False`` turns all of that into a dry run: every problem is
reported, nothing on disk changes.

fsck never raises on corrupt data — refusing to start because one day
of history rotted would be the availability bug; quarantining the day
and continuing is the point.
"""

from __future__ import annotations

import json
import re
import shutil
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..measurement.recordio import CorruptPayloadError
from ..obs import current_metrics
from .archive import (
    MANIFEST_FILE,
    RECORDS_FILE,
    RESULTS_FILE,
    TELEMETRY_FILES,
    TRUST_FILE,
    CensusArchive,
    parse_run_dirname,
)

_JOURNAL_RE = re.compile(r"^epoch-(\d{6})\.journal$")


@dataclass
class FsckReport:
    """Everything one fsck pass saw and did."""

    #: Epochs that passed every check.
    ok_epochs: List[int] = field(default_factory=list)
    #: (entry name, reason) for everything moved to quarantine.
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    #: (run name, reason) for telemetry sidecars quarantined *without*
    #: touching their (still valid) run — the repairable case.
    telemetry_quarantined: List[Tuple[str, str]] = field(default_factory=list)
    #: (run name, reason) for VP trust sidecars quarantined the same
    #: repairable way: losing a day's trust verdicts never costs the day.
    trust_quarantined: List[Tuple[str, str]] = field(default_factory=list)
    #: Torn staging directories that were discarded.
    discarded_staging: List[str] = field(default_factory=list)
    #: Stale/foreign journal files that were removed.
    removed_journals: List[str] = field(default_factory=list)
    index_rebuilt: bool = False
    #: False when this was a dry run (``repair=False``).
    repaired: bool = True

    @property
    def clean(self) -> bool:
        """Whether the archive needed no intervention at all."""
        return not (
            self.quarantined
            or self.telemetry_quarantined
            or self.trust_quarantined
            or self.discarded_staging
            or self.removed_journals
            or self.index_rebuilt
        )

    def summary_lines(self) -> List[str]:
        verb = "" if self.repaired else " (dry run)"
        lines = [
            f"fsck{verb}: {len(self.ok_epochs)} run(s) ok"
            + ("" if self.clean else " — repairs were needed")
        ]
        for name, reason in self.quarantined:
            lines.append(f"  quarantined {name}: {reason}")
        for name, reason in self.telemetry_quarantined:
            lines.append(f"  quarantined telemetry of {name} (run kept): {reason}")
        for name, reason in self.trust_quarantined:
            lines.append(f"  quarantined trust sidecar of {name} (run kept): {reason}")
        for name in self.discarded_staging:
            lines.append(f"  discarded torn commit {name}")
        for name in self.removed_journals:
            lines.append(f"  removed stale journal {name}")
        if self.index_rebuilt:
            lines.append("  index rebuilt")
        return lines


def _verify_run(archive: CensusArchive, epoch: int) -> Optional[str]:
    """The reason one run directory is bad, or ``None`` when it is valid."""
    try:
        manifest = archive.read_manifest(epoch)
    except (CorruptPayloadError, ValueError) as exc:
        return f"manifest: {exc}"
    run_dir = archive.run_dir(epoch)
    for name in (RECORDS_FILE, RESULTS_FILE):
        try:
            data = (run_dir / name).read_bytes()
        except OSError as exc:
            return f"{name}: unreadable ({exc})"
        sealed = manifest["payloads"][name]
        if len(data) != sealed["bytes"]:
            return (
                f"{name}: {len(data)} bytes on disk, "
                f"manifest says {sealed['bytes']} (truncated?)"
            )
        if zlib.crc32(data) & 0xFFFFFFFF != sealed["crc32"]:
            return f"{name}: CRC mismatch against manifest (bit rot?)"
    # The manifest CRCs passed; the records file additionally carries its
    # own seal, and results.json must still parse as JSON.
    try:
        archive.read_records(epoch)
    except CorruptPayloadError as exc:
        return f"{RECORDS_FILE}: {exc}"
    try:
        json.loads((run_dir / RESULTS_FILE).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return f"{RESULTS_FILE}: not valid JSON ({exc})"
    return None


def _verify_telemetry(archive: CensusArchive, epoch: int) -> Optional[str]:
    """The reason one run's telemetry sidecar is bad, or ``None``.

    A run with no sidecar at all is fine (telemetry was off for that
    epoch — the catch-up tolerance for mixing old and new runs).
    """
    try:
        archive.read_telemetry(epoch)
    except CorruptPayloadError as exc:
        return str(exc)
    return None


def _verify_trust(archive: CensusArchive, epoch: int) -> Optional[str]:
    """The reason one run's trust sidecar is bad, or ``None``.

    A run with no sidecar at all is fine (trust scoring was off for
    that epoch).
    """
    try:
        archive.read_trust(epoch)
    except CorruptPayloadError as exc:
        return str(exc)
    return None


def _quarantine_sidecars(
    archive: CensusArchive, epoch: int, files: Tuple[str, ...], repair: bool
) -> None:
    """Move some of one run's sidecar files (only) into quarantine.

    The census payloads and manifest stay exactly where they are: a
    rotten sidecar costs the epoch its telemetry or trust verdicts,
    never its data.
    """
    if not repair:
        return
    run_dir = archive.run_dir(epoch)
    archive.quarantine_dir.mkdir(parents=True, exist_ok=True)
    for name in files:
        source = run_dir / name
        if not source.exists():
            continue
        destination = archive.quarantine_dir / f"{run_dir.name}.{name}"
        k = 0
        while destination.exists():
            k += 1
            destination = archive.quarantine_dir / f"{run_dir.name}.{name}.{k}"
        shutil.move(str(source), str(destination))


def _quarantine(archive: CensusArchive, name: str, repair: bool) -> None:
    if not repair:
        return
    archive.quarantine_dir.mkdir(parents=True, exist_ok=True)
    destination = archive.quarantine_dir / name
    k = 0
    while destination.exists():  # a repeat offender: keep every copy
        k += 1
        destination = archive.quarantine_dir / f"{name}.{k}"
    shutil.move(str(archive.runs_dir / name), str(destination))


def fsck_archive(archive: CensusArchive, repair: bool = True) -> FsckReport:
    """Verify (and with ``repair=True``, restore) the archive invariant."""
    report = FsckReport(repaired=repair)
    metrics = current_metrics()
    if not archive.root.is_dir():
        return report  # a brand-new service: nothing to check yet

    # 1. Torn commits and foreign entries under runs/.
    if archive.runs_dir.is_dir():
        for entry in sorted(archive.runs_dir.iterdir()):
            epoch = parse_run_dirname(entry.name)
            if epoch is not None and entry.is_dir():
                continue  # a candidate run; verified below
            if entry.name.startswith("."):
                report.discarded_staging.append(entry.name)
                if repair:
                    if entry.is_dir():
                        shutil.rmtree(entry)
                    else:
                        entry.unlink()
            else:
                report.quarantined.append((entry.name, "not a dated run"))
                _quarantine(archive, entry.name, repair)

    # 2. Integrity of every surviving run.
    for epoch in archive.epochs():
        reason = _verify_run(archive, epoch)
        if reason is None:
            report.ok_epochs.append(epoch)
        else:
            name = archive.run_dir(epoch).name
            report.quarantined.append((name, reason))
            _quarantine(archive, name, repair)
            metrics.counter("fsck_runs_quarantined").inc()

    # 2b. Telemetry sidecars of surviving runs: missing/corrupt telemetry
    #     is *repairable* — quarantine the sidecar, keep the run.
    for epoch in list(report.ok_epochs):
        reason = _verify_telemetry(archive, epoch)
        if reason is not None:
            name = archive.run_dir(epoch).name
            report.telemetry_quarantined.append((name, reason))
            _quarantine_sidecars(archive, epoch, TELEMETRY_FILES, repair)
            metrics.counter("fsck_telemetry_quarantined").inc()

    # 2c. VP trust sidecars: same repairable contract as telemetry.
    for epoch in list(report.ok_epochs):
        reason = _verify_trust(archive, epoch)
        if reason is not None:
            name = archive.run_dir(epoch).name
            report.trust_quarantined.append((name, reason))
            _quarantine_sidecars(archive, epoch, (TRUST_FILE,), repair)
            metrics.counter("fsck_trust_quarantined").inc()

    # 3. Journals: stale ones (their epoch committed and survived
    #    verification) no longer apply; foreign files are noise.  Both go.
    ok = set(report.ok_epochs)
    if archive.journal_dir.is_dir():
        for entry in sorted(archive.journal_dir.iterdir()):
            match = _JOURNAL_RE.match(entry.name)
            if match is not None and int(match.group(1)) not in ok:
                continue  # resume state for a pending epoch: keep it
            report.removed_journals.append(entry.name)
            if repair:
                entry.unlink()

    # 4. The index must equal what the surviving manifests imply.
    expected = archive.build_index()
    if archive.read_index() != expected:
        report.index_rebuilt = True
        if repair:
            archive.write_index(expected)

    if metrics.enabled and not report.clean:
        metrics.counter("fsck_repairs").inc()
    return report
