"""Epoch-over-epoch churn analytics over archived results documents.

Two granularities, both computed purely from the serialized results of
two committed runs (no live census objects needed, so ``history`` and
the manifest's ``churn`` block work straight off the archive):

* **target level** — /24s appearing/disappearing from the responsive
  set, anycast<->unicast flips, and replica births/deaths summed over
  per-target replica-count deltas;
* **AS level** — the deployment diff of
  :func:`repro.census.longitudinal.compare_epochs` (grown / shrunk /
  footprint-only motion / appeared / disappeared), fed with lightweight
  shims rebuilt from each document's per-AS section.

A third, orthogonal axis is the *measuring* side:
:func:`roster_churn` diffs the analyzed vantage-point rosters of two
runs (join / leave / survive) — the denominator of the service's
roster-churn-tolerant incremental recompute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable

from ..census.longitudinal import LongitudinalReport, compare_epochs


@dataclass(frozen=True)
class _ASShim:
    """Duck-typed stand-ins for what ``compare_epochs`` reads."""

    name: str


@dataclass(frozen=True)
class _FootprintShim:
    autonomous_system: _ASShim
    mean_replicas: float
    n_ip24: int


class _CharacterizationShim:
    """An archived ``ases`` section wearing a Characterization's face."""

    def __init__(self, ases_doc: Dict[str, Any]) -> None:
        self.footprints = {
            int(asn): _FootprintShim(
                autonomous_system=_ASShim(name=entry["name"]),
                mean_replicas=float(entry["mean_replicas"]),
                n_ip24=int(entry["n_ip24"]),
            )
            for asn, entry in ases_doc.items()
        }


@dataclass
class ChurnSummary:
    """What changed between two committed epochs."""

    epoch_before: int
    epoch_after: int
    n_targets_before: int
    n_targets_after: int
    #: /24s that (stopped) replying between the epochs.
    targets_appeared: int
    targets_disappeared: int
    #: Common targets whose anycast verdict flipped.
    flips_to_anycast: int
    flips_to_unicast: int
    #: Replica-count motion: per-target positive deltas summed (births)
    #: and negative deltas summed (deaths); replicas of targets entering
    #: or leaving the responsive set count as births resp. deaths.
    replica_births: int
    replica_deaths: int
    #: Deployment-level diff (``compare_epochs`` category -> AS count).
    ases: Dict[str, int] = field(default_factory=dict)

    def to_doc(self) -> Dict[str, Any]:
        """The manifest's ``churn`` block (canonical-JSON friendly)."""
        return {
            "epoch_before": self.epoch_before,
            "epoch_after": self.epoch_after,
            "targets": {
                "before": self.n_targets_before,
                "after": self.n_targets_after,
                "appeared": self.targets_appeared,
                "disappeared": self.targets_disappeared,
            },
            "flips": {
                "to_anycast": self.flips_to_anycast,
                "to_unicast": self.flips_to_unicast,
            },
            "replicas": {
                "births": self.replica_births,
                "deaths": self.replica_deaths,
            },
            "ases": dict(self.ases),
        }

    def summary_lines(self) -> list:
        """Human-readable rendering for the CLI's ``history`` verb."""
        return [
            f"epoch {self.epoch_before} -> {self.epoch_after}: "
            f"{self.n_targets_before} -> {self.n_targets_after} targets "
            f"(+{self.targets_appeared}/-{self.targets_disappeared})",
            f"  flips: {self.flips_to_anycast} to anycast, "
            f"{self.flips_to_unicast} to unicast",
            f"  replicas: +{self.replica_births} born, "
            f"-{self.replica_deaths} died",
            "  ASes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.ases.items())),
        ]


def roster_churn(
    before_names: Iterable[str], after_names: Iterable[str]
) -> Dict[str, Any]:
    """Diff two analyzed VP rosters (e.g. from two run manifests).

    The ``roster`` block of the manifest's churn section: which vantage
    points joined, left, or survived between the epochs.  Surviving VPs
    are what keeps the incremental recompute warm — a target measured
    only by survivors keeps its signature across the roster change.
    """
    before = set(before_names)
    after = set(after_names)
    return {
        "joined": sorted(after - before),
        "left": sorted(before - after),
        "n_before": len(before),
        "n_after": len(after),
        "n_surviving": len(before & after),
    }


def _replicas_of(entry: Dict[str, Any]) -> int:
    return len(entry.get("replicas", ()))


def churn_between(
    before_doc: Dict[str, Any],
    after_doc: Dict[str, Any],
    min_delta: float = 1.0,
    min_ip24_delta: int = 1,
) -> ChurnSummary:
    """Diff two archived results documents into a :class:`ChurnSummary`.

    ``min_delta`` / ``min_ip24_delta`` are forwarded to
    :func:`~repro.census.longitudinal.compare_epochs` for the AS-level
    classification.
    """
    before = before_doc["targets"]
    after = after_doc["targets"]
    before_keys = set(before)
    after_keys = set(after)

    appeared = after_keys - before_keys
    disappeared = before_keys - after_keys
    flips_to_anycast = 0
    flips_to_unicast = 0
    births = 0
    deaths = 0
    for key in before_keys & after_keys:
        was = bool(before[key]["anycast"])
        now = bool(after[key]["anycast"])
        if now and not was:
            flips_to_anycast += 1
        elif was and not now:
            flips_to_unicast += 1
        delta = _replicas_of(after[key]) - _replicas_of(before[key])
        if delta > 0:
            births += delta
        else:
            deaths -= delta
    for key in appeared:
        births += _replicas_of(after[key])
    for key in disappeared:
        deaths += _replicas_of(before[key])

    report: LongitudinalReport = compare_epochs(
        _CharacterizationShim(before_doc.get("ases", {})),
        _CharacterizationShim(after_doc.get("ases", {})),
        min_delta=min_delta,
        min_ip24_delta=min_ip24_delta,
    )
    return ChurnSummary(
        epoch_before=int(before_doc["epoch"]),
        epoch_after=int(after_doc["epoch"]),
        n_targets_before=len(before),
        n_targets_after=len(after),
        targets_appeared=len(appeared),
        targets_disappeared=len(disappeared),
        flips_to_anycast=flips_to_anycast,
        flips_to_unicast=flips_to_unicast,
        replica_births=births,
        replica_deaths=deaths,
        ases={
            "grown": len(report.grown),
            "shrunk": len(report.shrunk),
            "stable": len(report.stable),
            "appeared": len(report.appeared),
            "disappeared": len(report.disappeared),
            "footprint_grown": len(report.footprint_grown),
            "footprint_shrunk": len(report.footprint_shrunk),
        },
    )
