"""The longitudinal census service: dated runs over an evolving internet.

One :class:`CensusService` owns an archive and a deterministic recipe
for epoch *k*'s world: the base deployment catalog chain-evolved *k*
times (:func:`~repro.census.longitudinal.evolve_catalog`, one fixed
seed per step), the same synthetic-internet seed, the same platform.
Running epoch *k* is therefore a pure function — which is what makes
every robustness property testable as byte equality:

* **crash tolerance**: each epoch's census journals per-VP batches to
  ``journal/epoch-NNNNNN.journal``; a killed run resumes from the
  journal bit-for-bit (keyed per-VP RNG), and the archive commit itself
  is atomic, so re-running after a crash at *any* point converges to
  the same archive bytes as an uninterrupted timeline;
* **catch-up**: :meth:`CensusService.catch_up` first fscks the archive
  (quarantining anything rotten), then runs every missing epoch up to
  the requested day — missed days and quarantined days are the same
  case;
* **incremental recompute**: with keyed campaign noise, a target's raw
  records depend only on itself, so unchanged targets produce
  byte-identical RTT rows across epochs.  The analysis stage copies
  their archived result entries verbatim and re-runs the iGreedy engine
  only for rows whose signature moved — provably equal to a cold
  census (see :mod:`~repro.service.delta`), and cheap when churn is low.
"""

from __future__ import annotations

import pathlib
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bgp import BgpConfig, RouteEventInjector, RouteEventPlan
from ..census.combine import RttMatrix, matrix_from_census, matrix_from_records
from ..census.fastpath import FastAnalysisEngine
from ..census.hijack import (
    AlarmPolicy,
    DocAnalysisView,
    RoutingAlarm,
    classify_routing_changes,
)
from ..census.longitudinal import EvolutionConfig, evolve_catalog
from ..core.detection import detection_mask, radius_matrix
from ..geo.coords import GeoPoint
from ..core.igreedy import IGreedyConfig
from ..geo.cities import CityDB, default_city_db
from ..internet.catalog import CatalogEntry, full_catalog
from ..internet.topology import InternetConfig, SyntheticInternet
from ..measurement.campaign import (
    CensusAborted,
    CensusCampaign,
    CensusInterrupted,
)
from ..measurement.faults import FaultPlan, VpDistortionPlan
from ..measurement.platform import Platform, planetlab_platform
from ..measurement.recordio import CorruptPayloadError
from ..obs import (
    EventLog,
    MetricsRegistry,
    Tracer,
    activate,
    current_events,
    current_metrics,
    current_tracer,
)
from ..obs.slo import (
    SloSpec,
    default_service_slo,
    evaluate_slo,
    stage_seconds_from_trace,
)
from ..obs.timeline import (
    Regression,
    Timeline,
    collect_timeline,
    detect_regressions,
)
from ..resilience import (
    CONFIDENCE_DEGRADED,
    CONFIDENCE_INSUFFICIENT,
    ResiliencePolicy,
    StageFailed,
    StageSupervisor,
    TrustPolicy,
    VpTrustReport,
    apply_trust,
    score_vps,
)
from .archive import CensusArchive
from .churn import churn_between, roster_churn
from .delta import DeltaPlan, plan_delta, target_signatures, vp_context_digest
from .fsck import FsckReport, fsck_archive

RESULTS_KIND = "census-results"

#: Domain separation for the roster-churn coin flips.
_ROSTER_SALT = 0x4057E4


@dataclass
class ServiceConfig:
    """The deterministic recipe of one longitudinal service."""

    #: Archive root directory (created on first run).
    archive_root: str
    #: Seed of the synthetic internet (unicast world + per-AS builders).
    internet_seed: int = 2015
    n_unicast: int = 400
    #: Tail deployments of the *default* base catalog (ignored when
    #: ``base_catalog`` is given).
    tail_deployments: int = 0
    #: Epoch-0 deployment catalog; defaults to
    #: ``full_catalog(tail_count=tail_deployments, seed=internet_seed)``.
    base_catalog: Optional[Sequence[CatalogEntry]] = None
    #: Landscape drift applied once per epoch.
    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    evolution_seed: int = 7
    n_vps: int = 20
    vp_seed: int = 41
    #: Constant campaign seed: every epoch runs a *fresh* campaign with
    #: the same seed, so census-level draws (availability, degraded
    #: flags) repeat identically and only the world differs.
    campaign_seed: int = 500
    availability: float = 1.0
    degraded_fraction: float = 0.0
    rate_pps: Optional[float] = None
    #: Campaign noise mode.  ``"keyed"`` (the service default) is what
    #: makes incremental recompute *useful*; ``"stream"`` stays safe but
    #: every epoch's signatures differ, so every run goes cold.
    noise: str = "keyed"
    #: Incremental recompute on/off (off = every epoch is a cold census).
    incremental: bool = True
    #: Churn fraction above which incremental mode falls back to cold.
    churn_threshold: float = 0.25
    min_samples: int = 3
    igreedy: IGreedyConfig = field(default_factory=IGreedyConfig)
    #: AS-churn thresholds forwarded to ``compare_epochs``.
    min_delta: float = 1.0
    min_ip24_delta: int = 1
    #: Stage supervision; ``None`` runs stages bare.
    resilience: Optional[ResiliencePolicy] = None
    #: Durable per-epoch telemetry: when on, each committed run carries a
    #: ``telemetry.json`` + ``events.jsonl`` sidecar (trace, metrics, SLO
    #: report, event log).  Census/archive bytes are identical either way.
    telemetry: bool = False
    #: SLO budgets evaluated per epoch (telemetry mode only); ``None``
    #: uses :func:`~repro.obs.slo.default_service_slo`.
    slo: Optional[SloSpec] = None
    #: Node-fault injection forwarded to each epoch's campaign (chaos /
    #: seeded-regression testing); ``None`` injects nothing.
    fault_plan: Optional[FaultPlan] = None
    #: Per-epoch, per-VP probability that a vantage point sits this
    #: epoch out (probe disconnects — the dominant churn mode of a real
    #: platform).  Keyed on ``(roster_seed, epoch, VP name)``, so a VP's
    #: absences are a pure function of the config and a returning VP
    #: reproduces its pre-disconnect rows exactly.
    roster_churn_prob: float = 0.0
    roster_seed: int = 23
    #: Score every epoch's roster with the VP trust engine and excise
    #: untrusted columns before signatures/analysis.  Output-neutral on
    #: clean data (byte-identical archive).
    trust: bool = False
    #: Thresholds of the trust engine; ``None`` uses the defaults.
    trust_policy: Optional[TrustPolicy] = None
    #: Keyed VP measurement distortion forwarded to each epoch's
    #: campaign (chaos testing of the trust layer); ``None`` distorts
    #: nothing.
    vp_distortion: Optional[VpDistortionPlan] = None
    #: How many committed epochs *before* the primary baseline are
    #: consulted when matching changed signatures (the roster-rejoin
    #: recovery path of :func:`~repro.service.delta.plan_delta`).
    baseline_depth: int = 3
    #: Routing plane of each epoch's internet: ``"geo"`` (the default —
    #: nearest-site catchments, byte-identical to historic archives) or
    #: ``"bgp"`` (Gao-Rexford propagation over a synthetic AS graph).
    routing: str = "geo"
    #: AS-graph shape for BGP mode; ``None`` uses the defaults.
    bgp: Optional[BgpConfig] = None
    #: Routing-chaos schedule applied to each epoch's matrix (hijacks,
    #: leaks, flaps...); requires ``routing="bgp"``.  ``None`` (and the
    #: empty plan) are inert.
    route_events: Optional[RouteEventPlan] = None
    #: Classify census-over-routing diffs against the previous committed
    #: epoch and record typed verdicts in the manifest's ``routing``
    #: block.
    alarms: bool = False
    #: Thresholds of the routing classifier; ``None`` uses the defaults.
    alarm_policy: Optional[AlarmPolicy] = None

    def __post_init__(self) -> None:
        if self.noise not in ("stream", "keyed"):
            raise ValueError(f"unknown noise mode {self.noise!r}")
        if not 0.0 <= self.churn_threshold <= 1.0:
            raise ValueError("churn_threshold must be in [0, 1]")
        if not 0.0 <= self.roster_churn_prob < 1.0:
            raise ValueError("roster_churn_prob must be in [0, 1)")
        if self.baseline_depth < 0:
            raise ValueError("baseline_depth must be >= 0")
        if self.routing not in ("geo", "bgp"):
            raise ValueError(f"routing must be 'geo' or 'bgp', got {self.routing!r}")
        if self.bgp is not None and self.routing != "bgp":
            raise ValueError("bgp config requires routing='bgp'")
        if (
            self.route_events is not None
            and self.route_events.enabled
            and self.routing != "bgp"
        ):
            raise ValueError("route_events require routing='bgp'")


@dataclass
class EpochOutcome:
    """What one :meth:`CensusService.run_epoch` call did."""

    epoch: int
    #: ``"committed"`` (ran and archived) or ``"already-present"``.
    status: str
    mode: str
    reason: str
    baseline_epoch: Optional[int]
    churn_fraction: float
    n_recomputed: int
    n_copied: int
    n_targets: int
    n_anycast: int
    total_replicas: int
    #: Changed/appeared targets copied from an *older* epoch instead of
    #: recomputed (the roster-rejoin recovery path).
    n_recovered: int = 0
    #: Vantage points the trust engine excised this epoch.
    untrusted_vps: List[str] = field(default_factory=list)
    #: Typed routing verdicts of the alarm pass (all of them, benign
    #: included); empty when alarms are off or no baseline exists.
    alarms: List[RoutingAlarm] = field(default_factory=list)
    #: Route-event records the injector applied this epoch.
    route_events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def alarming(self) -> List[RoutingAlarm]:
        return [a for a in self.alarms if a.is_alarm]

    def summary_lines(self) -> List[str]:
        lines = [
            f"epoch {self.epoch}: {self.status} "
            f"[{self.mode}: {self.reason}]",
            f"  targets: {self.n_targets} "
            f"({self.n_anycast} anycast, {self.total_replicas} replicas)",
            f"  recomputed/copied: {self.n_recomputed}/{self.n_copied} "
            f"(churn {self.churn_fraction:.3f}, "
            f"baseline {self.baseline_epoch})",
        ]
        if self.n_recovered:
            lines.append(
                f"  recovered from history: {self.n_recovered} target(s)"
            )
        if self.untrusted_vps:
            lines.append(
                "  untrusted VPs excised: " + ", ".join(self.untrusted_vps)
            )
        for event in self.route_events:
            if event.get("applied"):
                lines.append(
                    f"  route event: {event.get('kind')} on prefix "
                    f"{event.get('prefix')}"
                )
        for alarm in self.alarming:
            lines.append(
                f"  ALARM {alarm.verdict.value} prefix {alarm.prefix} "
                f"(confidence {alarm.confidence:.2f}): {alarm.detail}"
            )
        if self.alarms and not self.alarming:
            lines.append(
                f"  routing verdicts: {len(self.alarms)} classified, none alarming"
            )
        return lines


class CensusService:
    """Crash-tolerant scheduler of dated census runs into one archive."""

    def __init__(self, config: ServiceConfig, city_db: Optional[CityDB] = None) -> None:
        self.config = config
        self.archive = CensusArchive(config.archive_root)
        self.city_db = city_db or default_city_db()
        self.platform = planetlab_platform(
            count=config.n_vps, seed=config.vp_seed, city_db=self.city_db
        )
        self.supervisor: Optional[StageSupervisor] = (
            StageSupervisor(config.resilience)
            if config.resilience is not None
            else None
        )
        self._catalogs: Dict[int, List[CatalogEntry]] = {}

    # ------------------------------------------------------------------
    # The evolving world
    # ------------------------------------------------------------------

    def catalog_for(self, epoch: int) -> List[CatalogEntry]:
        """Epoch *k*'s deployment catalog: the base chain-evolved k times."""
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        if 0 not in self._catalogs:
            base = (
                list(self.config.base_catalog)
                if self.config.base_catalog is not None
                else full_catalog(
                    tail_count=self.config.tail_deployments,
                    seed=self.config.internet_seed,
                )
            )
            self._catalogs[0] = base
        known = max(self._catalogs)
        for k in range(known + 1, epoch + 1):
            self._catalogs[k] = evolve_catalog(
                self._catalogs[k - 1],
                seed=self.config.evolution_seed * 1_000_003 + k,
                config=self.config.evolution,
            )
        return self._catalogs[epoch]

    def internet_for(self, epoch: int) -> SyntheticInternet:
        return SyntheticInternet(
            InternetConfig(
                seed=self.config.internet_seed,
                n_unicast_slash24=self.config.n_unicast,
                tail_deployments=self.config.tail_deployments,
                routing=self.config.routing,
                bgp=self.config.bgp,
            ),
            catalog=self.catalog_for(epoch),
            city_db=self.city_db,
        )

    def platform_for(self, epoch: int) -> Platform:
        """Epoch *k*'s active roster: the full platform minus the VPs
        sitting this epoch out.

        Each VP's absence is an independent keyed coin flip on
        ``(roster_seed, epoch, VP name)`` — deterministic, so re-running
        (or resuming) an epoch sees the identical roster, and a VP that
        returns after an absence measures exactly as it did before
        (keyed campaign noise), which is what lets ``plan_delta``
        recover its targets from an older baseline instead of going
        cold.  At least two VPs always survive (the minimum roster that
        can measure anything cross-VP).
        """
        full = self.platform.vantage_points
        if self.config.roster_churn_prob <= 0.0:
            return self.platform
        scores = {
            vp.name: float(
                np.random.default_rng(
                    [
                        _ROSTER_SALT,
                        self.config.roster_seed,
                        epoch,
                        zlib.crc32(vp.name.encode()),
                    ]
                ).random()
            )
            for vp in full
        }
        keep = [
            vp for vp in full if scores[vp.name] >= self.config.roster_churn_prob
        ]
        if len(keep) < 2:
            survivors = set(
                sorted(scores, key=lambda name: scores[name], reverse=True)[:2]
            )
            keep = [vp for vp in full if vp.name in survivors]
        return Platform(self.platform.name, keep)

    # ------------------------------------------------------------------
    # Supervision plumbing
    # ------------------------------------------------------------------

    def _stage(self, name, fn):
        """Run one stage under the resilience supervisor, if configured.

        Interruption and quorum aborts are *control flow*, not stage
        failures: the supervisor's classifier sees them as fatal and
        wraps them, so unwrap and re-raise the original — callers (and
        the CLI's exit-code ladder) dispatch on the real exception.
        """
        if self.supervisor is None:
            return fn()
        try:
            return self.supervisor.run(name, fn)
        except StageFailed as exc:
            if isinstance(exc.__cause__, (CensusInterrupted, CensusAborted)):
                raise exc.__cause__
            raise

    # ------------------------------------------------------------------
    # One epoch
    # ------------------------------------------------------------------

    def run_epoch(
        self, epoch: int, abort_after_vps: Optional[int] = None
    ) -> EpochOutcome:
        """Measure, analyze and commit one epoch (idempotent).

        A committed epoch returns immediately (``"already-present"``).
        ``abort_after_vps`` is the chaos knob of the underlying census:
        the run dies with :class:`CensusInterrupted` after that many
        fresh VP scans, leaving a resumable journal behind.
        """
        if self.archive.has(epoch):
            # Re-running a committed epoch also clears any stale journal
            # (a crash window between rename and journal cleanup).
            journal = self.archive.journal_path(epoch)
            if journal.exists():
                journal.unlink()
            return self._outcome_from_manifest(epoch, "already-present")

        if not self.config.telemetry:
            return self._run_epoch_inner(epoch, abort_after_vps)

        # Telemetry mode: fresh per-epoch collectors, scoped — the trace,
        # metrics and event log land in the run's archive sidecars.
        # Everything the census computes is untouched (no RNG, no wall
        # time in results), so the committed census bytes are identical
        # to a telemetry-off run.
        tracer = Tracer()
        metrics = MetricsRegistry()
        events = EventLog()
        with activate(tracer=tracer, metrics=metrics, events=events):
            return self._run_epoch_inner(
                epoch, abort_after_vps, collectors=(tracer, metrics, events)
            )

    def _run_epoch_inner(
        self,
        epoch: int,
        abort_after_vps: Optional[int],
        collectors: Optional[Tuple[Tracer, MetricsRegistry, EventLog]] = None,
    ) -> EpochOutcome:
        events = current_events()
        with current_tracer().span("service_epoch", epoch=epoch):
            events.emit("service", "epoch_start", epoch=epoch)
            self.archive.ensure_layout()
            internet = self.internet_for(epoch)
            platform = self.platform_for(epoch)
            campaign = CensusCampaign(
                internet,
                platform,
                seed=self.config.campaign_seed,
                degraded_fraction=self.config.degraded_fraction,
                noise=self.config.noise,
                fault_plan=self.config.fault_plan,
                distortion=self.config.vp_distortion,
                **(
                    {"rate_pps": self.config.rate_pps}
                    if self.config.rate_pps is not None
                    else {}
                ),
            )
            journal = self.archive.journal_path(epoch)

            def measure():
                campaign.run_precensus()
                return campaign.run_census(
                    availability=self.config.availability,
                    checkpoint=str(journal),
                    abort_after_vps=abort_after_vps,
                )

            events.emit("stage", "stage_start", stage="measurement", epoch=epoch)
            census = self._stage("measurement", measure)
            events.emit(
                "stage",
                "stage_end",
                stage="measurement",
                epoch=epoch,
                n_records=len(census.records),
            )
            if census.health is not None:
                for vp_name in census.health.quarantined_vps:
                    events.emit(
                        "quarantine", "vp_quarantined", vp=vp_name, epoch=epoch
                    )
                for vp_name in census.health.salvaged_vps:
                    events.emit("lifecycle", "vp_salvaged", vp=vp_name, epoch=epoch)
            matrix = matrix_from_census(census)

            # Routing chaos: the plan's active events perturb this
            # epoch's matrix exactly the way real routing incidents are
            # visible to a census — through the measurements.  An inert
            # plan returns the same matrix object, so chaos-free configs
            # stay byte-identical.
            route_records: List[Dict[str, Any]] = []
            if (
                self.config.route_events is not None
                and self.config.route_events.enabled
            ):
                events.emit("stage", "stage_start", stage="routing", epoch=epoch)
                with current_tracer().span("routing", epoch=epoch):
                    injector = RouteEventInjector(
                        self.config.route_events, internet
                    )
                    matrix, route_records = self._stage(
                        "routing", lambda: injector.perturb(matrix, epoch)
                    )
                events.emit(
                    "stage",
                    "stage_end",
                    stage="routing",
                    epoch=epoch,
                    n_events=len(route_records),
                )

            # Trust gate: score the roster, excise what cannot be
            # physically consistent with it.  On a clean roster
            # apply_trust returns the matrix object unchanged and an
            # all-zero excision count, so signatures — and the whole
            # committed archive — are byte-identical to a trust-off run.
            trust_report: Optional[VpTrustReport] = None
            excised: Optional[np.ndarray] = None
            if self.config.trust:
                events.emit("stage", "stage_start", stage="trust", epoch=epoch)
                with current_tracer().span("trust", epoch=epoch):
                    trust_report = self._stage(
                        "trust",
                        lambda: score_vps(matrix, self.config.trust_policy),
                    )
                matrix, excised = apply_trust(matrix, trust_report)
                if census.health is not None and trust_report.untrusted_names:
                    census.health.absorb_trust(
                        trust_report.untrusted_names,
                        trust_report.reasons_by_vp(),
                    )
                events.emit(
                    "stage",
                    "stage_end",
                    stage="trust",
                    epoch=epoch,
                    n_untrusted=len(trust_report.untrusted_names),
                )
            signatures = target_signatures(matrix, excised)

            baseline_epoch = self.archive.latest_epoch_before(epoch)
            baseline_doc: Optional[Dict[str, Any]] = None
            baseline_problem: Optional[str] = None
            if baseline_epoch is not None:
                try:
                    baseline_doc = self.archive.read_results(baseline_epoch)
                except CorruptPayloadError as exc:
                    baseline_problem = str(exc)

            # Older epochs back the roster-rejoin recovery: a target
            # whose signature misses the primary baseline but matches a
            # pre-disconnect epoch is copied from there.
            history_docs: Dict[int, Dict[str, Any]] = {}
            history: List[Tuple[int, Dict[int, str]]] = []
            if baseline_epoch is not None and self.config.baseline_depth > 0:
                older = [e for e in self.archive.epochs() if e < baseline_epoch]
                for old_epoch in older[-self.config.baseline_depth :]:
                    try:
                        old_doc = self.archive.read_results(old_epoch)
                    except CorruptPayloadError:
                        continue  # rotten history is merely unavailable
                    history_docs[old_epoch] = old_doc
                    history.append(
                        (old_epoch, self._baseline_signatures(old_doc))
                    )

            plan = plan_delta(
                signatures,
                self._baseline_signatures(baseline_doc),
                baseline_epoch=baseline_epoch,
                churn_threshold=self.config.churn_threshold,
                enabled=self.config.incremental,
                baseline_problem=baseline_problem,
                history=history,
            )

            events.emit("stage", "stage_start", stage="analysis", epoch=epoch)
            with current_tracer().span("analysis", epoch=epoch):
                results_doc, n_recomputed, n_copied, n_recovered = self._stage(
                    "analysis",
                    lambda: self._analyze(
                        matrix,
                        internet,
                        signatures,
                        plan,
                        baseline_doc,
                        epoch,
                        excised=excised,
                        history_docs=history_docs,
                    ),
                )
            events.emit(
                "stage",
                "stage_end",
                stage="analysis",
                epoch=epoch,
                mode=plan.mode,
                n_recomputed=n_recomputed,
                n_copied=n_copied,
                n_recovered=n_recovered,
            )

            churn_doc = None
            if baseline_doc is not None:
                churn_doc = churn_between(
                    baseline_doc,
                    results_doc,
                    min_delta=self.config.min_delta,
                    min_ip24_delta=self.config.min_ip24_delta,
                ).to_doc()
                roster_doc = self._roster_doc(baseline_epoch, matrix)
                if roster_doc is not None:
                    churn_doc["roster"] = roster_doc

            # Alarm pass: classify this epoch's routing story against the
            # previous committed epoch.  Runs after the analysis so the
            # verdicts see exactly what was archived.
            alarm_list: List[RoutingAlarm] = []
            if self.config.alarms and baseline_doc is not None:
                events.emit("stage", "stage_start", stage="alarms", epoch=epoch)
                with current_tracer().span("alarms", epoch=epoch):
                    alarm_list = self._stage(
                        "alarms",
                        lambda: self._classify_alarms(
                            baseline_epoch, baseline_doc, results_doc, matrix,
                            internet,
                        ),
                    )
                n_alarming = sum(1 for a in alarm_list if a.is_alarm)
                events.emit(
                    "stage",
                    "stage_end",
                    stage="alarms",
                    epoch=epoch,
                    n_verdicts=len(alarm_list),
                    n_alarming=n_alarming,
                )
                metrics_reg = current_metrics()
                if metrics_reg.enabled:
                    metrics_reg.counter("routing_alarms").inc(n_alarming)

            routing_doc = self._routing_doc(route_records, alarm_list)

            manifest_core = self._manifest_core(
                census,
                matrix,
                results_doc,
                plan,
                n_recomputed,
                n_copied,
                n_recovered,
                churn_doc,
                trust_report,
                routing_doc,
            )

            metrics = current_metrics()
            if metrics.enabled:
                metrics.counter("service_epochs_committed").inc()
                metrics.counter("service_targets_recomputed").inc(n_recomputed)
                metrics.counter("service_targets_copied").inc(n_copied)
            events.emit("service", "epoch_end", epoch=epoch, mode=plan.mode)

        # The epoch span is closed: stage durations are final, so the
        # telemetry sidecars can be assembled and committed atomically
        # alongside the census payloads.
        telemetry_doc = None
        events_lines = None
        if collectors is not None:
            telemetry_doc, events_lines = self._build_telemetry(
                epoch,
                census,
                results_doc,
                *collectors,
                trust_report=trust_report,
                alarms=alarm_list if self.config.alarms else None,
            )
        self.archive.commit_run(
            epoch,
            manifest_core,
            census.records,
            results_doc,
            telemetry_doc=telemetry_doc,
            events_lines=events_lines,
            trust_doc=trust_report.to_doc() if trust_report is not None else None,
        )
        if journal.exists():
            journal.unlink()

        summary = results_doc["summary"]
        return EpochOutcome(
            epoch=epoch,
            status="committed",
            mode=plan.mode,
            reason=plan.reason,
            baseline_epoch=plan.baseline_epoch,
            churn_fraction=plan.churn_fraction,
            n_recomputed=n_recomputed,
            n_copied=n_copied,
            n_recovered=n_recovered,
            n_targets=summary["n_targets"],
            n_anycast=summary["n_anycast"],
            total_replicas=summary["total_replicas"],
            untrusted_vps=(
                list(trust_report.untrusted_names)
                if trust_report is not None
                else []
            ),
            alarms=alarm_list,
            route_events=route_records,
        )

    def _classify_alarms(
        self,
        baseline_epoch: Optional[int],
        baseline_doc: Dict[str, Any],
        results_doc: Dict[str, Any],
        matrix: RttMatrix,
        internet: SyntheticInternet,
    ) -> List[RoutingAlarm]:
        """Typed routing verdicts for this epoch vs the committed baseline.

        The baseline matrix is rebuilt from the archived raw records,
        with the baseline epoch's route events re-applied (the injector
        is keyed on epoch, so the replay is exact) — leak calibration
        diffs then compare what the baseline analysis actually saw.  A
        rotten baseline merely downgrades the classifier to analysis-
        level evidence; it never fails the epoch.

        The catalog's deployment prefixes act as the operator registry
        the paper proposes: a registered-anycast prefix flipping from
        apparently-unicast to anycast is landscape evolution (or a
        borderline signature stabilising), never a hijack.  Registered-
        unicast prefixes — the unicast hosts — carry the hijack and leak
        checks at full strength.  Subprefix collapse stays alarming for
        registered prefixes too: the registry vouches for *who may
        announce*, not for every site vanishing at once.
        """
        baseline_matrix: Optional[RttMatrix] = None
        baseline_names: Optional[List[str]] = None
        if baseline_epoch is not None:
            try:
                manifest = self.archive.read_manifest(baseline_epoch)
                records = self.archive.read_records(baseline_epoch)
                vps = manifest.get("vantage_points", [])
                names = [vp["name"] for vp in vps]
                locations = [GeoPoint(vp["lat"], vp["lon"]) for vp in vps]
                baseline_matrix = matrix_from_records(records, names, locations)
                baseline_names = names
                if (
                    self.config.route_events is not None
                    and self.config.route_events.enabled
                ):
                    injector = RouteEventInjector(
                        self.config.route_events,
                        self.internet_for(baseline_epoch),
                    )
                    baseline_matrix, _ = injector.perturb(
                        baseline_matrix, baseline_epoch
                    )
            except (CorruptPayloadError, ValueError, KeyError):
                baseline_matrix = None
        registered_anycast = {
            int(p) for dep in internet.deployments for p in dep.prefixes
        }
        return classify_routing_changes(
            DocAnalysisView(baseline_doc),
            DocAnalysisView(results_doc),
            baseline_matrix=baseline_matrix,
            current_matrix=matrix,
            known_anycast=registered_anycast,
            baseline_vp_names=baseline_names,
            policy=self.config.alarm_policy,
        )

    def _routing_doc(
        self,
        route_records: List[Dict[str, Any]],
        alarm_list: List[RoutingAlarm],
    ) -> Optional[Dict[str, Any]]:
        """The manifest's ``routing`` block, or ``None`` for plain geo
        runs (keeping geo-default manifests byte-identical to builds
        that predate the routing plane)."""
        if (
            self.config.routing == "geo"
            and not route_records
            and not self.config.alarms
        ):
            return None
        verdict_counts: Dict[str, int] = {}
        for alarm in alarm_list:
            verdict_counts[alarm.verdict.value] = (
                verdict_counts.get(alarm.verdict.value, 0) + 1
            )
        return {
            "mode": self.config.routing,
            "events": route_records,
            "alarms_enabled": bool(self.config.alarms),
            "verdicts": dict(sorted(verdict_counts.items())),
            "alarms": [a.to_doc() for a in alarm_list if a.is_alarm],
        }

    def _roster_doc(
        self, baseline_epoch: Optional[int], matrix: RttMatrix
    ) -> Optional[Dict[str, Any]]:
        """The churn block's ``roster`` section, or ``None`` when the
        analyzed roster matches the baseline's (keeping static-roster
        manifests byte-identical to pre-roster-churn builds)."""
        if baseline_epoch is None:
            return None
        try:
            baseline_manifest = self.archive.read_manifest(baseline_epoch)
        except (CorruptPayloadError, ValueError):
            return None
        before = [vp["name"] for vp in baseline_manifest.get("vantage_points", [])]
        after = list(matrix.vp_names)
        if self.config.roster_churn_prob <= 0.0 and set(before) == set(after):
            return None
        return roster_churn(before, after)

    def _build_telemetry(
        self,
        epoch: int,
        census,
        results_doc: Dict[str, Any],
        tracer: Tracer,
        metrics: MetricsRegistry,
        events: EventLog,
        trust_report: Optional[VpTrustReport] = None,
        alarms: Optional[List[RoutingAlarm]] = None,
    ) -> Tuple[Dict[str, Any], List[str]]:
        """Assemble the epoch's telemetry sidecar + sealed event lines.

        Wall-clock durations live *only* here — the sidecars are the one
        sanctioned nondeterministic output, excluded from byte-identity
        comparisons of the census payloads.
        """
        stage_seconds = stage_seconds_from_trace(tracer)
        snapshot = metrics.snapshot()
        spec = self.config.slo if self.config.slo is not None else default_service_slo()
        entries = results_doc["targets"].values()
        anycast = [e for e in entries if e.get("anycast")]
        degraded_fraction = (
            sum(1 for e in anycast if e.get("confidence") == "degraded") / len(anycast)
            if anycast
            else None
        )
        observations: Dict[str, Optional[float]] = {
            "n_vps": self.config.n_vps,
            "degraded_target_fraction": degraded_fraction,
        }
        if trust_report is not None:
            observations["untrusted_vp_fraction"] = trust_report.untrusted_fraction
        if alarms is not None:
            observations["false_alarm_rate"] = (
                sum(1 for a in alarms if a.is_alarm) / len(alarms)
                if alarms
                else 0.0
            )
        report = evaluate_slo(
            spec,
            stage_seconds=stage_seconds,
            metrics_snapshot=snapshot,
            observations=observations,
        )
        doc = {
            "stages": {
                name: round(seconds, 6) for name, seconds in sorted(stage_seconds.items())
            },
            "metrics": snapshot,
            "slo": report.to_doc(),
            "trace": tracer.to_dicts(),
            "event_summary": events.snapshot(),
        }
        return doc, events.to_lines()

    @staticmethod
    def _baseline_signatures(
        baseline_doc: Optional[Dict[str, Any]],
    ) -> Optional[Dict[int, str]]:
        if baseline_doc is None:
            return None
        return {
            int(prefix): entry["signature"]
            for prefix, entry in baseline_doc["targets"].items()
        }

    # ------------------------------------------------------------------
    # Analysis: incremental provably equal to cold
    # ------------------------------------------------------------------

    def _analyze(
        self,
        matrix: RttMatrix,
        internet: SyntheticInternet,
        signatures: Dict[int, str],
        plan: DeltaPlan,
        baseline_doc: Optional[Dict[str, Any]],
        epoch: int,
        excised: Optional[np.ndarray] = None,
        history_docs: Optional[Dict[int, Dict[str, Any]]] = None,
    ) -> Tuple[Dict[str, Any], int, int, int]:
        """Build the epoch's results document.

        Cold and incremental modes share one per-row code path; the only
        incremental shortcut is copying an unchanged target's *parsed
        baseline entry* verbatim.  Both the detection verdict and the
        iGreedy output are functions of the target's row plus row-
        independent context, and an unchanged signature certifies an
        identical row — so the copied entry is exactly what recomputing
        would produce, and the serialized documents are byte-equal.

        ``plan.recovered`` entries are the same copy, sourced from an
        older epoch in ``history_docs`` instead of the primary baseline
        (the roster-rejoin case: a VP left and came back, so the row
        matches the pre-disconnect epoch, not yesterday's).

        ``excised`` (per-target count of samples the trust gate removed)
        drives the confidence downgrade: a target judged on a thinner
        row than was measured is labelled ``degraded`` — or
        ``insufficient`` when what is left falls below ``min_samples``.
        The key is absent on untouched targets, so clean-roster runs
        serialize byte-identically to trust-off runs.
        """
        cfg = self.config.igreedy
        vp_dist = matrix.vp_distance_matrix()
        radii = radius_matrix(matrix.rtt_ms, cfg.speed_km_per_ms)
        filled = (~np.isnan(matrix.rtt_ms)).sum(axis=1)
        mask = detection_mask(vp_dist, radii) & (filled >= self.config.min_samples)
        engine = FastAnalysisEngine(matrix, city_db=self.city_db, config=cfg)

        incremental = plan.mode == "incremental"
        copy_from = (
            baseline_doc["targets"]
            if (incremental and baseline_doc is not None)
            else {}
        )
        skip = set(plan.unchanged) if copy_from else set()
        recovered_from = plan.recovered if incremental else {}
        history_docs = history_docs or {}

        targets: Dict[str, Any] = {}
        n_recomputed = 0
        n_copied = 0
        n_recovered = 0
        for row, raw_prefix in enumerate(matrix.prefixes):
            prefix = int(raw_prefix)
            key = str(prefix)
            if prefix in skip:
                targets[key] = copy_from[key]
                n_copied += 1
                continue
            if prefix in recovered_from:
                targets[key] = history_docs[recovered_from[prefix]]["targets"][key]
                n_copied += 1
                n_recovered += 1
                continue
            entry: Dict[str, Any] = {
                "signature": signatures[prefix],
                "anycast": bool(mask[row]),
            }
            if excised is not None and excised[row] > 0:
                entry["confidence"] = (
                    CONFIDENCE_INSUFFICIENT
                    if filled[row] < self.config.min_samples
                    else CONFIDENCE_DEGRADED
                )
            if mask[row]:
                result = engine.analyze_row(row)
                entry["replicas"] = [
                    {
                        "city": replica.city.name,
                        "country": replica.city.country,
                        "lat": replica.city.location.lat,
                        "lon": replica.city.location.lon,
                        "radius_km": replica.disk.radius_km,
                        "confidence": replica.confidence,
                    }
                    for replica in result.replicas
                ]
                entry["iterations"] = result.iterations
                entry["witness"] = (
                    list(result.detection.witness)
                    if result.detection.witness is not None
                    else None
                )
                entry["sample_count"] = result.detection.sample_count
            targets[key] = entry
            n_recomputed += 1

        doc = {
            "kind": RESULTS_KIND,
            "epoch": epoch,
            "signature_context": vp_context_digest(
                matrix.vp_names, matrix.vp_locations
            ),
            "targets": targets,
            "ases": self._aggregate_ases(targets, internet),
            "summary": {
                "n_targets": len(targets),
                "n_anycast": sum(1 for e in targets.values() if e["anycast"]),
                "total_replicas": sum(
                    len(e.get("replicas", ())) for e in targets.values()
                ),
            },
        }
        return doc, n_recomputed, n_copied, n_recovered

    @staticmethod
    def _aggregate_ases(
        targets: Dict[str, Any], internet: SyntheticInternet
    ) -> Dict[str, Any]:
        """Per-AS footprint section, recomputed from the target entries.

        Mirrors :class:`~repro.census.characterize.Characterization`'s
        aggregation (same ``mean_replicas`` arithmetic) but reads the
        serialized entries, so incremental and cold documents agree
        byte-for-byte whenever their target sections do.
        """
        counts: Dict[int, List[int]] = {}
        names: Dict[int, str] = {}
        for key, entry in targets.items():
            if not entry["anycast"]:
                continue
            owner = internet.registry.owner_of(int(key))
            if owner is None:
                continue
            counts.setdefault(owner.asn, []).append(len(entry.get("replicas", ())))
            names[owner.asn] = owner.name
        return {
            str(asn): {
                "name": names[asn],
                "mean_replicas": float(np.mean(replicas)),
                "n_ip24": len(replicas),
            }
            for asn, replicas in counts.items()
        }

    # ------------------------------------------------------------------
    # Manifest assembly
    # ------------------------------------------------------------------

    def _manifest_core(
        self,
        census,
        matrix: RttMatrix,
        results_doc: Dict[str, Any],
        plan: DeltaPlan,
        n_recomputed: int,
        n_copied: int,
        n_recovered: int,
        churn_doc: Optional[Dict[str, Any]],
        trust_report: Optional[VpTrustReport] = None,
        routing_doc: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        summary = results_doc["summary"]
        core = {
            "census": {
                "census_id": census.census_id,
                "campaign_seed": self.config.campaign_seed,
                "internet_seed": self.config.internet_seed,
                "availability": self.config.availability,
                "rate_pps": census.rate_pps,
                "noise": self.config.noise,
                "n_records": len(census.records),
                "n_vps": census.n_vps,
                "degraded": bool(census.health and census.health.degraded),
            },
            "vantage_points": [
                {"name": name, "lat": location.lat, "lon": location.lon}
                for name, location in zip(matrix.vp_names, matrix.vp_locations)
            ],
            "counts": dict(summary),
            "analysis": {
                "mode": plan.mode,
                "reason": plan.reason,
                "baseline_epoch": plan.baseline_epoch,
                "churn_fraction": plan.churn_fraction,
                "n_recomputed": n_recomputed,
                "n_copied": n_copied,
                "n_recovered": n_recovered,
            },
            "churn": churn_doc,
        }
        # Only when the gate actually fired: a clean-roster trust-on
        # manifest stays byte-identical to a trust-off one (the full
        # verdict set, clean or not, lives in the trust sidecar).
        if trust_report is not None and trust_report.untrusted_names:
            core["trust"] = {
                "enabled": True,
                "n_untrusted": len(trust_report.untrusted_names),
                "untrusted": list(trust_report.untrusted_names),
                "reasons": trust_report.reasons_by_vp(),
            }
        # Only in BGP/chaos/alarm configurations: plain geo manifests
        # stay byte-identical to builds that predate the routing plane.
        if routing_doc is not None:
            core["routing"] = routing_doc
        return core

    def _outcome_from_manifest(self, epoch: int, status: str) -> EpochOutcome:
        manifest = self.archive.read_manifest(epoch)
        analysis = manifest["analysis"]
        counts = manifest["counts"]
        return EpochOutcome(
            epoch=epoch,
            status=status,
            mode=analysis["mode"],
            reason=analysis["reason"],
            baseline_epoch=analysis["baseline_epoch"],
            churn_fraction=analysis["churn_fraction"],
            n_recomputed=analysis["n_recomputed"],
            n_copied=analysis["n_copied"],
            n_recovered=analysis.get("n_recovered", 0),
            n_targets=counts["n_targets"],
            n_anycast=counts["n_anycast"],
            total_replicas=counts["total_replicas"],
            untrusted_vps=list(manifest.get("trust", {}).get("untrusted", [])),
        )

    # ------------------------------------------------------------------
    # Service operations
    # ------------------------------------------------------------------

    def fsck(self, repair: bool = True) -> FsckReport:
        """Verify/repair the archive (see :func:`fsck_archive`)."""
        return fsck_archive(self.archive, repair=repair)

    def catch_up(
        self, through_epoch: int, abort_after_vps: Optional[int] = None
    ) -> Tuple[FsckReport, List[EpochOutcome]]:
        """Fsck, then run every missing epoch up to ``through_epoch``.

        Missed days, interrupted days (their journals resume), and
        quarantined days all land in the same place: "not committed",
        and this loop commits them in order.  The result is the archive
        an uninterrupted daily service would have produced.
        """
        report = self.fsck(repair=True)
        outcomes = [
            self.run_epoch(epoch, abort_after_vps=abort_after_vps)
            for epoch in range(through_epoch + 1)
        ]
        return report, outcomes

    def timeline(
        self, k: float = 4.0
    ) -> Tuple[Timeline, List[Regression]]:
        """Longitudinal health: per-metric series + flagged regressions.

        Folds every committed manifest (and, where present, telemetry
        sidecar) into :class:`~repro.obs.timeline.Timeline` series and
        flags points sitting more than ``k`` robust deviations above the
        rolling median (see :func:`~repro.obs.timeline.detect_regressions`).
        """
        timeline = collect_timeline(self.archive)
        return timeline, detect_regressions(timeline, k=k)

    def alarm_history(self) -> List[Dict[str, Any]]:
        """Every alarming routing verdict across the archive, in epoch
        order — one row per alarm, straight off the manifests' ``routing``
        blocks."""
        rows: List[Dict[str, Any]] = []
        for epoch in self.archive.epochs():
            manifest = self.archive.read_manifest(epoch)
            routing = manifest.get("routing") or {}
            for doc in routing.get("alarms", []):
                rows.append({"epoch": epoch, **doc})
        return rows

    def history(self) -> List[Dict[str, Any]]:
        """One summary row per committed epoch, straight off the manifests."""
        rows = []
        for epoch in self.archive.epochs():
            manifest = self.archive.read_manifest(epoch)
            rows.append(
                {
                    "epoch": epoch,
                    "mode": manifest["analysis"]["mode"],
                    "reason": manifest["analysis"]["reason"],
                    "churn_fraction": manifest["analysis"]["churn_fraction"],
                    "n_targets": manifest["counts"]["n_targets"],
                    "n_anycast": manifest["counts"]["n_anycast"],
                    "total_replicas": manifest["counts"]["total_replicas"],
                    "churn": manifest.get("churn"),
                }
            )
        return rows
