"""Supervised parallel census execution.

Partitions a census into deterministic (VP × target-shard) work units,
executes them on a forked worker pool under liveness supervision —
heartbeats, bounded shard reassignment, worker respawn, per-VP circuit
breakers, an overall deadline — and merges results canonically so the
output bytes never depend on worker count, dispatch order, or which
workers died along the way.

Entry points:

* :class:`ShardedExecutor` / :class:`ExecutionPolicy` — the engine.
* :func:`build_plan` / :class:`ShardPlan` — unit partitioning.
* :func:`graceful_shutdown` — SIGINT/SIGTERM drain used by both the
  serial and pooled census paths.
"""

from .engine import ExecutionOutcome, ShardedExecutor
from .errors import (
    DeadlineExceeded,
    ExecError,
    ReassignmentBudgetExceeded,
    WorkerLost,
    WorkerWedged,
)
from .plan import ShardPlan, WorkUnit, build_plan, merge_vp_shards, shard_target_mask
from .pool import UnitContext, WorkerPool, fork_available
from .signals import ShutdownFlag, graceful_shutdown
from .supervisor import (
    BREAKER_FAULT,
    DEADLINE_FAULT,
    CircuitBreaker,
    ExecutionPolicy,
    ExecutionReport,
    ReassignmentLedger,
)

__all__ = [
    "BREAKER_FAULT",
    "DEADLINE_FAULT",
    "CircuitBreaker",
    "DeadlineExceeded",
    "ExecError",
    "ExecutionOutcome",
    "ExecutionPolicy",
    "ExecutionReport",
    "ReassignmentBudgetExceeded",
    "ReassignmentLedger",
    "ShardPlan",
    "ShardedExecutor",
    "ShutdownFlag",
    "UnitContext",
    "WorkUnit",
    "WorkerLost",
    "WorkerPool",
    "WorkerWedged",
    "build_plan",
    "fork_available",
    "graceful_shutdown",
    "merge_vp_shards",
    "shard_target_mask",
]
