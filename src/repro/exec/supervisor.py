"""Pool-supervision bookkeeping: policy, breakers, budgets, report.

Everything here is process-free state machinery, unit-testable without
spawning a single worker; :mod:`repro.exec.engine` drives it from its
event loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..measurement.faults import WorkerFaultPlan
from .errors import ReassignmentBudgetExceeded

#: Fault tag recorded on a VP that the per-VP circuit breaker tripped.
BREAKER_FAULT = "worker_breaker"
#: Fault tag recorded on a VP whose shards were cut off by the deadline.
DEADLINE_FAULT = "deadline"


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a census execution engine runs and when it gives up.

    ``workers=0`` executes the plan in-process in canonical unit order —
    the determinism reference (and the fallback where ``fork`` is
    unavailable).  ``workers>=1`` runs a real multiprocessing pool.
    """

    workers: int = 2
    #: Target shards per VP.  1 (default) makes each unit a whole VP
    #: scan, byte-identical to the serial path; >1 slices the target
    #: space with shard-keyed RNG streams (a different — but equally
    #: deterministic — byte stream, stable across worker counts).
    n_target_shards: int = 1
    #: Overall wall-clock budget for one census's scan phase (seconds).
    #: On expiry, unfinished VPs are marked failed and the existing
    #: quorum machinery decides whether the census still stands.
    deadline_s: Optional[float] = None
    #: A worker with work whose last heartbeat is older than this is
    #: declared wedged: terminated, its shards reassigned.
    liveness_timeout_s: float = 5.0
    #: Event-loop tick (result poll timeout).
    poll_interval_s: float = 0.05
    #: Work units a worker may hold at once (pipelining vs. blast radius).
    prefetch: int = 2
    #: Reassignments allowed per unit before escalating.
    max_reassignments_per_unit: int = 3
    #: Total reassignments allowed per census (None: 4×workers + 8).
    max_total_reassignments: Optional[int] = None
    #: Worker respawns allowed per census (None: 2×workers + 2).
    max_respawns: Optional[int] = None
    #: Scan exceptions tolerated per VP before its breaker trips open.
    breaker_threshold: int = 3
    #: Injected worker-level chaos (tests/benchmarks only).
    worker_faults: Optional[WorkerFaultPlan] = None
    #: Shuffle the dispatch order (tests prove order-independence).
    submit_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.n_target_shards < 1:
            raise ValueError("n_target_shards must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.liveness_timeout_s <= 0:
            raise ValueError("liveness_timeout_s must be positive")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.prefetch < 1:
            raise ValueError("prefetch must be >= 1")
        if self.max_reassignments_per_unit < 0:
            raise ValueError("max_reassignments_per_unit must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")

    @property
    def total_reassignment_budget(self) -> int:
        if self.max_total_reassignments is not None:
            return self.max_total_reassignments
        return 4 * max(self.workers, 1) + 8

    @property
    def respawn_budget(self) -> int:
        if self.max_respawns is not None:
            return self.max_respawns
        return 2 * max(self.workers, 1) + 2


class CircuitBreaker:
    """Per-key failure counter with a trip threshold.

    Keyed by VP name: a vantage point whose shards keep raising
    (deterministic scan errors — bad input, not bad workers) trips open
    after ``threshold`` failures and is routed to the quarantine path
    instead of burning retries.
    """

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self._failures: Dict[str, int] = {}
        self._open: Dict[str, bool] = {}

    def record_failure(self, key: str) -> bool:
        """Count one failure; return True when this trips the breaker."""
        count = self._failures.get(key, 0) + 1
        self._failures[key] = count
        if count >= self.threshold and not self._open.get(key, False):
            self._open[key] = True
            return True
        return False

    def is_open(self, key: str) -> bool:
        return self._open.get(key, False)

    def failures(self, key: str) -> int:
        return self._failures.get(key, 0)

    @property
    def open_keys(self) -> List[str]:
        return sorted(k for k, tripped in self._open.items() if tripped)


class ReassignmentLedger:
    """Bounded accounting of orphaned-shard reassignments."""

    def __init__(self, per_unit_budget: int, total_budget: int) -> None:
        self.per_unit_budget = per_unit_budget
        self.total_budget = total_budget
        self._per_unit: Dict[int, int] = {}
        self.total = 0

    def charge(self, unit_id: int) -> None:
        """Record one reassignment; raise when a budget is exhausted."""
        attempts = self._per_unit.get(unit_id, 0) + 1
        if attempts > self.per_unit_budget:
            raise ReassignmentBudgetExceeded(
                unit_id, attempts, self.per_unit_budget
            )
        if self.total + 1 > self.total_budget:
            raise ReassignmentBudgetExceeded(
                None, self.total + 1, self.total_budget
            )
        self.total += 1
        self._per_unit[unit_id] = attempts

    def attempts(self, unit_id: int) -> int:
        return self._per_unit.get(unit_id, 0)


@dataclass
class ExecutionReport:
    """What the pool supervisor saw while executing one census."""

    workers: int
    n_units: int
    n_shards: int = 1
    units_completed: int = 0
    units_failed: int = 0
    reassignments: int = 0
    workers_lost: int = 0
    workers_wedged: int = 0
    workers_respawned: int = 0
    heartbeats: int = 0
    duplicate_results: int = 0
    breaker_open_vps: List[str] = field(default_factory=list)
    deadline_hit: bool = False
    interrupted: bool = False
    in_process: bool = False
    wall_s: float = 0.0
    _started: float = field(default_factory=time.monotonic, repr=False)

    def finish(self) -> "ExecutionReport":
        self.wall_s = time.monotonic() - self._started
        return self

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict dump for health reports and run manifests."""
        return {
            "workers": self.workers,
            "n_units": self.n_units,
            "n_shards": self.n_shards,
            "units_completed": self.units_completed,
            "units_failed": self.units_failed,
            "reassignments": self.reassignments,
            "workers_lost": self.workers_lost,
            "workers_wedged": self.workers_wedged,
            "workers_respawned": self.workers_respawned,
            "heartbeats": self.heartbeats,
            "duplicate_results": self.duplicate_results,
            "breaker_open_vps": list(self.breaker_open_vps),
            "deadline_hit": self.deadline_hit,
            "interrupted": self.interrupted,
            "in_process": self.in_process,
            "wall_s": self.wall_s,
        }
