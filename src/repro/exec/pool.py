"""Worker-pool plumbing: worker processes, queues, liveness handles.

The pool is deliberately dumb: workers pull unit ids from their own task
queue, execute them against a shared :class:`UnitContext`, and report
start/ok/err messages (which double as heartbeats) on one results queue.
All scheduling intelligence — dispatch, reassignment, breakers, budgets
— lives in :mod:`repro.exec.engine`.

Workers are forked, not spawned: the campaign's synthetic Internet and
platform are inherited copy-on-write instead of pickled per task, which
is what keeps per-unit overhead proportional to the *result* size only.
Where ``fork`` is unavailable the engine falls back to in-process
execution (same plan, same bytes, no parallelism).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..measurement.faults import WorkerFaultInjector, WorkerFaultKind, WorkerFaultPlan
from ..obs.metrics import MetricsRegistry, current_metrics, set_metrics
from .plan import WorkUnit

#: Message kinds on the results queue.  Every message is
#: ``(kind, worker_id, unit_id, payload)`` and counts as a heartbeat.
MSG_START = "start"
MSG_HB = "hb"
MSG_OK = "ok"
MSG_ERR = "err"
#: A worker's final message: its in-worker metrics snapshot, shipped on
#: the drain sentinel so parallel runs stop dropping worker-side
#: counters/histograms.  ``unit_id`` is -1 (no unit).
MSG_METRICS = "metrics"

#: Exit code of a worker killed by the injected dead-worker fault.
DEAD_WORKER_EXIT = 113


@dataclass
class UnitContext:
    """Everything a worker needs to execute any unit of one census.

    Shipped once per worker (by fork inheritance), never per task.
    """

    campaign: Any  # CensusCampaign; Any avoids an import cycle
    census_id: int
    probe_mask: np.ndarray
    base_order: np.ndarray
    rate_pps: float
    units: Tuple[WorkUnit, ...]
    worker_faults: Optional[WorkerFaultPlan] = None

    def execute(self, unit_id: int):
        unit = self.units[unit_id]
        result = self.campaign.run_work_unit(
            census_id=self.census_id,
            probe_mask=self.probe_mask,
            base_order=self.base_order,
            rate_pps=self.rate_pps,
            unit=unit,
        )
        metrics = current_metrics()
        if metrics.enabled:
            metrics.counter("exec_unit_scans").inc()
            metrics.counter("exec_unit_probes").inc(result.probes_sent)
        return result


def _sleep_heartbeating(
    out_q, worker_id: int, unit_id: int, seconds: float, chunk_s: float
) -> None:
    """A slow worker's nap: delayed, but visibly alive the whole time."""
    deadline = time.monotonic() + seconds
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(chunk_s, remaining))
        out_q.put((MSG_HB, worker_id, unit_id, None))


def worker_main(worker_id: int, context: UnitContext, task_q, out_q) -> None:
    """Body of one worker process: pull unit ids, execute, report."""
    # Forked children inherit the parent's graceful-shutdown handlers,
    # which must not run here: a terminal Ctrl-C hits the whole process
    # group, and an inherited flag-setting SIGTERM handler would defang
    # the supervisor's terminate().  The parent owns this lifecycle —
    # ignore SIGINT, restore default SIGTERM.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    # The forked child inherits the parent's current registry.  When the
    # parent had metrics on, swap in a fresh in-worker registry so this
    # worker's observations are its own — shipped back whole on drain,
    # then merged in the parent (order-free, so totals equal serial).
    metrics = None
    if current_metrics().enabled:
        metrics = MetricsRegistry()
        set_metrics(metrics)
    # Optional context hooks (duck-typed so the pool stays generic):
    #
    # * ``prepare_worker(worker_id)`` runs once per worker before any
    #   unit — contexts that carry a MatrixStore token re-attach their
    #   shard views here instead of relying on inherited heap arrays;
    # * ``encode_payload(result)`` compacts a unit result at the queue
    #   boundary, so what crosses the pipe is shard indices + per-target
    #   records, never dense arrays or deep object graphs.  The parent
    #   decodes on receipt; in-parent execution skips both hooks.
    prepare = getattr(context, "prepare_worker", None)
    if prepare is not None:
        prepare(worker_id)
    encode = getattr(context, "encode_payload", None)
    plan = context.worker_faults
    injector = (
        WorkerFaultInjector(plan) if plan is not None and plan.enabled else None
    )
    task_seq = 0
    while True:
        unit_id = task_q.get()
        if unit_id is None:
            if metrics is not None:
                out_q.put((MSG_METRICS, worker_id, -1, metrics.snapshot()))
            return
        task_seq += 1
        fault = injector.fault_for(worker_id, task_seq) if injector else None
        if fault is WorkerFaultKind.DEAD_WORKER:
            # Dies holding the unit, before any message: the parent only
            # learns from the corpse.  os._exit skips finalizers the way
            # a real OOM kill would.
            os._exit(DEAD_WORKER_EXIT)
        out_q.put((MSG_START, worker_id, unit_id, None))
        if fault is WorkerFaultKind.WEDGED_WORKER:
            # Silent stall: no heartbeats.  The liveness timeout, not
            # this sleep, decides when the supervisor gives up on us.
            time.sleep(plan.wedge_seconds)
        elif fault is WorkerFaultKind.SLOW_WORKER:
            _sleep_heartbeating(
                out_q, worker_id, unit_id, plan.slow_seconds, chunk_s=0.05
            )
        try:
            result = context.execute(unit_id)
        except Exception as exc:  # noqa: BLE001 — reported, never fatal here
            out_q.put(
                (MSG_ERR, worker_id, unit_id, f"{type(exc).__name__}: {exc}")
            )
        else:
            if encode is not None:
                result = encode(result)
            out_q.put((MSG_OK, worker_id, unit_id, result))


class WorkerHandle:
    """Parent-side view of one worker: process, queue, assigned units."""

    def __init__(self, worker_id: int, process, task_q) -> None:
        self.worker_id = worker_id
        self.process = process
        self.task_q = task_q
        #: Unit ids dispatched to this worker and not yet resolved.
        self.assigned: List[int] = []
        self.last_hb = time.monotonic()
        self.retired = False

    @property
    def alive(self) -> bool:
        return not self.retired and self.process.is_alive()

    def dispatch(self, unit_id: int) -> None:
        self.assigned.append(unit_id)
        self.task_q.put(unit_id)

    def heartbeat(self) -> None:
        self.last_hb = time.monotonic()

    def stale_for(self, now: float) -> float:
        return now - self.last_hb


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerPool:
    """Spawns, tracks, respawns, and tears down worker processes."""

    def __init__(self, context: UnitContext) -> None:
        self._context = context
        self._mp = multiprocessing.get_context("fork")
        self.out_q = self._mp.Queue()
        self.workers: Dict[int, WorkerHandle] = {}
        self._next_id = 0

    def spawn(self) -> WorkerHandle:
        worker_id = self._next_id
        self._next_id += 1
        task_q = self._mp.Queue()
        process = self._mp.Process(
            target=worker_main,
            args=(worker_id, self._context, task_q, self.out_q),
            daemon=True,
            name=f"census-worker-{worker_id}",
        )
        process.start()
        handle = WorkerHandle(worker_id, process, task_q)
        self.workers[worker_id] = handle
        return handle

    def live(self) -> List[WorkerHandle]:
        return [w for w in self.workers.values() if w.alive]

    def retire(self, handle: WorkerHandle, terminate: bool = False) -> None:
        """Stop tracking a worker (dead, wedged, or drained)."""
        handle.retired = True
        if terminate and handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=2.0)
        handle.task_q.cancel_join_thread()
        handle.task_q.close()

    def shutdown(self, drain_timeout_s: float = 2.0) -> None:
        """Stop every worker: sentinel, short join, then terminate."""
        for handle in self.workers.values():
            if handle.alive:
                try:
                    handle.task_q.put(None)
                except (ValueError, OSError):  # queue already closed
                    pass
        deadline = time.monotonic() + drain_timeout_s
        for handle in self.workers.values():
            if handle.retired:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            handle.process.join(timeout=remaining)
            self.retire(handle, terminate=True)
        self.out_q.cancel_join_thread()
        self.out_q.close()


def drain_worker_metrics(
    pool: WorkerPool,
    registry,
    received=None,
    send_sentinels: bool = True,
    timeout_s: float = 2.0,
) -> int:
    """Collect every live worker's final metrics snapshot into ``registry``.

    Each worker ships one :data:`MSG_METRICS` message when it sees its
    drain sentinel; this helper sends the sentinels (unless the caller
    already did — ``send_sentinels=False``), then pulls the results
    queue until every expected worker reported or ``timeout_s`` passes.
    ``received`` pre-seeds the set of worker ids whose snapshot the
    caller already merged during its own collect loop.

    Dead or wedged workers never ship a snapshot and are pruned from the
    expectation as soon as their process is gone — their observations
    are lost, the same asymmetry their unfinished units already have.
    Returns the number of snapshots merged here.  No-op (0) when the
    registry is disabled.
    """
    import queue as _queue

    if not getattr(registry, "enabled", False):
        return 0
    expected = {w.worker_id for w in pool.workers.values() if w.alive}
    expected -= set(received or ())
    if send_sentinels:
        for handle in pool.workers.values():
            if handle.alive:
                try:
                    handle.task_q.put(None)
                except (ValueError, OSError):
                    pass
    merged = 0
    deadline = time.monotonic() + timeout_s
    while expected and time.monotonic() < deadline:
        try:
            kind, worker_id, _unit_id, payload = pool.out_q.get(timeout=0.05)
        except _queue.Empty:
            # A queue feeder flushes before its process exits, so a dead
            # worker with an empty queue has nothing more to say.
            expected = {
                wid
                for wid in expected
                if pool.workers[wid].process.is_alive()
            }
            continue
        if kind == MSG_METRICS:
            if worker_id in expected:
                registry.merge(payload)
                merged += 1
                expected.discard(worker_id)
        # Any other late message (stray heartbeat, result already
        # reassigned) is simply consumed: the caller's loop is done.
    return merged
