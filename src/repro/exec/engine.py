"""The supervised sharded execution engine.

:class:`ShardedExecutor` takes a census's :class:`~repro.exec.plan.ShardPlan`
and runs it either in-process (``workers=0``: the determinism reference)
or on a forked worker pool, under one event loop that:

* dispatches units to workers (bounded prefetch per worker);
* tracks liveness via message heartbeats, declaring silent workers
  wedged after ``liveness_timeout_s`` and reassigning their shards;
* detects dead workers by their corpses, reassigns, and respawns
  replacements — all under bounded budgets
  (:class:`~repro.exec.supervisor.ReassignmentLedger`);
* trips a per-VP circuit breaker on repeated *scan* failures
  (deterministic data errors, not infrastructure), routing the VP to
  the campaign's quarantine path instead of burning retries;
* enforces an overall deadline, failing unfinished VPs into the
  existing quorum machinery rather than hanging forever;
* honours a cooperative stop flag (SIGINT/SIGTERM drain).

Determinism contract: unit results depend only on unit keys (all scan
RNG is keyed by ``(seed, census, VP, shard)``), per-VP merges happen in
shard order and the caller assembles VPs in census order — so the bytes
out are identical for any worker count, any dispatch order, and any
schedule of worker faults the budgets survive.
"""

from __future__ import annotations

import collections
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from ..measurement.prober import VpScanResult
from ..obs import current_events, current_metrics, current_tracer
from .errors import WorkerLost
from .plan import ShardPlan, WorkUnit, merge_vp_shards
from .pool import (
    MSG_ERR,
    MSG_METRICS,
    MSG_OK,
    MSG_START,
    UnitContext,
    WorkerPool,
    drain_worker_metrics,
    fork_available,
)
from .supervisor import (
    BREAKER_FAULT,
    DEADLINE_FAULT,
    CircuitBreaker,
    ExecutionPolicy,
    ExecutionReport,
    ReassignmentLedger,
)

#: Callback invoked as each VP's shards finish merging.  Returning False
#: asks the engine to drain and stop (the simulated operator kill).
VpCallback = Callable[[str, VpScanResult], bool]


@dataclass
class ExecutionOutcome:
    """Everything one engine run produced."""

    #: Merged scan results, keyed by VP name (completion subset only).
    results: Dict[str, VpScanResult] = field(default_factory=dict)
    #: VPs the engine gave up on, mapped to a fault tag
    #: (:data:`BREAKER_FAULT` or :data:`DEADLINE_FAULT`).
    failed: Dict[str, str] = field(default_factory=dict)
    report: ExecutionReport = None  # type: ignore[assignment]


class ShardedExecutor:
    """Runs one census's shard plan under supervision."""

    def __init__(self, policy: ExecutionPolicy) -> None:
        self.policy = policy

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        context: UnitContext,
        plan: ShardPlan,
        on_vp_complete: Optional[VpCallback] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> ExecutionOutcome:
        if self.policy.workers == 0 or not fork_available():
            return self._run_in_process(context, plan, on_vp_complete, should_stop)
        return self._run_pool(context, plan, on_vp_complete, should_stop)

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------

    @staticmethod
    def _units_by_vp(plan: ShardPlan) -> Dict[str, List[WorkUnit]]:
        grouped: Dict[str, List[WorkUnit]] = collections.defaultdict(list)
        for unit in plan.units:
            grouped[unit.vp_name].append(unit)
        return dict(grouped)

    def _dispatch_order(self, plan: ShardPlan) -> List[int]:
        order = list(range(len(plan.units)))
        if self.policy.submit_seed is not None:
            rng = np.random.default_rng(self.policy.submit_seed)
            rng.shuffle(order)
        return order

    def _fail_vp(
        self,
        vp_name: str,
        tag: str,
        outcome: ExecutionOutcome,
        units_of_vp: List[WorkUnit],
        resolved: Set[int],
        report: ExecutionReport,
    ) -> None:
        outcome.failed[vp_name] = tag
        for unit in units_of_vp:
            if unit.unit_id not in resolved:
                resolved.add(unit.unit_id)
                report.units_failed += 1

    # ------------------------------------------------------------------
    # In-process reference executor
    # ------------------------------------------------------------------

    def _run_in_process(
        self,
        context: UnitContext,
        plan: ShardPlan,
        on_vp_complete: Optional[VpCallback],
        should_stop: Optional[Callable[[], bool]],
    ) -> ExecutionOutcome:
        """Canonical-order execution of the same plan, zero processes.

        The byte-level reference every pool run must match, and the
        fallback where ``fork`` is unavailable.
        """
        tracer = current_tracer()
        policy = self.policy
        outcome = ExecutionOutcome()
        report = ExecutionReport(
            workers=0, n_units=len(plan), n_shards=plan.n_shards, in_process=True
        )
        outcome.report = report
        breaker = CircuitBreaker(policy.breaker_threshold)
        by_vp = self._units_by_vp(plan)
        shard_results: Dict[str, Dict[int, VpScanResult]] = collections.defaultdict(dict)
        resolved: Set[int] = set()
        started = time.monotonic()

        for unit in plan.units:
            if unit.unit_id in resolved:
                continue
            if should_stop is not None and should_stop():
                report.interrupted = True
                break
            if (
                policy.deadline_s is not None
                and time.monotonic() - started > policy.deadline_s
            ):
                report.deadline_hit = True
                for vp_name, units in by_vp.items():
                    if vp_name not in outcome.results and vp_name not in outcome.failed:
                        self._fail_vp(
                            vp_name, DEADLINE_FAULT, outcome, units, resolved, report
                        )
                break
            attempts = 0
            while True:
                attempts += 1
                try:
                    with tracer.span(
                        "work_unit", vp=unit.vp_name, shard=unit.shard_index, worker=-1
                    ):
                        result = context.execute(unit.unit_id)
                except Exception:  # noqa: BLE001 — routed to the breaker
                    if breaker.record_failure(unit.vp_name) or breaker.failures(
                        unit.vp_name
                    ) >= policy.breaker_threshold:
                        self._fail_vp(
                            unit.vp_name,
                            BREAKER_FAULT,
                            outcome,
                            by_vp[unit.vp_name],
                            resolved,
                            report,
                        )
                        break
                    continue  # deterministic retry, bounded by the breaker
                resolved.add(unit.unit_id)
                report.units_completed += 1
                shard_results[unit.vp_name][unit.shard_index] = result
                if len(shard_results[unit.vp_name]) == plan.n_shards:
                    merged = merge_vp_shards(shard_results.pop(unit.vp_name))
                    outcome.results[unit.vp_name] = merged
                    if on_vp_complete is not None and not on_vp_complete(
                        unit.vp_name, merged
                    ):
                        report.interrupted = True
                break
            if report.interrupted:
                break

        report.breaker_open_vps = breaker.open_keys
        report.finish()
        self._mirror_metrics(report)
        return outcome

    # ------------------------------------------------------------------
    # Pool executor
    # ------------------------------------------------------------------

    def _run_pool(
        self,
        context: UnitContext,
        plan: ShardPlan,
        on_vp_complete: Optional[VpCallback],
        should_stop: Optional[Callable[[], bool]],
    ) -> ExecutionOutcome:
        tracer = current_tracer()
        events = current_events()
        policy = self.policy
        n_workers = max(1, min(policy.workers, len(plan))) if len(plan) else 0
        outcome = ExecutionOutcome()
        report = ExecutionReport(
            workers=n_workers, n_units=len(plan), n_shards=plan.n_shards
        )
        outcome.report = report
        if not len(plan):
            report.finish()
            return outcome

        breaker = CircuitBreaker(policy.breaker_threshold)
        ledger = ReassignmentLedger(
            per_unit_budget=policy.max_reassignments_per_unit,
            total_budget=policy.total_reassignment_budget,
        )
        by_vp = self._units_by_vp(plan)
        units = plan.units
        shard_results: Dict[str, Dict[int, VpScanResult]] = collections.defaultdict(dict)
        resolved: Set[int] = set()
        #: Per-unit scan-error retry counts (breaker-bounded).
        error_counts: Dict[str, int] = {}
        pending: collections.deque = collections.deque(self._dispatch_order(plan))
        pool = WorkerPool(context)
        respawns_left = policy.respawn_budget
        #: Workers whose final metrics snapshot already arrived in-loop.
        metrics_received: Set[int] = set()
        started = time.monotonic()

        def unresolved_count() -> int:
            return len(units) - len(resolved)

        def fail_vp(vp_name: str, tag: str) -> None:
            self._fail_vp(vp_name, tag, outcome, by_vp[vp_name], resolved, report)

        def complete_unit(unit: WorkUnit, payload: VpScanResult) -> bool:
            """Record one finished unit; False asks the loop to stop."""
            resolved.add(unit.unit_id)
            report.units_completed += 1
            with tracer.span(
                "work_unit", vp=unit.vp_name, shard=unit.shard_index
            ):
                pass
            shard_results[unit.vp_name][unit.shard_index] = payload
            if len(shard_results[unit.vp_name]) == plan.n_shards:
                merged = merge_vp_shards(shard_results.pop(unit.vp_name))
                outcome.results[unit.vp_name] = merged
                if on_vp_complete is not None and not on_vp_complete(
                    unit.vp_name, merged
                ):
                    return False
            return True

        def orphan_units(handle) -> None:
            """Requeue a lost worker's unresolved units (budget-charged)."""
            active = [uid for uid in handle.assigned if uid not in resolved]
            handle.assigned.clear()
            for uid in reversed(active):
                ledger.charge(uid)
                report.reassignments += 1
                pending.appendleft(uid)
                if events.enabled:
                    events.emit(
                        "reassignment",
                        "unit_requeued",
                        unit_id=uid,
                        vp=units[uid].vp_name,
                        shard=units[uid].shard_index,
                        from_worker=handle.worker_id,
                    )

        def maybe_respawn() -> None:
            nonlocal respawns_left
            live = len(pool.live())
            wanted = min(n_workers, unresolved_count())
            while live < wanted and respawns_left > 0:
                pool.spawn()
                respawns_left -= 1
                report.workers_respawned += 1
                live += 1
            if live == 0 and unresolved_count() > 0:
                raise WorkerLost(
                    "worker pool exhausted: no live workers and no respawn "
                    "budget left",
                    unit_ids=sorted(set(range(len(units))) - resolved),
                )

        try:
            for _ in range(n_workers):
                pool.spawn()

            while unresolved_count() > 0:
                if should_stop is not None and should_stop():
                    report.interrupted = True
                    break
                now = time.monotonic()
                if (
                    policy.deadline_s is not None
                    and now - started > policy.deadline_s
                ):
                    report.deadline_hit = True
                    for vp_name in list(by_vp):
                        if (
                            vp_name not in outcome.results
                            and vp_name not in outcome.failed
                        ):
                            fail_vp(vp_name, DEADLINE_FAULT)
                    break

                # -- liveness sweep --------------------------------------
                for handle in list(pool.workers.values()):
                    if handle.retired:
                        continue
                    if not handle.process.is_alive():
                        report.workers_lost += 1
                        if events.enabled:
                            events.emit(
                                "worker", "worker_lost", worker=handle.worker_id
                            )
                        pool.retire(handle)
                        orphan_units(handle)
                        continue
                    active = [u for u in handle.assigned if u not in resolved]
                    if active and handle.stale_for(now) > policy.liveness_timeout_s:
                        report.workers_wedged += 1
                        if events.enabled:
                            events.emit(
                                "worker",
                                "worker_wedged",
                                worker=handle.worker_id,
                                stale_s=round(handle.stale_for(now), 3),
                            )
                        pool.retire(handle, terminate=True)
                        orphan_units(handle)
                maybe_respawn()

                # -- dispatch --------------------------------------------
                for handle in pool.live():
                    while pending and len(
                        [u for u in handle.assigned if u not in resolved]
                    ) < policy.prefetch:
                        uid = pending.popleft()
                        if uid in resolved:
                            continue
                        handle.dispatch(uid)

                # -- collect ---------------------------------------------
                try:
                    messages = [pool.out_q.get(timeout=policy.poll_interval_s)]
                except queue_mod.Empty:
                    messages = []
                while True:
                    try:
                        messages.append(pool.out_q.get_nowait())
                    except queue_mod.Empty:
                        break

                stop = False
                for kind, worker_id, unit_id, payload in messages:
                    if kind == MSG_METRICS:
                        # An early-exiting worker's parting snapshot —
                        # merge now, remember so the drain won't wait.
                        metrics_received.add(worker_id)
                        current_metrics().merge(payload)
                        continue
                    report.heartbeats += 1
                    handle = pool.workers.get(worker_id)
                    if handle is not None:
                        handle.heartbeat()
                    if kind in (MSG_START, "hb"):
                        continue
                    if unit_id in resolved:
                        report.duplicate_results += 1
                        continue
                    unit = units[unit_id]
                    if handle is not None and unit_id in handle.assigned:
                        handle.assigned.remove(unit_id)
                    if kind == MSG_OK:
                        if not complete_unit(unit, payload):
                            report.interrupted = True
                            stop = True
                            break
                    elif kind == MSG_ERR:
                        # A scan exception is a property of the unit, not
                        # the worker: count it against the VP's breaker
                        # and retry only while the breaker holds.
                        error_counts[unit.vp_name] = (
                            error_counts.get(unit.vp_name, 0) + 1
                        )
                        if breaker.record_failure(unit.vp_name):
                            fail_vp(unit.vp_name, BREAKER_FAULT)
                        elif breaker.is_open(unit.vp_name):
                            fail_vp(unit.vp_name, BREAKER_FAULT)
                        else:
                            pending.appendleft(unit_id)
                if stop:
                    break
        finally:
            # Pull the workers' in-worker registries home before tearing
            # the pool down, so parallel totals match serial runs.
            drain_worker_metrics(
                pool, current_metrics(), received=metrics_received
            )
            pool.shutdown()

        report.breaker_open_vps = breaker.open_keys
        report.finish()
        self._mirror_metrics(report)
        return outcome

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @staticmethod
    def _mirror_metrics(report: ExecutionReport) -> None:
        metrics = current_metrics()
        if not getattr(metrics, "enabled", False):
            return
        metrics.counter("exec_units_completed").inc(report.units_completed)
        metrics.counter("exec_units_failed").inc(report.units_failed)
        metrics.counter("exec_heartbeats").inc(report.heartbeats)
        metrics.counter("exec_reassignments").inc(report.reassignments)
        metrics.counter("exec_workers_lost").inc(report.workers_lost)
        metrics.counter("exec_workers_wedged").inc(report.workers_wedged)
        metrics.counter("exec_workers_respawned").inc(report.workers_respawned)
        metrics.counter("exec_breaker_tripped").inc(len(report.breaker_open_vps))
        if report.deadline_hit:
            metrics.counter("exec_deadline_expired").inc()
        metrics.gauge("exec_workers").set(report.workers)
