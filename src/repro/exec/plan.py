"""Deterministic work partitioning: (VP × target-shard) units.

A census is embarrassingly parallel across vantage points, and — when a
single VP scan is itself too big — across slices of the target space.
The unit of work is therefore ``(vantage point, target shard)``.  Three
properties make the partition safe to execute on an unreliable pool:

* **canonical ids** — unit ids enumerate ``pairs × shards`` in census
  order, so every run of the same census builds the identical plan;
* **keyed randomness** — the scan RNG of a unit is derived from
  ``(campaign seed, census, VP, shard)``, never from which worker ran
  it or when (see ``CensusCampaign._scan_vp``);
* **canonical merge** — per-VP results concatenate their shards in
  shard-index order, and the census concatenates VPs in census order,
  regardless of completion order.

With one shard per VP (the default) a unit is exactly the serial per-VP
scan, which is what makes pool output byte-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..measurement.prober import VpScanResult
from ..measurement.recordio import concatenate


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of a census: a VP scanning one target shard."""

    unit_id: int
    vp_name: str
    #: Index of the VP within the full platform (drives catchments/RNG).
    platform_index: int
    #: Position of the VP within this census (the records' vp_index).
    census_vp_index: int
    #: Whether this VP is degraded for this census (overloaded host).
    degraded: bool
    shard_index: int
    n_shards: int


@dataclass(frozen=True)
class ShardPlan:
    """The full unit list of one census, in canonical order."""

    units: Tuple[WorkUnit, ...]
    n_shards: int

    def __len__(self) -> int:
        return len(self.units)

    def units_of(self, vp_name: str) -> List[WorkUnit]:
        return [u for u in self.units if u.vp_name == vp_name]

    @property
    def vp_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for unit in self.units:
            seen.setdefault(unit.vp_name, None)
        return list(seen)


def build_plan(
    vps: Sequence[Tuple[str, int, int, bool]],
    n_shards: int = 1,
) -> ShardPlan:
    """Partition a census into its canonical work units.

    ``vps`` lists ``(vp_name, platform_index, census_vp_index, degraded)``
    in census order — exactly the ``pairs`` the serial loop iterates.
    Units are ordered VP-major, shard-minor; ids are their positions.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    units: List[WorkUnit] = []
    for vp_name, platform_index, census_vp_index, degraded in vps:
        for shard_index in range(n_shards):
            units.append(
                WorkUnit(
                    unit_id=len(units),
                    vp_name=vp_name,
                    platform_index=platform_index,
                    census_vp_index=census_vp_index,
                    degraded=bool(degraded),
                    shard_index=shard_index,
                    n_shards=n_shards,
                )
            )
    return ShardPlan(units=tuple(units), n_shards=n_shards)


def shard_target_mask(n_targets: int, shard_index: int, n_shards: int) -> np.ndarray:
    """Boolean mask of the targets belonging to one shard.

    Round-robin by target position: balanced to within one target and
    independent of blacklist state, so the shard geometry of a census
    never shifts as the blacklist grows.
    """
    if not 0 <= shard_index < n_shards:
        raise ValueError("shard_index out of range")
    return (np.arange(n_targets, dtype=np.int64) % n_shards) == shard_index


def split_rows(rows: np.ndarray, n_chunks: int) -> Tuple[np.ndarray, ...]:
    """Canonical contiguous chunking of analysis rows.

    The analysis-stage analogue of :func:`shard_target_mask`: chunk *i*
    of the same ``(rows, n_chunks)`` is identical on every run and in
    every process, which is what lets chunk results merge in canonical
    order no matter which worker finished first.  Sizes differ by at most
    one row (the ``np.array_split`` contract).
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    return tuple(np.array_split(rows, n_chunks))


def merge_vp_shards(shards: Dict[int, VpScanResult]) -> VpScanResult:
    """Combine one VP's shard results into a single scan result.

    Shards concatenate in shard-index order — the canonical order — so
    the merged bytes are independent of completion order.  The summary
    fields recombine exactly: shard durations sum to the whole-scan
    duration (each is ``probes/rate × host_load``), and the drop rate is
    recomputed from the summed raw counts rather than averaged.
    """
    if not shards:
        raise ValueError("no shard results to merge")
    ordered = [shards[index] for index in sorted(shards)]
    if len(ordered) == 1:
        return ordered[0]
    records = concatenate(tuple(r.records for r in ordered))
    expected = sum(r.replies_expected for r in ordered)
    dropped = sum(r.replies_dropped for r in ordered)
    return VpScanResult(
        records=records,
        duration_hours=sum(r.duration_hours for r in ordered),
        drop_rate=dropped / max(expected, 1),
        probes_sent=sum(r.probes_sent for r in ordered),
        replies_expected=expected,
        replies_dropped=dropped,
    )
