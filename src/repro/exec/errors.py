"""Typed failures of the sharded execution engine.

These sit *below* the stage-level taxonomy in
:mod:`repro.resilience.errors`: a worker dying is an infrastructure
event, not a data event.  The engine absorbs as many of them as its
budgets allow (reassigning orphaned shards, respawning workers); only
budget exhaustion escalates, as one of these types, into the existing
``StageFailed``/quorum machinery.
"""

from __future__ import annotations

from typing import Optional, Sequence


class ExecError(RuntimeError):
    """Base class of execution-engine failures."""


class WorkerLost(ExecError):
    """A worker process died while holding work units.

    The engine normally recovers by reassigning; this escalates only
    when the pool can no longer make progress (respawn budget spent and
    no live worker remains).
    """

    def __init__(self, message: str, unit_ids: Sequence[int] = ()) -> None:
        self.unit_ids = tuple(unit_ids)
        super().__init__(message)


class WorkerWedged(ExecError):
    """A worker stopped heartbeating past the liveness timeout."""


class ReassignmentBudgetExceeded(ExecError):
    """Orphaned-shard reassignment hit its bound without completing.

    Raised instead of silently retrying forever: a pool that keeps
    losing the same shard has an environmental problem no amount of
    reassignment fixes, and the run must escalate rather than produce
    thin data.
    """

    def __init__(self, unit_id: Optional[int], attempts: int, budget: int) -> None:
        self.unit_id = unit_id
        self.attempts = attempts
        self.budget = budget
        scope = f"unit {unit_id}" if unit_id is not None else "pool"
        super().__init__(
            f"{scope} reassigned {attempts} time(s), budget {budget} exhausted"
        )


class DeadlineExceeded(ExecError):
    """The census-wide execution deadline expired with shards unfinished.

    The engine does not raise this during normal runs — it marks the
    unfinished vantage points failed and lets the quorum machinery
    decide — but strict callers can use it to fail outright.
    """

    def __init__(self, deadline_s: float, unfinished: int) -> None:
        self.deadline_s = deadline_s
        self.unfinished = unfinished
        super().__init__(
            f"execution deadline of {deadline_s:.1f}s expired with "
            f"{unfinished} work unit(s) unfinished"
        )
