"""Graceful-shutdown plumbing shared by the serial and pooled paths.

A census run — serial loop or worker pool — wants SIGINT/SIGTERM to mean
"stop cleanly": finish nothing new, leave the checkpoint journal valid,
write the run manifest, exit with a distinct code.  The stock behaviour
(KeyboardInterrupt mid-array-op) can tear all three.

:func:`graceful_shutdown` installs handlers that merely *flag* the
request; the census loop polls the flag at safe points (between VP
scans, between engine ticks) and raises
:class:`~repro.measurement.campaign.CensusInterrupted` itself.  A second
signal while draining falls through to the default behaviour so an
operator can always force-quit a stuck drain.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator, Tuple


class ShutdownFlag:
    """Set by the signal handler, polled by the census loop."""

    def __init__(self) -> None:
        self.triggered = False
        self.signum: int = 0

    def __bool__(self) -> bool:
        return self.triggered


@contextlib.contextmanager
def graceful_shutdown(
    signums: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[ShutdownFlag]:
    """Scope in which SIGINT/SIGTERM request a drain instead of killing.

    Handlers can only be installed from the main thread; elsewhere (a
    census run inside a worker thread) the flag is returned un-wired and
    the caller keeps the host application's signal semantics.
    """
    flag = ShutdownFlag()
    if threading.current_thread() is not threading.main_thread():
        yield flag
        return

    def _handler(signum: int, frame: object) -> None:
        if flag.triggered:
            # Second signal: the operator means it.  Restore default
            # semantics by raising here (SIGINT's stock behaviour).
            raise KeyboardInterrupt
        flag.triggered = True
        flag.signum = signum

    previous = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _handler)
    except (ValueError, OSError):  # exotic host: leave semantics alone
        for signum, old in previous.items():
            signal.signal(signum, old)
        yield flag
        return
    try:
        yield flag
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
